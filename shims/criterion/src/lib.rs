//! Offline stand-in for the subset of `criterion` that Motor's benches
//! use. There is no statistical engine: each benchmark runs a small fixed
//! number of iterations and prints a mean per-iteration time, which keeps
//! `cargo bench` functional (and the bench targets compiling under
//! `cargo test`) without the real dependency.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations per sample in this shim (real criterion calibrates).
const SHIM_ITERS: u64 = 3;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Identifier combining a function label and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim always runs a fixed small
    /// number of iterations.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: SHIM_ITERS,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id.label, &b);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: SHIM_ITERS,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id.label, &b);
        self
    }

    pub fn finish(self) {}

    fn report(&self, label: &str, b: &Bencher) {
        let per_iter = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
        println!(
            "{}/{}: {:.1} ns/iter ({} iters)",
            self.name, label, per_iter, b.iters
        );
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Hand the iteration count to `f`, which returns the measured total.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        let mut calls = 0u64;
        g.sample_size(10).bench_function("iter", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        g.bench_with_input(BenchmarkId::new("custom", 42), &7u64, |b, &x| {
            b.iter_custom(|iters| Duration::from_nanos(iters * x))
        });
        g.finish();
        assert_eq!(calls, SHIM_ITERS);
    }
}
