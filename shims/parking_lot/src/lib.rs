//! Offline stand-in for the subset of `parking_lot` that Motor uses.
//!
//! The build environment has no reachable crate registry, so the workspace
//! vendors the lock API it needs on top of `std::sync`. Semantics match
//! `parking_lot` where Motor depends on them: `lock()`/`read()`/`write()`
//! return guards directly (no poisoning — a poisoned std lock is unwrapped
//! into its inner guard), and `Condvar::wait` takes `&mut MutexGuard`.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Mutual exclusion primitive (no poisoning).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can move the std guard out and back without
    // unsafe; it is None only transiently inside wait().
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(g) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard active")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard active")
    }
}

/// Condition variable compatible with [`Mutex`]/[`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified. Like `parking_lot`, re-locks before returning
    /// and takes the guard by `&mut` rather than by value.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard active");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard active");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res.timed_out()),
            Err(e) => {
                let (g, res) = e.into_inner();
                (g, res.timed_out())
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

/// Result of a timed wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Reader-writer lock (no poisoning).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let g = self.inner.read().unwrap_or_else(|e| e.into_inner());
        RwLockReadGuard { inner: g }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let g = self.inner.write().unwrap_or_else(|e| e.into_inner());
        RwLockWriteGuard { inner: g }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut g = m.lock();
            while !*g {
                c.wait(&mut g);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
