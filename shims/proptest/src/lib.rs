//! Offline stand-in for the subset of `proptest` that Motor's property
//! tests use. Values are generated from a deterministic per-test PRNG
//! (seeded from the test name) so runs are reproducible; there is no
//! shrinking — a failing case reports its index and message only.

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration. Only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Failure raised by `prop_assert!`-style macros or by test bodies via
    /// `?`.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Deterministic splitmix64 generator.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (FNV-1a) so each test gets a stable but
        /// distinct stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    /// Types with a canonical whole-domain strategy (see [`any`]).
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy producing any value of `T` (see [`Arbitrary`]).
    pub struct AnyStrategy<T> {
        _marker: PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`]: `[min, max]` inclusive.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min + 1;
            let len = self.size.min + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Output of [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Same 3:1 Some-weighting as proptest's default.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `Some` from the inner strategy three times in four, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
/// Each body runs `cases` times; failures panic with the case index.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err(e) => panic!("{} failed at case {case}: {e}", stringify!($name)),
                }
            }
        }
    )*};
}

/// Assert a condition inside a proptest body; failure aborts the case with
/// a `TestCaseError` instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "{}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -5i64..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y), "y = {}", y);
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn flat_map_threads_the_rng(
            pair in (1usize..8).prop_flat_map(|n| {
                (crate::collection::vec(0usize..n, n..=n), 0usize..n)
            }),
        ) {
            let (v, idx) = pair;
            prop_assert_eq!(v.len(), v.capacity().min(v.len()));
            prop_assert!(idx < v.len());
            prop_assert!(v.iter().all(|&e| e < v.len()));
        }
    }

    #[test]
    fn deterministic_rng_is_stable() {
        let mut a = crate::test_runner::TestRng::deterministic("seed");
        let mut b = crate::test_runner::TestRng::deterministic("seed");
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
