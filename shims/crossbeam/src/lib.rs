//! Offline stand-in for the subset of `crossbeam` that Motor uses:
//! `thread::scope` (over `std::thread::scope`, available since Rust 1.63)
//! and `utils::CachePadded`.
//!
//! One behavioral difference from real crossbeam: a panic in an unjoined
//! scoped thread propagates as a panic out of `scope` (std semantics)
//! instead of an `Err`. Motor joins every handle and `expect`s the result,
//! so the observable outcome — a propagated panic — is the same.

pub mod thread {
    use std::any::Any;

    /// Scope handle passed to the closure; `spawn` runs a thread that may
    /// borrow from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives a placeholder scope
        /// argument (crossbeam passes the scope for nested spawns; Motor
        /// never uses it).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&())),
            }
        }
    }

    /// Create a scope for spawning borrowing threads.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to (at least) a cache-line boundary so
    /// adjacent atomics do not false-share.
    #[derive(Debug, Default, Clone, Copy)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = [1u32, 2, 3];
        let sum = crate::thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<u32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn cache_padded_is_aligned() {
        let v = crate::utils::CachePadded::new(7u64);
        assert_eq!(*v, 7);
        assert_eq!(std::mem::align_of_val(&v), 128);
    }
}
