//! The typed communicator front-end.
//!
//! [`Communicator`] removes the count/datatype/raw-pointer surface of the
//! lower layers: element counts come from slice lengths, datatypes from
//! the element type, buffer stability from borrows.  It is generic over
//! the [`Comm`] transport and usable from two positions:
//!
//! * **Native** (`Communicator::native`) — a plain transport endpoint, no
//!   managed runtime involved.  All slice and object operations work on
//!   ordinary Rust buffers.
//! * **Managed-bound** (`Communicator::bind`) — constructed from an
//!   [`Mp`] inside a Motor rank.  The same operations apply, but blocking
//!   calls enter an FCall region (so the collector never waits on this
//!   thread), and the typed managed-array operations of
//!   [`crate::managed`] become available.
//!
//! Object operations speak the size-header + split-representation
//! protocol of `Oomp`, so a native `Communicator` interoperates with
//! managed ranks calling `osend`/`orecv`/`obcast`/`oscatter`/`ogather`
//! on mirrored class layouts.

use crate::comm::Comm;
use crate::error::{Error, Result};
use crate::pending::{PendingRecv, PendingSend};
use crate::wire;
use crate::Transportable;
use motor_core::fcall::Fcall;
use motor_core::Mp;
use motor_mpc::{MpcPrim, ReduceOp, Source, Status, Tag};
use motor_obs::{PhaseScope, TimeBucket};
use motor_runtime::MotorThread;

/// Tags used by the object scatter/gather collectives; must match
/// `Oomp::oscatter` / `Oomp::ogather` for interoperability.
const OSCATTER_TAG: Tag = Tag::new(2_000);
const OGATHER_TAG: Tag = Tag::new(2_001);

fn as_bytes<T: MpcPrim>(s: &[T]) -> &[u8] {
    // SAFETY: MpcPrim types are plain-old-data; any byte pattern is valid.
    unsafe { std::slice::from_raw_parts(s.as_ptr() as *const u8, std::mem::size_of_val(s)) }
}
fn as_bytes_mut<T: MpcPrim>(s: &mut [T]) -> &mut [u8] {
    // SAFETY: as above.
    unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr() as *mut u8, std::mem::size_of_val(s)) }
}

/// Typed, safe communicator over a [`Comm`] transport.
pub struct Communicator<'t, C: Comm = motor_mpc::Comm> {
    comm: C,
    mp: Option<Mp<'t>>,
}

impl<C: Comm> Communicator<'static, C> {
    /// Wrap a bare transport endpoint (no managed runtime).
    pub fn native(comm: C) -> Communicator<'static, C> {
        Communicator { comm, mp: None }
    }
}

impl<'t> Communicator<'t, motor_mpc::Comm> {
    /// Bind to a managed rank's message-passing endpoint.  Blocking
    /// operations will cooperate with the collector via FCall regions.
    pub fn bind(mp: Mp<'t>) -> Communicator<'t, motor_mpc::Comm> {
        let comm = mp.comm().clone();
        Communicator { comm, mp: Some(mp) }
    }

    /// The underlying managed endpoint, when bound.
    pub fn mp(&self) -> Option<&Mp<'t>> {
        self.mp.as_ref()
    }
}

impl<'t, C: Comm> Communicator<'t, C> {
    /// This rank.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// The underlying transport.
    pub fn comm(&self) -> &C {
        &self.comm
    }

    /// The managed thread, when bound to one.
    pub fn thread(&self) -> Option<&'t MotorThread> {
        self.mp.as_ref().map(|m| m.thread())
    }

    /// Enter an FCall region for a blocking native-side operation when
    /// bound to a managed thread (no-op otherwise).
    fn fcall(&self) -> Option<Fcall<'_>> {
        self.mp.as_ref().map(|m| Fcall::enter(m.thread()))
    }

    /// Account a blocking communication call to the profiler's comm-wait
    /// bucket when bound to a managed rank (no-op otherwise). The typed
    /// front-end talks to the transport directly, so without this the
    /// rank's wall-clock partition would file all its waits as compute.
    fn comm_scope(&self) -> Option<PhaseScope<'_>> {
        self.mp
            .as_ref()
            .map(|m| m.phase_scope(TimeBucket::CommWait))
    }

    /// As [`comm_scope`](Self::comm_scope), for progress polls (probe).
    fn progress_scope(&self) -> Option<PhaseScope<'_>> {
        self.mp
            .as_ref()
            .map(|m| m.phase_scope(TimeBucket::Progress))
    }

    // ------------------------------------------------------------------
    // typed point-to-point
    // ------------------------------------------------------------------

    /// Blocking typed send.  Sub-ranges are plain slicing:
    /// `comm.send_slice(&buf[a..b], dest, tag)` — no count or datatype
    /// parameters exist to get wrong.
    pub fn send_slice<T: MpcPrim>(
        &self,
        buf: &[T],
        dest: usize,
        tag: impl Into<Tag>,
    ) -> Result<()> {
        let _phase = self.comm_scope();
        let _fc = self.fcall();
        self.comm.send_bytes(as_bytes(buf), dest, tag.into())
    }

    /// Blocking typed receive; returns the number of elements received.
    pub fn recv_into<T: MpcPrim>(
        &self,
        buf: &mut [T],
        src: impl Into<Source>,
        tag: impl Into<Tag>,
    ) -> Result<usize> {
        let _phase = self.comm_scope();
        let _fc = self.fcall();
        let st = self
            .comm
            .recv_bytes(as_bytes_mut(buf), src.into(), tag.into())?;
        Ok(st.count / std::mem::size_of::<T>().max(1))
    }

    /// Non-blocking typed send.  The returned [`PendingSend`] borrows
    /// `buf` until completion and panics if dropped incomplete.
    pub fn isend_slice<'a, T: MpcPrim>(
        &'a self,
        buf: &'a [T],
        dest: usize,
        tag: impl Into<Tag>,
    ) -> Result<PendingSend<'a, C>>
    where
        't: 'a,
    {
        let bytes = as_bytes(buf);
        // SAFETY: the PendingSend borrows `buf` for its whole life, so the
        // window outlives the request.
        let req = unsafe {
            self.comm
                .isend_raw(bytes.as_ptr(), bytes.len(), dest, tag.into())?
        };
        Ok(PendingSend::new(&self.comm, self.thread(), req))
    }

    /// Non-blocking typed receive.  The returned [`PendingRecv`] holds the
    /// `&mut` borrow of `buf` until completion.
    pub fn irecv_slice<'a, T: MpcPrim>(
        &'a self,
        buf: &'a mut [T],
        src: impl Into<Source>,
        tag: impl Into<Tag>,
    ) -> Result<PendingRecv<'a, C, T>>
    where
        't: 'a,
    {
        let len = buf.len();
        let bytes = as_bytes_mut(buf);
        // SAFETY: the PendingRecv holds the unique borrow of `buf` for its
        // whole life, so the window outlives the request.
        let req = unsafe {
            self.comm
                .irecv_raw(bytes.as_mut_ptr(), bytes.len(), src.into(), tag.into())?
        };
        Ok(PendingRecv::new(&self.comm, self.thread(), req, len))
    }

    /// Combined typed send+receive (deadlock-free neighbor exchange).
    pub fn sendrecv_slice<T: MpcPrim>(
        &self,
        send: &[T],
        dest: usize,
        recv: &mut [T],
        src: impl Into<Source>,
        tag: impl Into<Tag>,
    ) -> Result<usize> {
        let _phase = self.comm_scope();
        let _fc = self.fcall();
        let tag = tag.into();
        let rbytes = as_bytes_mut(recv);
        // SAFETY: both borrows outlive the waits below.
        let rreq = unsafe {
            self.comm
                .irecv_raw(rbytes.as_mut_ptr(), rbytes.len(), src.into(), tag)?
        };
        let sbytes = as_bytes(send);
        let sreq = unsafe {
            self.comm
                .isend_raw(sbytes.as_ptr(), sbytes.len(), dest, tag)?
        };
        self.comm.wait(&sreq)?;
        let st = self.comm.wait(&rreq)?;
        if st.truncated {
            return Err(Error::Truncated {
                message: st.count,
                buffer: rbytes.len(),
            });
        }
        Ok(st.count / std::mem::size_of::<T>().max(1))
    }

    /// Blocking probe for a matching message.
    pub fn probe(&self, src: impl Into<Source>, tag: impl Into<Tag>) -> Result<Status> {
        let _phase = self.progress_scope();
        let _fc = self.fcall();
        self.comm.probe(src.into(), tag.into())
    }

    /// Non-blocking probe.
    pub fn iprobe(&self, src: impl Into<Source>, tag: impl Into<Tag>) -> Result<Option<Status>> {
        let _phase = self.progress_scope();
        self.comm.iprobe(src.into(), tag.into())
    }

    // ------------------------------------------------------------------
    // typed collectives
    // ------------------------------------------------------------------

    /// Synchronize all ranks.
    pub fn barrier(&self) -> Result<()> {
        let _phase = self.comm_scope();
        let _fc = self.fcall();
        self.comm.barrier()
    }

    /// Broadcast `buf` from `root` into every rank's `buf`.
    pub fn bcast_slice<T: MpcPrim>(&self, buf: &mut [T], root: usize) -> Result<()> {
        let _phase = self.comm_scope();
        let _fc = self.fcall();
        self.comm.bcast_bytes(as_bytes_mut(buf), root)
    }

    /// Scatter equal chunks of `send` (significant at root, length
    /// `recv.len() * size()`) into every rank's `recv`.
    pub fn scatter_slice<T: MpcPrim>(
        &self,
        send: Option<&[T]>,
        recv: &mut [T],
        root: usize,
    ) -> Result<()> {
        let _phase = self.comm_scope();
        let _fc = self.fcall();
        self.comm
            .scatter_bytes(send.map(as_bytes), as_bytes_mut(recv), root)
    }

    /// Gather every rank's `send` into root's `recv` in rank order.
    pub fn gather_slice<T: MpcPrim>(
        &self,
        send: &[T],
        recv: Option<&mut [T]>,
        root: usize,
    ) -> Result<()> {
        let _phase = self.comm_scope();
        let _fc = self.fcall();
        self.comm
            .gather_bytes(as_bytes(send), recv.map(as_bytes_mut), root)
    }

    /// Gather every rank's `send` into every rank's `recv`.
    pub fn allgather_slice<T: MpcPrim>(&self, send: &[T], recv: &mut [T]) -> Result<()> {
        let _phase = self.comm_scope();
        let _fc = self.fcall();
        self.comm
            .allgather_bytes(as_bytes(send), as_bytes_mut(recv))
    }

    /// Element-wise reduction, result visible at every rank.
    pub fn allreduce_slice<T: MpcPrim>(
        &self,
        send: &[T],
        recv: &mut [T],
        op: ReduceOp,
    ) -> Result<()> {
        let _phase = self.comm_scope();
        let _fc = self.fcall();
        self.comm
            .allreduce_bytes(as_bytes(send), as_bytes_mut(recv), T::DTYPE, op)
    }

    /// Scalar allreduce convenience (dot products, norms, counters).
    pub fn allreduce<T: MpcPrim + Default>(&self, value: T, op: ReduceOp) -> Result<T> {
        let mut out = [T::default()];
        self.allreduce_slice(&[value], &mut out, op)?;
        Ok(out[0])
    }

    // ------------------------------------------------------------------
    // object transport (Oomp wire protocol)
    // ------------------------------------------------------------------

    /// Send a size header followed by the data buffer (the `Oomp`
    /// framing).
    fn send_sized(&self, bytes: &[u8], dest: usize, tag: Tag) -> Result<()> {
        let size = (bytes.len() as u64).to_le_bytes();
        self.comm.send_bytes(&size, dest, tag)?;
        self.comm.send_bytes(bytes, dest, tag)?;
        Ok(())
    }

    /// Receive a size header, then the data, pairing both messages with
    /// the same sender.
    fn recv_sized(&self, src: Source, tag: Tag) -> Result<(Vec<u8>, Status)> {
        let mut size = [0u8; 8];
        let st = self.comm.recv_bytes(&mut size, src, tag)?;
        let len = u64::from_le_bytes(size) as usize;
        let mut buf = vec![0u8; len];
        let st2 =
            self.comm
                .recv_bytes(&mut buf, Source::Rank(st.source as usize), Tag::new(st.tag))?;
        debug_assert_eq!(st2.count, len);
        Ok((buf, st))
    }

    /// Send one transportable object graph — wire-compatible with a
    /// managed receiver calling `Oomp::orecv` on the mirrored class.
    pub fn send_obj<T: Transportable>(
        &self,
        obj: &T,
        dest: usize,
        tag: impl Into<Tag>,
    ) -> Result<()> {
        let _phase = self.comm_scope();
        let _fc = self.fcall();
        let bytes = wire::encode(obj);
        self.send_sized(&bytes, dest, tag.into())
    }

    /// Receive one transportable object graph — wire-compatible with a
    /// managed sender calling `Oomp::osend`.
    pub fn recv_obj<T: Transportable>(
        &self,
        src: impl Into<Source>,
        tag: impl Into<Tag>,
    ) -> Result<(T, Status)> {
        let _phase = self.comm_scope();
        let _fc = self.fcall();
        let (bytes, st) = self.recv_sized(src.into(), tag.into())?;
        Ok((wire::decode(&bytes)?, st))
    }

    /// Broadcast an object graph from `root`.  The root passes
    /// `Some(obj)` and receives `None` back (it already owns the value);
    /// every other rank receives `Some(copy)`.
    pub fn bcast_obj<T: Transportable>(&self, obj: Option<&T>, root: usize) -> Result<Option<T>> {
        let _phase = self.comm_scope();
        let _fc = self.fcall();
        if self.comm.rank() == root {
            let obj = obj.ok_or(Error::Runtime(motor_core::CoreError::NullBuffer))?;
            let bytes = wire::encode(obj);
            let mut size = (bytes.len() as u64).to_le_bytes();
            self.comm.bcast_bytes(&mut size, root)?;
            let mut data = bytes;
            self.comm.bcast_bytes(&mut data, root)?;
            Ok(None)
        } else {
            let mut size = [0u8; 8];
            self.comm.bcast_bytes(&mut size, root)?;
            let mut data = vec![0u8; u64::from_le_bytes(size) as usize];
            self.comm.bcast_bytes(&mut data, root)?;
            Ok(Some(wire::decode(&data)?))
        }
    }

    /// Scatter a slice of objects from `root`: every rank receives its
    /// `len / size()` contiguous elements as one split representation —
    /// interoperable with managed ranks in the same `Oomp::oscatter`.
    pub fn scatter_objs<T: Transportable>(
        &self,
        send: Option<&[T]>,
        root: usize,
    ) -> Result<Vec<T>> {
        let _phase = self.comm_scope();
        let _fc = self.fcall();
        let n = self.comm.size();
        if self.comm.rank() == root {
            let send = send.ok_or(Error::Runtime(motor_core::CoreError::NullBuffer))?;
            if send.len() % n != 0 {
                return Err(Error::Decode(format!(
                    "scatter of {} elements over {n} ranks is not even",
                    send.len()
                )));
            }
            let chunk = send.len() / n;
            let mut own = None;
            for r in 0..n {
                let part = wire::encode_slice(&send[r * chunk..(r + 1) * chunk]);
                if r == root {
                    // Decode our own part rather than cloning: identical
                    // semantics to the managed root, which deserializes
                    // its own split representation.
                    own = Some(wire::decode_vec(&part)?);
                } else {
                    self.send_sized(&part, r, OSCATTER_TAG)?;
                }
            }
            Ok(own.expect("root part"))
        } else {
            let (bytes, _) = self.recv_sized(Source::Rank(root), OSCATTER_TAG)?;
            wire::decode_vec(&bytes)
        }
    }

    /// Gather each rank's objects into rank order at `root`; returns
    /// `Some(all)` at root, `None` elsewhere.  Interoperable with managed
    /// ranks in the same `Oomp::ogather`.
    pub fn gather_objs<T: Transportable>(&self, send: &[T], root: usize) -> Result<Option<Vec<T>>> {
        let _phase = self.comm_scope();
        let _fc = self.fcall();
        let n = self.comm.size();
        if self.comm.rank() == root {
            let mut all = Vec::with_capacity(send.len() * n);
            let own_bytes = wire::encode_slice(send);
            for r in 0..n {
                if r == root {
                    all.extend(wire::decode_vec::<T>(&own_bytes)?);
                } else {
                    let (bytes, _) = self.recv_sized(Source::Rank(r), OGATHER_TAG)?;
                    all.extend(wire::decode_vec::<T>(&bytes)?);
                }
            }
            Ok(Some(all))
        } else {
            let bytes = wire::encode_slice(send);
            self.send_sized(&bytes, root, OGATHER_TAG)?;
            Ok(None)
        }
    }
}
