//! The unified user-facing error surface (satellite of the API redesign):
//! one enum covering transport faults, runtime faults, and decode faults,
//! while keeping the conditions user code genuinely branches on —
//! peer-closed and truncation — as first-class variants instead of burying
//! them inside nested wrappers.

use motor_core::CoreError;
use motor_mpc::MpcError;
use std::fmt;

/// Result alias for all `motor-api` operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the typed Motor API.
#[derive(Debug)]
pub enum Error {
    /// The peer rank exited or closed its endpoint mid-operation.  Kept
    /// distinguishable (not folded into a generic transport error) because
    /// resilient applications branch on it — see [`Error::is_peer_closed`].
    PeerClosed {
        /// The global rank that went away.
        rank: usize,
    },
    /// An incoming message was larger than the receive buffer.
    Truncated {
        /// Message size in bytes.
        message: usize,
        /// Buffer capacity in bytes.
        buffer: usize,
    },
    /// Any other message-passing-core fault (invalid rank, shutdown, …).
    Transport(MpcError),
    /// A fault from the managed runtime bindings (null buffer, range
    /// bounds, object-model integrity, …).
    Runtime(CoreError),
    /// A received representation did not decode into the requested Rust
    /// type (layout mismatch, truncated bytes, cyclic graph, …).
    Decode(String),
}

impl Error {
    /// True when the failure means the peer rank is gone — the condition
    /// fault-tolerant applications retry or reroute on.
    pub fn is_peer_closed(&self) -> bool {
        matches!(self, Error::PeerClosed { .. })
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::PeerClosed { rank } => write!(f, "peer rank {rank} closed"),
            Error::Truncated { message, buffer } => {
                write!(
                    f,
                    "message of {message} bytes truncated into {buffer}-byte buffer"
                )
            }
            Error::Transport(e) => write!(f, "transport: {e}"),
            Error::Runtime(e) => write!(f, "runtime: {e}"),
            Error::Decode(s) => write!(f, "decode: {s}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Transport(e) => Some(e),
            Error::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MpcError> for Error {
    fn from(e: MpcError) -> Self {
        match e {
            MpcError::PeerClosed(rank) => Error::PeerClosed { rank },
            MpcError::Truncation { message, buffer } => Error::Truncated { message, buffer },
            other => Error::Transport(other),
        }
    }
}

impl From<CoreError> for Error {
    fn from(e: CoreError) -> Self {
        // Lift the conditions users branch on out of the nesting.
        match e {
            CoreError::Mpc(m) => m.into(),
            CoreError::Serialization(s) => Error::Decode(s),
            CoreError::UnknownType(t) => {
                Error::Decode(format!("receiver does not know type `{t}`"))
            }
            other => Error::Runtime(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_closed_stays_distinguishable() {
        let e: Error = MpcError::PeerClosed(3).into();
        assert!(e.is_peer_closed());
        assert!(e.to_string().contains("rank 3"));

        // ...even when it arrives wrapped in a CoreError.
        let e: Error = CoreError::Mpc(MpcError::PeerClosed(7)).into();
        assert!(matches!(e, Error::PeerClosed { rank: 7 }));
    }

    #[test]
    fn truncation_carries_sizes() {
        let e: Error = MpcError::Truncation {
            message: 64,
            buffer: 16,
        }
        .into();
        assert!(matches!(
            e,
            Error::Truncated {
                message: 64,
                buffer: 16
            }
        ));
        assert!(!e.is_peer_closed());
    }

    #[test]
    fn serialization_faults_become_decode() {
        let e: Error = CoreError::Serialization("bad table".into()).into();
        assert!(matches!(e, Error::Decode(_)));
        let e: Error = CoreError::UnknownType("Ghost".into()).into();
        assert!(e.to_string().contains("Ghost"));
    }
}
