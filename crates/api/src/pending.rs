//! Typed in-flight operations with *linear* completion discipline.
//!
//! The static verifier (`motor-analyze`) enforces a linear type-state on
//! managed IL: every request issued must reach exactly one wait.  These
//! types carry the same rule into the Rust surface: `#[must_use]` makes
//! *ignoring* a pending operation a compiler warning, and the drop-bomb
//! turns *discarding* one into a panic — completing the operation is the
//! only way out (or an explicit, greppable [`PendingSend::forget`]).
//!
//! Borrow-wise, a pending operation holds `&'a`/`&'a mut` on its buffer
//! for its entire life, so the window-stability obligation of the raw
//! layer ("the buffer must stay valid until completion") becomes a borrow
//! the compiler checks.

use crate::comm::Comm;
use crate::error::{Error, Result};
use motor_core::fcall::Fcall;
use motor_mpc::Status;
use motor_obs::TimeBucket;
use motor_runtime::MotorThread;
use std::marker::PhantomData;

/// Open the profiler's in-flight window for an async op issued from a
/// managed rank; the matching [`async_done`] fires exactly once when the
/// request reaches its completion (wait, successful test, or forget).
fn async_issue(thread: Option<&MotorThread>) {
    if let Some(t) = thread {
        t.vm().metrics().async_op_begin();
    }
}

fn async_done(thread: Option<&MotorThread>) {
    if let Some(t) = thread {
        t.vm().metrics().async_op_end();
    }
}

/// An in-flight typed send.  Must be completed with [`PendingSend::wait`]
/// (or driven to completion with [`PendingSend::test`]); dropping an
/// incomplete send panics.
#[must_use = "a pending send must be completed with wait(); dropping it abandons the operation"]
pub struct PendingSend<'a, C: Comm> {
    comm: &'a C,
    /// Present when issued from a managed rank: blocking completion enters
    /// an FCall region so the collector never waits on this thread.
    thread: Option<&'a MotorThread>,
    req: Option<C::Request>,
    _buf: PhantomData<&'a [u8]>,
}

impl<'a, C: Comm> PendingSend<'a, C> {
    pub(crate) fn new(comm: &'a C, thread: Option<&'a MotorThread>, req: C::Request) -> Self {
        async_issue(thread);
        PendingSend {
            comm,
            thread,
            req: Some(req),
            _buf: PhantomData,
        }
    }

    /// Block until the send completes, releasing the buffer borrow.
    pub fn wait(mut self) -> Result<()> {
        let req = self.req.take().expect("pending send already completed");
        let _fc = self.thread.map(Fcall::enter);
        let res = {
            let _phase = self
                .thread
                .map(|t| t.vm().metrics().phase_scope(TimeBucket::CommWait));
            self.comm.wait(&req)
        };
        async_done(self.thread);
        res?;
        Ok(())
    }

    /// Poll for completion; returns `true` once complete (after which the
    /// value is disarmed and may be dropped).
    pub fn test(&mut self) -> Result<bool> {
        let _phase = self
            .thread
            .map(|t| t.vm().metrics().phase_scope(TimeBucket::Progress));
        match &self.req {
            None => Ok(true),
            Some(req) => {
                if self.comm.test(req)?.is_some() {
                    self.req = None;
                    async_done(self.thread);
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
        }
    }

    /// Explicitly abandon the operation without completing it.  The
    /// transport may still deliver the message; this only defuses the
    /// drop-bomb.  Deliberately loud in source — every use is greppable.
    pub fn forget(mut self) {
        if self.req.take().is_some() {
            async_done(self.thread);
        }
    }
}

impl<C: Comm> Drop for PendingSend<'_, C> {
    fn drop(&mut self) {
        if self.req.is_some() && !std::thread::panicking() {
            panic!(
                "PendingSend dropped without wait(): every issued request must reach \
                 exactly one completion (linear request discipline)"
            );
        }
    }
}

/// An in-flight typed receive holding `&mut` on its destination buffer.
#[must_use = "a pending receive must be completed with wait(); dropping it abandons the operation"]
pub struct PendingRecv<'a, C: Comm, T> {
    comm: &'a C,
    thread: Option<&'a MotorThread>,
    req: Option<C::Request>,
    buf_len: usize,
    _buf: PhantomData<&'a mut [T]>,
}

impl<'a, C: Comm, T> PendingRecv<'a, C, T> {
    pub(crate) fn new(
        comm: &'a C,
        thread: Option<&'a MotorThread>,
        req: C::Request,
        buf_len: usize,
    ) -> Self {
        async_issue(thread);
        PendingRecv {
            comm,
            thread,
            req: Some(req),
            buf_len,
            _buf: PhantomData,
        }
    }

    fn check(&self, st: Status) -> Result<usize> {
        if st.truncated {
            return Err(Error::Truncated {
                message: st.count,
                buffer: self.buf_len * std::mem::size_of::<T>(),
            });
        }
        Ok(st.count / std::mem::size_of::<T>().max(1))
    }

    /// Block until the message arrives; returns the number of **elements**
    /// received (count/datatype bookkeeping stays inside the API).
    pub fn wait(mut self) -> Result<usize> {
        let req = self.req.take().expect("pending receive already completed");
        let _fc = self.thread.map(Fcall::enter);
        let res = {
            let _phase = self
                .thread
                .map(|t| t.vm().metrics().phase_scope(TimeBucket::CommWait));
            self.comm.wait(&req)
        };
        async_done(self.thread);
        self.check(res?)
    }

    /// Poll for completion; `Some(elements)` once the message has landed.
    pub fn test(&mut self) -> Result<Option<usize>> {
        let _phase = self
            .thread
            .map(|t| t.vm().metrics().phase_scope(TimeBucket::Progress));
        match &self.req {
            None => Err(Error::Decode(
                "pending receive polled after completion".into(),
            )),
            Some(req) => match self.comm.test(req)? {
                None => Ok(None),
                Some(st) => {
                    self.req = None;
                    async_done(self.thread);
                    self.check(st).map(Some)
                }
            },
        }
    }

    /// Explicitly abandon the receive (see [`PendingSend::forget`]).
    pub fn forget(mut self) {
        if self.req.take().is_some() {
            async_done(self.thread);
        }
    }
}

impl<C: Comm, T> Drop for PendingRecv<'_, C, T> {
    fn drop(&mut self) {
        if self.req.is_some() && !std::thread::panicking() {
            panic!(
                "PendingRecv dropped without wait(): every issued request must reach \
                 exactly one completion (linear request discipline)"
            );
        }
    }
}
