//! Compile-time split-representation wire codec.
//!
//! This module speaks **exactly** the representation produced by the
//! reflective managed serializer (`motor-core::serial`, paper §7.5):
//!
//! ```text
//! [u32 type_count][type entries...][u32 record_count][records...]
//! ```
//!
//! but where the managed path walks class metadata per record at run time,
//! here `#[derive(Transportable)]` bakes the traversal into straight-line
//! `write_fields`/`read_fields` bodies.  The derive monomorphizes down to
//! the same byte sequence the reflective path emits — asserted by the
//! byte-identity tests in `tests/derive_roundtrip.rs` — so a native rank
//! using this codec interoperates with managed ranks using `Oomp`.
//!
//! Two deliberate semantic restrictions relative to the managed graph
//! walker, both consequences of modelling objects as *owned* Rust values:
//!
//! * **Trees, not DAGs.** Owned `Box`/`Vec` fields cannot alias, so the
//!   encoder never consults a visited structure; each reachable value
//!   becomes its own record, exactly as the managed serializer does for an
//!   unaliased graph.  Decoding a representation in which records *are*
//!   shared materializes one copy per referencing field; cycles are
//!   detected and rejected.
//! * **No managed handles.** The codec reads and writes plain byte
//!   buffers; pinning and GC interactions stay in `motor-core`.

use crate::error::{Error, Result};
use crate::Transportable;

pub(crate) const TT_CLASS: u8 = 0;
pub(crate) const TT_PRIM_ARRAY: u8 = 1;
pub(crate) const TT_OBJ_ARRAY: u8 = 2;
pub(crate) const TT_MD_ARRAY: u8 = 3;
pub(crate) const NULL_REF: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// primitives
// ---------------------------------------------------------------------------

/// A Rust primitive with a managed `ElemKind` wire identity.
///
/// `TAG` values mirror `motor_runtime::ElemKind::tag` (`char` — managed
/// UTF-16 code unit — has no safe Rust mirror and is intentionally absent).
pub trait WirePrim: Copy + Default + PartialEq + std::fmt::Debug + 'static {
    /// The managed `ElemKind` tag.
    const TAG: u8;
    /// Wire size in bytes.
    const SIZE: usize;
    /// Append the little-endian representation.
    fn write_le(self, out: &mut Vec<u8>);
    /// Read from exactly `SIZE` little-endian bytes.
    fn read_le(b: &[u8]) -> Self;
}

macro_rules! wire_prim {
    ($($t:ty => $tag:expr),* $(,)?) => {$(
        impl WirePrim for $t {
            const TAG: u8 = $tag;
            const SIZE: usize = std::mem::size_of::<$t>();
            fn write_le(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn read_le(b: &[u8]) -> Self {
                <$t>::from_le_bytes(b.try_into().expect("sized read"))
            }
        }
    )*};
}

wire_prim! {
    u8 => 1, i8 => 2, i16 => 3, u16 => 4, i32 => 6,
    u32 => 7, i64 => 8, u64 => 9, f32 => 10, f64 => 11,
}

impl WirePrim for bool {
    const TAG: u8 = 0;
    const SIZE: usize = 1;
    fn write_le(self, out: &mut Vec<u8>) {
        out.push(self as u8);
    }
    fn read_le(b: &[u8]) -> Self {
        b[0] != 0
    }
}

/// Wire size of an `ElemKind` tag (mirrors `ElemKind::size`).
fn tag_size(tag: u8) -> Result<usize> {
    Ok(match tag {
        0..=2 => 1,      // bool, u8, i8
        3..=5 => 2,      // i16, u16, char
        6 | 7 | 10 => 4, // i32, u32, f32
        8 | 9 | 11 => 8, // i64, u64, f64
        t => return Err(Error::Decode(format!("unknown element tag {t}"))),
    })
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

// -- type-entry builders used by derive-generated `type_entry` bodies ------

/// Begin a class type entry: kind byte, name, field count.
pub fn class_entry_header(out: &mut Vec<u8>, name: &str, nfields: u16) {
    out.push(TT_CLASS);
    put_str(out, name);
    put_u16(out, nfields);
}

/// Append a primitive field declaration.
pub fn prim_field<P: WirePrim>(out: &mut Vec<u8>, name: &str) {
    out.push(0);
    out.push(P::TAG);
    put_str(out, name);
}

/// Append a reference field declaration with its Transportable bit.
pub fn ref_field(out: &mut Vec<u8>, name: &str, transportable: bool) {
    out.push(1);
    out.push(transportable as u8);
    put_str(out, name);
}

// ---------------------------------------------------------------------------
// encoding
// ---------------------------------------------------------------------------

/// Identity of a type entry for interning.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TypeKey {
    /// A class, identified by its managed type name.
    Class(&'static str),
    /// A primitive array, identified by its element tag.
    PrimArray(u8),
}

/// One serializable value in the object graph.  Implemented by
/// `#[derive(Transportable)]` for structs and blanket-implemented for
/// `Vec<P>` (primitive array records).  Object-safe: the [`Encoder`] holds
/// the discovery worklist as `&dyn Node`.
pub trait Node {
    /// Stable address of this value for the duration of encoding (used
    /// only for diagnostics; owned values cannot alias).
    fn addr(&self) -> usize;
    /// Interning key for this value's type entry.
    fn type_key(&self) -> TypeKey;
    /// Append the complete type-table entry.
    fn type_entry(&self, out: &mut Vec<u8>);
    /// Append this value's record payload (after the driver has written
    /// the type index), discovering referenced nodes into `enc`.
    fn write_record<'a>(&'a self, enc: &mut Encoder<'a>);
}

impl<P: WirePrim> Node for Vec<P> {
    fn addr(&self) -> usize {
        self.as_ptr() as usize
    }
    fn type_key(&self) -> TypeKey {
        TypeKey::PrimArray(P::TAG)
    }
    fn type_entry(&self, out: &mut Vec<u8>) {
        out.push(TT_PRIM_ARRAY);
        out.push(P::TAG);
    }
    fn write_record<'a>(&'a self, enc: &mut Encoder<'a>) {
        enc.put_prim(self.len() as u32);
        for &v in self {
            enc.put_prim(v);
        }
    }
}

/// Streaming encoder for the split representation.
///
/// Mirrors `serial.rs::serialize_addrs`: breadth-first discovery order,
/// types interned at record-emission time, the synthetic split root (when
/// present) as record 0 with element indices offset by one.
pub struct Encoder<'a> {
    nodes: Vec<&'a dyn Node>,
    emitted: usize,
    index_offset: u32,
    type_keys: Vec<Option<TypeKey>>,
    type_entries: Vec<Vec<u8>>,
    obj_data: Vec<u8>,
    records: u32,
}

impl<'a> Encoder<'a> {
    fn new(index_offset: u32) -> Encoder<'a> {
        Encoder {
            nodes: Vec::new(),
            emitted: 0,
            index_offset,
            type_keys: Vec::new(),
            type_entries: Vec::new(),
            obj_data: Vec::new(),
            records: 0,
        }
    }

    /// Assign the next discovery index to `node` and queue it for emission.
    fn discover(&mut self, node: &'a dyn Node) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(node);
        idx
    }

    /// Intern a type entry by key, filling it with `fill` on first use.
    fn intern_with(&mut self, key: TypeKey, fill: impl FnOnce(&mut Vec<u8>)) -> u32 {
        for (i, k) in self.type_keys.iter().enumerate() {
            if *k == Some(key) {
                return i as u32;
            }
        }
        let idx = self.type_entries.len() as u32;
        let mut e = Vec::new();
        fill(&mut e);
        self.type_keys.push(Some(key));
        self.type_entries.push(e);
        idx
    }

    /// Emit queued records in discovery order (the list grows as record
    /// payloads discover further references — breadth-first, exactly like
    /// the managed emission loop).
    fn run(&mut self) {
        while self.emitted < self.nodes.len() {
            let node = self.nodes[self.emitted];
            self.emitted += 1;
            self.records += 1;
            let tidx = self.intern_with(node.type_key(), |e| node.type_entry(e));
            put_u32(&mut self.obj_data, tidx);
            node.write_record(self);
        }
    }

    fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.obj_data.len() + 64);
        put_u32(&mut out, self.type_entries.len() as u32);
        for e in &self.type_entries {
            out.extend_from_slice(e);
        }
        put_u32(&mut out, self.records);
        out.extend_from_slice(&self.obj_data);
        out
    }

    // -- field writers invoked by derive-generated `write_fields` ----------

    /// Write an inline primitive value.
    pub fn put_prim<P: WirePrim>(&mut self, v: P) {
        v.write_le(&mut self.obj_data);
    }

    /// Write a reference to a primitive array, queuing its record.
    pub fn put_prim_array<P: WirePrim>(&mut self, v: &'a Vec<P>) {
        let idx = self.discover(v);
        put_u32(&mut self.obj_data, idx + self.index_offset);
    }

    /// Write a nullable reference to a primitive array.
    pub fn put_opt_prim_array<P: WirePrim>(&mut self, v: &'a Option<Vec<P>>) {
        match v {
            None => put_u32(&mut self.obj_data, NULL_REF),
            Some(a) => self.put_prim_array(a),
        }
    }

    /// Write a nullable reference to a nested transportable object.
    pub fn put_class_ref<T: Node>(&mut self, v: &'a Option<Box<T>>) {
        match v {
            None => put_u32(&mut self.obj_data, NULL_REF),
            Some(b) => {
                let idx = self.discover(&**b);
                put_u32(&mut self.obj_data, idx + self.index_offset);
            }
        }
    }

    /// Write the always-null reference of a non-transportable field
    /// ("references are replaced with null", §4.2.2).
    pub fn put_null_ref(&mut self) {
        put_u32(&mut self.obj_data, NULL_REF);
    }
}

/// Encode one transportable object graph — the byte-for-byte equivalent of
/// `Serializer::serialize` over the mirrored managed class.
pub fn encode<T: Transportable>(root: &T) -> Vec<u8> {
    let mut enc = Encoder::new(0);
    enc.discover(root);
    enc.run();
    enc.finish()
}

/// Encode a slice of transportable objects as a *split representation*:
/// a synthetic object-array root (record 0) over the elements, exactly as
/// `Serializer::serialize_array_range` emits one scatter/gather part.
pub fn encode_slice<T: Transportable>(items: &[T]) -> Vec<u8> {
    let mut enc = Encoder::new(1);
    // The element class is interned (and thus keyed) first; the synthetic
    // object-array entry is appended un-keyed, mirroring the managed path.
    let elem_idx = enc.intern_with(TypeKey::Class(T::TYPE_NAME), |e| {
        <T as Transportable>::type_entry(e)
    });
    let tidx = enc.type_entries.len() as u32;
    let mut e = Vec::new();
    e.push(TT_OBJ_ARRAY);
    put_u32(&mut e, elem_idx);
    enc.type_keys.push(None);
    enc.type_entries.push(e);
    enc.records += 1;
    put_u32(&mut enc.obj_data, tidx);
    put_u32(&mut enc.obj_data, items.len() as u32);
    for it in items {
        let idx = enc.discover(it);
        put_u32(&mut enc.obj_data, idx + 1);
    }
    enc.run();
    enc.finish()
}

/// Encode a primitive slice as a split-representation part (the
/// `RangeRoot::Prims` form used when scattering primitive arrays).
pub fn encode_prim_slice<P: WirePrim>(data: &[P]) -> Vec<u8> {
    let mut enc = Encoder::new(1);
    enc.type_keys.push(None);
    enc.type_entries.push(vec![TT_PRIM_ARRAY, P::TAG]);
    enc.records += 1;
    put_u32(&mut enc.obj_data, 0);
    put_u32(&mut enc.obj_data, data.len() as u32);
    for &v in data {
        v.write_le(&mut enc.obj_data);
    }
    enc.finish()
}

// ---------------------------------------------------------------------------
// decoding
// ---------------------------------------------------------------------------

struct Reader<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.b.len() {
            return Err(Error::Decode(format!(
                "truncated representation at byte {} (+{n})",
                self.pos
            )));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn str(&mut self) -> Result<&'a str> {
        let n = self.u16()? as usize;
        std::str::from_utf8(self.take(n)?).map_err(|_| Error::Decode("non-UTF8 type name".into()))
    }
}

#[derive(Debug)]
struct WField<'a> {
    name: &'a str,
    /// `Some(tag)` for a primitive field, `None` for a reference.
    prim: Option<u8>,
}

#[derive(Debug)]
enum WType<'a> {
    Class {
        name: &'a str,
        fields: Vec<WField<'a>>,
    },
    PrimArray(u8),
    ObjArray,
    MdArray,
}

#[derive(Debug)]
enum WVal<'a> {
    Prim(&'a [u8]),
    Ref(u32),
}

#[derive(Debug)]
enum WRecord<'a> {
    Class { t: u32, vals: Vec<WVal<'a>> },
    PrimArray { elem: u8, data: &'a [u8] },
    ObjArray { elems: Vec<u32> },
}

/// A parsed representation: type table plus records, still borrowing the
/// incoming byte buffer (payloads are zero-copy slices).
pub struct Doc<'a> {
    types: Vec<WType<'a>>,
    records: Vec<WRecord<'a>>,
}

impl<'a> Doc<'a> {
    /// Parse the three-section representation.
    pub fn parse(bytes: &'a [u8]) -> Result<Doc<'a>> {
        let mut r = Reader { b: bytes, pos: 0 };
        let ntypes = r.u32()? as usize;
        let mut types = Vec::with_capacity(ntypes);
        for _ in 0..ntypes {
            types.push(match r.u8()? {
                TT_CLASS => {
                    let name = r.str()?;
                    let nfields = r.u16()? as usize;
                    let mut fields = Vec::with_capacity(nfields);
                    for _ in 0..nfields {
                        let kind = r.u8()?;
                        let second = r.u8()?;
                        let name = r.str()?;
                        fields.push(WField {
                            name,
                            prim: if kind == 0 { Some(second) } else { None },
                        });
                    }
                    WType::Class { name, fields }
                }
                TT_PRIM_ARRAY => WType::PrimArray(r.u8()?),
                TT_OBJ_ARRAY => {
                    let _elem = r.u32()?;
                    WType::ObjArray
                }
                TT_MD_ARRAY => {
                    let _elem = r.u8()?;
                    let _rank = r.u8()?;
                    WType::MdArray
                }
                t => return Err(Error::Decode(format!("unknown type-entry kind {t}"))),
            });
        }
        let nrecords = r.u32()? as usize;
        let mut records = Vec::with_capacity(nrecords);
        for _ in 0..nrecords {
            let t = r.u32()?;
            let ty = types
                .get(t as usize)
                .ok_or_else(|| Error::Decode(format!("record type index {t} out of range")))?;
            records.push(match ty {
                WType::Class { fields, .. } => {
                    let mut vals = Vec::with_capacity(fields.len());
                    for f in fields {
                        vals.push(match f.prim {
                            Some(tag) => WVal::Prim(r.take(tag_size(tag)?)?),
                            None => WVal::Ref(r.u32()?),
                        });
                    }
                    WRecord::Class { t, vals }
                }
                WType::PrimArray(tag) => {
                    let len = r.u32()? as usize;
                    WRecord::PrimArray {
                        elem: *tag,
                        data: r.take(len * tag_size(*tag)?)?,
                    }
                }
                WType::ObjArray => {
                    let len = r.u32()? as usize;
                    let mut elems = Vec::with_capacity(len);
                    for _ in 0..len {
                        elems.push(r.u32()?);
                    }
                    WRecord::ObjArray { elems }
                }
                WType::MdArray => {
                    // Md arrays are not representable as derive fields.
                    return Err(Error::Decode(
                        "multi-dimensional array records are not supported by the typed codec"
                            .into(),
                    ));
                }
            });
        }
        Ok(Doc { types, records })
    }
}

/// Check that a wire class entry structurally matches `T`'s layout: same
/// name, same field names in order, same primitive kinds.  The
/// Transportable bit is deliberately ignored, matching the managed
/// deserializer's layout verification.
fn verify_layout<T: Transportable>(ty: &WType<'_>) -> Result<()> {
    let WType::Class { name, fields } = ty else {
        return Err(Error::Decode(format!(
            "expected a class record for `{}`",
            T::TYPE_NAME
        )));
    };
    if *name != T::TYPE_NAME {
        return Err(Error::Decode(format!(
            "type mismatch: received `{name}`, expected `{}`",
            T::TYPE_NAME
        )));
    }
    let mut local = Vec::new();
    <T as Transportable>::type_entry(&mut local);
    let parsed = Doc::parse_entry(&local)?;
    let WType::Class {
        fields: lfields, ..
    } = &parsed
    else {
        unreachable!("derive emits class entries");
    };
    if fields.len() != lfields.len() {
        return Err(Error::Decode(format!(
            "layout mismatch for `{name}`: {} wire fields vs {} local",
            fields.len(),
            lfields.len()
        )));
    }
    for (wf, lf) in fields.iter().zip(lfields) {
        if wf.name != lf.name || wf.prim != lf.prim {
            return Err(Error::Decode(format!(
                "layout mismatch for `{name}` field `{}`",
                wf.name
            )));
        }
    }
    Ok(())
}

impl<'a> Doc<'a> {
    /// Parse a single type entry (used to introspect locally generated
    /// entries during layout verification).
    fn parse_entry(bytes: &'a [u8]) -> Result<WType<'a>> {
        let mut r = Reader { b: bytes, pos: 0 };
        match r.u8()? {
            TT_CLASS => {
                let name = r.str()?;
                let nfields = r.u16()? as usize;
                let mut fields = Vec::with_capacity(nfields);
                for _ in 0..nfields {
                    let kind = r.u8()?;
                    let second = r.u8()?;
                    let name = r.str()?;
                    fields.push(WField {
                        name,
                        prim: if kind == 0 { Some(second) } else { None },
                    });
                }
                Ok(WType::Class { name, fields })
            }
            t => Err(Error::Decode(format!("unexpected local entry kind {t}"))),
        }
    }
}

/// Reads one class record's field values in declaration order; handed to
/// derive-generated `read_fields` bodies.
pub struct FieldReader<'d, 'a> {
    doc: &'d Doc<'a>,
    vals: std::slice::Iter<'d, WVal<'a>>,
    in_progress: &'d mut [bool],
}

impl<'d, 'a> FieldReader<'d, 'a> {
    fn next_val(&mut self) -> Result<&'d WVal<'a>> {
        self.vals
            .next()
            .ok_or_else(|| Error::Decode("record has fewer fields than the local type".into()))
    }

    /// Read an inline primitive field.
    pub fn prim<P: WirePrim>(&mut self) -> Result<P> {
        match self.next_val()? {
            WVal::Prim(b) if b.len() == P::SIZE => Ok(P::read_le(b)),
            WVal::Prim(b) => Err(Error::Decode(format!(
                "primitive width mismatch: {} wire bytes vs {} local",
                b.len(),
                P::SIZE
            ))),
            WVal::Ref(_) => Err(Error::Decode("expected primitive, found reference".into())),
        }
    }

    fn reference(&mut self) -> Result<u32> {
        match self.next_val()? {
            WVal::Ref(i) => Ok(*i),
            WVal::Prim(_) => Err(Error::Decode("expected reference, found primitive".into())),
        }
    }

    fn prim_array_at<P: WirePrim>(&self, idx: u32) -> Result<Vec<P>> {
        match self.doc.records.get(idx as usize) {
            Some(WRecord::PrimArray { elem, data }) if *elem == P::TAG => {
                Ok(data.chunks_exact(P::SIZE).map(P::read_le).collect())
            }
            Some(WRecord::PrimArray { elem, .. }) => Err(Error::Decode(format!(
                "primitive array tag mismatch: wire {elem} vs local {}",
                P::TAG
            ))),
            Some(_) => Err(Error::Decode(
                "reference does not lead to a primitive array".into(),
            )),
            None => Err(Error::Decode(format!("dangling reference {idx}"))),
        }
    }

    /// Read a `Vec<P>` field; a NULL reference (sender had a null or
    /// non-transportable array) decodes as an empty vector.
    pub fn prim_array<P: WirePrim>(&mut self) -> Result<Vec<P>> {
        match self.reference()? {
            NULL_REF => Ok(Vec::new()),
            idx => self.prim_array_at(idx),
        }
    }

    /// Read an `Option<Vec<P>>` field; NULL decodes as `None`.
    pub fn opt_prim_array<P: WirePrim>(&mut self) -> Result<Option<Vec<P>>> {
        match self.reference()? {
            NULL_REF => Ok(None),
            idx => Ok(Some(self.prim_array_at(idx)?)),
        }
    }

    /// Read an `Option<Box<T>>` field, recursively decoding the nested
    /// class record.
    pub fn class_ref<T: Transportable>(&mut self) -> Result<Option<Box<T>>> {
        match self.reference()? {
            NULL_REF => Ok(None),
            idx => Ok(Some(Box::new(read_class::<T>(
                self.doc,
                idx,
                self.in_progress,
            )?))),
        }
    }

    /// Consume a reference field the local type does not transport; the
    /// wire value (NULL or not) is discarded and the field defaults.
    pub fn null_ref<D: Default>(&mut self) -> Result<D> {
        self.reference()?;
        Ok(D::default())
    }
}

fn read_class<T: Transportable>(doc: &Doc<'_>, idx: u32, in_progress: &mut [bool]) -> Result<T> {
    let rec = doc
        .records
        .get(idx as usize)
        .ok_or_else(|| Error::Decode(format!("dangling reference {idx}")))?;
    let WRecord::Class { t, vals } = rec else {
        return Err(Error::Decode(format!(
            "record {idx} is not a class record (expected `{}`)",
            T::TYPE_NAME
        )));
    };
    if std::mem::replace(&mut in_progress[idx as usize], true) {
        return Err(Error::Decode(format!(
            "cyclic object graph at record {idx}: owned Rust values cannot represent cycles"
        )));
    }
    verify_layout::<T>(&doc.types[*t as usize])?;
    let mut r = FieldReader {
        doc,
        vals: vals.iter(),
        in_progress,
    };
    let v = T::read_fields(&mut r)?;
    in_progress[idx as usize] = false;
    Ok(v)
}

/// Decode one object graph rooted at record 0 — the inverse of [`encode`]
/// and of the managed `Serializer::serialize`.
pub fn decode<T: Transportable>(bytes: &[u8]) -> Result<T> {
    let doc = Doc::parse(bytes)?;
    if doc.records.is_empty() {
        return Err(Error::Decode("empty representation".into()));
    }
    let mut in_progress = vec![false; doc.records.len()];
    read_class::<T>(&doc, 0, &mut in_progress)
}

/// Decode a split representation (synthetic object-array root) into a
/// vector — the inverse of [`encode_slice`].
pub fn decode_vec<T: Transportable>(bytes: &[u8]) -> Result<Vec<T>> {
    let doc = Doc::parse(bytes)?;
    let Some(WRecord::ObjArray { elems }) = doc.records.first() else {
        return Err(Error::Decode("expected an object-array root record".into()));
    };
    let mut out = Vec::with_capacity(elems.len());
    let mut in_progress = vec![false; doc.records.len()];
    for &e in elems {
        if e == NULL_REF {
            return Err(Error::Decode(
                "null element in object array cannot decode into a by-value Vec".into(),
            ));
        }
        out.push(read_class::<T>(&doc, e, &mut in_progress)?);
    }
    Ok(out)
}

/// Decode a primitive-array split part — the inverse of
/// [`encode_prim_slice`].
pub fn decode_prim_vec<P: WirePrim>(bytes: &[u8]) -> Result<Vec<P>> {
    let doc = Doc::parse(bytes)?;
    match doc.records.first() {
        Some(WRecord::PrimArray { elem, data }) if *elem == P::TAG => {
            Ok(data.chunks_exact(P::SIZE).map(P::read_le).collect())
        }
        Some(WRecord::PrimArray { elem, .. }) => Err(Error::Decode(format!(
            "primitive array tag mismatch: wire {elem} vs local {}",
            P::TAG
        ))),
        _ => Err(Error::Decode(
            "expected a primitive-array root record".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // A hand-written Transportable implementation (what the derive
    // generates), so the codec is testable without the proc macro.
    #[derive(Debug, Default, PartialEq)]
    struct Pair {
        tag: i32,
        data: Vec<f64>,
        next: Option<Box<Pair>>,
    }

    impl Transportable for Pair {
        const TYPE_NAME: &'static str = "Pair";
        fn type_entry(out: &mut Vec<u8>) {
            class_entry_header(out, "Pair", 3);
            prim_field::<i32>(out, "tag");
            ref_field(out, "data", true);
            ref_field(out, "next", true);
        }
        fn write_fields<'a>(&'a self, enc: &mut Encoder<'a>) {
            enc.put_prim(self.tag);
            enc.put_prim_array(&self.data);
            enc.put_class_ref(&self.next);
        }
        fn read_fields(r: &mut FieldReader<'_, '_>) -> Result<Self> {
            Ok(Pair {
                tag: r.prim()?,
                data: r.prim_array()?,
                next: r.class_ref()?,
            })
        }
    }

    impl Node for Pair {
        fn addr(&self) -> usize {
            self as *const Pair as usize
        }
        fn type_key(&self) -> TypeKey {
            TypeKey::Class("Pair")
        }
        fn type_entry(&self, out: &mut Vec<u8>) {
            <Pair as Transportable>::type_entry(out)
        }
        fn write_record<'a>(&'a self, enc: &mut Encoder<'a>) {
            <Pair as Transportable>::write_fields(self, enc)
        }
    }

    fn chain(depth: usize) -> Pair {
        let mut p = Pair {
            tag: depth as i32,
            data: vec![depth as f64; 3],
            next: None,
        };
        for d in (0..depth).rev() {
            p = Pair {
                tag: d as i32,
                data: vec![d as f64; 3],
                next: Some(Box::new(p)),
            };
        }
        p
    }

    #[test]
    fn roundtrip_tree() {
        let root = chain(4);
        let bytes = encode(&root);
        let back: Pair = decode(&bytes).unwrap();
        assert_eq!(back, root);
    }

    #[test]
    fn roundtrip_slice_split_representation() {
        let items: Vec<Pair> = (0..5).map(chain).collect();
        let bytes = encode_slice(&items);
        let back: Vec<Pair> = decode_vec(&bytes).unwrap();
        assert_eq!(back, items);
    }

    #[test]
    fn roundtrip_prim_split_part() {
        let data: Vec<i64> = (0..17).collect();
        let bytes = encode_prim_slice(&data);
        assert_eq!(decode_prim_vec::<i64>(&bytes).unwrap(), data);
        assert!(decode_prim_vec::<i32>(&bytes).is_err());
    }

    #[test]
    fn layout_mismatch_is_rejected() {
        #[derive(Debug, Default)]
        struct Wrong {
            #[allow(dead_code)]
            tag: i64, // wire has i32
        }
        impl Transportable for Wrong {
            const TYPE_NAME: &'static str = "Pair";
            fn type_entry(out: &mut Vec<u8>) {
                class_entry_header(out, "Pair", 1);
                prim_field::<i64>(out, "tag");
            }
            fn write_fields<'a>(&'a self, _enc: &mut Encoder<'a>) {}
            fn read_fields(r: &mut FieldReader<'_, '_>) -> Result<Self> {
                Ok(Wrong { tag: r.prim()? })
            }
        }
        impl Node for Wrong {
            fn addr(&self) -> usize {
                self as *const Wrong as usize
            }
            fn type_key(&self) -> TypeKey {
                TypeKey::Class("Pair")
            }
            fn type_entry(&self, out: &mut Vec<u8>) {
                <Wrong as Transportable>::type_entry(out)
            }
            fn write_record<'a>(&'a self, enc: &mut Encoder<'a>) {
                <Wrong as Transportable>::write_fields(self, enc)
            }
        }
        let bytes = encode(&chain(1));
        assert!(matches!(decode::<Wrong>(&bytes), Err(Error::Decode(_))));
    }

    #[test]
    fn truncated_bytes_are_rejected() {
        let bytes = encode(&chain(2));
        for cut in [0, 3, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode::<Pair>(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
