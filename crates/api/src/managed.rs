//! Typed managed-array operations for managed-bound communicators.
//!
//! [`ArrayBuf<T>`] is a typed, RAII view of a managed primitive array:
//! allocation picks the `ElemKind` from `T`, reads and writes are typed
//! and bounds-checked, and the handle is released on drop.  The message
//! operations delegate **directly** to [`Mp`] — each call monomorphizes
//! to exactly the handle-based call a hand-written `Mp` program makes,
//! which the `ablation_api` benchmark asserts (within 2%).

use crate::error::{Error, Result};
use crate::Communicator;
use motor_core::{Mp, MpRequest, MpStatus};
use motor_mpc::{ReduceOp, Source, Tag};
use motor_runtime::{Handle, MotorThread, Prim};
use std::marker::PhantomData;
use std::ops::RangeBounds;

/// A typed managed primitive array, released when dropped.
pub struct ArrayBuf<'t, T: Prim> {
    thread: &'t MotorThread,
    handle: Handle,
    len: usize,
    _elem: PhantomData<T>,
}

impl<'t, T: Prim> ArrayBuf<'t, T> {
    fn alloc(thread: &'t MotorThread, len: usize) -> ArrayBuf<'t, T> {
        let handle = thread.alloc_prim_array(T::KIND, len);
        ArrayBuf {
            thread,
            handle,
            len,
            _elem: PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying managed handle (for interop with handle-based
    /// APIs; the buffer stays owned by this `ArrayBuf`).
    pub fn handle(&self) -> Handle {
        self.handle
    }

    /// Copy `data` into the array starting at element `offset`.
    pub fn write(&self, offset: usize, data: &[T]) {
        self.thread.prim_write(self.handle, offset, data);
    }

    /// Copy elements starting at `offset` into `out`.
    pub fn read(&self, offset: usize, out: &mut [T]) {
        self.thread.prim_read(self.handle, offset, out);
    }

    /// Copy the whole array out.
    pub fn to_vec(&self) -> Vec<T>
    where
        T: Default,
    {
        let mut out = vec![T::default(); self.len];
        self.read(0, &mut out);
        out
    }
}

impl<T: Prim> Drop for ArrayBuf<'_, T> {
    fn drop(&mut self) {
        self.thread.release(self.handle);
    }
}

/// An in-flight managed-array operation (send or receive), wrapping the
/// pinned [`MpRequest`] with the same linear completion discipline as the
/// native pending types.
#[must_use = "a pending managed operation must be completed with wait(); dropping it abandons the request and its pin"]
pub struct PendingArray<'a, 't> {
    mp: &'a Mp<'t>,
    req: Option<MpRequest>,
}

impl PendingArray<'_, '_> {
    /// Block (with GC-cooperative polling) until the operation completes.
    pub fn wait(mut self) -> Result<MpStatus> {
        let mut req = self
            .req
            .take()
            .expect("pending operation already completed");
        Ok(self.mp.wait(&mut req)?)
    }

    /// Poll for completion without blocking.
    pub fn test(&mut self) -> Result<Option<MpStatus>> {
        match &mut self.req {
            None => Err(Error::Decode(
                "pending operation polled after completion".into(),
            )),
            Some(req) => {
                let st = self.mp.test(req)?;
                if st.is_some() {
                    self.req = None;
                }
                Ok(st)
            }
        }
    }

    /// Explicitly abandon the operation, defusing the drop-bomb.
    pub fn forget(mut self) {
        self.req = None;
    }
}

impl Drop for PendingArray<'_, '_> {
    fn drop(&mut self) {
        if self.req.is_some() && !std::thread::panicking() {
            panic!(
                "PendingArray dropped without wait(): every issued request must reach \
                 exactly one completion (linear request discipline)"
            );
        }
    }
}

impl<'t> Communicator<'t, motor_mpc::Comm> {
    fn mp_bound(&self) -> &Mp<'t> {
        self.mp()
            .expect("managed array operations require a Communicator built with bind()")
    }

    /// Allocate a zeroed typed managed array.
    pub fn alloc_array<T: Prim>(&self, len: usize) -> ArrayBuf<'t, T> {
        ArrayBuf::alloc(self.mp_bound().thread(), len)
    }

    /// Allocate a typed managed array initialized from `data`.
    pub fn array_from<T: Prim>(&self, data: &[T]) -> ArrayBuf<'t, T> {
        let buf = self.alloc_array(data.len());
        buf.write(0, data);
        buf
    }

    /// Blocking send of a whole managed array.
    pub fn send_array<T: Prim>(
        &self,
        buf: &ArrayBuf<'t, T>,
        dest: usize,
        tag: impl Into<Tag>,
    ) -> Result<()> {
        Ok(self.mp_bound().send(buf.handle(), dest, tag)?)
    }

    /// Blocking send of a sub-range (`comm.send_array_sub(&buf, a..b, ..)`).
    pub fn send_array_sub<T: Prim>(
        &self,
        buf: &ArrayBuf<'t, T>,
        range: impl RangeBounds<usize>,
        dest: usize,
        tag: impl Into<Tag>,
    ) -> Result<()> {
        Ok(self.mp_bound().send_sub(buf.handle(), range, dest, tag)?)
    }

    /// Blocking receive into a whole managed array.
    pub fn recv_array<T: Prim>(
        &self,
        buf: &ArrayBuf<'t, T>,
        src: impl Into<Source>,
        tag: impl Into<Tag>,
    ) -> Result<MpStatus> {
        Ok(self.mp_bound().recv(buf.handle(), src, tag)?)
    }

    /// Blocking receive into a sub-range.
    pub fn recv_array_sub<T: Prim>(
        &self,
        buf: &ArrayBuf<'t, T>,
        range: impl RangeBounds<usize>,
        src: impl Into<Source>,
        tag: impl Into<Tag>,
    ) -> Result<MpStatus> {
        Ok(self.mp_bound().recv_sub(buf.handle(), range, src, tag)?)
    }

    /// Non-blocking send; the request conditionally pins the array until
    /// completion (the Motor pinning policy).
    pub fn isend_array<'a, T: Prim>(
        &'a self,
        buf: &'a ArrayBuf<'t, T>,
        dest: usize,
        tag: impl Into<Tag>,
    ) -> Result<PendingArray<'a, 't>> {
        let mp = self.mp_bound();
        let req = mp.isend(buf.handle(), dest, tag)?;
        Ok(PendingArray { mp, req: Some(req) })
    }

    /// Non-blocking receive into `buf`.
    pub fn irecv_array<'a, T: Prim>(
        &'a self,
        buf: &'a ArrayBuf<'t, T>,
        src: impl Into<Source>,
        tag: impl Into<Tag>,
    ) -> Result<PendingArray<'a, 't>> {
        let mp = self.mp_bound();
        let req = mp.irecv(buf.handle(), src, tag)?;
        Ok(PendingArray { mp, req: Some(req) })
    }

    /// Broadcast a managed array from `root` (in place elsewhere).
    pub fn bcast_array<T: Prim>(&self, buf: &ArrayBuf<'t, T>, root: usize) -> Result<()> {
        Ok(self.mp_bound().bcast(buf.handle(), root)?)
    }

    /// Scatter equal chunks of root's `send` into every rank's `recv`.
    pub fn scatter_array<T: Prim>(
        &self,
        send: Option<&ArrayBuf<'t, T>>,
        recv: &ArrayBuf<'t, T>,
        root: usize,
    ) -> Result<()> {
        Ok(self
            .mp_bound()
            .scatter(send.map(|b| b.handle()), recv.handle(), root)?)
    }

    /// Gather every rank's `send` into root's `recv` in rank order.
    pub fn gather_array<T: Prim>(
        &self,
        send: &ArrayBuf<'t, T>,
        recv: Option<&ArrayBuf<'t, T>>,
        root: usize,
    ) -> Result<()> {
        Ok(self
            .mp_bound()
            .gather(send.handle(), recv.map(|b| b.handle()), root)?)
    }

    /// Element-wise reduction across ranks, result in every rank's `recv`.
    pub fn allreduce_array<T: Prim>(
        &self,
        send: &ArrayBuf<'t, T>,
        recv: &ArrayBuf<'t, T>,
        op: ReduceOp,
    ) -> Result<()> {
        Ok(self
            .mp_bound()
            .allreduce(send.handle(), recv.handle(), op)?)
    }
}
