//! # motor-api — the typed Rust front-end over the Motor message core
//!
//! The lower layers expose the paper's machinery faithfully: managed
//! handles, explicit pinning policies, reflective serialization.  This
//! crate is the surface application code is meant to use — typed, safe,
//! and with the bookkeeping the paper removed from MPI signatures
//! (counts, datatypes, raw buffers) removed here too:
//!
//! * [`Communicator`] — `send_slice`/`recv_into`/`isend_slice`/
//!   `irecv_slice`, collectives (`bcast_slice`, `scatter_slice`,
//!   `gather_slice`, `allgather_slice`, `allreduce_slice`) generic over
//!   element type; sub-ranges are plain Rust slicing.
//! * [`PendingSend`]/[`PendingRecv`] — in-flight operations carrying the
//!   verifier's linear request discipline into the type system:
//!   `#[must_use]`, buffer borrows held until completion, and a drop-bomb
//!   on abandonment.
//! * [`Transportable`] + `#[derive(Transportable)]` — compile-time
//!   split-representation serializers (paper §7.5) that are byte-for-byte
//!   identical to the reflective managed path, so native and managed
//!   ranks exchange object graphs freely.
//! * [`managed::ArrayBuf`] — typed RAII views of managed primitive
//!   arrays for ranks running inside a Motor VM, monomorphizing to the
//!   same handle-based `Mp` calls as hand-written code.
//!
//! ```
//! use motor_api::{Communicator, Transportable};
//! use motor_core::cluster::run_cluster_default;
//!
//! #[derive(Transportable, Debug, Default, PartialEq)]
//! struct Sample {
//!     id: i32,
//!     #[transportable]
//!     values: Vec<f64>,
//! }
//!
//! run_cluster_default(2, |_reg| {}, |proc| {
//!     let comm = Communicator::bind(proc.mp());
//!     if comm.rank() == 0 {
//!         let s = Sample { id: 7, values: vec![1.0, 2.0] };
//!         comm.send_obj(&s, 1, 0).unwrap();
//!     } else {
//!         let (s, _) = comm.recv_obj::<Sample>(0, 0).unwrap();
//!         assert_eq!(s.id, 7);
//!     }
//! })
//! .unwrap();
//! ```

pub mod comm;
pub mod error;
pub mod managed;
pub mod pending;
pub mod wire;

mod communicator;

pub use comm::Comm;
pub use communicator::Communicator;
pub use error::{Error, Result};
pub use managed::{ArrayBuf, PendingArray};
pub use pending::{PendingRecv, PendingSend};

// Re-export the wire identities applications name directly.
pub use motor_mpc::{ReduceOp, Source, Status, Tag};

/// The derive macro: `#[derive(Transportable)]` on a struct of
/// primitives, `Vec<prim>`, `Option<Vec<prim>>`, and
/// `Option<Box<Transportable>>` fields generates the compile-time
/// serializer.  Fields carry `#[transportable]` to be shipped by
/// reference (mirroring the managed Transportable attribute), or
/// `#[transportable(skip)]` to stay local.
pub use motor_api_derive::Transportable;

/// A type with a compile-time split-representation serializer, generated
/// by `#[derive(Transportable)]`.  The generated entry and field walkers
/// are byte-identical to the reflective managed serializer over the
/// mirrored class — asserted by the round-trip tests.
pub trait Transportable: Sized + wire::Node {
    /// The managed class name this type mirrors.
    const TYPE_NAME: &'static str;

    /// Append the complete type-table entry for this class.
    fn type_entry(out: &mut Vec<u8>);

    /// Append field payloads in declaration order, discovering referenced
    /// records into the encoder.
    fn write_fields<'a>(&'a self, enc: &mut wire::Encoder<'a>);

    /// Rebuild a value from one class record's fields.
    fn read_fields(r: &mut wire::FieldReader<'_, '_>) -> Result<Self>;
}
