//! The transport abstraction the typed front-end is generic over.
//!
//! [`Comm`] captures exactly the primitive surface the
//! [`Communicator`](crate::Communicator) needs: raw non-blocking
//! point-to-point windows, completion, probing, and byte-level
//! collectives.  `motor_mpc::Comm` is the production implementation;
//! tests substitute instrumented fakes to observe call shapes.

use crate::error::Result;
use motor_mpc::{DType, ReduceOp, Source, Status, Tag};

/// Minimal transport contract for the typed API.
pub trait Comm {
    /// Opaque in-flight operation handle.
    type Request;

    /// This rank within the communicator.
    fn rank(&self) -> usize;
    /// Number of ranks in the communicator.
    fn size(&self) -> usize;

    /// Begin a non-blocking send from a raw window.
    ///
    /// # Safety
    /// `(ptr, len)` must remain valid and stable until the returned
    /// request completes.
    unsafe fn isend_raw(
        &self,
        ptr: *const u8,
        len: usize,
        dest: usize,
        tag: Tag,
    ) -> Result<Self::Request>;

    /// Begin a non-blocking receive into a raw window.
    ///
    /// # Safety
    /// As [`Comm::isend_raw`], for the destination window.
    unsafe fn irecv_raw(
        &self,
        ptr: *mut u8,
        cap: usize,
        src: Source,
        tag: Tag,
    ) -> Result<Self::Request>;

    /// Block until `req` completes.
    fn wait(&self, req: &Self::Request) -> Result<Status>;
    /// Complete `req` if it is finished; never blocks.
    fn test(&self, req: &Self::Request) -> Result<Option<Status>>;
    /// Block until a matching message is available.
    fn probe(&self, src: Source, tag: Tag) -> Result<Status>;
    /// Check for a matching message; never blocks.
    fn iprobe(&self, src: Source, tag: Tag) -> Result<Option<Status>>;

    /// Synchronize all ranks.
    fn barrier(&self) -> Result<()>;
    /// Broadcast `buf` from `root` (in-place at non-roots).
    fn bcast_bytes(&self, buf: &mut [u8], root: usize) -> Result<()>;
    /// Scatter equal chunks of `send` (significant at root) into `recv`.
    fn scatter_bytes(&self, send: Option<&[u8]>, recv: &mut [u8], root: usize) -> Result<()>;
    /// Gather each rank's `send` into root's `recv` in rank order.
    fn gather_bytes(&self, send: &[u8], recv: Option<&mut [u8]>, root: usize) -> Result<()>;
    /// Gather each rank's `send` into every rank's `recv`.
    fn allgather_bytes(&self, send: &[u8], recv: &mut [u8]) -> Result<()>;
    /// Element-wise reduction visible at every rank.
    fn allreduce_bytes(
        &self,
        send: &[u8],
        recv: &mut [u8],
        dtype: DType,
        op: ReduceOp,
    ) -> Result<()>;
    /// Blocking standard-mode send of a byte buffer.
    fn send_bytes(&self, buf: &[u8], dest: usize, tag: Tag) -> Result<()>;
    /// Blocking receive of a byte buffer; errors on truncation.
    fn recv_bytes(&self, buf: &mut [u8], src: Source, tag: Tag) -> Result<Status>;
}

impl Comm for motor_mpc::Comm {
    type Request = motor_mpc::Request;

    fn rank(&self) -> usize {
        motor_mpc::Comm::rank(self)
    }
    fn size(&self) -> usize {
        motor_mpc::Comm::size(self)
    }
    unsafe fn isend_raw(
        &self,
        ptr: *const u8,
        len: usize,
        dest: usize,
        tag: Tag,
    ) -> Result<Self::Request> {
        // SAFETY: forwarded caller contract.
        Ok(unsafe { self.isend_ptr(ptr, len, dest, tag)? })
    }
    unsafe fn irecv_raw(
        &self,
        ptr: *mut u8,
        cap: usize,
        src: Source,
        tag: Tag,
    ) -> Result<Self::Request> {
        // SAFETY: forwarded caller contract.
        Ok(unsafe { self.irecv_ptr(ptr, cap, src, tag)? })
    }
    fn wait(&self, req: &Self::Request) -> Result<Status> {
        Ok(motor_mpc::Comm::wait(self, req)?)
    }
    fn test(&self, req: &Self::Request) -> Result<Option<Status>> {
        Ok(motor_mpc::Comm::test(self, req)?)
    }
    fn probe(&self, src: Source, tag: Tag) -> Result<Status> {
        Ok(motor_mpc::Comm::probe(self, src, tag)?)
    }
    fn iprobe(&self, src: Source, tag: Tag) -> Result<Option<Status>> {
        Ok(motor_mpc::Comm::iprobe(self, src, tag)?)
    }
    fn barrier(&self) -> Result<()> {
        Ok(motor_mpc::Comm::barrier(self)?)
    }
    fn bcast_bytes(&self, buf: &mut [u8], root: usize) -> Result<()> {
        Ok(motor_mpc::Comm::bcast_bytes(self, buf, root)?)
    }
    fn scatter_bytes(&self, send: Option<&[u8]>, recv: &mut [u8], root: usize) -> Result<()> {
        Ok(motor_mpc::Comm::scatter_bytes(self, send, recv, root)?)
    }
    fn gather_bytes(&self, send: &[u8], recv: Option<&mut [u8]>, root: usize) -> Result<()> {
        Ok(motor_mpc::Comm::gather_bytes(self, send, recv, root)?)
    }
    fn allgather_bytes(&self, send: &[u8], recv: &mut [u8]) -> Result<()> {
        Ok(motor_mpc::Comm::allgather_bytes(self, send, recv)?)
    }
    fn allreduce_bytes(
        &self,
        send: &[u8],
        recv: &mut [u8],
        dtype: DType,
        op: ReduceOp,
    ) -> Result<()> {
        Ok(motor_mpc::Comm::allreduce_bytes(
            self, send, recv, dtype, op,
        )?)
    }
    fn send_bytes(&self, buf: &[u8], dest: usize, tag: Tag) -> Result<()> {
        Ok(motor_mpc::Comm::send_bytes(self, buf, dest, tag)?)
    }
    fn recv_bytes(&self, buf: &mut [u8], src: Source, tag: Tag) -> Result<Status> {
        Ok(motor_mpc::Comm::recv_bytes(self, buf, src, tag)?)
    }
}
