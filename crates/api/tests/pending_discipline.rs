//! The linear request discipline on the typed pending operations,
//! observed through a fake transport: every issued request must reach
//! exactly one completion — `wait()`, a successful `test()`, or an
//! explicit `forget()` — and abandoning one is a panic, mirroring the
//! static verifier's rule for managed IL.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};

use motor_api::comm::Comm;
use motor_api::{Communicator, Error, Result, Source, Status, Tag};
use motor_mpc::{DType, ReduceOp};

/// A transport that completes everything instantly and counts waits.
#[derive(Default)]
struct FakeComm {
    waited: Cell<usize>,
    /// When set, receives complete truncated with this many message bytes.
    truncate_to: Cell<Option<usize>>,
}

struct FakeReq {
    bytes: usize,
}

impl FakeComm {
    fn status(&self, bytes: usize) -> Status {
        match self.truncate_to.get() {
            Some(msg) => Status {
                source: 1,
                tag: 0,
                count: msg,
                truncated: true,
            },
            None => Status {
                source: 1,
                tag: 0,
                count: bytes,
                truncated: false,
            },
        }
    }
}

impl Comm for FakeComm {
    type Request = FakeReq;

    fn rank(&self) -> usize {
        0
    }
    fn size(&self) -> usize {
        2
    }
    unsafe fn isend_raw(
        &self,
        _ptr: *const u8,
        len: usize,
        _dest: usize,
        _tag: Tag,
    ) -> Result<FakeReq> {
        Ok(FakeReq { bytes: len })
    }
    unsafe fn irecv_raw(
        &self,
        _ptr: *mut u8,
        cap: usize,
        _src: Source,
        _tag: Tag,
    ) -> Result<FakeReq> {
        Ok(FakeReq { bytes: cap })
    }
    fn wait(&self, req: &FakeReq) -> Result<Status> {
        self.waited.set(self.waited.get() + 1);
        Ok(self.status(req.bytes))
    }
    fn test(&self, req: &FakeReq) -> Result<Option<Status>> {
        Ok(Some(self.status(req.bytes)))
    }
    fn probe(&self, _src: Source, _tag: Tag) -> Result<Status> {
        unimplemented!("not exercised")
    }
    fn iprobe(&self, _src: Source, _tag: Tag) -> Result<Option<Status>> {
        Ok(None)
    }
    fn barrier(&self) -> Result<()> {
        Ok(())
    }
    fn bcast_bytes(&self, _buf: &mut [u8], _root: usize) -> Result<()> {
        Ok(())
    }
    fn scatter_bytes(&self, _send: Option<&[u8]>, _recv: &mut [u8], _root: usize) -> Result<()> {
        Ok(())
    }
    fn gather_bytes(&self, _send: &[u8], _recv: Option<&mut [u8]>, _root: usize) -> Result<()> {
        Ok(())
    }
    fn allgather_bytes(&self, _send: &[u8], _recv: &mut [u8]) -> Result<()> {
        Ok(())
    }
    fn allreduce_bytes(
        &self,
        _send: &[u8],
        _recv: &mut [u8],
        _dtype: DType,
        _op: ReduceOp,
    ) -> Result<()> {
        Ok(())
    }
    fn send_bytes(&self, _buf: &[u8], _dest: usize, _tag: Tag) -> Result<()> {
        Ok(())
    }
    fn recv_bytes(&self, buf: &mut [u8], _src: Source, _tag: Tag) -> Result<Status> {
        Ok(self.status(buf.len()))
    }
}

#[test]
fn wait_completes_send_and_recv() {
    let comm = Communicator::native(FakeComm::default());
    let data = [1i32, 2, 3, 4];
    let pending = comm.isend_slice(&data, 1, 0).unwrap();
    pending.wait().unwrap();
    assert_eq!(comm.comm().waited.get(), 1);

    let mut buf = [0i32; 4];
    let pending = comm.irecv_slice(&mut buf, 1, 0).unwrap();
    let n = pending.wait().unwrap();
    assert_eq!(n, 4, "wait reports received elements, not bytes");
    assert_eq!(comm.comm().waited.get(), 2);
}

#[test]
fn successful_test_defuses_the_bomb() {
    let comm = Communicator::native(FakeComm::default());
    let data = [7u8; 3];
    let mut pending = comm.isend_slice(&data, 1, 0).unwrap();
    assert!(
        pending.test().unwrap(),
        "fake transport completes instantly"
    );
    drop(pending); // completed: no panic

    let mut buf = [0u8; 3];
    let mut pending = comm.irecv_slice(&mut buf, 1, 0).unwrap();
    assert_eq!(pending.test().unwrap(), Some(3));
    drop(pending);
}

#[test]
fn forget_explicitly_abandons() {
    let comm = Communicator::native(FakeComm::default());
    let data = [0u8; 8];
    let pending = comm.isend_slice(&data, 1, 0).unwrap();
    pending.forget();
    assert_eq!(
        comm.comm().waited.get(),
        0,
        "forget never completes the request"
    );
}

#[test]
fn dropping_an_incomplete_send_panics() {
    let comm = Communicator::native(FakeComm::default());
    let data = [0i64; 2];
    let panic = catch_unwind(AssertUnwindSafe(|| {
        let pending = comm.isend_slice(&data, 1, 0).unwrap();
        drop(pending);
    }))
    .expect_err("abandoning a pending send must panic");
    let msg = panic
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("PendingSend dropped without wait()"),
        "unexpected panic message: {msg}"
    );
}

#[test]
fn dropping_an_incomplete_recv_panics() {
    let comm = Communicator::native(FakeComm::default());
    let mut buf = [0f64; 4];
    let panic = catch_unwind(AssertUnwindSafe(|| {
        let pending = comm.irecv_slice(&mut buf, 1, 0).unwrap();
        drop(pending);
    }))
    .expect_err("abandoning a pending receive must panic");
    let msg = panic
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("PendingRecv dropped without wait()"),
        "unexpected panic message: {msg}"
    );
}

#[test]
fn truncated_receive_surfaces_as_error() {
    let comm = Communicator::native(FakeComm::default());
    comm.comm().truncate_to.set(Some(64));
    let mut buf = [0u8; 16];
    let pending = comm.irecv_slice(&mut buf, 1, 0).unwrap();
    match pending.wait() {
        Err(Error::Truncated { message, buffer }) => {
            assert_eq!((message, buffer), (64, 16));
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
}
