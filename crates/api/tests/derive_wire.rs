//! Byte-identity of the derive-generated serializer against the
//! reflective managed path.
//!
//! The paper's §7.5 fast path (split representation) moves type discovery
//! out of the per-record loop; `#[derive(Transportable)]` moves it to
//! compile time.  These tests pin the contract that makes that safe:
//! **the derive emits exactly the bytes the managed serializer emits** for
//! a mirrored class — single roots, split representations, and sub-ranges
//! — and each side decodes the other's output.

use std::sync::Arc;

use motor_api::{wire, Transportable};
use motor_core::Serializer;
use motor_runtime::{ClassId, ElemKind, Handle, MotorThread, Vm, VmConfig};
use proptest::prelude::*;

/// Rust mirror of the managed `LinkedArray` class (paper Figure 5): a
/// transportable i32 array, a transportable `next`, a non-transportable
/// `next2`.
#[derive(Transportable, Debug, Default, PartialEq)]
struct LinkedArray {
    tag: i32,
    #[transportable]
    array: Option<Vec<i32>>,
    #[transportable]
    next: Option<Box<LinkedArray>>,
    next2: Option<Box<LinkedArray>>,
}

struct Fixture {
    vm: Arc<Vm>,
    node: ClassId,
}

fn fixture() -> Fixture {
    let vm = Vm::new(VmConfig::default());
    let node = {
        let mut reg = vm.registry_mut();
        let arr = reg.prim_array(ElemKind::I32);
        let next_id = ClassId(reg.len() as u32);
        let node = reg
            .define_class("LinkedArray")
            .prim("tag", ElemKind::I32)
            .transportable("array", arr)
            .transportable("next", next_id)
            .reference("next2", next_id)
            .build();
        assert_eq!(node, next_id);
        node
    };
    Fixture { vm, node }
}

/// One node of a chain spec: its tag and optional array payload.
type Spec = Vec<(i32, Option<Vec<i32>>)>;

fn build_rust(spec: &[(i32, Option<Vec<i32>>)]) -> Option<Box<LinkedArray>> {
    let mut head = None;
    for (tag, arr) in spec.iter().rev() {
        head = Some(Box::new(LinkedArray {
            tag: *tag,
            array: arr.clone(),
            next: head,
            next2: None,
        }));
    }
    head
}

fn build_managed(t: &MotorThread, f: &Fixture, spec: &[(i32, Option<Vec<i32>>)]) -> Handle {
    let (ftag, farr, fnext) = (
        t.field_index(f.node, "tag"),
        t.field_index(f.node, "array"),
        t.field_index(f.node, "next"),
    );
    let mut head = t.null_handle();
    for (tag, arr) in spec.iter().rev() {
        let node = t.alloc_instance(f.node);
        t.set_prim::<i32>(node, ftag, *tag);
        if let Some(data) = arr {
            let a = t.alloc_prim_array(ElemKind::I32, data.len());
            t.prim_write(a, 0, data);
            t.set_ref(node, farr, a);
            t.release(a);
        }
        t.set_ref(node, fnext, head);
        t.release(head);
        head = node;
    }
    head
}

fn spec_chain(n: usize) -> Spec {
    (0..n)
        .map(|i| {
            let arr = match i % 3 {
                0 => None,
                1 => Some(Vec::new()),
                _ => Some((0..i as i32 * 2).collect()),
            };
            (i as i32 * 7 - 3, arr)
        })
        .collect()
}

#[test]
fn single_root_bytes_match_reflective_serializer() {
    let f = fixture();
    let t = MotorThread::attach(Arc::clone(&f.vm));
    for n in [1usize, 2, 5, 9] {
        let spec = spec_chain(n);
        let rust = build_rust(&spec).expect("non-empty");
        let managed = build_managed(&t, &f, &spec);
        let derive_bytes = wire::encode(&*rust);
        let (reflective_bytes, _) = Serializer::new(&t).serialize(managed).unwrap();
        assert_eq!(
            derive_bytes, reflective_bytes,
            "derive and reflective bytes diverge for a {n}-node chain"
        );
        t.release(managed);
    }
}

#[test]
fn split_representation_bytes_match() {
    let f = fixture();
    let t = MotorThread::attach(Arc::clone(&f.vm));

    let specs: Vec<Spec> = (0..6).map(|i| spec_chain(i % 4 + 1)).collect();
    let rust: Vec<LinkedArray> = specs.iter().map(|s| *build_rust(s).unwrap()).collect();

    // `alloc_obj_array` takes the *element* class.
    let arr = t.alloc_obj_array(f.node, specs.len());
    for (i, s) in specs.iter().enumerate() {
        let h = build_managed(&t, &f, s);
        t.obj_array_set(arr, i, h);
        t.release(h);
    }

    let ser = Serializer::new(&t);
    // Whole array as one split part.
    let (managed_all, _) = ser.serialize_array_range(arr, 0, specs.len()).unwrap();
    assert_eq!(wire::encode_slice(&rust), managed_all);

    // Sub-ranges (the scatter per-rank parts).
    for (off, count) in [(0usize, 2usize), (2, 3), (4, 2), (1, 1)] {
        let (managed_part, _) = ser.serialize_array_range(arr, off, count).unwrap();
        assert_eq!(
            wire::encode_slice(&rust[off..off + count]),
            managed_part,
            "split part {off}+{count} diverges"
        );
    }
    t.release(arr);
}

#[test]
fn each_side_decodes_the_other() {
    let f = fixture();
    let t = MotorThread::attach(Arc::clone(&f.vm));
    let spec = spec_chain(6);
    let rust = build_rust(&spec).unwrap();
    let managed = build_managed(&t, &f, &spec);
    let ser = Serializer::new(&t);

    // Managed bytes -> Rust value.
    let (managed_bytes, _) = ser.serialize(managed).unwrap();
    let decoded: LinkedArray = wire::decode(&managed_bytes).unwrap();
    assert_eq!(decoded, *rust);

    // Rust bytes -> managed object; re-serializing the managed copy
    // reproduces the Rust bytes (tree shape and BFS order are
    // deterministic).
    let rust_bytes = wire::encode(&*rust);
    let copy = ser.deserialize(&rust_bytes).unwrap();
    let (again, _) = ser.serialize(copy).unwrap();
    assert_eq!(again, rust_bytes);
    t.release(copy);
    t.release(managed);
}

#[test]
fn prim_split_part_matches_reflective_range() {
    let f = fixture();
    let t = MotorThread::attach(Arc::clone(&f.vm));
    let data: Vec<i32> = (0..32).map(|i| i * 3 - 7).collect();
    let arr = t.alloc_prim_array(ElemKind::I32, data.len());
    t.prim_write(arr, 0, &data);
    let ser = Serializer::new(&t);
    for (off, count) in [(0usize, 32usize), (4, 8), (31, 1), (16, 0)] {
        let (managed, _) = ser.serialize_array_range(arr, off, count).unwrap();
        assert_eq!(wire::encode_prim_slice(&data[off..off + count]), managed);
        assert_eq!(
            wire::decode_prim_vec::<i32>(&managed).unwrap(),
            &data[off..off + count]
        );
    }
    t.release(arr);
}

/// Every supported field shape round-trips; skipped and un-attributed
/// fields default.
#[derive(Transportable, Debug, Default, PartialEq)]
struct Kitchen {
    flag: bool,
    a: u8,
    b: i8,
    c: i16,
    d: u16,
    e: i32,
    f: u32,
    g: i64,
    h: u64,
    i: f32,
    j: f64,
    #[transportable]
    data: Vec<f64>,
    #[transportable]
    opt: Option<Vec<u16>>,
    local: Vec<u8>, // no attribute: NULL on the wire, defaults on receive
    #[transportable(skip)]
    cache: String, // absent from the wire entirely
}

#[test]
fn kitchen_sink_roundtrip() {
    let k = Kitchen {
        flag: true,
        a: 200,
        b: -5,
        c: -1234,
        d: 40_000,
        e: -7,
        f: 3_000_000_000,
        g: i64::MIN / 2,
        h: u64::MAX / 3,
        i: 0.5,
        j: -2.25,
        data: vec![1.0, -0.125, 3.5],
        opt: Some(vec![9, 8, 7]),
        local: vec![1, 2, 3],
        cache: "not sent".into(),
    };
    let bytes = wire::encode(&k);
    let back: Kitchen = wire::decode(&bytes).unwrap();
    assert_eq!(back.data, k.data);
    assert_eq!(back.opt, k.opt);
    assert_eq!(
        (back.flag, back.a, back.b, back.c, back.d),
        (true, 200, -5, -1234, 40_000)
    );
    assert_eq!((back.e, back.f, back.g, back.h), (k.e, k.f, k.g, k.h));
    assert_eq!((back.i, back.j), (k.i, k.j));
    assert!(
        back.local.is_empty(),
        "un-attributed refs arrive as default"
    );
    assert!(back.cache.is_empty(), "skipped fields stay local");
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    proptest::collection::vec(
        (
            any::<i32>(),
            proptest::option::of(proptest::collection::vec(any::<i32>(), 0..12)),
        ),
        1..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random chains: the derive path and the reflective path emit the
    /// same bytes, and the bytes decode back to the same value.
    #[test]
    fn random_chains_byte_identical(spec in spec_strategy()) {
        let f = fixture();
        let t = MotorThread::attach(Arc::clone(&f.vm));
        let rust = build_rust(&spec).unwrap();
        let managed = build_managed(&t, &f, &spec);
        let derive_bytes = wire::encode(&*rust);
        let (reflective_bytes, _) = Serializer::new(&t).serialize(managed).unwrap();
        prop_assert_eq!(&derive_bytes, &reflective_bytes);
        let back: LinkedArray = wire::decode(&derive_bytes).unwrap();
        prop_assert_eq!(back, *rust);
        t.release(managed);
    }
}
