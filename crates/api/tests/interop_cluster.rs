//! Cross-rank interoperability: typed `Communicator` object operations
//! against managed ranks speaking `Oomp`.
//!
//! The wire contract under test: `send_obj`/`recv_obj`/`bcast_obj`/
//! `scatter_objs`/`gather_objs` frame and serialize exactly like
//! `osend`/`orecv`/`obcast`/`oscatter`/`ogather`, so a cluster can mix
//! ranks holding plain Rust values with ranks holding managed object
//! graphs — in both directions.

use motor_api::{Communicator, Transportable};
use motor_core::cluster::run_cluster_default;
use motor_runtime::{ClassId, ElemKind, Handle, MotorThread, TypeRegistry};

/// Rust mirror of the managed `Packet` class.
#[derive(Transportable, Debug, Default, PartialEq)]
struct Packet {
    id: i32,
    #[transportable]
    data: Vec<f64>,
}

fn define_packet(reg: &mut TypeRegistry) {
    let arr = reg.prim_array(ElemKind::F64);
    reg.define_class("Packet")
        .prim("id", ElemKind::I32)
        .transportable("data", arr)
        .build();
}

fn build_packet(t: &MotorThread, cls: ClassId, id: i32, data: &[f64]) -> Handle {
    let (fid, fdata) = (t.field_index(cls, "id"), t.field_index(cls, "data"));
    let h = t.alloc_instance(cls);
    t.set_prim::<i32>(h, fid, id);
    let a = t.alloc_prim_array(ElemKind::F64, data.len());
    t.prim_write(a, 0, data);
    t.set_ref(h, fdata, a);
    t.release(a);
    h
}

fn read_packet(t: &MotorThread, cls: ClassId, h: Handle) -> (i32, Vec<f64>) {
    let (fid, fdata) = (t.field_index(cls, "id"), t.field_index(cls, "data"));
    let id = t.get_prim::<i32>(h, fid);
    let a = t.get_ref(h, fdata);
    let mut v = vec![0f64; t.array_len(a)];
    t.prim_read(a, 0, &mut v);
    t.release(a);
    (id, v)
}

#[test]
fn osend_to_native_and_back() {
    run_cluster_default(2, define_packet, |proc| {
        let cls = proc.vm().registry().by_name("Packet").unwrap();
        let t = proc.thread();
        if proc.mp().rank() == 0 {
            // Managed rank: OSend a packet, ORecv the (transformed) reply.
            let oomp = proc.oomp();
            let h = build_packet(t, cls, 7, &[1.5, 2.5]);
            oomp.osend(h, 1, 3).unwrap();
            t.release(h);
            let (reply, st) = oomp.orecv(1, 4).unwrap();
            assert_eq!(st.source, 1);
            let (id, data) = read_packet(t, cls, reply);
            assert_eq!((id, data), (-7, vec![15.0, 25.0]));
            t.release(reply);
        } else {
            // Typed rank: plain Rust values in, plain Rust values out.
            let comm = Communicator::bind(proc.mp());
            let (p, st) = comm.recv_obj::<Packet>(0, 3).unwrap();
            assert_eq!(st.source, 0);
            assert_eq!(
                p,
                Packet {
                    id: 7,
                    data: vec![1.5, 2.5]
                }
            );
            let reply = Packet {
                id: -p.id,
                data: p.data.iter().map(|x| x * 10.0).collect(),
            };
            comm.send_obj(&reply, 0, 4).unwrap();
        }
    })
    .unwrap();
}

#[test]
fn obcast_reaches_native_ranks() {
    run_cluster_default(3, define_packet, |proc| {
        let cls = proc.vm().registry().by_name("Packet").unwrap();
        let t = proc.thread();
        if proc.mp().rank() == 0 {
            let oomp = proc.oomp();
            let h = build_packet(t, cls, 42, &[0.25; 4]);
            let back = oomp.obcast(Some(h), 0).unwrap();
            t.release(h);
            t.release(back);
        } else {
            let comm = Communicator::bind(proc.mp());
            let p = comm
                .bcast_obj::<Packet>(None, 0)
                .unwrap()
                .expect("non-root copy");
            assert_eq!(
                p,
                Packet {
                    id: 42,
                    data: vec![0.25; 4]
                }
            );
        }
    })
    .unwrap();
}

#[test]
fn managed_root_scatters_natives_transform_root_gathers() {
    const RANKS: usize = 4;
    const PER: usize = 2;
    run_cluster_default(RANKS, define_packet, |proc| {
        let cls = proc.vm().registry().by_name("Packet").unwrap();
        let t = proc.thread();
        let rank = proc.mp().rank();
        if rank == 0 {
            // Managed root: build the full object array, scatter, gather.
            let oomp = proc.oomp();
            let arr = t.alloc_obj_array(cls, RANKS * PER);
            for i in 0..RANKS * PER {
                let h = build_packet(t, cls, i as i32, &[i as f64, i as f64 + 0.5]);
                t.obj_array_set(arr, i, h);
                t.release(h);
            }
            let own = oomp.oscatter(Some(arr), 0).unwrap();
            t.release(arr);

            // Root transforms its own chunk like everyone else.
            let part = t.alloc_obj_array(cls, PER);
            for i in 0..PER {
                let h = t.obj_array_get(own, i);
                let (id, data) = read_packet(t, cls, h);
                t.release(h);
                let neg = build_packet(
                    t,
                    cls,
                    -id,
                    &data.iter().map(|x| x * 2.0).collect::<Vec<_>>(),
                );
                t.obj_array_set(part, i, neg);
                t.release(neg);
            }
            t.release(own);

            let full = oomp.ogather(part, 0).unwrap().expect("root result");
            t.release(part);
            assert_eq!(t.array_len(full), RANKS * PER);
            for i in 0..RANKS * PER {
                let h = t.obj_array_get(full, i);
                let (id, data) = read_packet(t, cls, h);
                t.release(h);
                assert_eq!(id, -(i as i32));
                assert_eq!(data, vec![i as f64 * 2.0, (i as f64 + 0.5) * 2.0]);
            }
            t.release(full);
        } else {
            // Typed ranks: receive Rust values, transform, send back.
            let comm = Communicator::bind(proc.mp());
            let mine: Vec<Packet> = comm.scatter_objs(None, 0).unwrap();
            assert_eq!(mine.len(), PER);
            for (i, p) in mine.iter().enumerate() {
                assert_eq!(p.id as usize, rank * PER + i, "rank-ordered chunks");
            }
            let out: Vec<Packet> = mine
                .into_iter()
                .map(|p| Packet {
                    id: -p.id,
                    data: p.data.iter().map(|x| x * 2.0).collect(),
                })
                .collect();
            let none = comm.gather_objs(&out, 0).unwrap();
            assert!(none.is_none(), "only the root assembles the gather");
        }
    })
    .unwrap();
}

#[test]
fn native_root_scatters_managed_leaves() {
    const RANKS: usize = 3;
    const PER: usize = 2;
    run_cluster_default(RANKS, define_packet, |proc| {
        let cls = proc.vm().registry().by_name("Packet").unwrap();
        let t = proc.thread();
        let rank = proc.mp().rank();
        if rank == 0 {
            // Typed root scatters plain Rust values...
            let comm = Communicator::bind(proc.mp());
            let all: Vec<Packet> = (0..RANKS * PER)
                .map(|i| Packet {
                    id: 100 + i as i32,
                    data: vec![i as f64; 3],
                })
                .collect();
            let own = comm.scatter_objs(Some(&all), 0).unwrap();
            assert_eq!(own.len(), PER);
            assert_eq!(own[0].id, 100);
        } else {
            // ...managed leaves receive them as object graphs.
            let oomp = proc.oomp();
            let part = oomp.oscatter(None, 0).unwrap();
            assert_eq!(t.array_len(part), PER);
            for i in 0..PER {
                let h = t.obj_array_get(part, i);
                let (id, data) = read_packet(t, cls, h);
                t.release(h);
                let g = rank * PER + i;
                assert_eq!(id as usize, 100 + g);
                assert_eq!(data, vec![g as f64; 3]);
            }
            t.release(part);
        }
    })
    .unwrap();
}
