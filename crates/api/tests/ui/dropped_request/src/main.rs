//! Must fail to compile: discarding the `PendingSend` returned by
//! `isend_slice` abandons an issued request, so the `#[must_use]`
//! lint — denied here, as in any crate serious about the linear
//! request discipline — rejects it.

#![deny(unused_must_use)]
#![allow(dead_code)]

use motor_api::comm::Comm;
use motor_api::{Communicator, Result};

fn leak<C: Comm>(comm: &Communicator<'_, C>, data: &[i32]) -> Result<()> {
    comm.isend_slice(data, 1, 0)?;
    Ok(())
}

fn main() {}
