//! Must fail to compile: `String` has no wire representation, and the
//! derive should say so at the offending field rather than at a distant
//! trait bound.

use motor_api::Transportable;

#[derive(Transportable)]
struct Bad {
    id: i32,
    name: String,
}

fn main() {}
