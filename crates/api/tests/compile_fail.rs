//! Compile-fail cases for the derive and the request discipline.
//!
//! No `trybuild` in the offline tree, so each case is a stand-alone
//! fixture crate under `tests/ui/<case>/` (its own `[workspace]`, a
//! path dependency on `motor-api`) that `cargo check` must reject with
//! a diagnostic containing the expected substring.  All cases share one
//! scratch target dir so the dependency graph compiles once.

use std::path::PathBuf;
use std::process::Command;

fn check_fails_with(case: &str, expected: &str) {
    let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/ui")
        .join(case);
    let target = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("ui-scratch");
    let out = Command::new(env!("CARGO"))
        .args(["check", "--offline", "--quiet"])
        .current_dir(&fixture)
        .env("CARGO_TARGET_DIR", &target)
        .output()
        .unwrap_or_else(|e| panic!("case {case}: failed to spawn cargo: {e}"));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "case {case}: expected the fixture to fail to compile, but it built:\n{stderr}"
    );
    assert!(
        stderr.contains(expected),
        "case {case}: diagnostic does not mention {expected:?}:\n{stderr}"
    );
}

#[test]
fn non_transportable_field_is_rejected_at_the_field() {
    check_fails_with("non_transportable_field", "is not transportable");
}

#[test]
fn non_transportable_field_names_the_offender() {
    check_fails_with("non_transportable_field", "Bad.name: String");
}

#[test]
fn discarded_pending_send_is_rejected() {
    check_fails_with("dropped_request", "must be completed with wait()");
}
