//! motor-lint: whole-program communication analysis over verified IL.
//!
//! Three passes share one interprocedural view of the module (the call
//! graph plus the verifier's per-function [`FuncMeta`] summaries):
//!
//! 1. **Cross-rank match checking** — extract a per-rank communication
//!    skeleton ([`crate::skeleton`]) and simulate the communicator
//!    ([`crate::matcher`]), classifying stuck states into the MPI error
//!    taxonomy. Verdicts are [`Severity::Definite`] only when every
//!    skeleton is complete with fully-resolved operands.
//! 2. **Interprocedural request linearity** — the typed verifier proves
//!    per-function that every request reaches `Wait`, is passed to a
//!    `Req`-typed callee or is returned; this pass closes the loop at
//!    the module boundary: entry points must not receive or leak
//!    request obligations, and call cycles must not circulate them
//!    forever.
//! 3. **Never-transported escape proof** — classify instantiated
//!    classes by reachability to transport `FCall`s; classes the module
//!    instantiates but provably never transports are reported in
//!    [`LintReport::never_transported`] and installed into the runtime,
//!    which then skips pinned-set bookkeeping for them during minor
//!    collections.
//!
//! Every diagnostic carries `func@pc` provenance.

use motor_interp::il::{FCallId, Module, Op, TyDesc};
use motor_interp::verify::{FuncMeta, StackTy};
use motor_runtime::{ClassId, TypeRegistry};

use crate::{skeleton, transport_closure};

/// How certain the analysis is that a diagnostic is a real error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Timing-dependent or imprecision-qualified hazard.
    Possible,
    /// The error occurs on every execution the model admits.
    Definite,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Possible => write!(f, "possible"),
            Severity::Definite => write!(f, "definite"),
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Definite or possible.
    pub severity: Severity,
    /// Stable machine-readable code (`"root-mismatch"`, `"unmatched-recv"`, …).
    pub code: &'static str,
    /// Function containing the anchoring instruction.
    pub func: String,
    /// Instruction index within the function.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    pub(crate) fn new(
        severity: Severity,
        code: &'static str,
        func: &str,
        at: usize,
        message: String,
    ) -> Self {
        Diagnostic {
            severity,
            code,
            func: func.to_string(),
            at,
            message,
        }
    }

    /// `func@pc` provenance string.
    pub fn site(&self) -> String {
        format!("{}@{}", self.func, self.at)
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}] {}@{}: {}",
            self.severity, self.code, self.func, self.at, self.message
        )
    }
}

/// Lint configuration.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Communicator size the match checker models.
    pub ranks: usize,
    /// Largest payload (bytes) sent eagerly; above it sends rendezvous.
    pub eager_threshold: u64,
    /// Entry-function name for the match checker. The comm pass only
    /// runs when the function exists and follows the in-tree kernel
    /// convention (integer rank/size parameters at the indices below).
    pub entry: String,
    /// Parameter index carrying the rank.
    pub rank_param: usize,
    /// Parameter index carrying the communicator size.
    pub size_param: usize,
    /// Make [`crate::load_with`] fail on definite diagnostics.
    pub fail_on_definite: bool,
    /// Abstract-interpretation step budget per rank.
    pub step_budget: usize,
    /// Call-inlining depth bound.
    pub call_depth: usize,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            ranks: 4,
            eager_threshold: 64 * 1024,
            entry: "main".to_string(),
            rank_param: 0,
            size_param: 1,
            fail_on_definite: false,
            step_budget: 50_000,
            call_depth: 32,
        }
    }
}

/// The lint result: findings plus the escape proof.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings, definite first.
    pub diagnostics: Vec<Diagnostic>,
    /// Classes the module instantiates but provably never transports.
    pub never_transported: Vec<ClassId>,
    /// Whether the cross-rank match checker ran (the module has a
    /// conforming entry function).
    pub comm_checked: bool,
}

impl LintReport {
    /// Number of definite errors.
    pub fn definite_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Definite)
            .count()
    }

    /// Number of possible hazards.
    pub fn possible_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Possible)
            .count()
    }

    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Run all three passes over a verified module's IL and summaries.
pub fn run(module: &Module, meta: &[FuncMeta], reg: &TypeRegistry, cfg: &LintConfig) -> LintReport {
    let mut diags = Vec::new();
    linearity_pass(module, meta, &mut diags);
    let comm_checked = comm_pass(module, reg, cfg, &mut diags);
    let never_transported = escape_pass(module, meta, reg);
    dedup(&mut diags);
    diags.sort_by_key(|d| std::cmp::Reverse(d.severity));
    LintReport {
        diagnostics: diags,
        never_transported,
        comm_checked,
    }
}

fn dedup(diags: &mut Vec<Diagnostic>) {
    let mut seen: Vec<(&'static str, String, usize)> = Vec::new();
    diags.retain(|d| {
        let key = (d.code, d.func.clone(), d.at);
        if seen.contains(&key) {
            false
        } else {
            seen.push(key);
            true
        }
    });
}

// ---------------------------------------------------------------------
// Pass 1: cross-rank match checking
// ---------------------------------------------------------------------

/// Returns whether the pass ran (entry convention matched).
fn comm_pass(
    module: &Module,
    reg: &TypeRegistry,
    cfg: &LintConfig,
    diags: &mut Vec<Diagnostic>,
) -> bool {
    let Some(entry) = module.find(&cfg.entry) else {
        return false;
    };
    let f = &module.functions[entry as usize];
    let conforming = f.params.len() > cfg.rank_param.max(cfg.size_param)
        && f.params[cfg.rank_param] == TyDesc::I64
        && f.params[cfg.size_param] == TyDesc::I64;
    if !conforming || cfg.ranks == 0 {
        return false;
    }
    let skeletons: Vec<skeleton::Skeleton> = (0..cfg.ranks as i64)
        .map(|r| skeleton::extract(module, reg, cfg, entry, r, diags))
        .collect();
    if skeletons.iter().any(|s| !s.complete) {
        // An incomplete skeleton means the trailing events are unknown;
        // matching the known prefix would fabricate mismatches.
        return true;
    }
    let precise = skeletons.iter().all(|s| s.operands_resolved());
    crate::matcher::check(&skeletons, cfg, precise, diags);
    true
}

// ---------------------------------------------------------------------
// Pass 2: interprocedural request linearity
// ---------------------------------------------------------------------

/// The verifier guarantees each function discharges its requests via
/// `Wait`, a `Req`-typed call argument or a `Req` return. Globally that
/// leaves two holes, both closed here:
///
/// * **Entry points** (functions no one in the module calls): a `Req`
///   parameter can never be produced by the host, and a `Req` return is
///   never awaited by anyone.
/// * **Call cycles** that receive or mint requests but contain no
///   `Wait` and leak no obligation outside the cycle: the request
///   circulates forever.
fn linearity_pass(module: &Module, meta: &[FuncMeta], diags: &mut Vec<Diagnostic>) {
    let n = module.functions.len();
    let mut callees: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut called = vec![false; n];
    for (i, f) in module.functions.iter().enumerate() {
        for op in &f.code {
            if let Op::Call(idx) = op {
                let idx = *idx as usize;
                if idx < n {
                    callees[i].push(idx);
                    called[idx] = true;
                }
            }
        }
    }

    for (i, f) in module.functions.iter().enumerate() {
        if called[i] {
            continue;
        }
        if let Some(p) = f.params.iter().position(|p| *p == TyDesc::Req) {
            diags.push(Diagnostic::new(
                Severity::Definite,
                "orphan-request",
                &f.name,
                0,
                format!(
                    "entry function takes a request as parameter {p}, but no \
                     caller in the module can produce one; the obligation can \
                     never be discharged"
                ),
            ));
        }
        if f.ret == Some(TyDesc::Req) {
            diags.push(Diagnostic::new(
                Severity::Definite,
                "escaped-request",
                &f.name,
                0,
                "entry function returns an in-flight request that no caller \
                 will ever wait on"
                    .to_string(),
            ));
        }
    }

    let has_wait = |i: usize| {
        meta.get(i)
            .map(|m| m.fcalls.iter().any(|s| s.id == FCallId::MpWait))
            .unwrap_or(false)
    };
    let mints_request = |i: usize| {
        meta.get(i)
            .map(|m| {
                m.fcalls
                    .iter()
                    .any(|s| matches!(s.id, FCallId::MpIsend | FCallId::MpIrecv))
            })
            .unwrap_or(false)
    };

    for mut scc in sccs(&callees) {
        scc.sort_unstable(); // anchor diagnostics at the lowest-indexed member
        let cyclic = scc.len() > 1 || callees[scc[0]].contains(&scc[0]);
        if !cyclic {
            continue;
        }
        let in_scc = |j: usize| scc.contains(&j);
        let touches = scc
            .iter()
            .any(|&i| mints_request(i) || module.functions[i].params.contains(&TyDesc::Req));
        if !touches {
            continue;
        }
        let escapes = scc.iter().any(|&i| {
            if has_wait(i) {
                return true;
            }
            // Handing the obligation to a callee outside the cycle.
            if callees[i]
                .iter()
                .any(|&j| !in_scc(j) && module.functions[j].params.contains(&TyDesc::Req))
            {
                return true;
            }
            // Returning the obligation to a caller outside the cycle.
            module.functions[i].ret == Some(TyDesc::Req)
                && (0..module.functions.len()).any(|k| !in_scc(k) && callees[k].contains(&i))
        });
        if !escapes {
            let names: Vec<&str> = scc
                .iter()
                .map(|&i| module.functions[i].name.as_str())
                .collect();
            diags.push(Diagnostic::new(
                Severity::Definite,
                "request-cycle",
                &module.functions[scc[0]].name,
                0,
                format!(
                    "requests circulate through the call cycle {{{}}} which \
                     contains no Wait and leaks no obligation outside it; \
                     they can never complete",
                    names.join(", ")
                ),
            ));
        }
    }
}

/// Tarjan's strongly-connected components over the call graph.
fn sccs(callees: &[Vec<usize>]) -> Vec<Vec<usize>> {
    struct St<'a> {
        callees: &'a [Vec<usize>],
        index: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: usize,
        out: Vec<Vec<usize>>,
    }
    fn visit(st: &mut St, v: usize) {
        st.index[v] = Some(st.next);
        st.low[v] = st.next;
        st.next += 1;
        st.stack.push(v);
        st.on_stack[v] = true;
        for i in 0..st.callees[v].len() {
            let w = st.callees[v][i];
            if st.index[w].is_none() {
                visit(st, w);
                st.low[v] = st.low[v].min(st.low[w]);
            } else if st.on_stack[w] {
                st.low[v] = st.low[v].min(st.index[w].expect("visited"));
            }
        }
        if st.low[v] == st.index[v].expect("set above") {
            let mut comp = Vec::new();
            loop {
                let w = st.stack.pop().expect("stack invariant");
                st.on_stack[w] = false;
                comp.push(w);
                if w == v {
                    break;
                }
            }
            st.out.push(comp);
        }
    }
    let n = callees.len();
    let mut st = St {
        callees,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    for v in 0..n {
        if st.index[v].is_none() {
            visit(&mut st, v);
        }
    }
    st.out
}

// ---------------------------------------------------------------------
// Pass 3: never-transported escape proof
// ---------------------------------------------------------------------

/// Classes the module instantiates (`New` / `NewArr` / `NewObjArr`) that
/// no transport `FCall` can ever reach. Raw transports ship exactly the
/// buffer's class; object transports (`Osend`/`Orecv`) ship its
/// transportable closure. The verifier's exact stack types (no
/// subtyping) make the per-site class attribution sound; array classes
/// the registry has not materialized yet simply go unclaimed (the
/// runtime default-checks any class without a proof bit).
fn escape_pass(module: &Module, meta: &[FuncMeta], reg: &TypeRegistry) -> Vec<ClassId> {
    let len = reg.len();
    let mut transported = vec![false; len];
    let mut instantiated = vec![false; len];
    let mark = |bits: &mut Vec<bool>, c: ClassId| {
        if let Some(b) = bits.get_mut(c.0 as usize) {
            *b = true;
        }
    };
    let mark_closure = |bits: &mut Vec<bool>, c: ClassId| {
        for member in transport_closure(reg, c) {
            if let Some(b) = bits.get_mut(member.0 as usize) {
                *b = true;
            }
        }
    };

    for m in meta {
        for site in &m.fcalls {
            if site.id.is_raw_mp_transport() {
                match site.buf {
                    Some(StackTy::Ref(c)) => mark(&mut transported, c),
                    Some(StackTy::Arr(k)) => {
                        if let Some(c) = reg.prim_array_id(k) {
                            mark(&mut transported, c);
                        }
                    }
                    Some(StackTy::ObjArr(c)) => {
                        if let Some(a) = reg.obj_array_id(c) {
                            mark_closure(&mut transported, a);
                        }
                    }
                    _ => {}
                }
            } else if matches!(site.id, FCallId::Osend) {
                match site.buf {
                    Some(StackTy::Ref(c)) => mark_closure(&mut transported, c),
                    Some(StackTy::Arr(k)) => {
                        if let Some(c) = reg.prim_array_id(k) {
                            mark(&mut transported, c);
                        }
                    }
                    Some(StackTy::ObjArr(c)) => {
                        if let Some(a) = reg.obj_array_id(c) {
                            mark_closure(&mut transported, a);
                        }
                    }
                    _ => {}
                }
            } else if let FCallId::Orecv(c) = site.id {
                mark_closure(&mut transported, c);
            }
        }
    }

    for f in &module.functions {
        for op in &f.code {
            match op {
                Op::New(c) => mark(&mut instantiated, *c),
                Op::NewArr(k) => {
                    if let Some(c) = reg.prim_array_id(*k) {
                        mark(&mut instantiated, c);
                    }
                }
                Op::NewObjArr(c) => {
                    if let Some(a) = reg.obj_array_id(*c) {
                        mark(&mut instantiated, a);
                    }
                    // An object array keeps its elements alive but does
                    // not by itself instantiate them.
                }
                _ => {}
            }
        }
    }

    (0..len)
        .filter(|&i| instantiated[i] && !transported[i])
        .map(|i| ClassId(i as u32))
        .collect()
}
