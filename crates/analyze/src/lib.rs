//! # motor-analyze — load-time static analysis for Motor modules
//!
//! The paper's trust model (§2.4) says the VM protects object-model
//! integrity because "only verifiable code" runs in a trusted context and
//! "only object types with no object references or arrays of simple
//! types" may be transported by the regular MPI bindings (§4.2.1). The
//! runtime enforces the transport rule dynamically with a per-send
//! registry walk; this crate is the *static* half: a load-time pass that
//! proves the rule for every transport site in a module, so the dynamic
//! walk can be elided on the hot path.
//!
//! [`load`] is the module front door. It runs the typed IL verifier
//! (`motor-interp::verify`) and then checks, against the class registry,
//! that every raw-`Mp` intrinsic site transports either a primitive array
//! or an instance of a reference-free class, and that no statically-null
//! buffer reaches a transport. Modules that pass receive the **transport
//! proof bit**; the interpreter forwards it to the message-passing host,
//! which switches to the trusted `Mp` bindings (transportability walk
//! skipped — nullness, which is a runtime property, is still checked).
//!
//! The *per-function* request type-state rule (every `Isend`/`Irecv`
//! reaches `Wait`, a `Req`-typed call argument or a `Req` return on all
//! paths) is enforced by the verifier itself, since it is a control-flow
//! property of the IL. The whole-program half lives in [`lint`]
//! (**motor-lint**): cross-rank communication matching, interprocedural
//! request linearity at module boundaries, and the never-transported
//! escape proof that lets the collector skip pin bookkeeping. Run it
//! via [`load_with`], or standalone over every in-tree module with the
//! `motor-analyze` CLI (`cargo run -p motor-bench --bin motor-analyze -- lint`).

pub mod lint;
mod matcher;
mod skeleton;

pub use lint::{Diagnostic, LintConfig, LintReport, Severity};
pub use skeleton::{AbsInt, EvKind, Event, Skeleton};

use motor_interp::il::{FCallId, Module};
use motor_interp::verify::{FcallSite, StackTy, VerifiedModule, VerifyError};
use motor_runtime::{ClassId, TypeRegistry};

/// A static-analysis rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeError {
    /// The module failed typed verification.
    Verify(VerifyError),
    /// A transport site violates the paper's raw-transport rules.
    Transport {
        /// Function containing the site.
        func: String,
        /// Instruction index of the `FCall`.
        at: usize,
        /// What is wrong with the buffer.
        what: String,
    },
    /// The lint found a definite communication error and the
    /// configuration asked for it to be fatal
    /// ([`LintConfig::fail_on_definite`]).
    Lint(Diagnostic),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::Verify(e) => write!(f, "{e}"),
            AnalyzeError::Transport { func, at, what } => write!(f, "{func}@{at}: {what}"),
            AnalyzeError::Lint(d) => write!(f, "{d}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<VerifyError> for AnalyzeError {
    fn from(e: VerifyError) -> Self {
        AnalyzeError::Verify(e)
    }
}

/// The transportable closure of a class: the set of classes reachable
/// from it through fields carrying the `[Transportable]` bit (paper
/// §7.5) and through object-array element types, the class itself
/// included. This is the object set the serializer would ship for an
/// `Osend` of an instance; it is computed once at load time from the
/// `FieldDesc` bits, never per message. Visited classes are tracked in
/// a `ClassId`-indexed bitset, so cyclic registries (mutually
/// transportable classes) terminate in O(classes + fields).
pub fn transport_closure(reg: &TypeRegistry, root: ClassId) -> Vec<ClassId> {
    let mut visited = vec![false; reg.len()];
    let mut seen = Vec::new();
    let mut work = Vec::new();
    let mut push = |c: ClassId, seen: &mut Vec<ClassId>, work: &mut Vec<ClassId>| match visited
        .get_mut(c.0 as usize)
    {
        Some(v) if !*v => {
            *v = true;
            seen.push(c);
            work.push(c);
        }
        _ => {}
    };
    push(root, &mut seen, &mut work);
    while let Some(c) = work.pop() {
        let table = reg.table(c);
        if let motor_runtime::TypeKind::ObjArray(elem) = &table.kind {
            push(*elem, &mut seen, &mut work);
        }
        for fd in &table.fields {
            if !fd.is_transportable() {
                continue;
            }
            if let motor_runtime::FieldType::Ref(next) = fd.ty {
                push(next, &mut seen, &mut work);
            }
        }
    }
    seen
}

/// Whether a class instance may be handed to the *raw* `Mp` bindings:
/// its type must carry no object references at all (§4.2.1).
fn raw_transportable(reg: &TypeRegistry, c: ClassId) -> bool {
    !reg.table(c).has_refs
}

fn check_site(func: &str, site: &FcallSite, reg: &TypeRegistry) -> Result<(), AnalyzeError> {
    let transport_err = |what: String| {
        Err(AnalyzeError::Transport {
            func: func.to_string(),
            at: site.at,
            what,
        })
    };
    if site.id.is_raw_mp_transport() {
        match site.buf {
            Some(StackTy::Arr(_)) => Ok(()),
            Some(StackTy::Ref(c)) if raw_transportable(reg, c) => Ok(()),
            Some(StackTy::Ref(c)) => transport_err(format!(
                "class `{}` contains object references; raw transport would \
                 compromise object-model integrity (use Osend/Orecv)",
                reg.table(c).name
            )),
            Some(StackTy::ObjArr(c)) => transport_err(format!(
                "object arrays (`{}[]`) cannot be transported raw (use the \
                 object-oriented operations)",
                reg.table(c).name
            )),
            Some(StackTy::Null) => transport_err("transport buffer is statically null".to_string()),
            // The verifier's pop_buf admits only reference-shaped types.
            Some(other) => transport_err(format!("non-object transport buffer ({other})")),
            None => Ok(()),
        }
    } else if matches!(site.id, FCallId::Osend) {
        match site.buf {
            Some(StackTy::Null) => {
                transport_err("transported object is statically null".to_string())
            }
            _ => Ok(()),
        }
    } else {
        Ok(())
    }
}

/// Load a module: run the typed verifier, statically prove the
/// transport rules for every `FCall` site, then run the motor-lint
/// passes. On success the returned [`VerifiedModule`] carries the
/// transport proof (the interpreter's message-passing host elides its
/// per-send transportability walk) and the never-transported escape
/// proof (the collector elides pinned-set bookkeeping for those
/// classes); the [`LintReport`] carries the findings as warnings.
///
/// With [`LintConfig::fail_on_definite`] set, a definite communication
/// error rejects the module with [`AnalyzeError::Lint`].
pub fn load_with(
    module: Module,
    reg: &TypeRegistry,
    cfg: &LintConfig,
) -> Result<(VerifiedModule, LintReport), AnalyzeError> {
    let mut verified = VerifiedModule::verify(module, reg)?;
    for (f, meta) in verified
        .module()
        .functions
        .iter()
        .zip(verified.meta().iter())
    {
        for site in &meta.fcalls {
            check_site(&f.name, site, reg)?;
        }
    }
    let report = lint::run(verified.module(), verified.meta(), reg, cfg);
    if cfg.fail_on_definite {
        if let Some(d) = report
            .diagnostics
            .iter()
            .find(|d| d.severity == Severity::Definite)
        {
            return Err(AnalyzeError::Lint(d.clone()));
        }
    }
    verified.set_never_transported(report.never_transported.clone());
    verified.grant_transport_proof();
    Ok((verified, report))
}

/// [`load_with`] under the default [`LintConfig`]: lint findings are
/// warnings only (dropped here — use [`load_with`] to inspect them),
/// but the escape proof is still installed on the returned module.
pub fn load(module: Module, reg: &TypeRegistry) -> Result<VerifiedModule, AnalyzeError> {
    load_with(module, reg, &LintConfig::default()).map(|(v, _)| v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use motor_interp::il::{FnBuilder, Op, TyDesc};
    use motor_runtime::ElemKind;

    fn module_of(f: motor_interp::il::Function) -> Module {
        let mut m = Module::new();
        m.add(f);
        m
    }

    #[test]
    fn prim_array_send_accepted_and_proof_granted() {
        let mut reg = TypeRegistry::new();
        reg.prim_array(ElemKind::F64);
        let mut f = FnBuilder::new("kernel", 1, 1, false);
        f.params(&[TyDesc::Arr(ElemKind::F64)]);
        f.op(Op::Load(0))
            .op(Op::PushI(1))
            .op(Op::PushI(0))
            .op(Op::FCall(FCallId::MpSend))
            .op(Op::Ret);
        let vm = load(module_of(f.build()), &reg).unwrap();
        assert!(vm.has_transport_proof());
    }

    #[test]
    fn ref_free_class_accepted() {
        let mut reg = TypeRegistry::new();
        let plain = reg
            .define_class("Plain")
            .prim("x", ElemKind::F64)
            .prim("y", ElemKind::I64)
            .build();
        let mut f = FnBuilder::new("k", 0, 0, false);
        f.op(Op::New(plain))
            .op(Op::PushI(0))
            .op(Op::PushI(7))
            .op(Op::FCall(FCallId::MpSend))
            .op(Op::Ret);
        assert!(load(module_of(f.build()), &reg).is_ok());
    }

    #[test]
    fn ref_bearing_class_rejected_with_site_diagnostic() {
        let mut reg = TypeRegistry::new();
        let arr = reg.prim_array(ElemKind::I32);
        let bad = reg
            .define_class("HasRef")
            .transportable("data", arr)
            .build();
        let mut f = FnBuilder::new("leaky_send", 0, 0, false);
        f.op(Op::New(bad))
            .op(Op::PushI(0))
            .op(Op::PushI(7))
            .op(Op::FCall(FCallId::MpSend))
            .op(Op::Ret);
        let err = load(module_of(f.build()), &reg).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("leaky_send@3"),
            "diagnostic names func@pc: {msg}"
        );
        assert!(msg.contains("HasRef"), "diagnostic names the class: {msg}");
    }

    #[test]
    fn object_array_rejected_for_raw_transport() {
        let mut reg = TypeRegistry::new();
        let cls = reg.define_class("Node").prim("v", ElemKind::I32).build();
        let mut f = FnBuilder::new("k", 0, 0, false);
        f.op(Op::PushI(4))
            .op(Op::NewObjArr(cls))
            .op(Op::PushI(0))
            .op(Op::FCall(FCallId::MpBcast))
            .op(Op::Ret);
        assert!(matches!(
            load(module_of(f.build()), &reg),
            Err(AnalyzeError::Transport { .. })
        ));
    }

    #[test]
    fn statically_null_buffer_rejected() {
        let reg = TypeRegistry::new();
        let mut f = FnBuilder::new("k", 0, 0, false);
        f.op(Op::PushNull)
            .op(Op::PushI(0))
            .op(Op::PushI(0))
            .op(Op::FCall(FCallId::MpSend))
            .op(Op::Ret);
        assert!(matches!(
            load(module_of(f.build()), &reg),
            Err(AnalyzeError::Transport { .. })
        ));
    }

    #[test]
    fn osend_takes_ref_bearing_classes() {
        // The OO operations serialize the transportable closure, so a
        // ref-bearing class is fine there.
        let mut reg = TypeRegistry::new();
        let arr = reg.prim_array(ElemKind::I32);
        let linked = reg
            .define_class("LinkedArray")
            .transportable("data", arr)
            .build();
        let mut f = FnBuilder::new("k", 0, 0, false);
        f.op(Op::New(linked))
            .op(Op::PushI(0))
            .op(Op::PushI(7))
            .op(Op::FCall(FCallId::Osend))
            .op(Op::Ret);
        assert!(load(module_of(f.build()), &reg).is_ok());
    }

    #[test]
    fn verify_failures_pass_through() {
        let mut f = FnBuilder::new("confused", 0, 0, true);
        f.op(Op::PushF(1.0))
            .op(Op::PushI(2))
            .op(Op::Add)
            .op(Op::Ret);
        assert!(matches!(
            load(module_of(f.build()), &TypeRegistry::new()),
            Err(AnalyzeError::Verify(VerifyError::TypeError { .. }))
        ));
    }

    #[test]
    fn closure_terminates_on_cyclic_registries() {
        let mut reg = TypeRegistry::new();
        // Mutually transportable classes: ids are sequential, so the
        // second id can be named before its class is built.
        let a_pred = ClassId(reg.len() as u32);
        let b_pred = ClassId(reg.len() as u32 + 1);
        let a = reg
            .define_class("CycleA")
            .transportable("b", b_pred)
            .build();
        let b = reg
            .define_class("CycleB")
            .transportable("a", a_pred)
            .build();
        assert_eq!((a, b), (a_pred, b_pred));
        let closure = transport_closure(&reg, a);
        assert_eq!(closure.len(), 2, "cycle visited once: {closure:?}");
        assert!(closure.contains(&a) && closure.contains(&b));
    }

    #[test]
    fn closure_follows_object_array_elements() {
        let mut reg = TypeRegistry::new();
        let node = reg.define_class("Node").prim("v", ElemKind::I64).build();
        let arr = reg.obj_array(node);
        let closure = transport_closure(&reg, arr);
        assert!(closure.contains(&node), "element type is shipped too");
    }

    #[test]
    fn escape_proof_claims_only_untransported_classes() {
        let mut reg = TypeRegistry::new();
        reg.prim_array(ElemKind::F64);
        let sent = reg.define_class("Sent").prim("x", ElemKind::F64).build();
        let local = reg.define_class("Local").prim("x", ElemKind::I64).build();
        let mut f = FnBuilder::new("k", 0, 0, false);
        f.op(Op::New(local))
            .op(Op::Pop)
            .op(Op::New(sent))
            .op(Op::PushI(0))
            .op(Op::PushI(7))
            .op(Op::FCall(FCallId::MpSend))
            .op(Op::Ret);
        let (vm, report) = load_with(module_of(f.build()), &reg, &LintConfig::default()).unwrap();
        assert!(vm.never_transported().contains(&local));
        assert!(!vm.never_transported().contains(&sent));
        assert_eq!(report.never_transported, vm.never_transported());
    }

    #[test]
    fn load_with_reports_definite_comm_errors() {
        // Rank 1 sends to rank 0; nobody ever receives — every rank
        // falls straight through to Ret, so the message is unreceived
        // (possible) but nothing deadlocks.
        let mut reg = TypeRegistry::new();
        reg.prim_array(ElemKind::F64);
        let mut f = FnBuilder::new("main", 2, 2, false);
        let done = f.label();
        f.op(Op::Load(0)).op(Op::PushI(1)).op(Op::CmpEq);
        f.br_false(done);
        f.op(Op::PushI(4))
            .op(Op::NewArr(ElemKind::F64))
            .op(Op::PushI(0))
            .op(Op::PushI(9))
            .op(Op::FCall(FCallId::MpSend));
        f.bind(done);
        f.op(Op::Ret);
        let (_, report) = load_with(module_of(f.build()), &reg, &LintConfig::default()).unwrap();
        assert!(report.comm_checked);
        assert_eq!(report.definite_count(), 0);
        assert_eq!(report.possible_count(), 1);
        assert_eq!(report.diagnostics[0].code, "unmatched-send");
    }

    #[test]
    fn fail_on_definite_rejects_a_deadlocking_module() {
        // Rank 0 receives from rank 1, which never sends: definite.
        let mut reg = TypeRegistry::new();
        reg.prim_array(ElemKind::F64);
        let mut f = FnBuilder::new("main", 2, 2, false);
        let done = f.label();
        f.op(Op::Load(0)).op(Op::PushI(0)).op(Op::CmpEq);
        f.br_false(done);
        f.op(Op::PushI(4))
            .op(Op::NewArr(ElemKind::F64))
            .op(Op::PushI(1))
            .op(Op::PushI(9))
            .op(Op::FCall(FCallId::MpRecv));
        f.bind(done);
        f.op(Op::Ret);
        let cfg = LintConfig {
            fail_on_definite: true,
            ..LintConfig::default()
        };
        let err = load_with(module_of(f.build()), &reg, &cfg).unwrap_err();
        match err {
            AnalyzeError::Lint(d) => {
                assert_eq!(d.severity, Severity::Definite);
                assert_eq!(d.code, "unmatched-recv");
                assert_eq!(d.site(), "main@8");
            }
            other => panic!("expected lint rejection, got {other:?}"),
        }
    }

    #[test]
    fn closure_follows_transportable_bits_only() {
        let mut reg = TypeRegistry::new();
        let arr = reg.prim_array(ElemKind::I32);
        let inner = reg.define_class("Inner").transportable("data", arr).build();
        let outer = reg
            .define_class("Outer")
            .transportable("inner", inner)
            .reference("ignored", inner)
            .build();
        let closure = transport_closure(&reg, outer);
        assert!(closure.contains(&outer));
        assert!(closure.contains(&inner));
        assert!(
            closure.contains(&arr),
            "transportable array field is in the closure"
        );
        assert_eq!(closure.len(), 3);
    }
}
