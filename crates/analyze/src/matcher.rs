//! Cross-rank communication matching.
//!
//! Takes one [`Skeleton`] per rank and simulates the communicator
//! deterministically: sends enter per-(source, destination) FIFO
//! channels, receives (blocking or posted `Irecv`s) match the earliest
//! compatible send with MPI's non-overtaking order respected, eager
//! sends (payload ≤ the configured threshold) complete immediately
//! while larger ones rendezvous — the sender blocks until the message
//! is consumed. Collectives complete only when every rank arrives.
//!
//! When no rank can advance the simulation is *stuck*, and the stuck
//! state is classified into the paper-level error taxonomy: a collective
//! some ranks never reach, a broadcast root disagreement, a mutual
//! rendezvous-send cycle, an unmatched receive. Those are **definite**
//! when every skeleton was extracted completely with fully resolved
//! operands, and downgraded to **possible** otherwise. Two hazards are
//! always merely possible: a wildcard receive with more than one live
//! candidate (the match order is timing-dependent) and an eager send no
//! receive ever consumes.

use crate::lint::{Diagnostic, LintConfig, Severity};
use crate::skeleton::{AbsInt, EvKind, Event, Skeleton};
use motor_interp::il::FCALL_ANY_SOURCE;

/// The any-tag wildcard on the receive side (mirrors the runtime's
/// `Tag::ANY`, which shares the `-1` sentinel with any-source).
const ANY_TAG: i64 = -1;

/// An in-flight message.
struct Msg {
    src: usize,
    tag: AbsInt,
    rendezvous: bool,
    consumed: bool,
    /// Originating event site, for diagnostics.
    site: String,
}

/// A posted receive (blocking receives are posted-and-waited atomically).
struct Posted {
    from: AbsInt,
    tag: AbsInt,
    matched: Option<usize>,
    /// Request id for `Irecv`; `None` for a blocking receive.
    req: Option<usize>,
}

/// What a rank is currently blocked on.
#[derive(Clone, Copy, PartialEq)]
enum Blocked {
    No,
    /// Rendezvous send: waiting for message `msg` to be consumed.
    Rendezvous {
        msg: usize,
    },
    /// Blocking receive: waiting for posted receive `posted` to match.
    RecvWait {
        posted: usize,
    },
    /// `MpWait` on request `req`.
    Wait {
        req: usize,
    },
    /// Arrived at a collective (the event at the cursor).
    Collective,
}

struct Rank<'a> {
    events: &'a [Event],
    cursor: usize,
    blocked: Blocked,
    /// Request id → index into this rank's sends (for isend) — resolved
    /// via `req_send`; irecv requests resolve via `Posted::req`.
    posted: Vec<Posted>,
    /// Request id → message index in the global message list (isend).
    req_send: Vec<(usize, usize)>,
}

impl Rank<'_> {
    fn done(&self) -> bool {
        self.cursor >= self.events.len() && self.blocked == Blocked::No
    }
}

/// Simulate the skeletons and append diagnostics. `precise` controls
/// whether stuck-state verdicts are definite.
pub fn check(skeletons: &[Skeleton], cfg: &LintConfig, precise: bool, diags: &mut Vec<Diagnostic>) {
    let definite = if precise {
        Severity::Definite
    } else {
        Severity::Possible
    };
    let n = skeletons.len();
    let mut ranks: Vec<Rank> = skeletons
        .iter()
        .map(|s| Rank {
            events: &s.events,
            cursor: 0,
            blocked: Blocked::No,
            posted: Vec::new(),
            req_send: Vec::new(),
        })
        .collect();
    let mut msgs: Vec<Msg> = Vec::new();
    // Per-destination list of (global msg index) in arrival order.
    let mut inbox: Vec<Vec<usize>> = vec![Vec::new(); n];

    // Match every unmatched posted receive of rank `r` against the
    // earliest compatible in-flight send. Returns true on any match.
    let try_match =
        |r: usize, ranks: &mut [Rank], msgs: &mut [Msg], inbox: &[Vec<usize>]| -> bool {
            let mut progressed = false;
            for p_idx in 0..ranks[r].posted.len() {
                if ranks[r].posted[p_idx].matched.is_some() {
                    continue;
                }
                let (from, tag) = (ranks[r].posted[p_idx].from, ranks[r].posted[p_idx].tag);
                // Earliest unconsumed compatible message per source,
                // honoring the non-overtaking order within each channel.
                let mut candidates: Vec<usize> = Vec::new();
                let mut sources_seen: Vec<usize> = Vec::new();
                for &m_idx in &inbox[r] {
                    let m = &msgs[m_idx];
                    if m.consumed || sources_seen.contains(&m.src) {
                        continue;
                    }
                    let src_ok = match from {
                        AbsInt::Const(FCALL_ANY_SOURCE) => true,
                        AbsInt::Const(s) => m.src == s as usize,
                        AbsInt::Top => true,
                    };
                    if src_ok && tag_compatible(tag, m.tag) {
                        candidates.push(m_idx);
                        sources_seen.push(m.src);
                    }
                }
                let Some(&chosen) = candidates.iter().min_by_key(|&&m| msgs[m].src) else {
                    continue;
                };
                ranks[r].posted[p_idx].matched = Some(chosen);
                msgs[chosen].consumed = true;
                progressed = true;
            }
            progressed
        };

    // Deterministic round-robin simulation.
    loop {
        let mut progressed = false;
        for r in 0..n {
            loop {
                let stepped = step(
                    r,
                    &mut ranks,
                    &mut msgs,
                    &mut inbox,
                    cfg,
                    &mut |ranks, msgs, inbox| {
                        let mut any = false;
                        for rr in 0..n {
                            any |= try_match(rr, ranks, msgs, inbox);
                        }
                        any
                    },
                );
                if stepped {
                    progressed = true;
                } else {
                    break;
                }
            }
        }
        // Collective barrier: release when every rank is parked at one.
        if ranks.iter().all(|rk| rk.blocked == Blocked::Collective) && n > 0 {
            let arrivals: Vec<&Event> = ranks.iter().map(|rk| &rk.events[rk.cursor]).collect();
            let barrier_count = arrivals
                .iter()
                .filter(|e| matches!(e.kind, EvKind::Barrier))
                .count();
            if barrier_count != 0 && barrier_count != n {
                let b = arrivals
                    .iter()
                    .position(|e| matches!(e.kind, EvKind::Barrier))
                    .expect("counted");
                let o = arrivals
                    .iter()
                    .position(|e| !matches!(e.kind, EvKind::Barrier))
                    .expect("counted");
                diags.push(Diagnostic::new(
                    definite,
                    "collective-mismatch",
                    &arrivals[b].func,
                    arrivals[b].at,
                    format!(
                        "collective mismatch: rank {b} is at a barrier while \
                         rank {o} is at a broadcast ({})",
                        arrivals[o].site()
                    ),
                ));
                return;
            }
            if barrier_count == 0 {
                // All broadcasts: roots must agree (and resolve).
                let roots: Vec<AbsInt> = arrivals
                    .iter()
                    .map(|e| match e.kind {
                        EvKind::Bcast { root } => root,
                        _ => unreachable!("filtered above"),
                    })
                    .collect();
                if let (Some(a), Some(b)) = (roots.first(), roots.iter().find(|r| *r != &roots[0]))
                {
                    diags.push(Diagnostic::new(
                        definite,
                        "root-mismatch",
                        &arrivals[0].func,
                        arrivals[0].at,
                        format!(
                            "broadcast root mismatch: rank 0 uses root {a} but \
                             another rank uses root {b}"
                        ),
                    ));
                    return;
                }
            }
            for rk in ranks.iter_mut() {
                rk.blocked = Blocked::No;
                rk.cursor += 1;
            }
            progressed = true;
        }
        if !progressed {
            break;
        }
    }

    // Post-hoc wildcard hazard: an any-source receive is racy whenever
    // more than one source produced a compatible message for its rank
    // over the whole run — the deterministic schedule above picked one,
    // a real machine may pick another.
    let mut race_sites: Vec<(String, usize)> = Vec::new();
    for (r, rk) in ranks.iter().enumerate() {
        for (p_idx, p) in rk.posted.iter().enumerate() {
            if p.from != AbsInt::Const(FCALL_ANY_SOURCE) {
                continue;
            }
            let mut sources: Vec<usize> = inbox[r]
                .iter()
                .filter(|&&m| tag_compatible(p.tag, msgs[m].tag))
                .map(|&m| msgs[m].src)
                .collect();
            sources.sort_unstable();
            sources.dedup();
            if sources.len() > 1 {
                let ev = recv_event(rk.events, p_idx);
                race_sites.push((ev.func.clone(), ev.at));
            }
        }
    }
    for (func, at) in dedup_sites(race_sites) {
        diags.push(Diagnostic::new(
            Severity::Possible,
            "wildcard-race",
            &func,
            at,
            "wildcard receive can match sends from more than one source; \
             the pairing depends on message timing"
                .to_string(),
        ));
    }

    if ranks.iter().all(|rk| rk.done()) {
        // Terminated cleanly: flag eager sends nobody received.
        let mut sites: Vec<(String, usize)> = Vec::new();
        for m in msgs.iter().filter(|m| !m.consumed) {
            let (func, at) = split_site(&m.site);
            sites.push((func, at));
        }
        for (func, at) in dedup_sites(sites) {
            diags.push(Diagnostic::new(
                Severity::Possible,
                "unmatched-send",
                &func,
                at,
                "eagerly-sent message is never received by any rank".to_string(),
            ));
        }
        return;
    }

    // Stuck: classify.
    let finished: Vec<usize> = (0..n).filter(|&r| ranks[r].done()).collect();
    let blocked: Vec<usize> = (0..n).filter(|&r| !ranks[r].done()).collect();
    let all_rendezvous = blocked
        .iter()
        .all(|&r| matches!(ranks[r].blocked, Blocked::Rendezvous { .. }));
    let any_collective = blocked
        .iter()
        .any(|&r| ranks[r].blocked == Blocked::Collective);

    if any_collective && !finished.is_empty() {
        let r = blocked
            .iter()
            .copied()
            .find(|&r| ranks[r].blocked == Blocked::Collective)
            .expect("checked");
        let ev = &ranks[r].events[ranks[r].cursor];
        diags.push(Diagnostic::new(
            definite,
            "collective-not-reached",
            &ev.func,
            ev.at,
            format!(
                "collective reached on some ranks but not others: rank {r} \
                 waits at the collective while rank {} has already finished",
                finished[0]
            ),
        ));
        return;
    }
    if all_rendezvous && !blocked.is_empty() {
        let r = blocked[0];
        if let Blocked::Rendezvous { msg } = ranks[r].blocked {
            let (func, at) = split_site(&msgs[msg].site);
            let peers: Vec<String> = blocked.iter().map(|r| r.to_string()).collect();
            diags.push(Diagnostic::new(
                definite,
                "rendezvous-cycle",
                &func,
                at,
                format!(
                    "mutual blocking sends above the eager threshold ({} bytes): \
                     ranks {} all wait in rendezvous for a receiver that never \
                     posts; the exchange deadlocks",
                    cfg.eager_threshold,
                    peers.join(", ")
                ),
            ));
            return;
        }
    }
    // Generic deadlock: report the first blocked receive (or wait).
    for &r in &blocked {
        let (code, site_ev, what): (&'static str, Event, String) = match ranks[r].blocked {
            Blocked::RecvWait { posted } => (
                "unmatched-recv",
                recv_event(ranks[r].events, posted).clone(),
                format!("rank {r}: receive is never matched by any send"),
            ),
            Blocked::Wait { req } => {
                let ev = ranks[r].events[..=ranks[r].cursor]
                    .iter()
                    .rev()
                    .find(|e| matches!(e.kind, EvKind::Wait { req: q } if q == req))
                    .unwrap_or(&ranks[r].events[ranks[r].cursor])
                    .clone();
                (
                    "unmatched-wait",
                    ev,
                    format!("rank {r}: wait can never complete (no matching peer operation)"),
                )
            }
            Blocked::Collective => {
                let ev = ranks[r].events[ranks[r].cursor].clone();
                (
                    "collective-not-reached",
                    ev,
                    format!("rank {r}: collective is never reached by the remaining ranks"),
                )
            }
            Blocked::Rendezvous { msg } => {
                let (func, at) = split_site(&msgs[msg].site);
                (
                    "rendezvous-cycle",
                    Event {
                        func,
                        at,
                        kind: EvKind::Barrier,
                    },
                    format!("rank {r}: rendezvous send is never consumed by a receive"),
                )
            }
            Blocked::No => continue,
        };
        diags.push(Diagnostic::new(
            definite,
            code,
            &site_ev.func,
            site_ev.at,
            what,
        ));
        return; // one stuck-state diagnostic is enough; the rest follows from it
    }
}

/// The global matching pass `step` re-runs after posting new state;
/// returns whether anything matched.
type Rematch<'a> = &'a mut dyn FnMut(&mut [Rank], &mut [Msg], &[Vec<usize>]) -> bool;

/// Advance rank `r` by at most one state transition. `rematch` runs the
/// global matching pass (returns whether anything matched).
fn step(
    r: usize,
    ranks: &mut Vec<Rank>,
    msgs: &mut Vec<Msg>,
    inbox: &mut [Vec<usize>],
    cfg: &LintConfig,
    rematch: Rematch<'_>,
) -> bool {
    match ranks[r].blocked {
        Blocked::Rendezvous { msg } => {
            if msgs[msg].consumed {
                ranks[r].blocked = Blocked::No;
                ranks[r].cursor += 1;
                true
            } else {
                false
            }
        }
        Blocked::RecvWait { posted } => {
            if ranks[r].posted[posted].matched.is_some() {
                ranks[r].blocked = Blocked::No;
                ranks[r].cursor += 1;
                true
            } else {
                false
            }
        }
        Blocked::Wait { req } => {
            if request_complete(&ranks[r], msgs, req) {
                ranks[r].blocked = Blocked::No;
                ranks[r].cursor += 1;
                true
            } else {
                false
            }
        }
        Blocked::Collective => false,
        Blocked::No => {
            if ranks[r].cursor >= ranks[r].events.len() {
                return false;
            }
            let ev = ranks[r].events[ranks[r].cursor].clone();
            match ev.kind {
                EvKind::Send {
                    to,
                    tag,
                    bytes,
                    req,
                } => {
                    let Some(dst) = to.konst() else {
                        // Unresolved destination (imprecise run): drop the
                        // message; verdicts are already possible-only.
                        ranks[r].cursor += 1;
                        return true;
                    };
                    let dst = dst as usize;
                    // Above the eager threshold the payload rendezvouses:
                    // a blocking send parks here; an isend parks at its
                    // wait instead (see `request_complete`).
                    let rendezvous = bytes.map(|b| b > cfg.eager_threshold).unwrap_or(false);
                    let m_idx = msgs.len();
                    msgs.push(Msg {
                        src: r,
                        tag,
                        rendezvous,
                        consumed: false,
                        site: ev.site(),
                    });
                    if dst < inbox.len() {
                        inbox[dst].push(m_idx);
                    }
                    if let Some(q) = req {
                        ranks[r].req_send.push((q, m_idx));
                    }
                    rematch(ranks, msgs, inbox);
                    if rendezvous && req.is_none() && !msgs[m_idx].consumed {
                        ranks[r].blocked = Blocked::Rendezvous { msg: m_idx };
                    } else {
                        ranks[r].cursor += 1;
                    }
                    true
                }
                EvKind::Recv { from, tag, req } => {
                    let p_idx = ranks[r].posted.len();
                    ranks[r].posted.push(Posted {
                        from,
                        tag,
                        matched: None,
                        req,
                    });
                    rematch(ranks, msgs, inbox);
                    if req.is_some() {
                        // Irecv: posting never blocks.
                        ranks[r].cursor += 1;
                    } else if ranks[r].posted[p_idx].matched.is_some() {
                        ranks[r].cursor += 1;
                    } else {
                        ranks[r].blocked = Blocked::RecvWait { posted: p_idx };
                    }
                    true
                }
                EvKind::Wait { req } => {
                    if request_complete(&ranks[r], msgs, req) {
                        ranks[r].cursor += 1;
                    } else {
                        ranks[r].blocked = Blocked::Wait { req };
                    }
                    true
                }
                EvKind::Barrier | EvKind::Bcast { .. } => {
                    ranks[r].blocked = Blocked::Collective;
                    true
                }
            }
        }
    }
}

/// Whether request `req` of rank `rk` has completed: an isend completes
/// once its message is consumed (or immediately when eager); an irecv
/// completes once its posted receive matched.
fn request_complete(rk: &Rank, msgs: &[Msg], req: usize) -> bool {
    if let Some(&(_, m_idx)) = rk.req_send.iter().find(|&&(q, _)| q == req) {
        let m = &msgs[m_idx];
        return !m.rendezvous || m.consumed;
    }
    if let Some(p) = rk.posted.iter().find(|p| p.req == Some(req)) {
        return p.matched.is_some();
    }
    // Unknown request (extractor lost it): optimistically complete.
    true
}

/// The event behind posted receive `p_idx` (the `p_idx`-th receive in
/// program order).
fn recv_event(events: &[Event], p_idx: usize) -> &Event {
    events
        .iter()
        .filter(|e| matches!(e.kind, EvKind::Recv { .. }))
        .nth(p_idx)
        .expect("posted receives mirror Recv events in order")
}

/// Receive-side tag against send-side tag. `-1` on the receive side is
/// the any-tag wildcard; unresolved tags (imprecise runs) are
/// optimistically compatible.
fn tag_compatible(recv_tag: AbsInt, send_tag: AbsInt) -> bool {
    match (recv_tag, send_tag) {
        (AbsInt::Const(ANY_TAG), _) => true,
        (AbsInt::Const(t), AbsInt::Const(mt)) => t == mt,
        _ => true,
    }
}

fn split_site(site: &str) -> (String, usize) {
    match site.rsplit_once('@') {
        Some((f, at)) => (f.to_string(), at.parse().unwrap_or(0)),
        None => (site.to_string(), 0),
    }
}

fn dedup_sites(mut sites: Vec<(String, usize)>) -> Vec<(String, usize)> {
    sites.sort();
    sites.dedup();
    sites
}
