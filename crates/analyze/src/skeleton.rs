//! Per-rank communication skeleton extraction.
//!
//! The cross-rank match checker needs, for each rank `r` in the modelled
//! communicator, the *sequence* of communication operations that rank
//! would perform. Motor IL makes this tractable: entry functions receive
//! their rank and communicator size as the first two integer arguments
//! (the convention every in-tree kernel follows), and peers, tags and
//! roots are ordinary stack values. We therefore run a small abstract
//! interpreter once per rank with the rank pinned to a constant,
//! constant-folding integers and following branches concretely wherever
//! the condition resolves. Loops unroll as they execute (a counted loop
//! over a constant trip count is fully precise); calls are inlined up to
//! a depth bound, which also carries `Req`-typed values across call
//! boundaries so non-blocking operations keep their identity.
//!
//! When a branch condition, peer, tag or root fails to resolve to a
//! constant — data-dependent control flow, heap reads — the skeleton is
//! marked *imprecise* and every downstream verdict that depends on it is
//! reported as [`Severity::Possible`] instead of
//! [`Severity::Definite`](crate::lint::Severity::Definite). Diagnostics
//! found *during* extraction (a peer outside the communicator on a
//! fully-resolved path) are definite regardless: the path up to that
//! point was concretely determined.
//!
//! [`Severity::Possible`]: crate::lint::Severity::Possible

use motor_interp::il::{FCallId, Module, Op, FCALL_ANY_SOURCE};
use motor_runtime::TypeRegistry;

use crate::lint::{Diagnostic, LintConfig, Severity};

/// An integer that is either statically known or unresolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsInt {
    /// Statically known value.
    Const(i64),
    /// Unresolved (data-dependent).
    Top,
}

impl AbsInt {
    /// The constant, if resolved.
    pub fn konst(self) -> Option<i64> {
        match self {
            AbsInt::Const(v) => Some(v),
            AbsInt::Top => None,
        }
    }

    fn map2(self, other: AbsInt, f: impl Fn(i64, i64) -> i64) -> AbsInt {
        match (self, other) {
            (AbsInt::Const(a), AbsInt::Const(b)) => AbsInt::Const(f(a, b)),
            _ => AbsInt::Top,
        }
    }
}

impl std::fmt::Display for AbsInt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbsInt::Const(v) => write!(f, "{v}"),
            AbsInt::Top => write!(f, "?"),
        }
    }
}

/// Abstract stack / local value. Only shapes the skeleton cares about
/// are distinguished; everything else is `Top`.
#[derive(Debug, Clone, Copy, PartialEq)]
enum AV {
    /// Integer (possibly constant).
    Int(AbsInt),
    /// Primitive array with a possibly-known length (sizes the message
    /// for the eager/rendezvous decision).
    Arr {
        kind: motor_runtime::ElemKind,
        len: AbsInt,
    },
    /// Class instance (sized from the registry).
    Ref(motor_runtime::ClassId),
    /// An in-flight request minted by `Isend`/`Irecv` event `id`.
    Req(usize),
    /// Anything else (floats, null, object arrays, unknown refs).
    Top,
}

impl AV {
    fn as_int(self) -> AbsInt {
        match self {
            AV::Int(v) => v,
            _ => AbsInt::Top,
        }
    }
}

/// One communication operation a rank performs.
#[derive(Debug, Clone)]
pub struct Event {
    /// Function containing the operation.
    pub func: String,
    /// Instruction index of the `FCall`.
    pub at: usize,
    /// The operation.
    pub kind: EvKind,
}

impl Event {
    /// `func@pc` provenance string.
    pub fn site(&self) -> String {
        format!("{}@{}", self.func, self.at)
    }
}

/// The operation kinds the matcher models. Object-oriented transports
/// (`Osend`/`Orecv`) are excluded: they are layered over the same
/// point-to-point machinery and their matching is a host concern.
#[derive(Debug, Clone)]
pub enum EvKind {
    /// Point-to-point send. `req` is `Some` for `Isend`.
    Send {
        to: AbsInt,
        tag: AbsInt,
        bytes: Option<u64>,
        req: Option<usize>,
    },
    /// Point-to-point receive. `from` may be the any-source wildcard
    /// (`-1`); `tag` may be the any-tag wildcard (`-1`). `req` is `Some`
    /// for `Irecv`.
    Recv {
        from: AbsInt,
        tag: AbsInt,
        req: Option<usize>,
    },
    /// Complete the non-blocking operation that minted request `req`.
    Wait { req: usize },
    /// Barrier across the communicator.
    Barrier,
    /// Broadcast from `root`.
    Bcast { root: AbsInt },
}

/// One rank's extracted communication sequence.
#[derive(Debug)]
pub struct Skeleton {
    /// The modelled rank.
    pub rank: i64,
    /// Operations in program order.
    pub events: Vec<Event>,
    /// Whether extraction reached the entry function's return. `false`
    /// when an unresolved branch, the step budget or the call-depth
    /// bound stopped it; the event prefix is still concrete.
    pub complete: bool,
}

impl Skeleton {
    /// Whether every matching-relevant operand in every event resolved
    /// to a constant (any-source / any-tag wildcards count as resolved).
    pub fn operands_resolved(&self) -> bool {
        self.events.iter().all(|e| match e.kind {
            EvKind::Send { to, tag, .. } => to.konst().is_some() && tag.konst().is_some(),
            EvKind::Recv { from, tag, .. } => from.konst().is_some() && tag.konst().is_some(),
            EvKind::Bcast { root } => root.konst().is_some(),
            EvKind::Wait { .. } | EvKind::Barrier => true,
        })
    }
}

/// Extract the skeleton of `entry` for one concrete rank. Diagnostics
/// discovered on the way (peer out of range on a resolved path) are
/// appended to `diags`.
pub fn extract(
    module: &Module,
    reg: &TypeRegistry,
    cfg: &LintConfig,
    entry: u16,
    rank: i64,
    diags: &mut Vec<Diagnostic>,
) -> Skeleton {
    let mut ex = Extractor {
        module,
        reg,
        cfg,
        rank,
        steps: 0,
        next_req: 0,
        events: Vec::new(),
        complete: true,
        diags,
    };
    let f = &module.functions[entry as usize];
    let mut args = vec![AV::Top; f.argc as usize];
    if let Some(a) = args.get_mut(cfg.rank_param) {
        *a = AV::Int(AbsInt::Const(rank));
    }
    if let Some(a) = args.get_mut(cfg.size_param) {
        *a = AV::Int(AbsInt::Const(cfg.ranks as i64));
    }
    ex.exec(entry as usize, args, cfg.call_depth);
    Skeleton {
        rank,
        events: ex.events,
        complete: ex.complete,
    }
}

struct Extractor<'a> {
    module: &'a Module,
    reg: &'a TypeRegistry,
    cfg: &'a LintConfig,
    rank: i64,
    steps: usize,
    next_req: usize,
    events: Vec<Event>,
    complete: bool,
    diags: &'a mut Vec<Diagnostic>,
}

impl Extractor<'_> {
    /// Abstractly execute function `fidx`. Returns the return value, or
    /// `None` when extraction had to stop (the skeleton is then marked
    /// incomplete).
    fn exec(&mut self, fidx: usize, args: Vec<AV>, depth: usize) -> Option<Option<AV>> {
        let f = &self.module.functions[fidx];
        let mut locals = args;
        locals.resize(f.locals as usize, AV::Int(AbsInt::Const(0)));
        let mut stack: Vec<AV> = Vec::new();
        let mut pc = 0usize;
        macro_rules! pop {
            () => {
                stack.pop().unwrap_or(AV::Top)
            };
        }
        macro_rules! binop {
            ($f:expr) => {{
                let b = pop!().as_int();
                let a = pop!().as_int();
                stack.push(AV::Int(a.map2(b, $f)));
            }};
        }
        loop {
            self.steps += 1;
            if self.steps > self.cfg.step_budget {
                self.complete = false;
                return None;
            }
            let Some(&op) = f.code.get(pc) else {
                self.complete = false;
                return None;
            };
            let mut next = pc + 1;
            match op {
                Op::PushI(v) => stack.push(AV::Int(AbsInt::Const(v))),
                Op::PushF(_) | Op::PushNull => stack.push(AV::Top),
                Op::Dup => {
                    let t = *stack.last().unwrap_or(&AV::Top);
                    stack.push(t);
                }
                Op::Pop => {
                    pop!();
                }
                Op::Load(i) => stack.push(locals[i as usize]),
                Op::Store(i) => locals[i as usize] = pop!(),
                Op::Add => binop!(i64::wrapping_add),
                Op::Sub => binop!(i64::wrapping_sub),
                Op::Mul => binop!(i64::wrapping_mul),
                Op::Div => binop!(|a, b: i64| if b == 0 { 0 } else { a.wrapping_div(b) }),
                Op::Rem => binop!(|a, b: i64| if b == 0 { 0 } else { a.wrapping_rem(b) }),
                Op::Neg => {
                    let a = pop!().as_int();
                    stack.push(AV::Int(a.map2(AbsInt::Const(0), |a, _| a.wrapping_neg())));
                }
                Op::FAdd | Op::FSub | Op::FMul | Op::FDiv => {
                    pop!();
                    pop!();
                    stack.push(AV::Top);
                }
                Op::I2F => {
                    pop!();
                    stack.push(AV::Top);
                }
                Op::F2I => {
                    pop!();
                    stack.push(AV::Int(AbsInt::Top));
                }
                Op::CmpEq => {
                    let b = pop!();
                    let a = pop!();
                    let r = match (a, b) {
                        (AV::Int(x), AV::Int(y)) => x.map2(y, |x, y| (x == y) as i64),
                        _ => AbsInt::Top,
                    };
                    stack.push(AV::Int(r));
                }
                Op::CmpLt => binop!(|a, b| (a < b) as i64),
                Op::CmpLe => binop!(|a, b| (a <= b) as i64),
                Op::Br(rel) => next = (pc as i64 + 1 + rel as i64) as usize,
                Op::BrTrue(rel) | Op::BrFalse(rel) => {
                    let want_nonzero = matches!(op, Op::BrTrue(_));
                    match pop!().as_int() {
                        AbsInt::Const(c) => {
                            if (c != 0) == want_nonzero {
                                next = (pc as i64 + 1 + rel as i64) as usize;
                            }
                        }
                        AbsInt::Top => {
                            self.complete = false;
                            return None;
                        }
                    }
                }
                Op::Call(idx) => {
                    if depth == 0 {
                        self.complete = false;
                        return None;
                    }
                    let callee = &self.module.functions[idx as usize];
                    let argc = callee.argc as usize;
                    let returns = callee.returns_value;
                    let mut callee_args = vec![AV::Top; argc];
                    for slot in callee_args.iter_mut().rev() {
                        *slot = pop!();
                    }
                    let ret = self.exec(idx as usize, callee_args, depth - 1)?;
                    if returns {
                        stack.push(ret.unwrap_or(AV::Top));
                    }
                }
                Op::Ret => {
                    return Some(if f.returns_value { stack.pop() } else { None });
                }
                Op::New(c) => stack.push(AV::Ref(c)),
                Op::NewArr(k) => {
                    let len = pop!().as_int();
                    stack.push(AV::Arr { kind: k, len });
                }
                Op::NewObjArr(_) => {
                    pop!();
                    stack.push(AV::Top);
                }
                Op::LdFldI(_) => {
                    pop!();
                    stack.push(AV::Int(AbsInt::Top));
                }
                Op::LdFldF(_) | Op::LdFldR(_) => {
                    pop!();
                    stack.push(AV::Top);
                }
                Op::StFldI(_) | Op::StFldF(_) | Op::StFldR(_) => {
                    pop!();
                    pop!();
                }
                Op::LdElemI => {
                    pop!();
                    pop!();
                    stack.push(AV::Int(AbsInt::Top));
                }
                Op::LdElemF | Op::LdElemR => {
                    pop!();
                    pop!();
                    stack.push(AV::Top);
                }
                Op::StElemI | Op::StElemF | Op::StElemR => {
                    pop!();
                    pop!();
                    pop!();
                }
                Op::ArrLen => {
                    let a = pop!();
                    let len = match a {
                        AV::Arr { len, .. } => len,
                        _ => AbsInt::Top,
                    };
                    stack.push(AV::Int(len));
                }
                Op::FCall(id) => {
                    if !self.fcall(id, &mut stack, &f.name, pc) {
                        return None;
                    }
                }
            }
            pc = next;
        }
    }

    /// Byte size of a transport buffer, when statically known.
    fn bytes_of(&self, buf: AV) -> Option<u64> {
        match buf {
            AV::Arr { kind, len } => len
                .konst()
                .filter(|&n| n >= 0)
                .map(|n| n as u64 * kind.size() as u64),
            AV::Ref(c) => Some(self.reg.table(c).instance_size as u64),
            _ => None,
        }
    }

    fn definite(&mut self, func: &str, at: usize, code: &'static str, msg: String) {
        self.diags
            .push(Diagnostic::new(Severity::Definite, code, func, at, msg));
    }

    /// Handle one message-passing intrinsic. Returns `false` when the
    /// operation is statically erroneous badly enough to stop this
    /// rank's extraction (the error itself is already recorded).
    fn fcall(&mut self, id: FCallId, stack: &mut Vec<AV>, func: &str, pc: usize) -> bool {
        let ranks = self.cfg.ranks as i64;
        let mut pop = || stack.pop().unwrap_or(AV::Top);
        match id {
            FCallId::MpSend | FCallId::MpIsend => {
                let tag = pop().as_int();
                let to = pop().as_int();
                let buf = pop();
                if let Some(d) = to.konst() {
                    if d < 0 || d >= ranks {
                        self.definite(
                            func,
                            pc,
                            "peer-range",
                            format!(
                                "rank {}: send targets rank {d}, outside the \
                                 communicator (size {ranks})",
                                self.rank
                            ),
                        );
                        self.complete = false;
                        return false;
                    }
                }
                let req = matches!(id, FCallId::MpIsend).then(|| {
                    let r = self.next_req;
                    self.next_req += 1;
                    r
                });
                if let Some(r) = req {
                    stack.push(AV::Req(r));
                }
                let bytes = self.bytes_of(buf);
                self.events.push(Event {
                    func: func.to_string(),
                    at: pc,
                    kind: EvKind::Send {
                        to,
                        tag,
                        bytes,
                        req,
                    },
                });
            }
            FCallId::MpRecv | FCallId::MpIrecv => {
                let tag = pop().as_int();
                let from = pop().as_int();
                let _buf = pop();
                if let Some(s) = from.konst() {
                    if s != FCALL_ANY_SOURCE && (s < 0 || s >= ranks) {
                        self.definite(
                            func,
                            pc,
                            "peer-range",
                            format!(
                                "rank {}: receive names source rank {s}, outside \
                                 the communicator (size {ranks})",
                                self.rank
                            ),
                        );
                        self.complete = false;
                        return false;
                    }
                }
                let req = matches!(id, FCallId::MpIrecv).then(|| {
                    let r = self.next_req;
                    self.next_req += 1;
                    r
                });
                if let Some(r) = req {
                    stack.push(AV::Req(r));
                }
                self.events.push(Event {
                    func: func.to_string(),
                    at: pc,
                    kind: EvKind::Recv { from, tag, req },
                });
            }
            FCallId::MpWait => {
                let r = pop();
                match r {
                    AV::Req(req) => self.events.push(Event {
                        func: func.to_string(),
                        at: pc,
                        kind: EvKind::Wait { req },
                    }),
                    // A request whose origin the extractor lost (stored
                    // through the heap, beyond the depth bound): the wait
                    // order is unknown — stop precisely here.
                    _ => {
                        self.complete = false;
                        return false;
                    }
                }
            }
            FCallId::MpBarrier => self.events.push(Event {
                func: func.to_string(),
                at: pc,
                kind: EvKind::Barrier,
            }),
            FCallId::MpBcast => {
                let root = pop().as_int();
                let _buf = pop();
                if let Some(r) = root.konst() {
                    if r < 0 || r >= ranks {
                        self.definite(
                            func,
                            pc,
                            "peer-range",
                            format!(
                                "rank {}: broadcast root {r} is outside the \
                                 communicator (size {ranks})",
                                self.rank
                            ),
                        );
                        self.complete = false;
                        return false;
                    }
                }
                self.events.push(Event {
                    func: func.to_string(),
                    at: pc,
                    kind: EvKind::Bcast { root },
                });
            }
            FCallId::Osend => {
                pop();
                pop();
                pop();
            }
            FCallId::Orecv(c) => {
                pop();
                pop();
                stack.push(AV::Ref(c));
            }
        }
        true
    }
}
