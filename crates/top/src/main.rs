//! `motor-top` — a real-time terminal dashboard over a Motor telemetry
//! endpoint.
//!
//! Attach to a cluster started with `MOTOR_TELEMETRY=<addr>` (or
//! `ClusterConfig::builder().telemetry(..)`) and watch every rank live:
//! message and byte rates, the eager/rendezvous protocol mix, time-bucket
//! bars, comm/compute overlap, GC stall percentile sparklines, the
//! in-flight op table with heartbeat ages, and any anomalies the
//! `motor-doctor` watchdog has diagnosed.
//!
//! ```text
//! motor-top [ADDR] [--once] [--raw ENDPOINT] [--interval-ms N]
//! ```
//!
//! * `ADDR` — the telemetry endpoint (default `127.0.0.1:9612`).
//! * `--once` — validate `/metrics` against the exposition format, render
//!   one dashboard screen and exit (no screen clearing; scriptable).
//! * `--raw ENDPOINT` — fetch `/ENDPOINT` and print the body verbatim
//!   (`metrics`, `healthz`, `flight`, `frames`); exit nonzero unless the
//!   server answered 200.
//! * `--interval-ms N` — refresh period in live mode (default 1000).
//!
//! The client speaks the same hand-rolled HTTP/1.1 and JSON the server
//! and `motor-obs` use — no dependencies beyond `motor-obs` itself.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use motor_obs::export::json::{self, Value};

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

fn usage() -> ! {
    eprintln!("usage: motor-top [ADDR] [--once] [--raw ENDPOINT] [--interval-ms N]");
    std::process::exit(2);
}

struct Args {
    addr: String,
    once: bool,
    raw: Option<String>,
    interval: Duration,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:9612".to_string(),
        once: false,
        raw: None,
        interval: Duration::from_millis(1000),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--once" => args.once = true,
            "--raw" => match it.next() {
                Some(e) => args.raw = Some(e.trim_start_matches('/').to_string()),
                None => usage(),
            },
            "--interval-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(ms) => args.interval = Duration::from_millis(ms),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => args.addr = other.to_string(),
            _ => usage(),
        }
    }
    args
}

/// Minimal HTTP/1.1 GET: returns `(status, body)`.
fn http_get(addr: &str, path: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("send: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| "malformed response".to_string())?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| "malformed status line".to_string())?;
    Ok((status, body.to_string()))
}

// ---------------------------------------------------------------------------
// Frame model (parsed from the /frames JSON; shared schema with the server)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct RankView {
    group: u64,
    rank: u64,
    label: String,
    done: bool,
    queues: (u64, u64, u64, u64),
    heap_used: u64,
    heap_capacity: u64,
    gc_p50: u64,
    gc_p99: u64,
    counters: Vec<(String, u64)>,
    inflight: Vec<InflightView>,
}

#[derive(Debug, Clone)]
struct InflightView {
    kind: String,
    peer: u64,
    tag: i64,
    since_nanos: u64,
    beat_nanos: u64,
    beats: u64,
}

#[derive(Debug, Clone, Default)]
struct FrameView {
    seq: u64,
    t_nanos: u64,
    window_nanos: u64,
    ranks: Vec<RankView>,
}

impl RankView {
    fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    fn msgs_out(&self) -> u64 {
        self.counter("sends_eager")
            + self.counter("sends_rndv")
            + self.counter("sends_sync")
            + self.counter("sends_self")
    }

    fn msgs_in(&self) -> u64 {
        self.counter("recvs_posted") + self.counter("recvs_unexpected")
    }

    fn overlap_ratio(&self) -> Option<f64> {
        let inflight = self.counter("prof_inflight_nanos");
        if inflight == 0 {
            return None;
        }
        Some(self.counter("prof_overlap_nanos") as f64 / inflight as f64)
    }
}

fn parse_rank(v: &Value) -> Option<RankView> {
    let q = v.get("queues")?;
    let counters = match v.get("counters") {
        Some(Value::Obj(m)) => m
            .iter()
            .filter_map(|(k, x)| x.as_u64().map(|n| (k.clone(), n)))
            .collect(),
        _ => Vec::new(),
    };
    let inflight = v
        .get("inflight")
        .and_then(Value::as_array)
        .map(|ops| {
            ops.iter()
                .filter_map(|op| {
                    Some(InflightView {
                        kind: op.get("kind")?.as_str()?.to_string(),
                        peer: op.get("peer")?.as_u64()?,
                        tag: op.get("tag")?.as_i64()?,
                        since_nanos: op.get("since_nanos")?.as_u64()?,
                        beat_nanos: op.get("beat_nanos")?.as_u64()?,
                        beats: op.get("beats")?.as_u64()?,
                    })
                })
                .collect()
        })
        .unwrap_or_default();
    Some(RankView {
        group: v.get("group")?.as_u64()?,
        rank: v.get("rank")?.as_u64()?,
        label: v.get("label")?.as_str()?.to_string(),
        done: matches!(v.get("done"), Some(Value::Bool(true))),
        queues: (
            q.get("posted")?.as_u64()?,
            q.get("unexpected")?.as_u64()?,
            q.get("pending_sends")?.as_u64()?,
            q.get("active_recvs")?.as_u64()?,
        ),
        heap_used: v.get("heap_used_bytes")?.as_u64()?,
        heap_capacity: v.get("heap_capacity_bytes")?.as_u64()?,
        gc_p50: v.get("gc_stall_p50_nanos")?.as_u64()?,
        gc_p99: v.get("gc_stall_p99_nanos")?.as_u64()?,
        counters,
        inflight,
    })
}

fn parse_frames(body: &str) -> Result<Vec<FrameView>, String> {
    let v = json::parse(body)?;
    if v.get("motor_frames").and_then(Value::as_u64) != Some(1) {
        return Err("not a motor /frames document".to_string());
    }
    let frames = v
        .get("frames")
        .and_then(Value::as_array)
        .ok_or("missing frames array")?;
    Ok(frames
        .iter()
        .filter_map(|f| {
            Some(FrameView {
                seq: f.get("seq")?.as_u64()?,
                t_nanos: f.get("t_nanos")?.as_u64()?,
                window_nanos: f.get("window_nanos")?.as_u64()?,
                ranks: f
                    .get("ranks")?
                    .as_array()?
                    .iter()
                    .filter_map(parse_rank)
                    .collect(),
            })
        })
        .collect())
}

// ---------------------------------------------------------------------------
// Formatting helpers
// ---------------------------------------------------------------------------

fn per_sec(count: u64, window_nanos: u64) -> f64 {
    motor_obs::telemetry::per_sec(count, window_nanos)
}

fn fmt_count(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.1}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.1}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.1}k", x / 1e3)
    } else {
        format!("{x:.0}")
    }
}

fn fmt_bytes(x: f64) -> String {
    if x >= 1024.0 * 1024.0 * 1024.0 {
        format!("{:.1}GiB", x / (1024.0 * 1024.0 * 1024.0))
    } else if x >= 1024.0 * 1024.0 {
        format!("{:.1}MiB", x / (1024.0 * 1024.0))
    } else if x >= 1024.0 {
        format!("{:.1}KiB", x / 1024.0)
    } else {
        format!("{x:.0}B")
    }
}

fn fmt_nanos(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.1}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.1}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}µs", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

/// Map a series onto the eight spark glyphs, scaled to the series max.
fn sparkline(series: &[u64]) -> String {
    let max = series.iter().copied().max().unwrap_or(0);
    series
        .iter()
        .map(|&v| {
            if max == 0 {
                SPARK[0]
            } else {
                // Nonzero values always render at least one step up.
                let idx = ((v as f64 / max as f64) * 7.0).ceil() as usize;
                SPARK[idx.min(7)]
            }
        })
        .collect()
}

/// A `width`-character bar showing `frac` (0..=1) filled.
fn bar(frac: f64, width: usize) -> String {
    let filled = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = String::new();
    for i in 0..width {
        s.push(if i < filled { '█' } else { '·' });
    }
    s
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// Named time buckets shown as bars (fraction of the window each).
const BUCKETS: [(&str, &str); 5] = [
    ("cpu", "prof_compute_nanos"),
    ("wait", "prof_comm_wait_nanos"),
    ("prog", "prof_progress_nanos"),
    ("gc", "prof_gc_nanos"),
    ("ser", "prof_serialize_nanos"),
];

fn render_rank(out: &mut String, r: &RankView, frame: &FrameView, history: &[FrameView]) {
    let w = frame.window_nanos;
    let eager = r.counter("sends_eager");
    let rndv = r.counter("sends_rndv");
    let sends = r.msgs_out().max(1);
    out.push_str(&format!(
        "{:<12} {} {:>8} msg/s out  {:>8} msg/s in  {:>10}/s out  {:>10}/s in\n",
        r.label,
        if r.done { "done " } else { "run  " },
        fmt_count(per_sec(r.msgs_out(), w)),
        fmt_count(per_sec(r.msgs_in(), w)),
        fmt_bytes(per_sec(r.counter("chan_bytes_out"), w)),
        fmt_bytes(per_sec(r.counter("chan_bytes_in"), w)),
    ));
    out.push_str(&format!(
        "  protocol  eager {:>3.0}%  rndv {:>3.0}%   queues p/u/s/a {}/{}/{}/{}   heap {} / {}\n",
        eager as f64 * 100.0 / sends as f64,
        rndv as f64 * 100.0 / sends as f64,
        r.queues.0,
        r.queues.1,
        r.queues.2,
        r.queues.3,
        fmt_bytes(r.heap_used as f64),
        fmt_bytes(r.heap_capacity as f64),
    ));
    // Time buckets: fraction of this window's wall clock per class.
    out.push_str("  time     ");
    for (name, counter) in BUCKETS {
        let frac = if w == 0 {
            0.0
        } else {
            r.counter(counter) as f64 / w as f64
        };
        out.push_str(&format!(" {name} {} {:>3.0}%", bar(frac, 8), frac * 100.0));
    }
    out.push('\n');
    let overlap = r
        .overlap_ratio()
        .map_or("   -".to_string(), |o| format!("{:>3.0}%", o * 100.0));
    // Stall sparklines over the retained frames (this rank's history).
    let series = |pick: fn(&RankView) -> u64| -> Vec<u64> {
        history
            .iter()
            .filter_map(|f| {
                f.ranks
                    .iter()
                    .find(|x| x.group == r.group && x.rank == r.rank)
                    .map(pick)
            })
            .collect()
    };
    let p50s = series(|x| x.gc_p50);
    let p99s = series(|x| x.gc_p99);
    out.push_str(&format!(
        "  overlap {overlap}   gc stall p50 {} {:>8}   p99 {} {:>8}\n",
        sparkline(&p50s),
        fmt_nanos(r.gc_p50),
        sparkline(&p99s),
        fmt_nanos(r.gc_p99),
    ));
    for op in &r.inflight {
        let age = frame.t_nanos.saturating_sub(op.since_nanos);
        let beat_age = frame.t_nanos.saturating_sub(op.beat_nanos);
        out.push_str(&format!(
            "  inflight {:<12} peer {:<3} tag {:<6} age {:>8}  last beat {:>8} ago ({} beats)\n",
            op.kind,
            op.peer,
            op.tag,
            fmt_nanos(age),
            fmt_nanos(beat_age),
            op.beats
        ));
    }
}

/// One full dashboard screen from the frame history plus `/healthz`.
fn render(frames: &[FrameView], healthz: Option<&Value>, addr: &str) -> String {
    let mut out = String::new();
    let Some(latest) = frames.last() else {
        out.push_str(&format!(
            "motor-top @ {addr} — no frames yet (cluster starting, or no ranks registered)\n"
        ));
        return out;
    };
    let status = healthz
        .and_then(|h| h.get("status"))
        .and_then(Value::as_str)
        .unwrap_or("?");
    let dropped = healthz
        .and_then(|h| h.get("trace_events_dropped"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    out.push_str(&format!(
        "motor-top @ {addr}   frame #{} (window {})   ranks {}   health: {status}\n\n",
        latest.seq,
        fmt_nanos(latest.window_nanos),
        latest.ranks.len(),
    ));
    for r in &latest.ranks {
        render_rank(&mut out, r, latest, frames);
        out.push('\n');
    }
    if dropped > 0 {
        out.push_str(&format!(
            "warning: {dropped} trace events dropped (grow --event-capacity to keep full rings)\n"
        ));
    }
    if let Some(anoms) = healthz
        .and_then(|h| h.get("anomalies"))
        .and_then(Value::as_array)
    {
        for a in anoms {
            out.push_str(&format!(
                "anomaly: {} rank {} — {}\n",
                a.get("kind").and_then(Value::as_str).unwrap_or("?"),
                a.get("rank").and_then(Value::as_u64).unwrap_or(0),
                a.get("detail").and_then(Value::as_str).unwrap_or(""),
            ));
        }
    }
    out
}

fn fetch_screen(addr: &str) -> Result<String, String> {
    let (status, body) = http_get(addr, "/frames")?;
    if status != 200 {
        return Err(format!("/frames answered {status}"));
    }
    let frames = parse_frames(&body)?;
    // /healthz may legitimately answer 503 (anomalies); render either way.
    let healthz = http_get(addr, "/healthz")
        .ok()
        .and_then(|(_, b)| json::parse(&b).ok());
    Ok(render(&frames, healthz.as_ref(), addr))
}

/// Write to stdout without panicking when the reader hangs up — piping
/// into `head`/`jq` closes the pipe early, which `print!` treats as
/// fatal. A broken pipe just ends the program quietly.
fn emit(text: &str) {
    let mut out = std::io::stdout().lock();
    if let Err(e) = out.write_all(text.as_bytes()) {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        eprintln!("motor-top: cannot write to stdout: {e}");
        std::process::exit(1);
    }
}

fn main() {
    let args = parse_args();

    if let Some(endpoint) = &args.raw {
        match http_get(&args.addr, &format!("/{endpoint}")) {
            Ok((status, body)) => {
                emit(&body);
                if status != 200 {
                    eprintln!("motor-top: /{endpoint} answered {status}");
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("motor-top: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if args.once {
        // Snapshot mode: validate the exposition document, then render one
        // screen. Nonzero exit on any failure so CI can gate on it.
        match http_get(&args.addr, "/metrics") {
            Ok((200, body)) => {
                if let Err(e) = motor_obs::check_prometheus_text(&body) {
                    eprintln!("motor-top: /metrics failed exposition check: {e}");
                    std::process::exit(2);
                }
            }
            Ok((status, _)) => {
                eprintln!("motor-top: /metrics answered {status}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("motor-top: {e}");
                std::process::exit(1);
            }
        }
        match fetch_screen(&args.addr) {
            Ok(screen) => emit(&screen),
            Err(e) => {
                eprintln!("motor-top: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    // Live mode: redraw until the endpoint goes away (cluster exit).
    let mut misses = 0u32;
    loop {
        match fetch_screen(&args.addr) {
            Ok(screen) => {
                misses = 0;
                // Clear screen + home, then the frame.
                emit(&format!("\x1b[2J\x1b[H{screen}"));
                let _ = std::io::stdout().flush();
            }
            Err(e) => {
                misses += 1;
                if misses >= 3 {
                    eprintln!("motor-top: {e}; giving up");
                    std::process::exit(1);
                }
            }
        }
        std::thread::sleep(args.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> String {
        r#"{"motor_frames":1,"capacity":240,"frames":[
          {"seq":1,"t_nanos":1000000,"window_nanos":0,"ranks":[]},
          {"seq":2,"t_nanos":2000000,"window_nanos":1000000,"ranks":[
            {"group":0,"rank":0,"label":"rank 0","done":false,
             "queues":{"posted":1,"unexpected":0,"pending_sends":2,"active_recvs":0},
             "heap_used_bytes":1048576,"heap_capacity_bytes":16777216,
             "gc_stall_p50_nanos":1100,"gc_stall_p99_nanos":2000,
             "counters":{"sends_eager":10,"chan_bytes_out":4096,"prof_inflight_nanos":500000,"prof_overlap_nanos":250000},
             "inflight":[{"kind":"recv","arg":0,"peer":1,"tag":7,"since_nanos":1500000,"beat_nanos":1900000,"beats":3}]},
            {"group":0,"rank":1,"label":"rank 1","done":true,
             "queues":{"posted":0,"unexpected":0,"pending_sends":0,"active_recvs":0},
             "heap_used_bytes":0,"heap_capacity_bytes":0,
             "gc_stall_p50_nanos":0,"gc_stall_p99_nanos":0,
             "counters":{},"inflight":[]}
          ]}
        ]}"#
        .to_string()
    }

    #[test]
    fn frames_parse_into_views() {
        let frames = parse_frames(&sample_frames()).expect("parses");
        assert_eq!(frames.len(), 2);
        let f = &frames[1];
        assert_eq!(f.seq, 2);
        assert_eq!(f.ranks.len(), 2);
        let r0 = &f.ranks[0];
        assert_eq!(r0.msgs_out(), 10);
        assert_eq!(r0.counter("chan_bytes_out"), 4096);
        assert_eq!(r0.queues, (1, 0, 2, 0));
        assert_eq!(r0.inflight.len(), 1);
        assert_eq!(r0.inflight[0].peer, 1);
        assert!((r0.overlap_ratio().unwrap() - 0.5).abs() < 1e-9);
        assert!(f.ranks[1].done);
        assert_eq!(f.ranks[1].overlap_ratio(), None);
    }

    #[test]
    fn render_shows_every_rank_and_inflight_age() {
        let frames = parse_frames(&sample_frames()).unwrap();
        let health =
            json::parse(r#"{"status":"ok","trace_events_dropped":9,"anomalies":[]}"#).unwrap();
        let screen = render(&frames, Some(&health), "127.0.0.1:9612");
        assert!(screen.contains("rank 0"), "{screen}");
        assert!(screen.contains("rank 1"), "{screen}");
        assert!(screen.contains("health: ok"));
        // 10 msgs over 1ms = 10k msg/s.
        assert!(screen.contains("10.0k"), "{screen}");
        // In-flight recv from rank 0 with its heartbeat age (2000000-1900000).
        assert!(screen.contains("inflight recv"), "{screen}");
        assert!(screen.contains("100.0µs ago"), "{screen}");
        assert!(
            screen.contains("warning: 9 trace events dropped"),
            "{screen}"
        );
    }

    #[test]
    fn render_without_frames_is_calm() {
        let screen = render(&[], None, "x");
        assert!(screen.contains("no frames yet"));
    }

    #[test]
    fn sparkline_and_bar_shapes() {
        assert_eq!(sparkline(&[0, 0]), "▁▁");
        let s = sparkline(&[0, 1, 4, 8]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.ends_with('█'));
        assert_eq!(bar(0.5, 8), "████····");
        assert_eq!(bar(2.0, 4), "████");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_count(950.0), "950");
        assert_eq!(fmt_count(10_000.0), "10.0k");
        assert_eq!(fmt_bytes(2048.0), "2.0KiB");
        assert_eq!(fmt_nanos(1_500), "1.5µs");
        assert_eq!(fmt_nanos(2_000_000_000), "2.0s");
    }
}
