//! The paper's ping-pong timing protocol (§8).

use motor_pal::clock::Stopwatch;

/// "Each experiment performed 200 iterations, the last 100 of which were
/// timed. ... Each buffer size was tested three times. The average time in
/// microseconds per iteration was calculated for all three experiments."
#[derive(Debug, Clone, Copy)]
pub struct PingPongProtocol {
    /// Untimed warm-up iterations.
    pub warmup: usize,
    /// Timed iterations.
    pub timed: usize,
    /// Repeats whose results are averaged.
    pub repeats: usize,
}

/// The paper's protocol: 100 warm-up + 100 timed iterations, 3 repeats.
pub const DEFAULT_PROTOCOL: PingPongProtocol = PingPongProtocol {
    warmup: 100,
    timed: 100,
    repeats: 3,
};

/// A quick protocol for CI/Criterion contexts.
pub const QUICK_PROTOCOL: PingPongProtocol = PingPongProtocol {
    warmup: 10,
    timed: 20,
    repeats: 1,
};

impl PingPongProtocol {
    /// Time `iteration` under this protocol from the *measuring* rank.
    /// Returns the mean microseconds per iteration across repeats.
    pub fn measure(&self, mut iteration: impl FnMut()) -> f64 {
        let mut total_us = 0.0;
        for _ in 0..self.repeats {
            for _ in 0..self.warmup {
                iteration();
            }
            let sw = Stopwatch::start();
            for _ in 0..self.timed {
                iteration();
            }
            total_us += sw.elapsed_micros_f64() / self.timed as f64;
        }
        total_us / self.repeats as f64
    }

    /// Iterations the *non-measuring* rank must serve.
    pub fn total_iterations(&self) -> usize {
        (self.warmup + self.timed) * self.repeats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        assert_eq!(DEFAULT_PROTOCOL.warmup + DEFAULT_PROTOCOL.timed, 200);
        assert_eq!(DEFAULT_PROTOCOL.timed, 100);
        assert_eq!(DEFAULT_PROTOCOL.repeats, 3);
        assert_eq!(DEFAULT_PROTOCOL.total_iterations(), 600);
    }

    #[test]
    fn measure_counts_only_timed_iterations() {
        let mut calls = 0usize;
        let p = PingPongProtocol {
            warmup: 5,
            timed: 10,
            repeats: 2,
        };
        let us = p.measure(|| {
            calls += 1;
            std::hint::black_box(());
        });
        assert_eq!(calls, p.total_iterations());
        assert!(us >= 0.0);
    }

    #[test]
    fn measure_tracks_real_time() {
        let p = PingPongProtocol {
            warmup: 0,
            timed: 5,
            repeats: 1,
        };
        let us = p.measure(|| std::thread::sleep(std::time::Duration::from_millis(1)));
        assert!(us >= 1000.0, "each iteration sleeps 1 ms, got {us} µs");
    }
}
