//! Application benchmark workloads on the typed `motor-api` surface.
//!
//! Three kernels exercise the API the way applications do, each
//! self-verifying and deterministic:
//!
//! * [`cg`] — an NPB-style conjugate-gradient solve on a 2-D Laplacian:
//!   `allgather_slice` for the shared direction vector, scalar
//!   `allreduce` for the dot products.
//! * [`bfs`] — level-synchronous breadth-first search on a synthetic
//!   graph, exchanging frontiers as `#[derive(Transportable)]` objects
//!   through `gather_objs`/`bcast_obj`.
//! * [`pipeline`] — a streaming pipeline whose compute stages are
//!   **dynamically spawned** Motor child VMs: stage 1 streams typed
//!   slices to stage 2 inside the children's world; stage 2 reports
//!   batches to the parent over the intercommunicator object transport.
//!
//! [`ablation_api`] measures the typed front-end against hand-written
//! `Mp` calls in the same process (paired, interleaved repeats): the
//! managed-array operations monomorphize to the same handle calls, so
//! the ratio must stay within a few percent.
//!
//! Every workload returns an [`AppResult`] which serializes to the
//! `BENCH_<workload>.json` artifact consumed by the CI regression gate
//! (see the `apps` binary).

use std::sync::Arc;

use parking_lot::Mutex;

use motor_api::{Communicator, Transportable};
use motor_core::cluster::{run_cluster, spawn_motor_children, ClusterConfig};
use motor_mpc::{ReduceOp, Source};
use motor_pal::clock::Stopwatch;
use motor_runtime::{ElemKind, TypeRegistry};

/// One workload's outcome: the timing metric, a correctness checksum and
/// the configuration that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct AppResult {
    /// Workload name (`cg`, `bfs`, `pipeline`, `ablation_api`).
    pub workload: &'static str,
    /// Mean microseconds per iteration (the gated metric).
    pub us_per_iter: f64,
    /// Deterministic correctness checksum (must reproduce across runs
    /// with the same config).
    pub checksum: f64,
    /// Human-readable configuration string; the gate refuses to compare
    /// results from different configs.
    pub config: String,
}

impl AppResult {
    /// The `BENCH_<workload>.json` artifact body.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"motor_bench_app\":1,\"workload\":\"{}\",\"us_per_iter\":{:.3},\
             \"checksum\":{:.6},\"config\":\"{}\"}}\n",
            self.workload, self.us_per_iter, self.checksum, self.config
        )
    }

    /// Parse an artifact written by [`AppResult::to_json`] (no serde in
    /// the tree; the format is flat and fully under our control).
    pub fn from_json(s: &str) -> Option<AppResult> {
        fn str_field(s: &str, key: &str) -> Option<String> {
            let pat = format!("\"{key}\":\"");
            let start = s.find(&pat)? + pat.len();
            let end = s[start..].find('"')? + start;
            Some(s[start..end].to_string())
        }
        fn num_field(s: &str, key: &str) -> Option<f64> {
            let pat = format!("\"{key}\":");
            let start = s.find(&pat)? + pat.len();
            let end = s[start..]
                .find([',', '}'])
                .map(|e| e + start)
                .unwrap_or(s.len());
            s[start..end].trim().parse().ok()
        }
        let workload = match str_field(s, "workload")?.as_str() {
            "cg" => "cg",
            "bfs" => "bfs",
            "pipeline" => "pipeline",
            "ablation_api" => "ablation_api",
            _ => return None,
        };
        Some(AppResult {
            workload,
            us_per_iter: num_field(s, "us_per_iter")?,
            checksum: num_field(s, "checksum")?,
            config: str_field(s, "config")?,
        })
    }
}

/// Sizing knobs shared by the workloads.
#[derive(Debug, Clone, Copy)]
pub struct AppConfig {
    /// Ranks in the cluster (CG and BFS).
    pub ranks: usize,
    /// Problem scale: CG grid side, BFS vertices-per-rank multiplier,
    /// pipeline batch length.
    pub scale: usize,
    /// Timed iterations (CG iterations, BFS sweeps, pipeline batches).
    pub iters: usize,
}

impl AppConfig {
    /// Full-size configuration for the artifact run.
    pub fn full() -> AppConfig {
        AppConfig {
            ranks: 4,
            scale: 32,
            iters: 40,
        }
    }

    /// Reduced configuration for CI smoke and unit tests.
    pub fn quick() -> AppConfig {
        AppConfig {
            ranks: 2,
            scale: 8,
            iters: 8,
        }
    }
}

// ---------------------------------------------------------------------
// CG: NPB-style conjugate gradient
// ---------------------------------------------------------------------

/// Conjugate gradient on the 2-D 5-point Laplacian (diagonally shifted,
/// so SPD) over a `scale × scale` grid, rows block-partitioned.  Per
/// iteration: one `allgather_slice` of the direction vector and two
/// scalar `allreduce`s for the dot products.
pub fn cg(cfg: AppConfig) -> AppResult {
    let g = cfg.scale;
    let n = g * g;
    assert_eq!(n % cfg.ranks, 0, "grid rows must split evenly");
    let iters = cfg.iters;
    let out = Arc::new(Mutex::new((0.0f64, 0.0f64)));
    let o = Arc::clone(&out);
    run_cluster(
        ClusterConfig::builder().ranks(cfg.ranks).build(),
        |_reg| {},
        move |proc| {
            let comm = Communicator::bind(proc.mp());
            let rank = comm.rank();
            let rows = n / comm.size();
            let row0 = rank * rows;

            // A·v for the owned row block; `v` is the full vector.
            let spmv = |v: &[f64], out: &mut [f64]| {
                for (li, o) in out.iter_mut().enumerate() {
                    let i = row0 + li;
                    let (x, y) = (i % g, i / g);
                    let mut acc = (4.1) * v[i];
                    if x > 0 {
                        acc -= v[i - 1];
                    }
                    if x + 1 < g {
                        acc -= v[i + 1];
                    }
                    if y > 0 {
                        acc -= v[i - g];
                    }
                    if y + 1 < g {
                        acc -= v[i + g];
                    }
                    *o = acc;
                }
            };
            let dot = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| x * y).sum() };

            // b = 1, x = 0, r = b, p = r.
            let mut x = vec![0f64; rows];
            let mut r = vec![1f64; rows];
            let mut p = r.clone();
            let mut p_global = vec![0f64; n];
            let mut q = vec![0f64; rows];
            let mut rho = comm.allreduce(dot(&r, &r), ReduceOp::Sum).unwrap();
            let rho0 = rho;

            let sw = Stopwatch::start();
            for _ in 0..iters {
                comm.allgather_slice(&p, &mut p_global).unwrap();
                spmv(&p_global, &mut q);
                let pq = comm.allreduce(dot(&p, &q), ReduceOp::Sum).unwrap();
                let alpha = rho / pq;
                for i in 0..rows {
                    x[i] += alpha * p[i];
                    r[i] -= alpha * q[i];
                }
                let rho_new = comm.allreduce(dot(&r, &r), ReduceOp::Sum).unwrap();
                let beta = rho_new / rho;
                rho = rho_new;
                for i in 0..rows {
                    p[i] = r[i] + beta * p[i];
                }
            }
            let us = sw.elapsed_micros_f64() / iters as f64;

            if rank == 0 {
                assert!(
                    rho < rho0 * 1e-6,
                    "CG must converge: rho {rho} vs rho0 {rho0}"
                );
                *o.lock() = (us, rho.sqrt());
            }
        },
    )
    .unwrap();
    let (us, checksum) = *out.lock();
    AppResult {
        workload: "cg",
        us_per_iter: us,
        checksum,
        config: format!("ranks={},n={},iters={}", cfg.ranks, n, iters),
    }
}

// ---------------------------------------------------------------------
// BFS: level-synchronous frontier exchange as transportable objects
// ---------------------------------------------------------------------

/// A BFS frontier shipped between ranks as a transportable object.
#[derive(Transportable, Debug, Default)]
struct Frontier {
    level: i32,
    #[transportable]
    verts: Vec<i64>,
}

/// Out-neighbours of vertex `v` in the synthetic graph.
fn bfs_neighbors(v: i64, n: i64) -> [i64; 3] {
    [(v + 1) % n, (v + n - 1) % n, (3 * v + 7) % n]
}

/// Sequential reference: sum of finite BFS distances from vertex 0.
fn bfs_reference(n: i64) -> f64 {
    let mut dist = vec![-1i64; n as usize];
    dist[0] = 0;
    let mut frontier = vec![0i64];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            for w in bfs_neighbors(v, n) {
                if dist[w as usize] < 0 {
                    dist[w as usize] = dist[v as usize] + 1;
                    next.push(w);
                }
            }
        }
        frontier = next;
    }
    dist.iter().map(|&d| d.max(0) as f64).sum()
}

/// Level-synchronous BFS over `ranks * scale * 32` vertices, 1-D
/// partitioned.  Each level the candidate owners mark their discoveries,
/// the per-rank frontier contributions travel as
/// `#[derive(Transportable)]` objects (`gather_objs`), and the merged
/// frontier returns via `bcast_obj`; an `allreduce` detects termination.
pub fn bfs(cfg: AppConfig) -> AppResult {
    let n = (cfg.ranks * cfg.scale * 32) as i64;
    let sweeps = cfg.iters;
    let out = Arc::new(Mutex::new((0.0f64, 0.0f64)));
    let o = Arc::clone(&out);
    run_cluster(
        ClusterConfig::builder().ranks(cfg.ranks).build(),
        |_reg| {},
        move |proc| {
            let comm = Communicator::bind(proc.mp());
            let rank = comm.rank();
            let per = n as usize / comm.size();
            let own0 = (rank * per) as i64;
            let owns = |v: i64| -> bool { v >= own0 && v < own0 + per as i64 };

            let mut checksum = 0.0;
            let sw = Stopwatch::start();
            for _ in 0..sweeps {
                let mut dist = vec![-1i64; per];
                if owns(0) {
                    dist[(0 - own0) as usize] = 0;
                }
                let mut frontier = vec![0i64];
                let mut level = 0i32;
                while !frontier.is_empty() {
                    // Owners of the candidate vertices mark and collect.
                    let mut local_next = Vec::new();
                    for &v in &frontier {
                        for w in bfs_neighbors(v, n) {
                            if owns(w) && dist[(w - own0) as usize] < 0 {
                                dist[(w - own0) as usize] = (level + 1) as i64;
                                local_next.push(w);
                            }
                        }
                    }
                    // Frontier contributions travel as objects.
                    let mine = [Frontier {
                        level,
                        verts: local_next,
                    }];
                    let gathered = comm.gather_objs(&mine, 0).unwrap();
                    let merged = gathered.map(|parts| Frontier {
                        level,
                        verts: parts.into_iter().flat_map(|f| f.verts).collect(),
                    });
                    frontier = comm
                        .bcast_obj(merged.as_ref(), 0)
                        .unwrap()
                        .map(|f| f.verts)
                        .unwrap_or_else(|| merged.unwrap().verts);
                    level += 1;
                }
                let local_sum: f64 = dist.iter().map(|&d| d.max(0) as f64).sum();
                checksum = comm.allreduce(local_sum, ReduceOp::Sum).unwrap();
            }
            let us = sw.elapsed_micros_f64() / sweeps as f64;
            if rank == 0 {
                assert_eq!(
                    checksum,
                    bfs_reference(n),
                    "BFS distances must match reference"
                );
                *o.lock() = (us, checksum);
            }
        },
    )
    .unwrap();
    let (us, checksum) = *out.lock();
    AppResult {
        workload: "bfs",
        us_per_iter: us,
        checksum,
        config: format!("ranks={},vertices={n},sweeps={sweeps}", cfg.ranks),
    }
}

// ---------------------------------------------------------------------
// Pipeline: dynamically spawned stages streaming typed slices
// ---------------------------------------------------------------------

fn define_batch(reg: &mut TypeRegistry) {
    let arr = reg.prim_array(ElemKind::F64);
    reg.define_class("Batch")
        .prim("seq", ElemKind::I32)
        .transportable("data", arr)
        .build();
}

/// A two-stage streaming pipeline whose stages are **spawned at
/// runtime** (§7 dynamic process management): the parent spawns two
/// Motor child VMs; stage 1 generates and pre-scales batches, streaming
/// them to stage 2 with typed slices inside the children's world; stage
/// 2 finishes each batch and reports it to the parent as a managed
/// object over the parent↔children intercommunicator.
pub fn pipeline(cfg: AppConfig) -> AppResult {
    let batch_len = cfg.scale * 32;
    let batches = cfg.iters;
    let out = Arc::new(Mutex::new((0.0f64, 0.0f64)));
    let o = Arc::clone(&out);
    run_cluster(
        ClusterConfig::builder().ranks(1).build(),
        define_batch,
        move |proc| {
            let inter = spawn_motor_children(
                proc,
                2,
                ClusterConfig::default(),
                define_batch,
                move |child| {
                    let world = Communicator::bind(child.mp());
                    if world.rank() == 0 {
                        // Stage 1: generate, pre-scale, stream onward.
                        let mut buf = vec![0f64; batch_len];
                        for b in 0..batches {
                            for (j, x) in buf.iter_mut().enumerate() {
                                *x = 2.0 * (b * batch_len + j) as f64;
                            }
                            world.send_slice(&buf, 1, 1).unwrap();
                        }
                    } else {
                        // Stage 2: finish each batch, report to parent.
                        let t = child.thread();
                        let cls = child.vm().registry().by_name("Batch").unwrap();
                        let (fseq, fdata) = (t.field_index(cls, "seq"), t.field_index(cls, "data"));
                        let parent = child.parent_comm().expect("spawned child has a parent");
                        let mut buf = vec![0f64; batch_len];
                        for b in 0..batches {
                            world.recv_into(&mut buf, 0, 1).unwrap();
                            for x in buf.iter_mut() {
                                *x += 1.0;
                            }
                            let rep = t.alloc_instance(cls);
                            t.set_prim::<i32>(rep, fseq, b as i32);
                            let arr = t.alloc_prim_array(ElemKind::F64, batch_len);
                            t.prim_write(arr, 0, &buf);
                            t.set_ref(rep, fdata, arr);
                            child.osend_inter(parent, rep, 0, 9).unwrap();
                            t.release(rep);
                            t.release(arr);
                        }
                    }
                },
            )
            .expect("spawn pipeline stages");

            // Parent: sink. Receive every batch, time the stream.
            let t = proc.thread();
            let cls = proc.vm().registry().by_name("Batch").unwrap();
            let (fseq, fdata) = (t.field_index(cls, "seq"), t.field_index(cls, "data"));
            let mut total = 0.0f64;
            let mut data = vec![0f64; batch_len];
            let sw = Stopwatch::start();
            for b in 0..batches {
                let (rep, _) = proc.orecv_inter(&inter, Source::Any, 9).unwrap();
                assert_eq!(t.get_prim::<i32>(rep, fseq), b as i32, "in-order stream");
                let arr = t.get_ref(rep, fdata);
                t.prim_read(arr, 0, &mut data);
                total += data.iter().sum::<f64>();
                t.release(arr);
                t.release(rep);
            }
            let us = sw.elapsed_micros_f64() / batches as f64;

            // sum over b,j of 2*(b*L+j)+1.
            let nn = (batches * batch_len) as f64;
            let expect = nn * (nn - 1.0) + nn;
            assert_eq!(total, expect, "pipeline checksum");
            *o.lock() = (us, total);
        },
    )
    .unwrap();
    let (us, checksum) = *out.lock();
    AppResult {
        workload: "pipeline",
        us_per_iter: us,
        checksum,
        config: format!("stages=2,batch_len={batch_len},batches={batches}"),
    }
}

// ---------------------------------------------------------------------
// Ablation: typed API vs hand-written Mp
// ---------------------------------------------------------------------

/// The zero-cost claim, measured: a managed-array ping-pong through
/// [`Communicator::send_array`]/[`Communicator::recv_array`] against the
/// identical hand-written `Mp::send`/`Mp::recv` loop, paired and
/// interleaved in one cluster so the repeats see the same conditions.
/// Returns `(hand_us, api_us)` per repeat; the artifact metric is the
/// best-over-repeats ratio (`api/hand`), gated at 1.02 by the `apps`
/// binary.
pub fn ablation_api(bytes: usize, warmup: usize, timed: usize, repeats: usize) -> (f64, f64) {
    let out = Arc::new(Mutex::new((0.0f64, 0.0f64)));
    let o = Arc::clone(&out);
    run_cluster(
        ClusterConfig::builder().ranks(2).build(),
        |_reg| {},
        move |proc| {
            let mp = proc.mp();
            let comm = Communicator::bind(proc.mp());
            let t = proc.thread();
            let hand_buf = t.alloc_prim_array(ElemKind::U8, bytes);
            let api_buf = comm.alloc_array::<u8>(bytes);
            let rank = mp.rank();

            let hand_phase = |timed_out: &mut f64| {
                if rank == 0 {
                    for _ in 0..warmup {
                        mp.send(hand_buf, 1, 0).unwrap();
                        mp.recv(hand_buf, 1, 0).unwrap();
                    }
                    let sw = Stopwatch::start();
                    for _ in 0..timed {
                        mp.send(hand_buf, 1, 0).unwrap();
                        mp.recv(hand_buf, 1, 0).unwrap();
                    }
                    *timed_out = timed_out.min(sw.elapsed_micros_f64() / timed as f64);
                } else {
                    for _ in 0..warmup + timed {
                        mp.recv(hand_buf, 0, 0).unwrap();
                        mp.send(hand_buf, 0, 0).unwrap();
                    }
                }
            };
            let api_phase = |timed_out: &mut f64| {
                if rank == 0 {
                    for _ in 0..warmup {
                        comm.send_array(&api_buf, 1, 0).unwrap();
                        comm.recv_array(&api_buf, 1, 0).unwrap();
                    }
                    let sw = Stopwatch::start();
                    for _ in 0..timed {
                        comm.send_array(&api_buf, 1, 0).unwrap();
                        comm.recv_array(&api_buf, 1, 0).unwrap();
                    }
                    *timed_out = timed_out.min(sw.elapsed_micros_f64() / timed as f64);
                } else {
                    for _ in 0..warmup + timed {
                        comm.recv_array(&api_buf, 0, 0).unwrap();
                        comm.send_array(&api_buf, 0, 0).unwrap();
                    }
                }
            };

            let mut best_hand = f64::INFINITY;
            let mut best_api = f64::INFINITY;
            // Alternate phase order between repeats so clock drift and
            // cache warm-up cancel instead of biasing one side.
            for rep in 0..repeats {
                if rep % 2 == 0 {
                    hand_phase(&mut best_hand);
                    api_phase(&mut best_api);
                } else {
                    api_phase(&mut best_api);
                    hand_phase(&mut best_hand);
                }
            }
            if rank == 0 {
                *o.lock() = (best_hand, best_api);
            }
        },
    )
    .unwrap();
    let v = *out.lock();
    v
}

/// The ablation as a gated artifact: metric = `api/hand` ratio.
pub fn ablation_api_result(quick: bool) -> AppResult {
    let (bytes, warmup, timed, repeats) = if quick {
        (16 * 1024, 20, 60, 3)
    } else {
        (32 * 1024, 100, 200, 5)
    };
    let (hand, api) = ablation_api(bytes, warmup, timed, repeats);
    AppResult {
        workload: "ablation_api",
        us_per_iter: api / hand,
        checksum: 0.0,
        config: format!("bytes={bytes},timed={timed},repeats={repeats},metric=api_over_hand"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cg_converges_and_reports() {
        let r = cg(AppConfig::quick());
        assert!(r.us_per_iter > 0.0);
        assert!(r.checksum < 1e-2, "converged residual, got {}", r.checksum);
    }

    #[test]
    fn bfs_matches_sequential_reference() {
        let mut cfg = AppConfig::quick();
        cfg.iters = 2;
        let r = bfs(cfg);
        assert!(r.us_per_iter > 0.0);
        assert_eq!(
            r.checksum,
            bfs_reference((cfg.ranks * cfg.scale * 32) as i64)
        );
    }

    #[test]
    fn pipeline_streams_through_spawned_stages() {
        let mut cfg = AppConfig::quick();
        cfg.iters = 6;
        let r = pipeline(cfg);
        assert!(r.us_per_iter > 0.0);
        assert!(r.checksum > 0.0);
    }

    #[test]
    fn json_roundtrip() {
        let r = AppResult {
            workload: "cg",
            us_per_iter: 12.345,
            checksum: -0.5,
            config: "ranks=4,n=1024,iters=25".into(),
        };
        let back = AppResult::from_json(&r.to_json()).unwrap();
        assert_eq!(back.workload, r.workload);
        assert!((back.us_per_iter - r.us_per_iter).abs() < 1e-3);
        assert!((back.checksum - r.checksum).abs() < 1e-6);
        assert_eq!(back.config, r.config);
    }
}
