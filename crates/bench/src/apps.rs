//! Application benchmark workloads on the typed `motor-api` surface.
//!
//! Three kernels exercise the API the way applications do, each
//! self-verifying and deterministic:
//!
//! * [`cg`] — an NPB-style conjugate-gradient solve on a 2-D Laplacian:
//!   `allgather_slice` for the shared direction vector, scalar
//!   `allreduce` for the dot products.
//! * [`bfs`] — level-synchronous breadth-first search on a synthetic
//!   graph, exchanging frontiers as `#[derive(Transportable)]` objects
//!   through `gather_objs`/`bcast_obj`.
//! * [`pipeline`] — a streaming pipeline whose compute stages are
//!   **dynamically spawned** Motor child VMs: stage 1 streams typed
//!   slices to stage 2 inside the children's world; stage 2 reports
//!   batches to the parent over the intercommunicator object transport.
//!
//! [`ablation_api`] measures the typed front-end against hand-written
//! `Mp` calls in the same process (paired, interleaved repeats): the
//! managed-array operations monomorphize to the same handle calls, so
//! the ratio must stay within a few percent.
//!
//! Every workload returns an [`AppResult`] which serializes to the
//! `BENCH_<workload>.json` artifact consumed by the CI regression gate
//! (see the `apps` binary).

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use motor_api::{Communicator, Transportable};
use motor_core::cluster::{run_cluster, spawn_motor_children, ClusterConfig, MotorProc};
use motor_mpc::{ProgressConfig, ReduceOp, Source};
use motor_obs::export::json;
use motor_pal::clock::Stopwatch;
use motor_profile::{FoldedStacks, ProfTarget, ProfileSection, RankProfile, Sampler};
use motor_runtime::{ElemKind, TypeRegistry};

/// Sampling period of the per-rank profiler during app workloads.
const SAMPLE_PERIOD: Duration = Duration::from_micros(250);

/// One workload's outcome: the timing metric, a correctness checksum and
/// the configuration that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct AppResult {
    /// Workload name (`cg`, `bfs`, `pipeline`, `ablation_api`,
    /// `ablation_profile`, `ablation_overlap`).
    pub workload: &'static str,
    /// Mean microseconds per iteration (the gated metric).
    pub us_per_iter: f64,
    /// Deterministic correctness checksum (must reproduce across runs
    /// with the same config).
    pub checksum: f64,
    /// Human-readable configuration string; the gate refuses to compare
    /// results from different configs.
    pub config: String,
    /// Per-rank continuous-profiling section (time buckets, overlap,
    /// samples), when the workload ran with the profiler attached.
    pub profile: Option<ProfileSection>,
    /// Rendered folded stacks for the flamegraph artifact, when sampled.
    /// Not part of the JSON body — the `apps` binary writes it to
    /// `BENCH_<workload>.folded` alongside.
    pub folded: Option<String>,
}

impl AppResult {
    /// The `BENCH_<workload>.json` artifact body.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"motor_bench_app\":1,\"workload\":\"{}\",\"us_per_iter\":{:.3},\
             \"checksum\":{:.6},\"config\":\"{}\"",
            self.workload, self.us_per_iter, self.checksum, self.config
        );
        if let Some(p) = &self.profile {
            out.push_str(",\"profile\":");
            out.push_str(&p.to_json());
        }
        out.push_str("}\n");
        out
    }

    /// Parse an artifact written by [`AppResult::to_json`] (no serde in
    /// the tree; the vendored `motor_obs::export::json` parser does).
    pub fn from_json(s: &str) -> Option<AppResult> {
        let v = json::parse(s.trim_end()).ok()?;
        let workload = match v.get("workload")?.as_str()? {
            "cg" => "cg",
            "bfs" => "bfs",
            "pipeline" => "pipeline",
            "ablation_api" => "ablation_api",
            "ablation_profile" => "ablation_profile",
            "ablation_overlap" => "ablation_overlap",
            "ablation_pins" => "ablation_pins",
            _ => return None,
        };
        let num = |key: &str| -> Option<f64> {
            match v.get(key)? {
                json::Value::Num(n) => Some(*n),
                _ => None,
            }
        };
        Some(AppResult {
            workload,
            us_per_iter: num("us_per_iter")?,
            checksum: num("checksum")?,
            config: v.get("config")?.as_str()?.to_string(),
            profile: v
                .get("profile")
                .map(ProfileSection::from_value)
                .transpose()
                .ok()?,
            folded: None,
        })
    }
}

// ---------------------------------------------------------------------
// Per-rank profiling harness
// ---------------------------------------------------------------------

/// What each profiled rank leaves behind: `(rank, wall nanoseconds,
/// bucket/overlap totals windowed to that wall interval, folded stacks)`.
type ProfSink = Arc<Mutex<Vec<(usize, u64, motor_obs::PhaseSnapshot, FoldedStacks)>>>;

/// Start profiling one rank of an app workload: arms a [`Sampler`] over
/// the rank's VM-side registry (time-bucket accounting is already live —
/// `run_cluster` called `profile_start`) and a wall-clock stopwatch for
/// the coverage denominator. The phase clock runs from cluster entry to
/// teardown — wider than the stopwatch — so the bucket totals reported
/// are the *delta* between a start and finish snapshot, windowed to the
/// same interval the stopwatch measures.
struct RankProf {
    rank: usize,
    sw: Stopwatch,
    registry: Arc<motor_obs::MetricsRegistry>,
    base: motor_obs::PhaseSnapshot,
    sampler: Sampler,
    sink: ProfSink,
}

impl RankProf {
    fn start(proc: &MotorProc, rank: usize, sink: &ProfSink) -> RankProf {
        let registry = Arc::clone(proc.vm().metrics());
        let sampler = Sampler::spawn(
            vec![ProfTarget {
                rank,
                registry: Arc::clone(&registry),
                hot: None,
            }],
            SAMPLE_PERIOD,
        );
        let base = registry.phase_snapshot();
        RankProf {
            rank,
            sw: Stopwatch::start(),
            registry,
            base,
            sampler,
            sink: Arc::clone(sink),
        }
    }

    fn finish(self) {
        let wall = self.sw.elapsed().as_nanos() as u64;
        let end = self.registry.phase_snapshot();
        let mut window = motor_obs::PhaseSnapshot::default();
        for (i, b) in window.bucket_nanos.iter_mut().enumerate() {
            *b = end.bucket_nanos[i].saturating_sub(self.base.bucket_nanos[i]);
        }
        window.inflight_nanos = end.inflight_nanos.saturating_sub(self.base.inflight_nanos);
        window.overlap_nanos = end.overlap_nanos.saturating_sub(self.base.overlap_nanos);
        let (folded, _rounds) = self.sampler.stop();
        self.sink.lock().push((self.rank, wall, window, folded));
    }
}

/// Assemble the `profile` section from the per-rank sink and the cluster
/// metrics `run_cluster` returned: bucket/overlap/sample counters come
/// from each rank's merged snapshot, the wall denominator and folded
/// stacks from the rank's own harness.
fn build_profile(
    sink: &ProfSink,
    per_rank: &[motor_obs::MetricsSnapshot],
) -> (ProfileSection, String) {
    let mut entries = sink.lock().clone();
    entries.sort_by_key(|&(r, _, _, _)| r);
    let mut section = ProfileSection::default();
    let mut folded = FoldedStacks::new();
    for (rank, wall, window, f) in entries {
        if let Some(snap) = per_rank.get(rank) {
            let mut rp = RankProfile::from_snapshot(rank, wall, snap);
            // Replace the whole-run phase totals with the stopwatch-
            // windowed deltas so coverage compares like against like.
            rp.bucket_nanos = window.bucket_nanos;
            rp.inflight_nanos = window.inflight_nanos;
            rp.overlap_nanos = window.overlap_nanos;
            section.ranks.push(rp);
        }
        folded.merge(&f);
    }
    (section, folded.render())
}

/// Sizing knobs shared by the workloads.
#[derive(Debug, Clone, Copy)]
pub struct AppConfig {
    /// Ranks in the cluster (CG and BFS).
    pub ranks: usize,
    /// Problem scale: CG grid side, BFS vertices-per-rank multiplier,
    /// pipeline batch length.
    pub scale: usize,
    /// Timed iterations (CG iterations, BFS sweeps, pipeline batches).
    pub iters: usize,
}

impl AppConfig {
    /// Full-size configuration for the artifact run.
    pub fn full() -> AppConfig {
        AppConfig {
            ranks: 4,
            scale: 32,
            iters: 40,
        }
    }

    /// Reduced configuration for CI smoke and unit tests.
    pub fn quick() -> AppConfig {
        AppConfig {
            ranks: 2,
            scale: 8,
            iters: 8,
        }
    }
}

// ---------------------------------------------------------------------
// CG: NPB-style conjugate gradient
// ---------------------------------------------------------------------

/// Conjugate gradient on the 2-D 5-point Laplacian (diagonally shifted,
/// so SPD) over a `scale × scale` grid, rows block-partitioned.  Per
/// iteration: one `allgather_slice` of the direction vector and two
/// scalar `allreduce`s for the dot products.
pub fn cg(cfg: AppConfig) -> AppResult {
    let g = cfg.scale;
    let n = g * g;
    assert_eq!(n % cfg.ranks, 0, "grid rows must split evenly");
    let iters = cfg.iters;
    let out = Arc::new(Mutex::new((0.0f64, 0.0f64)));
    let o = Arc::clone(&out);
    let sink: ProfSink = Arc::new(Mutex::new(Vec::new()));
    let s = Arc::clone(&sink);
    let metrics = run_cluster(
        ClusterConfig::builder().ranks(cfg.ranks).build(),
        |_reg| {},
        move |proc| {
            let comm = Communicator::bind(proc.mp());
            let rank = comm.rank();
            let prof = RankProf::start(proc, rank, &s);
            let rows = n / comm.size();
            let row0 = rank * rows;

            // A·v for the owned row block; `v` is the full vector.
            let spmv = |v: &[f64], out: &mut [f64]| {
                for (li, o) in out.iter_mut().enumerate() {
                    let i = row0 + li;
                    let (x, y) = (i % g, i / g);
                    let mut acc = (4.1) * v[i];
                    if x > 0 {
                        acc -= v[i - 1];
                    }
                    if x + 1 < g {
                        acc -= v[i + 1];
                    }
                    if y > 0 {
                        acc -= v[i - g];
                    }
                    if y + 1 < g {
                        acc -= v[i + g];
                    }
                    *o = acc;
                }
            };
            let dot = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| x * y).sum() };

            // b = 1, x = 0, r = b, p = r.
            let mut x = vec![0f64; rows];
            let mut r = vec![1f64; rows];
            let mut p = r.clone();
            let mut p_global = vec![0f64; n];
            let mut q = vec![0f64; rows];
            let mut rho = comm.allreduce(dot(&r, &r), ReduceOp::Sum).unwrap();
            let rho0 = rho;

            let sw = Stopwatch::start();
            for _ in 0..iters {
                comm.allgather_slice(&p, &mut p_global).unwrap();
                spmv(&p_global, &mut q);
                let pq = comm.allreduce(dot(&p, &q), ReduceOp::Sum).unwrap();
                let alpha = rho / pq;
                for i in 0..rows {
                    x[i] += alpha * p[i];
                    r[i] -= alpha * q[i];
                }
                let rho_new = comm.allreduce(dot(&r, &r), ReduceOp::Sum).unwrap();
                let beta = rho_new / rho;
                rho = rho_new;
                for i in 0..rows {
                    p[i] = r[i] + beta * p[i];
                }
            }
            let us = sw.elapsed_micros_f64() / iters as f64;

            if rank == 0 {
                assert!(
                    rho < rho0 * 1e-6,
                    "CG must converge: rho {rho} vs rho0 {rho0}"
                );
                *o.lock() = (us, rho.sqrt());
            }
            prof.finish();
        },
    )
    .unwrap();
    let (us, checksum) = *out.lock();
    let (profile, folded) = build_profile(&sink, &metrics.per_rank);
    AppResult {
        workload: "cg",
        us_per_iter: us,
        checksum,
        config: format!("ranks={},n={},iters={}", cfg.ranks, n, iters),
        profile: Some(profile),
        folded: Some(folded),
    }
}

// ---------------------------------------------------------------------
// BFS: level-synchronous frontier exchange as transportable objects
// ---------------------------------------------------------------------

/// A BFS frontier shipped between ranks as a transportable object.
#[derive(Transportable, Debug, Default)]
struct Frontier {
    level: i32,
    #[transportable]
    verts: Vec<i64>,
}

/// Out-neighbours of vertex `v` in the synthetic graph.
fn bfs_neighbors(v: i64, n: i64) -> [i64; 3] {
    [(v + 1) % n, (v + n - 1) % n, (3 * v + 7) % n]
}

/// Sequential reference: sum of finite BFS distances from vertex 0.
fn bfs_reference(n: i64) -> f64 {
    let mut dist = vec![-1i64; n as usize];
    dist[0] = 0;
    let mut frontier = vec![0i64];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            for w in bfs_neighbors(v, n) {
                if dist[w as usize] < 0 {
                    dist[w as usize] = dist[v as usize] + 1;
                    next.push(w);
                }
            }
        }
        frontier = next;
    }
    dist.iter().map(|&d| d.max(0) as f64).sum()
}

/// Level-synchronous BFS over `ranks * scale * 32` vertices, 1-D
/// partitioned.  Each level the candidate owners mark their discoveries,
/// the per-rank frontier contributions travel as
/// `#[derive(Transportable)]` objects (`gather_objs`), and the merged
/// frontier returns via `bcast_obj`; an `allreduce` detects termination.
pub fn bfs(cfg: AppConfig) -> AppResult {
    let n = (cfg.ranks * cfg.scale * 32) as i64;
    let sweeps = cfg.iters;
    let out = Arc::new(Mutex::new((0.0f64, 0.0f64)));
    let o = Arc::clone(&out);
    let sink: ProfSink = Arc::new(Mutex::new(Vec::new()));
    let s = Arc::clone(&sink);
    let metrics = run_cluster(
        ClusterConfig::builder().ranks(cfg.ranks).build(),
        |_reg| {},
        move |proc| {
            let comm = Communicator::bind(proc.mp());
            let rank = comm.rank();
            let prof = RankProf::start(proc, rank, &s);
            let per = n as usize / comm.size();
            let own0 = (rank * per) as i64;
            let owns = |v: i64| -> bool { v >= own0 && v < own0 + per as i64 };

            let mut checksum = 0.0;
            let sw = Stopwatch::start();
            for _ in 0..sweeps {
                let mut dist = vec![-1i64; per];
                if owns(0) {
                    dist[(0 - own0) as usize] = 0;
                }
                let mut frontier = vec![0i64];
                let mut level = 0i32;
                while !frontier.is_empty() {
                    // Owners of the candidate vertices mark and collect.
                    let mut local_next = Vec::new();
                    for &v in &frontier {
                        for w in bfs_neighbors(v, n) {
                            if owns(w) && dist[(w - own0) as usize] < 0 {
                                dist[(w - own0) as usize] = (level + 1) as i64;
                                local_next.push(w);
                            }
                        }
                    }
                    // Frontier contributions travel as objects.
                    let mine = [Frontier {
                        level,
                        verts: local_next,
                    }];
                    let gathered = comm.gather_objs(&mine, 0).unwrap();
                    let merged = gathered.map(|parts| Frontier {
                        level,
                        verts: parts.into_iter().flat_map(|f| f.verts).collect(),
                    });
                    frontier = comm
                        .bcast_obj(merged.as_ref(), 0)
                        .unwrap()
                        .map(|f| f.verts)
                        .unwrap_or_else(|| merged.unwrap().verts);
                    level += 1;
                }
                let local_sum: f64 = dist.iter().map(|&d| d.max(0) as f64).sum();
                checksum = comm.allreduce(local_sum, ReduceOp::Sum).unwrap();
            }
            let us = sw.elapsed_micros_f64() / sweeps as f64;
            if rank == 0 {
                assert_eq!(
                    checksum,
                    bfs_reference(n),
                    "BFS distances must match reference"
                );
                *o.lock() = (us, checksum);
            }
            prof.finish();
        },
    )
    .unwrap();
    let (us, checksum) = *out.lock();
    let (profile, folded) = build_profile(&sink, &metrics.per_rank);
    AppResult {
        workload: "bfs",
        us_per_iter: us,
        checksum,
        config: format!("ranks={},vertices={n},sweeps={sweeps}", cfg.ranks),
        profile: Some(profile),
        folded: Some(folded),
    }
}

// ---------------------------------------------------------------------
// Pipeline: dynamically spawned stages streaming typed slices
// ---------------------------------------------------------------------

fn define_batch(reg: &mut TypeRegistry) {
    let arr = reg.prim_array(ElemKind::F64);
    reg.define_class("Batch")
        .prim("seq", ElemKind::I32)
        .transportable("data", arr)
        .build();
}

/// A two-stage streaming pipeline whose stages are **spawned at
/// runtime** (§7 dynamic process management): the parent spawns two
/// Motor child VMs; stage 1 generates and pre-scales batches, streaming
/// them to stage 2 with typed slices inside the children's world; stage
/// 2 finishes each batch and reports it to the parent as a managed
/// object over the parent↔children intercommunicator.
pub fn pipeline(cfg: AppConfig) -> AppResult {
    let batch_len = cfg.scale * 32;
    let batches = cfg.iters;
    let out = Arc::new(Mutex::new((0.0f64, 0.0f64)));
    let o = Arc::clone(&out);
    let sink: ProfSink = Arc::new(Mutex::new(Vec::new()));
    let s = Arc::clone(&sink);
    let metrics = run_cluster(
        ClusterConfig::builder().ranks(1).build(),
        define_batch,
        move |proc| {
            let prof = RankProf::start(proc, 0, &s);
            let inter = spawn_motor_children(
                proc,
                2,
                ClusterConfig::default(),
                define_batch,
                move |child| {
                    let world = Communicator::bind(child.mp());
                    if world.rank() == 0 {
                        // Stage 1: generate, pre-scale, stream onward.
                        let mut buf = vec![0f64; batch_len];
                        for b in 0..batches {
                            for (j, x) in buf.iter_mut().enumerate() {
                                *x = 2.0 * (b * batch_len + j) as f64;
                            }
                            world.send_slice(&buf, 1, 1).unwrap();
                        }
                    } else {
                        // Stage 2: finish each batch, report to parent.
                        let t = child.thread();
                        let cls = child.vm().registry().by_name("Batch").unwrap();
                        let (fseq, fdata) = (t.field_index(cls, "seq"), t.field_index(cls, "data"));
                        let parent = child.parent_comm().expect("spawned child has a parent");
                        let mut buf = vec![0f64; batch_len];
                        for b in 0..batches {
                            world.recv_into(&mut buf, 0, 1).unwrap();
                            for x in buf.iter_mut() {
                                *x += 1.0;
                            }
                            let rep = t.alloc_instance(cls);
                            t.set_prim::<i32>(rep, fseq, b as i32);
                            let arr = t.alloc_prim_array(ElemKind::F64, batch_len);
                            t.prim_write(arr, 0, &buf);
                            t.set_ref(rep, fdata, arr);
                            child.osend_inter(parent, rep, 0, 9).unwrap();
                            t.release(rep);
                            t.release(arr);
                        }
                    }
                },
            )
            .expect("spawn pipeline stages");

            // Parent: sink. Receive every batch, time the stream.
            let t = proc.thread();
            let cls = proc.vm().registry().by_name("Batch").unwrap();
            let (fseq, fdata) = (t.field_index(cls, "seq"), t.field_index(cls, "data"));
            let mut total = 0.0f64;
            let mut data = vec![0f64; batch_len];
            let sw = Stopwatch::start();
            for b in 0..batches {
                let (rep, _) = proc.orecv_inter(&inter, Source::Any, 9).unwrap();
                assert_eq!(t.get_prim::<i32>(rep, fseq), b as i32, "in-order stream");
                let arr = t.get_ref(rep, fdata);
                t.prim_read(arr, 0, &mut data);
                total += data.iter().sum::<f64>();
                t.release(arr);
                t.release(rep);
            }
            let us = sw.elapsed_micros_f64() / batches as f64;

            // sum over b,j of 2*(b*L+j)+1.
            let nn = (batches * batch_len) as f64;
            let expect = nn * (nn - 1.0) + nn;
            assert_eq!(total, expect, "pipeline checksum");
            *o.lock() = (us, total);
            prof.finish();
        },
    )
    .unwrap();
    let (us, checksum) = *out.lock();
    let (profile, folded) = build_profile(&sink, &metrics.per_rank);
    AppResult {
        workload: "pipeline",
        us_per_iter: us,
        checksum,
        config: format!("stages=2,batch_len={batch_len},batches={batches}"),
        profile: Some(profile),
        folded: Some(folded),
    }
}

// ---------------------------------------------------------------------
// Ablation: typed API vs hand-written Mp
// ---------------------------------------------------------------------

/// The zero-cost claim, measured: a managed-array ping-pong through
/// [`Communicator::send_array`]/[`Communicator::recv_array`] against the
/// identical hand-written `Mp::send`/`Mp::recv` loop, paired and
/// interleaved in one cluster so the repeats see the same conditions.
/// Returns `(hand_us, api_us)` per repeat; the artifact metric is the
/// best-over-repeats ratio (`api/hand`), gated at 1.02 by the `apps`
/// binary.
pub fn ablation_api(bytes: usize, warmup: usize, timed: usize, repeats: usize) -> (f64, f64) {
    let out = Arc::new(Mutex::new((0.0f64, 0.0f64)));
    let o = Arc::clone(&out);
    run_cluster(
        ClusterConfig::builder().ranks(2).build(),
        |_reg| {},
        move |proc| {
            let mp = proc.mp();
            let comm = Communicator::bind(proc.mp());
            let t = proc.thread();
            let hand_buf = t.alloc_prim_array(ElemKind::U8, bytes);
            let api_buf = comm.alloc_array::<u8>(bytes);
            let rank = mp.rank();

            let hand_phase = |timed_out: &mut f64| {
                if rank == 0 {
                    for _ in 0..warmup {
                        mp.send(hand_buf, 1, 0).unwrap();
                        mp.recv(hand_buf, 1, 0).unwrap();
                    }
                    let sw = Stopwatch::start();
                    for _ in 0..timed {
                        mp.send(hand_buf, 1, 0).unwrap();
                        mp.recv(hand_buf, 1, 0).unwrap();
                    }
                    *timed_out = timed_out.min(sw.elapsed_micros_f64() / timed as f64);
                } else {
                    for _ in 0..warmup + timed {
                        mp.recv(hand_buf, 0, 0).unwrap();
                        mp.send(hand_buf, 0, 0).unwrap();
                    }
                }
            };
            let api_phase = |timed_out: &mut f64| {
                if rank == 0 {
                    for _ in 0..warmup {
                        comm.send_array(&api_buf, 1, 0).unwrap();
                        comm.recv_array(&api_buf, 1, 0).unwrap();
                    }
                    let sw = Stopwatch::start();
                    for _ in 0..timed {
                        comm.send_array(&api_buf, 1, 0).unwrap();
                        comm.recv_array(&api_buf, 1, 0).unwrap();
                    }
                    *timed_out = timed_out.min(sw.elapsed_micros_f64() / timed as f64);
                } else {
                    for _ in 0..warmup + timed {
                        comm.recv_array(&api_buf, 0, 0).unwrap();
                        comm.send_array(&api_buf, 0, 0).unwrap();
                    }
                }
            };

            let mut best_hand = f64::INFINITY;
            let mut best_api = f64::INFINITY;
            // Alternate phase order between repeats so clock drift and
            // cache warm-up cancel instead of biasing one side.
            for rep in 0..repeats {
                if rep % 2 == 0 {
                    hand_phase(&mut best_hand);
                    api_phase(&mut best_api);
                } else {
                    api_phase(&mut best_api);
                    hand_phase(&mut best_hand);
                }
            }
            if rank == 0 {
                *o.lock() = (best_hand, best_api);
            }
        },
    )
    .unwrap();
    let v = *out.lock();
    v
}

/// The ablation as a gated artifact: metric = `api/hand` ratio.
pub fn ablation_api_result(quick: bool) -> AppResult {
    let (bytes, warmup, timed, repeats) = if quick {
        (16 * 1024, 20, 60, 3)
    } else {
        (32 * 1024, 100, 200, 5)
    };
    let (hand, api) = ablation_api(bytes, warmup, timed, repeats);
    AppResult {
        workload: "ablation_api",
        us_per_iter: api / hand,
        checksum: 0.0,
        config: format!("bytes={bytes},timed={timed},repeats={repeats},metric=api_over_hand"),
        profile: None,
        folded: None,
    }
}

// ---------------------------------------------------------------------
// Ablation: comm/compute overlap baseline
// ---------------------------------------------------------------------

/// Virtual-time knobs of the overlap ablation (identical for quick and
/// full runs: the simulator makes the number exact, not sampled).
const OVERLAP_BYTES: usize = 24 * 1024;
const OVERLAP_COMPUTE_TICKS: u64 = 800;
const OVERLAP_ITERS: usize = 3;
const OVERLAP_TRICKLE: usize = 64;
const OVERLAP_SEED: u64 = 42;
/// Virtual-step budget for one wait drain (a hang busts this, not CI).
const OVERLAP_WAIT_BUDGET: u64 = 1_000_000;

/// The overlap measurement (ROADMAP item 2), run under the deterministic
/// simulator so the ratio is a property of the progress engine rather
/// than of the host's core count: two ranks exchange rendezvous-sized
/// payloads over trickle wires, "compute" for a fixed window of virtual
/// ticks, then wait. While a rank computes it does not touch its device —
/// exactly the gap the engine exists to fill. In `thread` mode the
/// engine's batched polls run during the compute window (concurrently in
/// virtual time, as a dedicated core would); in `off` mode nothing moves
/// until the waits begin, so the in-flight intervals drown in `comm_wait`.
///
/// The same [`motor_obs::PhaseStats`] machine that profiles real clusters
/// is driven here with virtual timestamps; the artifact's checksum **is**
/// the aggregate overlap ratio it reports, floor-gated at 0.7 by the
/// `apps` binary. The pre-engine baseline measured 0.276.
pub fn ablation_overlap_mode(mode: motor_mpc::ProgressMode) -> AppResult {
    use motor_mpc::device::DeviceConfig as MpcDeviceConfig;
    use motor_obs::profile::TimeBucket;
    use motor_pal::clock::TickSource;
    use motor_sim::{FaultPlan, Schedule, SimConfig, SimNet};

    let progress = match mode {
        motor_mpc::ProgressMode::Off => ProgressConfig::off(),
        motor_mpc::ProgressMode::Thread => ProgressConfig::thread(),
        motor_mpc::ProgressMode::Steal => ProgressConfig::steal(),
    };
    let mut net = SimNet::new(
        OVERLAP_SEED,
        SimConfig {
            ranks: 2,
            device: MpcDeviceConfig {
                eager_threshold: 1024,
                ..MpcDeviceConfig::default()
            },
            schedule: Schedule::RoundRobin,
            plan: FaultPlan::trickle(OVERLAP_TRICKLE).with_latency(1),
            progress,
        },
    );
    let engine_on = mode != motor_mpc::ProgressMode::Off;
    let phases = [motor_obs::PhaseStats::new(), motor_obs::PhaseStats::new()];
    for p in &phases {
        p.start_at(0);
    }
    let payloads = [vec![0xA1u8; OVERLAP_BYTES], vec![0xB2u8; OVERLAP_BYTES]];
    let mut total_ticks = 0u64;
    for _ in 0..OVERLAP_ITERS {
        let mut bufs = [vec![0u8; OVERLAP_BYTES], vec![0u8; OVERLAP_BYTES]];
        let mut reqs = Vec::new();
        let (b0, b1) = bufs.split_at_mut(1);
        for (rank, buf) in [(0usize, &mut b0[0]), (1usize, &mut b1[0])] {
            let peer = 1 - rank;
            let now = net.clock().now_ticks();
            // SAFETY: payloads/bufs outlive the drain loop below.
            let r = unsafe {
                net.device(rank)
                    .irecv_raw(peer as i32, 7, 0, buf.as_mut_ptr(), buf.len())
                    .unwrap()
            };
            let s = unsafe {
                net.device(rank)
                    .isend_raw(
                        peer,
                        SimNet::envelope(rank, 7),
                        payloads[rank].as_ptr(),
                        payloads[rank].len(),
                        false,
                    )
                    .unwrap()
            };
            phases[rank].async_begin_at(now);
            phases[rank].async_begin_at(now);
            reqs.push((rank, r));
            reqs.push((rank, s));
        }
        // Compute window: the ranks crunch for OVERLAP_COMPUTE_TICKS of
        // virtual time without touching their devices. With the engine on,
        // its polls run *during* the window — on its own (virtual) core,
        // so pumping does not consume compute ticks.
        for _ in 0..OVERLAP_COMPUTE_TICKS {
            if engine_on {
                for d in 0..2 {
                    match mode {
                        motor_mpc::ProgressMode::Thread => {
                            net.device(d)
                                .progress_batched(progress.max_batch_passes, true)
                                .unwrap();
                        }
                        motor_mpc::ProgressMode::Steal => {
                            net.device(d).progress().unwrap();
                        }
                        motor_mpc::ProgressMode::Off => unreachable!(),
                    }
                }
            }
            net.clock().advance(1);
        }
        // Waits: each rank enters comm_wait until its own two requests
        // complete; the scheduler (net.step) drives whoever it picks.
        let wait_start = net.clock().now_ticks();
        for p in &phases {
            p.push_at(TimeBucket::CommWait, wait_start);
        }
        let mut done_at = [None::<u64>; 2];
        let t0 = net.steps();
        loop {
            for rank in 0..2 {
                if done_at[rank].is_none()
                    && reqs
                        .iter()
                        .filter(|(r, _)| *r == rank)
                        .all(|(_, q)| q.is_complete())
                {
                    let now = net.clock().now_ticks();
                    done_at[rank] = Some(now);
                    phases[rank].pop_at(now);
                    phases[rank].async_end_at(now);
                    phases[rank].async_end_at(now);
                }
            }
            if done_at.iter().all(Option::is_some) {
                break;
            }
            assert!(
                net.steps() - t0 < OVERLAP_WAIT_BUDGET,
                "overlap ablation wait did not drain"
            );
            net.step().unwrap();
        }
        for (rank, buf) in bufs.iter().enumerate() {
            assert_eq!(
                buf,
                &payloads[1 - rank],
                "overlap exchange must deliver the peer's payload"
            );
        }
        total_ticks = net.clock().now_ticks();
    }

    let end = total_ticks;
    let mut section = ProfileSection::default();
    let mut folded = FoldedStacks::new();
    let (mut inflight, mut overlap) = (0u64, 0u64);
    for (rank, p) in phases.iter().enumerate() {
        let snap = p.read_at(end);
        inflight += snap.inflight_nanos;
        overlap += snap.overlap_nanos;
        // The simulator has no wall-clock sampler; the flamegraph input
        // is the exact virtual-tick attribution instead (one "sample"
        // per tick), so the artifact contract — a .folded file next to
        // every profiled workload — holds for the sim harness too.
        let compute = snap.bucket_nanos[TimeBucket::Compute as usize];
        let wait = snap.bucket_nanos[TimeBucket::CommWait as usize];
        if compute > 0 {
            folded.add(format!("rank{rank};overlap_sim;compute"), compute);
        }
        if wait > 0 {
            folded.add(format!("rank{rank};overlap_sim;comm_wait"), wait);
        }
        section.ranks.push(RankProfile {
            rank,
            wall_nanos: snap.wall_nanos(),
            bucket_nanos: snap.bucket_nanos,
            inflight_nanos: snap.inflight_nanos,
            overlap_nanos: snap.overlap_nanos,
            samples: compute + wait,
            top_functions: Vec::new(),
            op_mix: Vec::new(),
        });
    }
    let ratio = if inflight == 0 {
        0.0
    } else {
        overlap as f64 / inflight as f64
    };
    AppResult {
        workload: "ablation_overlap",
        us_per_iter: end as f64 / OVERLAP_ITERS as f64,
        checksum: ratio,
        config: format!(
            "sim,ranks=2,bytes={OVERLAP_BYTES},compute_ticks={OVERLAP_COMPUTE_TICKS},\
             iters={OVERLAP_ITERS},trickle={OVERLAP_TRICKLE},seed={OVERLAP_SEED},\
             progress={},units=virtual_ticks,metric=checksum_is_overlap_ratio",
            match mode {
                motor_mpc::ProgressMode::Off => "off",
                motor_mpc::ProgressMode::Thread => "thread",
                motor_mpc::ProgressMode::Steal => "steal",
            }
        ),
        profile: Some(section),
        folded: Some(folded.render()),
    }
}

/// The artifact run: engine in `thread` mode (the shipped configuration).
pub fn ablation_overlap(_cfg: AppConfig) -> AppResult {
    ablation_overlap_mode(motor_mpc::ProgressMode::Thread)
}

// ---------------------------------------------------------------------
// Ablation: profiling on vs off
// ---------------------------------------------------------------------

/// The profiler's cost, measured: the same IL kernel interpreted with no
/// profiler attached vs. with the full stack on (IL hotness hooks live
/// plus a sampler thread reading them). Paired and interleaved like
/// [`ablation_api`]; returns `(off_us, on_us)` best-over-repeats. The
/// `apps` binary gates the ratio at 1.02 in release builds.
///
/// (With the interpreter's `profile` feature compiled out entirely the
/// hooks do not exist — the dispatch loop is byte-identical to the
/// pre-profiler interpreter. This bench measures the *enabled* path.)
pub fn ablation_profile(trips: i64, reps: usize, repeats: usize) -> (f64, f64) {
    use motor_interp::il::{FnBuilder, Module, Op, PROFILE_NAMES};
    use motor_interp::interp::Interp;
    use motor_interp::verify::VerifiedModule;
    use motor_obs::{IlHot, MetricsRegistry};
    use motor_runtime::{MotorThread, Vm, VmConfig};

    // kernel(): a `trips`-iteration integer loop with a body heavy
    // enough to look like real IL (≈14 dispatched ops per trip).
    let mut f = FnBuilder::new("kernel", 0, 2, true);
    let top = f.label();
    let done = f.label();
    f.op(Op::PushI(trips)).op(Op::Store(0));
    f.op(Op::PushI(0)).op(Op::Store(1));
    f.bind(top);
    f.op(Op::Load(0))
        .op(Op::PushI(0))
        .op(Op::CmpLe)
        .br_true(done);
    f.op(Op::Load(1))
        .op(Op::Load(0))
        .op(Op::PushI(3))
        .op(Op::Mul)
        .op(Op::PushI(1))
        .op(Op::Sub)
        .op(Op::Add)
        .op(Op::Store(1));
    f.op(Op::Load(0))
        .op(Op::PushI(1))
        .op(Op::Sub)
        .op(Op::Store(0));
    f.br(top);
    f.bind(done);
    f.op(Op::Load(1)).op(Op::Ret);
    let mut m = Module::new();
    let kernel = m.add(f.build());

    let vm = Vm::new(VmConfig::default());
    let vmod = VerifiedModule::verify(m, &vm.registry()).expect("kernel verifies");
    let t = MotorThread::attach(vm);

    let names: Vec<String> = vmod
        .module()
        .functions
        .iter()
        .map(|f| f.name.clone())
        .collect();
    let off = Interp::new(&t, &vmod);
    let hot = Arc::new(IlHot::new(names, PROFILE_NAMES.to_vec()));
    let on = Interp::new(&t, &vmod).with_profiler(Arc::clone(&hot));

    let registry = Arc::new(MetricsRegistry::new());
    registry.profile_start();
    let sampler = Sampler::spawn(
        vec![ProfTarget {
            rank: 0,
            registry,
            hot: Some(Arc::clone(&hot)),
        }],
        SAMPLE_PERIOD,
    );

    let time_phase = |i: &Interp, best: &mut f64| {
        // One warmup call, then the timed repetitions.
        i.call(kernel, &[]).unwrap();
        let sw = Stopwatch::start();
        for _ in 0..reps {
            i.call(kernel, &[]).unwrap();
        }
        *best = best.min(sw.elapsed_micros_f64() / reps as f64);
    };

    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    for rep in 0..repeats {
        if rep % 2 == 0 {
            time_phase(&off, &mut best_off);
            time_phase(&on, &mut best_on);
        } else {
            time_phase(&on, &mut best_on);
            time_phase(&off, &mut best_off);
        }
    }
    let (_folded, _) = sampler.stop();
    (best_off, best_on)
}

/// The profiling-cost ablation as a gated artifact: metric = `on/off`
/// ratio.
pub fn ablation_profile_result(quick: bool) -> AppResult {
    // Sized so one timed phase is long enough (tens of milliseconds)
    // that scheduler noise stays well under the 2% gate; best-of pairs
    // over `repeats` shed the rest.
    let (trips, reps, repeats) = if quick {
        (4_000, 50, 7)
    } else {
        (10_000, 60, 9)
    };
    let (off, on) = ablation_profile(trips, reps, repeats);
    AppResult {
        workload: "ablation_profile",
        us_per_iter: on / off,
        checksum: 0.0,
        config: format!("trips={trips},reps={reps},repeats={repeats},metric=on_over_off"),
        profile: None,
        folded: None,
    }
}

// ---------------------------------------------------------------------
// Ablation: never-transported escape proofs on vs off
// ---------------------------------------------------------------------

/// What motor-lint's escape proofs buy the collector, measured: the same
/// allocation-churn kernel driven through a deliberately tiny young
/// generation, once loaded through plain verification (every evacuated
/// object passes the pinned-set membership check) and once through
/// `motor_analyze::load` (the never-transported proof lets the
/// evacuator skip the check for proven classes). Paired and interleaved
/// like [`ablation_profile`]; returns `(off_us, on_us, pin_checks_elided)`
/// with the counter read from the proof-carrying VM after all timed
/// work — zero elisions means the proof never engaged and the run is
/// meaningless, so callers assert on it.
pub fn ablation_pins(allocs: i64, reps: usize, repeats: usize) -> (f64, f64, u64) {
    use motor_interp::il::{FnBuilder, Module, Op};
    use motor_interp::interp::{Interp, Value};
    use motor_interp::verify::VerifiedModule;
    use motor_runtime::heap::HeapConfig;
    use motor_runtime::{ClassId, MotorThread, Vm, VmConfig};

    // churn(n): allocate and drop n two-field instances — every trip
    // through the tiny young generation is a minor collection full of
    // dead Scratch objects the evacuator still has to consider.
    let churn = |cls: ClassId| -> Module {
        let mut f = FnBuilder::new("churn", 1, 2, false);
        let top = f.label();
        let done = f.label();
        f.op(Op::PushI(0)).op(Op::Store(1));
        f.bind(top);
        f.op(Op::Load(1)).op(Op::Load(0)).op(Op::CmpLt);
        f.br_false(done);
        f.op(Op::New(cls)).op(Op::Pop);
        f.op(Op::Load(1))
            .op(Op::PushI(1))
            .op(Op::Add)
            .op(Op::Store(1));
        f.br(top);
        f.bind(done);
        f.op(Op::Ret);
        let mut m = Module::new();
        m.add(f.build());
        m
    };
    let small_vm = || {
        let vm = Vm::new(VmConfig {
            heap: HeapConfig {
                young_bytes: 64 * 1024,
                ..Default::default()
            },
            ..Default::default()
        });
        let cls = vm
            .registry_mut()
            .define_class("Scratch")
            .prim("a", ElemKind::I64)
            .prim("b", ElemKind::F64)
            .build();
        (vm, cls)
    };

    // Two VMs: the proof is per-VM state, so each arm keeps its own
    // heap and the interleaving stays honest.
    let (vm_off, cls_off) = small_vm();
    let vmod_off = {
        let reg = vm_off.registry();
        VerifiedModule::verify(churn(cls_off), &reg).expect("churn verifies")
    };
    let (vm_on, cls_on) = small_vm();
    let vmod_on = {
        let reg = vm_on.registry();
        motor_analyze::load(churn(cls_on), &reg).expect("churn analyzes")
    };
    assert!(
        vmod_on.never_transported().contains(&cls_on),
        "escape pass must prove the churn class untransported"
    );

    let t_off = MotorThread::attach(Arc::clone(&vm_off));
    let t_on = MotorThread::attach(Arc::clone(&vm_on));
    let off = Interp::new(&t_off, &vmod_off);
    let on = Interp::new(&t_on, &vmod_on); // installs the proof bits

    let time_phase = |i: &Interp, best: &mut f64| {
        i.call(0, &[Value::I(allocs)]).unwrap();
        let sw = Stopwatch::start();
        for _ in 0..reps {
            i.call(0, &[Value::I(allocs)]).unwrap();
        }
        *best = best.min(sw.elapsed_micros_f64() / reps as f64);
    };

    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    for rep in 0..repeats {
        if rep % 2 == 0 {
            time_phase(&off, &mut best_off);
            time_phase(&on, &mut best_on);
        } else {
            time_phase(&on, &mut best_on);
            time_phase(&off, &mut best_off);
        }
    }
    let elided = vm_on.stats_snapshot().pin_checks_elided;
    (best_off, best_on, elided)
}

/// The pin-elision ablation as a gated artifact: metric = `on/off`
/// ratio (the proof must never slow the collector down), checksum =
/// elided pin checks on the proof-carrying VM.
pub fn ablation_pins_result(quick: bool) -> AppResult {
    let (allocs, reps, repeats) = if quick {
        (20_000, 20, 5)
    } else {
        (50_000, 30, 7)
    };
    let (off, on, elided) = ablation_pins(allocs, reps, repeats);
    assert!(
        elided > 0,
        "pin-elision ablation ran without the proof engaging"
    );
    AppResult {
        workload: "ablation_pins",
        us_per_iter: on / off,
        checksum: elided as f64,
        config: format!(
            "allocs={allocs},reps={reps},repeats={repeats},young=64KiB,\
             metric=on_over_off,checksum_is_pin_checks_elided"
        ),
        profile: None,
        folded: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pins_ablation_elides_and_reports() {
        let (off, on, elided) = ablation_pins(4_000, 3, 2);
        assert!(off > 0.0 && on > 0.0);
        assert!(elided > 0, "tiny young gen must cycle and elide checks");
        let r = ablation_pins_result(true);
        assert_eq!(r.workload, "ablation_pins");
        assert!(r.checksum >= 1.0);
    }

    #[test]
    fn cg_converges_and_reports() {
        let r = cg(AppConfig::quick());
        assert!(r.us_per_iter > 0.0);
        assert!(r.checksum < 1e-2, "converged residual, got {}", r.checksum);
        // The profile section is live: every rank present, buckets
        // accounting for ≥95% of the rank's measured wall clock, samples
        // flowing into the counters, and the folded artifact parseable.
        let p = r.profile.as_ref().expect("cg carries a profile section");
        assert_eq!(p.ranks.len(), AppConfig::quick().ranks);
        assert!(
            p.min_coverage() >= 0.95,
            "bucket coverage {:.3} below 95%",
            p.min_coverage()
        );
        assert!(p.ranks.iter().all(|r| r.samples > 0), "sampler sampled");
        let folded = FoldedStacks::parse(r.folded.as_deref().unwrap()).unwrap();
        assert!(folded.total() > 0);
        // CG spends real time in comm_wait (two allreduces + an
        // allgather per iteration).
        let buckets = p.bucket_totals();
        assert!(
            buckets[motor_obs::TimeBucket::CommWait as usize] > 0,
            "collectives must accrue comm_wait time, got {buckets:?}"
        );
    }

    #[test]
    fn overlap_ablation_separates_engine_modes() {
        // Deterministic: the same seeded exchange, three progress modes.
        let off = ablation_overlap_mode(motor_mpc::ProgressMode::Off);
        let thread = ablation_overlap_mode(motor_mpc::ProgressMode::Thread);
        let steal = ablation_overlap_mode(motor_mpc::ProgressMode::Steal);
        for r in [&off, &thread, &steal] {
            let p = r.profile.as_ref().expect("overlap carries a profile");
            let inflight: u64 = p.ranks.iter().map(|r| r.inflight_nanos).sum();
            assert!(inflight > 0, "isend/irecv intervals must be tracked");
            assert!(r.checksum >= 0.0 && r.checksum <= 1.0);
            assert!(r.us_per_iter > 0.0);
        }
        // Engine off: nothing moves during compute, the waits drown the
        // in-flight window — the ratio stays near the historical 0.276.
        assert!(
            off.checksum < 0.6,
            "engine-off overlap should be wait-bound, got {}",
            off.checksum
        );
        // Engine on (either flavor): transfers drain inside the compute
        // window, clearing the 0.7 release gate with margin.
        assert!(
            thread.checksum >= 0.7,
            "engine-thread overlap must clear the floor, got {}",
            thread.checksum
        );
        assert!(
            steal.checksum >= 0.7,
            "engine-steal overlap must clear the floor, got {}",
            steal.checksum
        );
        // And the engine must actually shorten the iteration: comm_wait
        // ticks the off run pays at the fence disappear into compute.
        assert!(
            thread.us_per_iter < off.us_per_iter,
            "thread {} !< off {}",
            thread.us_per_iter,
            off.us_per_iter
        );
        // The artifact run is the thread-mode measurement.
        let art = ablation_overlap(AppConfig::quick());
        assert_eq!(art.checksum, thread.checksum);
        assert_eq!(art.config, thread.config);
    }

    #[test]
    fn profile_ablation_runs_and_reports() {
        let (off, on) = ablation_profile(500, 5, 2);
        assert!(off > 0.0 && on > 0.0);
        // No gating here (debug build); the release `apps run` enforces
        // the 2% limit. Just prove both paths execute the same kernel.
        let r = ablation_profile_result(true);
        assert!(r.us_per_iter > 0.0);
        assert_eq!(r.workload, "ablation_profile");
    }

    #[test]
    fn bfs_matches_sequential_reference() {
        let mut cfg = AppConfig::quick();
        cfg.iters = 2;
        let r = bfs(cfg);
        assert!(r.us_per_iter > 0.0);
        assert_eq!(
            r.checksum,
            bfs_reference((cfg.ranks * cfg.scale * 32) as i64)
        );
    }

    #[test]
    fn pipeline_streams_through_spawned_stages() {
        let mut cfg = AppConfig::quick();
        cfg.iters = 6;
        let r = pipeline(cfg);
        assert!(r.us_per_iter > 0.0);
        assert!(r.checksum > 0.0);
    }

    #[test]
    fn json_roundtrip() {
        let r = AppResult {
            workload: "cg",
            us_per_iter: 12.345,
            checksum: -0.5,
            config: "ranks=4,n=1024,iters=25".into(),
            profile: None,
            folded: None,
        };
        let back = AppResult::from_json(&r.to_json()).unwrap();
        assert_eq!(back.workload, r.workload);
        assert!((back.us_per_iter - r.us_per_iter).abs() < 1e-3);
        assert!((back.checksum - r.checksum).abs() < 1e-6);
        assert_eq!(back.config, r.config);
        assert!(back.profile.is_none());
    }

    #[test]
    fn json_roundtrip_with_profile() {
        let r = AppResult {
            workload: "pipeline",
            us_per_iter: 3.0,
            checksum: 1.0,
            config: "stages=2".into(),
            profile: Some(ProfileSection {
                ranks: vec![RankProfile {
                    rank: 0,
                    wall_nanos: 1_000,
                    bucket_nanos: [500, 300, 100, 50, 50],
                    inflight_nanos: 200,
                    overlap_nanos: 100,
                    samples: 9,
                    top_functions: Vec::new(),
                    op_mix: Vec::new(),
                }],
            }),
            folded: None,
        };
        let back = AppResult::from_json(&r.to_json()).unwrap();
        assert_eq!(back.profile, r.profile);
        assert_eq!(back.profile.unwrap().overlap_ratio(), Some(0.5));
    }
}
