//! Per-system ping-pong runners for the two figures.
//!
//! "A single node was used because we are only interested in the
//! performance of the MPI implementation, rather than the underlying
//! transport" (§8) — here: two ranks over the in-process shm channel, so
//! the measured differences isolate the binding architecture.

use std::sync::Arc;

use parking_lot::Mutex;

use motor_baselines::{HostProfile, Indiana, JavaSerializer, MpiJava};
use motor_core::cluster::{run_cluster, ClusterConfig};
use motor_core::VisitedStrategy;
use motor_mpc::Universe;
use motor_obs::MetricsSnapshot;
use motor_runtime::ElemKind;

use crate::protocol::PingPongProtocol;
use crate::workloads::{build_linked_list, define_linked_array, LinkedListSpec};

/// The five systems of Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig9Impl {
    /// Native use of the Message Passing Core (the "C++ / MPICH2" line).
    Cpp,
    /// Motor: runtime-internal bindings with the pinning policy.
    Motor,
    /// Indiana C# bindings hosted on the SSCLI profile.
    IndianaSscli,
    /// Indiana C# bindings hosted on the .NET profile.
    IndianaNet,
    /// mpiJava (JNI wrapper).
    MpiJava,
}

impl Fig9Impl {
    /// All systems in the paper's legend order.
    pub const ALL: [Fig9Impl; 5] = [
        Fig9Impl::MpiJava,
        Fig9Impl::IndianaSscli,
        Fig9Impl::IndianaNet,
        Fig9Impl::Motor,
        Fig9Impl::Cpp,
    ];

    /// Series label as in the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            Fig9Impl::Cpp => "C++",
            Fig9Impl::Motor => "Motor",
            Fig9Impl::IndianaSscli => "Indiana SSCLI",
            Fig9Impl::IndianaNet => "Indiana .NET",
            Fig9Impl::MpiJava => "Java",
        }
    }
}

/// The four systems of Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig10Impl {
    /// Motor's extended OO operations (linear visited list, as published).
    Motor,
    /// Motor with the hashed visited structure (the paper's future work).
    MotorHashed,
    /// Indiana bindings + CLI binary serialization, SSCLI host.
    IndianaSscli,
    /// Indiana bindings + CLI binary serialization, .NET host.
    IndianaNet,
    /// mpiJava with the `MPI.OBJECT` datatype (Java serialization).
    MpiJava,
}

impl Fig10Impl {
    /// The paper's four series (the hashed variant is our ablation extra).
    pub const PAPER: [Fig10Impl; 4] = [
        Fig10Impl::Motor,
        Fig10Impl::MpiJava,
        Fig10Impl::IndianaNet,
        Fig10Impl::IndianaSscli,
    ];

    /// Series label as in the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            Fig10Impl::Motor => "Motor",
            Fig10Impl::MotorHashed => "Motor (hashed visited)",
            Fig10Impl::IndianaSscli => "Indiana (SSCLI)",
            Fig10Impl::IndianaNet => "Indiana (.NET)",
            Fig10Impl::MpiJava => "mpiJava",
        }
    }
}

/// Figure 9: mean microseconds per ping-pong iteration for `bytes`-sized
/// buffers under the given system, plus the cluster-aggregated metrics
/// snapshot of the run.
pub fn fig9_pingpong(
    sys: Fig9Impl,
    bytes: usize,
    protocol: PingPongProtocol,
) -> (f64, MetricsSnapshot) {
    match sys {
        Fig9Impl::Cpp => cpp_pingpong(bytes, protocol),
        Fig9Impl::Motor => motor_pingpong(bytes, protocol),
        Fig9Impl::IndianaSscli => indiana_pingpong(bytes, protocol, HostProfile::Sscli),
        Fig9Impl::IndianaNet => indiana_pingpong(bytes, protocol, HostProfile::Net),
        Fig9Impl::MpiJava => mpijava_pingpong(bytes, protocol),
    }
}

/// Figure 9 timing only.
pub fn fig9_pingpong_us(sys: Fig9Impl, bytes: usize, protocol: PingPongProtocol) -> f64 {
    fig9_pingpong(sys, bytes, protocol).0
}

/// Figure 10: mean microseconds per object-tree ping-pong iteration for
/// `total_objects` with the run's aggregated metrics, or `None` where the
/// system fails (mpiJava's stack overflow past 1024 objects).
pub fn fig10_object_pingpong(
    sys: Fig10Impl,
    total_objects: usize,
    protocol: PingPongProtocol,
) -> Option<(f64, MetricsSnapshot)> {
    let spec = LinkedListSpec::paper(total_objects);
    match sys {
        Fig10Impl::Motor => Some(motor_object_pingpong(
            spec,
            protocol,
            VisitedStrategy::Linear,
        )),
        Fig10Impl::MotorHashed => Some(motor_object_pingpong(
            spec,
            protocol,
            VisitedStrategy::Hashed,
        )),
        Fig10Impl::IndianaSscli => {
            Some(indiana_object_pingpong(spec, protocol, HostProfile::Sscli))
        }
        Fig10Impl::IndianaNet => Some(indiana_object_pingpong(spec, protocol, HostProfile::Net)),
        Fig10Impl::MpiJava => mpijava_object_pingpong(spec, protocol),
    }
}

/// Figure 10 timing only.
pub fn fig10_object_pingpong_us(
    sys: Fig10Impl,
    total_objects: usize,
    protocol: PingPongProtocol,
) -> Option<f64> {
    fig10_object_pingpong(sys, total_objects, protocol).map(|(us, _)| us)
}

fn cpp_pingpong(bytes: usize, protocol: PingPongProtocol) -> (f64, MetricsSnapshot) {
    let result = Arc::new(Mutex::new(0.0f64));
    let metrics = Arc::new(Mutex::new(MetricsSnapshot::empty()));
    let (r, m) = (Arc::clone(&result), Arc::clone(&metrics));
    Universe::run(2, move |proc| {
        let world = proc.world();
        let mut buf = vec![0u8; bytes];
        if world.rank() == 0 {
            let us = protocol.measure(|| {
                world.send_bytes(&buf, 1, 0).unwrap();
                world.recv_bytes(&mut buf, 1, 0).unwrap();
            });
            *r.lock() = us;
        } else {
            for _ in 0..protocol.total_iterations() {
                world.recv_bytes(&mut buf, 0, 0).unwrap();
                world.send_bytes(&buf, 0, 0).unwrap();
            }
        }
        m.lock().merge(&world.device().metrics().snapshot());
    })
    .unwrap();
    let v = *result.lock();
    let snap = metrics.lock().clone();
    (v, snap)
}

fn motor_pingpong(bytes: usize, protocol: PingPongProtocol) -> (f64, MetricsSnapshot) {
    let result = Arc::new(Mutex::new(0.0f64));
    let r = Arc::clone(&result);
    let cm = run_cluster(
        ClusterConfig::builder().ranks(2).build(),
        |_reg| {},
        move |proc| {
            let mp = proc.mp();
            let t = proc.thread();
            let buf = t.alloc_prim_array(ElemKind::U8, bytes);
            if mp.rank() == 0 {
                let us = protocol.measure(|| {
                    mp.send(buf, 1, 0).unwrap();
                    mp.recv(buf, 1, 0).unwrap();
                });
                *r.lock() = us;
            } else {
                for _ in 0..protocol.total_iterations() {
                    mp.recv(buf, 0, 0).unwrap();
                    mp.send(buf, 0, 0).unwrap();
                }
            }
        },
    )
    .unwrap();
    let v = *result.lock();
    (v, cm.aggregate())
}

fn indiana_pingpong(
    bytes: usize,
    protocol: PingPongProtocol,
    host: HostProfile,
) -> (f64, MetricsSnapshot) {
    let result = Arc::new(Mutex::new(0.0f64));
    let r = Arc::clone(&result);
    let cm = run_cluster(
        ClusterConfig::builder().ranks(2).build(),
        |_reg| {},
        move |proc| {
            let b = Indiana::new(proc.thread(), proc.comm().clone(), host);
            let t = proc.thread();
            let buf = t.alloc_prim_array(ElemKind::U8, bytes);
            if b.rank() == 0 {
                let us = protocol.measure(|| {
                    b.send(buf, 1, 0).unwrap();
                    b.recv(buf, 1, 0).unwrap();
                });
                *r.lock() = us;
            } else {
                for _ in 0..protocol.total_iterations() {
                    b.recv(buf, 0, 0).unwrap();
                    b.send(buf, 0, 0).unwrap();
                }
            }
        },
    )
    .unwrap();
    let v = *result.lock();
    (v, cm.aggregate())
}

fn mpijava_pingpong(bytes: usize, protocol: PingPongProtocol) -> (f64, MetricsSnapshot) {
    let result = Arc::new(Mutex::new(0.0f64));
    let r = Arc::clone(&result);
    let cm = run_cluster(
        ClusterConfig::builder().ranks(2).build(),
        |_reg| {},
        move |proc| {
            let j = MpiJava::new(proc.thread(), proc.comm().clone());
            let t = proc.thread();
            let buf = t.alloc_prim_array(ElemKind::U8, bytes);
            if j.rank() == 0 {
                let us = protocol.measure(|| {
                    j.send(buf, 1, 0).unwrap();
                    j.recv(buf, 1, 0).unwrap();
                });
                *r.lock() = us;
            } else {
                for _ in 0..protocol.total_iterations() {
                    j.recv(buf, 0, 0).unwrap();
                    j.send(buf, 0, 0).unwrap();
                }
            }
        },
    )
    .unwrap();
    let v = *result.lock();
    (v, cm.aggregate())
}

fn motor_object_pingpong(
    spec: LinkedListSpec,
    protocol: PingPongProtocol,
    strategy: VisitedStrategy,
) -> (f64, MetricsSnapshot) {
    let result = Arc::new(Mutex::new(0.0f64));
    let r = Arc::clone(&result);
    let cm = run_cluster(
        ClusterConfig::builder().ranks(2).build(),
        |reg| {
            define_linked_array(reg);
        },
        move |proc| {
            let oomp = proc.oomp().with_strategy(strategy);
            let t = proc.thread();
            if oomp.rank() == 0 {
                let head = build_linked_list(proc, spec);
                let us = protocol.measure(|| {
                    oomp.osend(head, 1, 0).unwrap();
                    let (back, _) = oomp.orecv(1, 0).unwrap();
                    t.release(back);
                });
                *r.lock() = us;
            } else {
                for _ in 0..protocol.total_iterations() {
                    let (h, _) = oomp.orecv(0, 0).unwrap();
                    oomp.osend(h, 0, 0).unwrap();
                    t.release(h);
                }
            }
        },
    )
    .unwrap();
    let v = *result.lock();
    (v, cm.aggregate())
}

fn indiana_object_pingpong(
    spec: LinkedListSpec,
    protocol: PingPongProtocol,
    host: HostProfile,
) -> (f64, MetricsSnapshot) {
    let result = Arc::new(Mutex::new(0.0f64));
    let r = Arc::clone(&result);
    let cm = run_cluster(
        ClusterConfig::builder().ranks(2).build(),
        |reg| {
            define_linked_array(reg);
        },
        move |proc| {
            let b = Indiana::new(proc.thread(), proc.comm().clone(), host);
            let t = proc.thread();
            if b.rank() == 0 {
                let head = build_linked_list(proc, spec);
                let us = protocol.measure(|| {
                    b.send_object(head, 1, 0).unwrap();
                    let back = b.recv_object(1, 0).unwrap();
                    t.release(back);
                });
                *r.lock() = us;
            } else {
                for _ in 0..protocol.total_iterations() {
                    let h = b.recv_object(0, 0).unwrap();
                    b.send_object(h, 0, 0).unwrap();
                    t.release(h);
                }
            }
        },
    )
    .unwrap();
    let v = *result.lock();
    (v, cm.aggregate())
}

fn mpijava_object_pingpong(
    spec: LinkedListSpec,
    protocol: PingPongProtocol,
) -> Option<(f64, MetricsSnapshot)> {
    // Deterministic pre-check: the recursive Java serializer overflows on
    // long lists before anything is sent; both ranks detect it locally, so
    // no message is ever in flight when the run aborts.
    let overflow = Arc::new(Mutex::new(false));
    let result = Arc::new(Mutex::new(0.0f64));
    let (o, r) = (Arc::clone(&overflow), Arc::clone(&result));
    let cm = run_cluster(
        ClusterConfig::builder().ranks(2).build(),
        |reg| {
            define_linked_array(reg);
        },
        move |proc| {
            let j = MpiJava::new(proc.thread(), proc.comm().clone());
            let t = proc.thread();
            let head = build_linked_list(proc, spec);
            // Local feasibility probe (same on both ranks).
            if JavaSerializer::new(t).serialize(head).is_err() {
                if j.rank() == 0 {
                    *o.lock() = true;
                }
                return;
            }
            if j.rank() == 0 {
                let us = protocol.measure(|| {
                    j.send_object(head, 1, 0).unwrap();
                    let back = j.recv_object(1, 0).unwrap();
                    t.release(back);
                });
                *r.lock() = us;
            } else {
                for _ in 0..protocol.total_iterations() {
                    let h = j.recv_object(0, 0).unwrap();
                    j.send_object(h, 0, 0).unwrap();
                    t.release(h);
                }
            }
        },
    )
    .unwrap();
    if *overflow.lock() {
        None
    } else {
        let v = *result.lock();
        Some((v, cm.aggregate()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::QUICK_PROTOCOL;

    #[test]
    fn fig9_all_systems_produce_positive_times() {
        for sys in Fig9Impl::ALL {
            let us = fig9_pingpong_us(sys, 1024, QUICK_PROTOCOL);
            assert!(us > 0.0, "{sys:?} returned {us}");
        }
    }

    #[test]
    fn fig10_motor_and_indiana_produce_times_java_overflows() {
        for sys in [Fig10Impl::Motor, Fig10Impl::IndianaNet] {
            let us = fig10_object_pingpong_us(sys, 32, QUICK_PROTOCOL);
            assert!(us.unwrap() > 0.0);
        }
        // Past 1024 objects, mpiJava dies with a stack overflow (Figure 10).
        assert!(fig10_object_pingpong_us(Fig10Impl::MpiJava, 512, QUICK_PROTOCOL).is_some());
        assert!(fig10_object_pingpong_us(Fig10Impl::MpiJava, 2048, QUICK_PROTOCOL).is_none());
    }
}
