//! Workload generators for the figure sweeps.

use motor_core::MotorProc;
use motor_runtime::{ClassId, ElemKind, Handle, TypeRegistry};

/// Figure 9's buffer sizes: 4 B … 262144 B in powers of two.
pub fn fig9_buffer_sizes() -> Vec<usize> {
    (2..=18).map(|p| 1usize << p).collect()
}

/// Figure 10's total-object counts: 2 … 8192 in powers of two.
pub fn fig10_object_counts() -> Vec<usize> {
    (1..=13).map(|p| 1usize << p).collect()
}

/// The Figure 10 structured-data workload: "The structured data was in the
/// form of a linked list, with each list element containing a buffer
/// (Figure 5 shows a similar structure). The total data buffer was 4096
/// bytes, evenly distributed over the entire linked list. The total number
/// of objects transported is twice the number of linked list elements
/// because the data array referenced by each linked list element is itself
/// an object."
#[derive(Debug, Clone, Copy)]
pub struct LinkedListSpec {
    /// Total objects transported (elements × 2).
    pub total_objects: usize,
    /// Total payload bytes spread across the element arrays.
    pub total_payload: usize,
}

impl LinkedListSpec {
    /// The paper's configuration for a given object count.
    pub fn paper(total_objects: usize) -> LinkedListSpec {
        assert!(total_objects >= 2 && total_objects.is_multiple_of(2));
        LinkedListSpec {
            total_objects,
            total_payload: 4096,
        }
    }

    /// Linked-list elements (nodes).
    pub fn elements(&self) -> usize {
        self.total_objects / 2
    }

    /// `i32` entries in each node's data array.
    pub fn ints_per_element(&self) -> usize {
        (self.total_payload / self.elements()) / 4
    }
}

/// The paper's `LinkedArray` class (Figure 5): a transportable `i32[]`, a
/// transportable `next`, and a non-transportable `next2`.
pub fn define_linked_array(reg: &mut TypeRegistry) -> ClassId {
    let arr = reg.prim_array(ElemKind::I32);
    let next_id = ClassId(reg.len() as u32);
    reg.define_class("LinkedArray")
        .prim("tag", ElemKind::I32)
        .transportable("array", arr)
        .transportable("next", next_id)
        .reference("next2", next_id)
        .build()
}

/// Build the Figure 10 list on a rank; returns the head handle.
pub fn build_linked_list(proc: &MotorProc, spec: LinkedListSpec) -> Handle {
    let t = proc.thread();
    let node = proc
        .vm()
        .registry()
        .by_name("LinkedArray")
        .expect("LinkedArray defined");
    let (ftag, farr, fnext) = (
        t.field_index(node, "tag"),
        t.field_index(node, "array"),
        t.field_index(node, "next"),
    );
    let ints = spec.ints_per_element();
    let data: Vec<i32> = (0..ints).map(|j| j as i32).collect();
    let mut head = t.null_handle();
    for i in (0..spec.elements()).rev() {
        let n = t.alloc_instance(node);
        t.set_prim::<i32>(n, ftag, i as i32);
        let a = t.alloc_prim_array(ElemKind::I32, ints);
        if ints > 0 {
            t.prim_write(a, 0, &data);
        }
        t.set_ref(n, farr, a);
        t.set_ref(n, fnext, head);
        t.release(a);
        t.release(head);
        head = n;
    }
    head
}

/// Count the elements of a received list (validation in the harness).
pub fn list_length(proc: &MotorProc, head: Handle) -> usize {
    let t = proc.thread();
    let node = proc
        .vm()
        .registry()
        .by_name("LinkedArray")
        .expect("LinkedArray defined");
    let fnext = t.field_index(node, "next");
    let mut n = 0;
    let mut cur = t.clone_handle(head);
    while !t.is_null(cur) {
        n += 1;
        let nx = t.get_ref(cur, fnext);
        t.release(cur);
        cur = nx;
    }
    t.release(cur);
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_sweep_matches_paper_range() {
        let s = fig9_buffer_sizes();
        assert_eq!(*s.first().unwrap(), 4);
        assert_eq!(*s.last().unwrap(), 262_144);
        assert!(s.windows(2).all(|w| w[1] == w[0] * 2));
    }

    #[test]
    fn fig10_sweep_matches_paper_range() {
        let s = fig10_object_counts();
        assert_eq!(*s.first().unwrap(), 2);
        assert_eq!(*s.last().unwrap(), 8192);
    }

    #[test]
    fn spec_distributes_payload_evenly() {
        let spec = LinkedListSpec::paper(16);
        assert_eq!(spec.elements(), 8);
        assert_eq!(spec.ints_per_element(), 4096 / 8 / 4);
        // Large object counts: arrays shrink to zero entries but remain
        // objects.
        let big = LinkedListSpec::paper(8192);
        assert_eq!(big.elements(), 4096);
        assert_eq!(big.ints_per_element(), 0);
    }

    #[test]
    fn list_builder_roundtrip() {
        motor_core::cluster::run_cluster_default(
            1,
            |reg| {
                define_linked_array(reg);
            },
            |proc| {
                let spec = LinkedListSpec::paper(64);
                let head = build_linked_list(proc, spec);
                assert_eq!(list_length(proc, head), spec.elements());
            },
        )
        .unwrap();
    }
}
