//! The in-tree IL communication corpus `motor-analyze lint` gates on.
//!
//! Each entry is a complete SPMD program in Motor IL following the
//! whole-program convention the linter analyzes: an entry function
//! `main(rank, size)` whose first two `I64` parameters carry the rank
//! and communicator size. All entries are communication-clean by
//! construction — the CI gate fails if motor-lint ever reports a
//! definite diagnostic for any of them (a regression in either the
//! corpus or the analysis).
//!
//! [`seeded_deadlock`] is the deliberate counter-example the
//! `motor-analyze demo` subcommand lints to show a real diagnostic; it
//! is *not* part of [`corpus`].

use motor_analyze::LintConfig;
use motor_interp::il::{FCallId, FnBuilder, Module, Op, TyDesc};
use motor_runtime::{ElemKind, TypeRegistry};

/// One corpus program: a module plus the registry and lint
/// configuration it is analyzed under.
pub struct CorpusEntry {
    /// Human-readable program name, printed by the CLI.
    pub name: &'static str,
    /// The IL module; entry function is `main(rank, size)`.
    pub module: Module,
    /// Types the module references.
    pub registry: TypeRegistry,
    /// Communicator size and thresholds to lint under.
    pub config: LintConfig,
}

fn registry() -> TypeRegistry {
    let mut reg = TypeRegistry::new();
    reg.prim_array(ElemKind::F64);
    reg.prim_array(ElemKind::I64);
    reg
}

fn cfg(ranks: usize) -> LintConfig {
    LintConfig {
        ranks,
        ..LintConfig::default()
    }
}

/// Push a fresh `len`-element f64 buffer.
fn buf(f: &mut FnBuilder, len: i64) {
    f.op(Op::PushI(len)).op(Op::NewArr(ElemKind::F64));
}

/// `(rank + 1) % size` — the right ring neighbour.
fn push_right(f: &mut FnBuilder) {
    f.op(Op::Load(0))
        .op(Op::PushI(1))
        .op(Op::Add)
        .op(Op::Load(1))
        .op(Op::Rem);
}

/// `(rank - 1 + size) % size` — the left ring neighbour.
fn push_left(f: &mut FnBuilder) {
    f.op(Op::Load(0))
        .op(Op::PushI(1))
        .op(Op::Sub)
        .op(Op::Load(1))
        .op(Op::Add)
        .op(Op::Load(1))
        .op(Op::Rem);
}

/// Eager ring shift: everyone sends a small buffer to the right
/// neighbour and receives from the left.
fn ring_shift() -> CorpusEntry {
    let mut f = FnBuilder::new("main", 2, 2, false);
    buf(&mut f, 64);
    push_right(&mut f);
    f.op(Op::PushI(7)).op(Op::FCall(FCallId::MpSend));
    buf(&mut f, 64);
    push_left(&mut f);
    f.op(Op::PushI(7))
        .op(Op::FCall(FCallId::MpRecv))
        .op(Op::Ret);
    let mut m = Module::new();
    m.add(f.build());
    CorpusEntry {
        name: "ring-shift",
        module: m,
        registry: registry(),
        config: cfg(4),
    }
}

/// Broadcast from rank 0, then a barrier.
fn bcast_barrier() -> CorpusEntry {
    let mut f = FnBuilder::new("main", 2, 2, false);
    buf(&mut f, 8);
    f.op(Op::PushI(0))
        .op(Op::FCall(FCallId::MpBcast))
        .op(Op::FCall(FCallId::MpBarrier))
        .op(Op::Ret);
    let mut m = Module::new();
    m.add(f.build());
    CorpusEntry {
        name: "bcast-barrier",
        module: m,
        registry: registry(),
        config: cfg(4),
    }
}

/// Master/worker gather: rank 0 receives one message from every other
/// rank in a counted loop; workers each send once.
fn master_gather() -> CorpusEntry {
    let mut f = FnBuilder::new("main", 2, 3, false);
    let send = f.label();
    let top = f.label();
    let done = f.label();
    f.op(Op::Load(0)).op(Op::PushI(0)).op(Op::CmpEq);
    f.br_false(send);
    f.op(Op::PushI(1)).op(Op::Store(2));
    f.bind(top);
    f.op(Op::Load(2)).op(Op::Load(1)).op(Op::CmpLt);
    f.br_false(done);
    buf(&mut f, 16);
    f.op(Op::Load(2))
        .op(Op::PushI(5))
        .op(Op::FCall(FCallId::MpRecv));
    f.op(Op::Load(2))
        .op(Op::PushI(1))
        .op(Op::Add)
        .op(Op::Store(2));
    f.br(top);
    f.bind(send);
    buf(&mut f, 16);
    f.op(Op::PushI(0))
        .op(Op::PushI(5))
        .op(Op::FCall(FCallId::MpSend));
    f.bind(done);
    f.op(Op::Ret);
    let mut m = Module::new();
    m.add(f.build());
    CorpusEntry {
        name: "master-gather",
        module: m,
        registry: registry(),
        config: cfg(4),
    }
}

/// Rendezvous-sized pairwise exchange done right: the irecv is posted
/// before the blocking send, then waited.
fn rendezvous_exchange() -> CorpusEntry {
    let mut f = FnBuilder::new("main", 2, 3, false);
    buf(&mut f, 16 * 1024);
    f.op(Op::PushI(1))
        .op(Op::Load(0))
        .op(Op::Sub)
        .op(Op::PushI(3))
        .op(Op::FCall(FCallId::MpIrecv))
        .op(Op::Store(2));
    buf(&mut f, 16 * 1024);
    f.op(Op::PushI(1))
        .op(Op::Load(0))
        .op(Op::Sub)
        .op(Op::PushI(3))
        .op(Op::FCall(FCallId::MpSend));
    f.op(Op::Load(2)).op(Op::FCall(FCallId::MpWait)).op(Op::Ret);
    let mut m = Module::new();
    m.add(f.build());
    CorpusEntry {
        name: "rendezvous-exchange",
        module: m,
        registry: registry(),
        config: cfg(2),
    }
}

/// Ring shift where the isend is posted by a `Req`-returning helper —
/// exercises the interprocedural request-linearity rules end to end.
fn isend_via_helper() -> CorpusEntry {
    let mut main = FnBuilder::new("main", 2, 3, false);
    push_right(&mut main);
    main.op(Op::PushI(7)).op(Op::Call(1)).op(Op::Store(2));
    buf(&mut main, 64);
    push_left(&mut main);
    main.op(Op::PushI(7)).op(Op::FCall(FCallId::MpRecv));
    main.op(Op::Load(2))
        .op(Op::FCall(FCallId::MpWait))
        .op(Op::Ret);
    let mut post = FnBuilder::new("post", 2, 2, true);
    post.ret_ty(TyDesc::Req);
    buf(&mut post, 64);
    post.op(Op::Load(0))
        .op(Op::Load(1))
        .op(Op::FCall(FCallId::MpIsend))
        .op(Op::Ret);
    let mut m = Module::new();
    m.add(main.build());
    m.add(post.build());
    CorpusEntry {
        name: "isend-via-helper",
        module: m,
        registry: registry(),
        config: cfg(4),
    }
}

/// Pairwise eager exchange: both sides send first, then receive — safe
/// only because both payloads fit the eager protocol, which the
/// matcher's rendezvous model verifies.
fn eager_pairwise() -> CorpusEntry {
    let mut f = FnBuilder::new("main", 2, 2, false);
    buf(&mut f, 64);
    f.op(Op::PushI(1))
        .op(Op::Load(0))
        .op(Op::Sub)
        .op(Op::PushI(9))
        .op(Op::FCall(FCallId::MpSend));
    buf(&mut f, 64);
    f.op(Op::PushI(1))
        .op(Op::Load(0))
        .op(Op::Sub)
        .op(Op::PushI(9))
        .op(Op::FCall(FCallId::MpRecv))
        .op(Op::Ret);
    let mut m = Module::new();
    m.add(f.build());
    CorpusEntry {
        name: "eager-pairwise",
        module: m,
        registry: registry(),
        config: cfg(2),
    }
}

/// Multi-phase program mixing everything: a ring shift, a broadcast,
/// a counted reduce-to-root via sends, and a closing barrier.
fn multiphase() -> CorpusEntry {
    let mut f = FnBuilder::new("main", 2, 3, false);
    // Phase 1: eager ring shift.
    buf(&mut f, 32);
    push_right(&mut f);
    f.op(Op::PushI(1)).op(Op::FCall(FCallId::MpSend));
    buf(&mut f, 32);
    push_left(&mut f);
    f.op(Op::PushI(1)).op(Op::FCall(FCallId::MpRecv));
    // Phase 2: broadcast the new boundary from rank 0.
    buf(&mut f, 8);
    f.op(Op::PushI(0)).op(Op::FCall(FCallId::MpBcast));
    // Phase 3: everyone but rank 0 sends a partial to the root, which
    // collects size-1 messages in a counted loop.
    let send = f.label();
    let top = f.label();
    let joined = f.label();
    f.op(Op::Load(0)).op(Op::PushI(0)).op(Op::CmpEq);
    f.br_false(send);
    f.op(Op::PushI(1)).op(Op::Store(2));
    f.bind(top);
    f.op(Op::Load(2)).op(Op::Load(1)).op(Op::CmpLt);
    f.br_false(joined);
    buf(&mut f, 8);
    f.op(Op::Load(2))
        .op(Op::PushI(2))
        .op(Op::FCall(FCallId::MpRecv));
    f.op(Op::Load(2))
        .op(Op::PushI(1))
        .op(Op::Add)
        .op(Op::Store(2));
    f.br(top);
    f.bind(send);
    buf(&mut f, 8);
    f.op(Op::PushI(0))
        .op(Op::PushI(2))
        .op(Op::FCall(FCallId::MpSend));
    f.bind(joined);
    // Phase 4: closing barrier.
    f.op(Op::FCall(FCallId::MpBarrier));
    f.op(Op::Ret);
    let mut m = Module::new();
    m.add(f.build());
    CorpusEntry {
        name: "multiphase",
        module: m,
        registry: registry(),
        config: cfg(4),
    }
}

/// Every clean corpus program. The CI gate (`motor-analyze lint`) runs
/// motor-lint over each and fails on any definite diagnostic.
pub fn corpus() -> Vec<CorpusEntry> {
    vec![
        ring_shift(),
        bcast_barrier(),
        master_gather(),
        rendezvous_exchange(),
        isend_via_helper(),
        eager_pairwise(),
        multiphase(),
    ]
}

/// The deliberate bug `motor-analyze demo` shows: both ranks of a pair
/// post a rendezvous-sized blocking send before either receives — the
/// classic head-to-head deadlock, diagnosed with `func@pc` provenance.
pub fn seeded_deadlock() -> CorpusEntry {
    let mut f = FnBuilder::new("main", 2, 2, false);
    // 128 KiB payload: above the 64 KiB eager threshold, so the send
    // blocks until the matching receive is posted — which never
    // happens, because the peer is blocked in its own send.
    buf(&mut f, 16 * 1024);
    f.op(Op::PushI(1))
        .op(Op::Load(0))
        .op(Op::Sub)
        .op(Op::PushI(4))
        .op(Op::FCall(FCallId::MpSend));
    buf(&mut f, 16 * 1024);
    f.op(Op::PushI(1))
        .op(Op::Load(0))
        .op(Op::Sub)
        .op(Op::PushI(4))
        .op(Op::FCall(FCallId::MpRecv))
        .op(Op::Ret);
    let mut m = Module::new();
    m.add(f.build());
    CorpusEntry {
        name: "seeded-head-to-head-deadlock",
        module: m,
        registry: registry(),
        config: cfg(2),
    }
}
