//! `motor-trace` — record a cluster trace and inspect exported traces.
//!
//! ```text
//! motor-trace record <out.json> [--ranks N] [--hold-ms N]
//!                                             run a demo workload (repeated
//!                                             until the hold deadline), export
//!                                             the merged Chrome-trace JSON
//! motor-trace summary <trace.json>            wait-time breakdown and
//!                                             critical path of a trace
//! motor-trace profile <BENCH_w.json> [--top N] time-bucket, overlap, IL
//!                                             hotness and opcode-mix
//!                                             reports from a bench artifact
//! ```
//!
//! `record` runs a small SPMD program exercising every transport path —
//! eager ring exchange, a rendezvous-sized transfer, collectives, and the
//! object-oriented `OSend`/`ORecv` — then merges the per-rank event rings
//! into one timeline and writes Chrome-trace-event JSON loadable at
//! `ui.perfetto.dev`. `summary` re-loads such a file (every field needed
//! for analysis round-trips through the export) and prints the per-rank
//! wait accounting plus the cross-rank critical path.
//!
//! `doctor` runs the same workload under the `motor-doctor` watchdog and
//! writes a flight record. With `--inject-deadlock` the last rank posts a
//! receive no one will ever send to; the watchdog must diagnose it, write
//! the flight record and abort the process with exit code 86 — the CI
//! liveness gate in `scripts/check.sh`.

use std::collections::HashMap;
use std::time::Duration;

use motor_bench::apps::AppResult;
use motor_core::cluster::{run_cluster, ClusterConfig};
use motor_core::Source;
use motor_obs::{from_chrome_json, ClusterTrace, DoctorConfig};
use motor_profile::{
    report_opcode_mix, report_overlap, report_time_buckets, report_top_functions, FoldedStacks,
};
use motor_runtime::{ElemKind, TypeRegistry};

/// Exit code the doctor uses to abort an injected-deadlock run.
const DOCTOR_ABORT_CODE: i32 = 86;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("record") => record(&args[1..]),
        Some("summary") => summary(&args[1..]),
        Some("doctor") => doctor(&args[1..]),
        Some("profile") => profile(&args[1..]),
        _ => {
            eprintln!("usage: motor-trace record <out.json> [--ranks N] [--hold-ms N]");
            eprintln!("       motor-trace summary <trace.json>");
            eprintln!("       motor-trace doctor <record.json> [--ranks N] [--inject-deadlock]");
            eprintln!("       motor-trace profile <BENCH_workload.json> [--top N]");
            2
        }
    };
    std::process::exit(code);
}

fn record(args: &[String]) -> i32 {
    let Some(out) = args.first() else {
        eprintln!("record: missing output path");
        return 2;
    };
    let mut ranks = 4usize;
    let mut hold_ms = 0u64;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ranks" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 2 => ranks = n,
                _ => {
                    eprintln!("record: --ranks needs an integer >= 2");
                    return 2;
                }
            },
            "--hold-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(ms) => hold_ms = ms,
                None => {
                    eprintln!("record: --hold-ms needs an integer");
                    return 2;
                }
            },
            other => {
                eprintln!("record: unknown argument `{other}`");
                return 2;
            }
        }
    }

    let config = ClusterConfig::builder()
        .ranks(ranks)
        .event_capacity(1 << 14)
        .build();
    // With --hold-ms the workload repeats until the deadline, so a live
    // telemetry endpoint (MOTOR_TELEMETRY) has something to watch. Rank 0
    // owns the clock and tells everyone whether to go again — per-rank
    // timers could disagree by one iteration and deadlock a collective.
    let hold = Duration::from_millis(hold_ms);
    let t0 = std::time::Instant::now();
    const HOLD_TAG: i32 = 0x484f4c44; // "HOLD"
    let body = move |proc: &motor_core::MotorProc| {
        demo_body(proc);
        let comm = proc.comm();
        loop {
            let mut flag = [(comm.rank() == 0 && t0.elapsed() < hold) as u8];
            if comm.rank() == 0 {
                for peer in 1..comm.size() {
                    if comm.send_bytes(&flag, peer, HOLD_TAG).is_err() {
                        return;
                    }
                }
            } else if comm.recv_bytes(&mut flag, 0, HOLD_TAG).is_err() {
                return;
            }
            if flag[0] == 0 {
                return;
            }
            demo_body(proc);
        }
    };
    let metrics = match run_cluster(config, define_types, body) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("record: cluster run failed: {e:?}");
            return 1;
        }
    };
    for (r, off) in metrics.clock_offset_estimates.iter().enumerate() {
        eprintln!("rank {r}: clock-offset estimate {off} ns (shared epoch; pure handshake noise)");
    }
    let trace = metrics.trace();
    eprintln!(
        "merged {} ranks: {} spans, {} message edges",
        trace.ranks,
        trace.spans.len(),
        trace.edges.len()
    );
    let json = metrics.chrome_trace_json();
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("record: writing {out}: {e}");
        return 1;
    }
    eprintln!(
        "wrote {out} ({} bytes) — open at ui.perfetto.dev",
        json.len()
    );
    0
}

fn doctor(args: &[String]) -> i32 {
    let Some(out) = args.first() else {
        eprintln!("doctor: missing flight-record output path");
        return 2;
    };
    let mut ranks = 4usize;
    let mut inject = false;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ranks" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 2 => ranks = n,
                _ => {
                    eprintln!("doctor: --ranks needs an integer >= 2");
                    return 2;
                }
            },
            "--inject-deadlock" => inject = true,
            other => {
                eprintln!("doctor: unknown argument `{other}`");
                return 2;
            }
        }
    }

    let cfg = DoctorConfig {
        scan_interval: Duration::from_millis(25),
        stall_deadline: Duration::from_millis(400),
        record_path: Some(out.clone()),
        // The injected deadlock can never resolve: once diagnosed and
        // recorded, abort the whole process so the CI gate terminates.
        exit_code: inject.then_some(DOCTOR_ABORT_CODE),
        record_on_exit: true,
        ..DoctorConfig::default()
    };
    let config = ClusterConfig::builder()
        .ranks(ranks)
        .event_capacity(1 << 14)
        .doctor(cfg)
        .build();
    let metrics = match run_cluster(config, define_types, |proc| {
        demo_body(proc);
        if inject && proc.rank() == proc.size() - 1 {
            // A receive no rank will ever send to: the watchdog must blame
            // this rank and op, then abort with DOCTOR_ABORT_CODE.
            let t = proc.thread();
            let buf = t.alloc_prim_array(ElemKind::U8, 16);
            let _ = proc.mp().recv(buf, 0, 0x0dead);
        }
    }) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("doctor: cluster run failed: {e:?}");
            return 1;
        }
    };
    if metrics.anomalies.is_empty() {
        eprintln!("doctor: healthy run, no anomalies; flight record at {out}");
        0
    } else {
        eprintln!(
            "doctor: {} anomalie(s) diagnosed; flight record at {out}",
            metrics.anomalies.len()
        );
        1
    }
}

fn define_types(reg: &mut TypeRegistry) {
    let arr = reg.prim_array(ElemKind::I32);
    reg.define_class("Payload")
        .prim("tag", ElemKind::I32)
        .transportable("data", arr)
        .build();
}

/// The demo rank program: eager ring shift, rendezvous transfer from rank
/// 0 to the last rank, an allreduce, and an object send/receive pair.
fn demo_body(proc: &motor_core::MotorProc) {
    let mp = proc.mp();
    let t = proc.thread();
    let (rank, size) = (mp.rank(), mp.size());

    // Eager ring: everyone sends a small buffer to the right neighbour.
    let small = t.alloc_prim_array(ElemKind::I64, 64);
    let right = (rank + 1) % size;
    let left = (rank + size - 1) % size;
    if rank % 2 == 0 {
        mp.send(small, right, 7).unwrap();
        mp.recv(small, left, 7).unwrap();
    } else {
        let recv = t.alloc_prim_array(ElemKind::I64, 64);
        mp.recv(recv, left, 7).unwrap();
        mp.send(small, right, 7).unwrap();
        t.release(recv);
    }

    // Rendezvous: a transfer well past the eager threshold, first to last.
    let big_n = 1 << 17;
    if rank == 0 {
        let big = t.alloc_prim_array(ElemKind::U8, big_n);
        mp.send(big, size - 1, 9).unwrap();
        t.release(big);
    } else if rank == size - 1 {
        let big = t.alloc_prim_array(ElemKind::U8, big_n);
        let st = mp.recv(big, 0, 9).unwrap();
        assert_eq!(st.bytes, big_n);
        t.release(big);
    }

    // A collective everyone participates in.
    let send = t.alloc_prim_array(ElemKind::I64, 8);
    let recv = t.alloc_prim_array(ElemKind::I64, 8);
    t.prim_write(send, 0, &[rank as i64; 8]);
    mp.allreduce(send, recv, motor_mpc::ReduceOp::Sum).unwrap();

    // Object transport: rank 0 ships a small object tree to rank 1.
    let oomp = proc.oomp();
    if rank == 0 {
        let class = proc.vm().registry().by_name("Payload").unwrap();
        let obj = t.alloc_instance(class);
        let data = t.alloc_prim_array(ElemKind::I32, 32);
        t.set_ref(obj, t.field_index(class, "data"), data);
        oomp.osend(obj, 1, 11).unwrap();
        t.release(data);
        t.release(obj);
    } else if rank == 1 {
        let (root, st) = oomp.orecv(Source::Any, 11).unwrap();
        assert_eq!(st.source, 0);
        t.release(root);
    }
    mp.barrier().unwrap();
    t.release(small);
    t.release(send);
    t.release(recv);
}

fn summary(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("summary: missing trace path");
        return 2;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("summary: reading {path}: {e}");
            return 1;
        }
    };
    let trace = match from_chrome_json(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("summary: {path} is not a Motor Chrome trace: {e}");
            return 1;
        }
    };
    print_summary(&trace);
    0
}

/// `motor-trace profile BENCH_<workload>.json [--top N]` — render the
/// profiling section of a bench artifact: time-bucket partition, overlap
/// ratio, IL hotness, and opcode mix. When a sibling `.folded` file
/// exists (same stem), its heaviest sampled stacks are listed too.
fn profile(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("profile: missing BENCH_<workload>.json path");
        return 2;
    };
    let mut top = 10usize;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--top" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => top = n,
                _ => {
                    eprintln!("profile: --top needs an integer >= 1");
                    return 2;
                }
            },
            other => {
                eprintln!("profile: unknown argument `{other}`");
                return 2;
            }
        }
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("profile: reading {path}: {e}");
            return 1;
        }
    };
    let Some(result) = AppResult::from_json(&text) else {
        eprintln!("profile: {path} is not a bench artifact (apps run writes them)");
        return 1;
    };
    let Some(section) = &result.profile else {
        eprintln!(
            "profile: {path} ({}) has no profile section — re-run `apps run`",
            result.workload
        );
        return 1;
    };
    println!(
        "workload {} ({}): {:.3} us/iter",
        result.workload, result.config, result.us_per_iter
    );
    println!();
    print!("{}", report_time_buckets(section));
    println!();
    print!("{}", report_overlap(section));
    println!();
    print!("{}", report_top_functions(section, top));
    println!();
    print!("{}", report_opcode_mix(section, top));

    // The flamegraph input rides next to the JSON artifact.
    let folded_path = path.replace(".json", ".folded");
    if folded_path != *path {
        if let Ok(text) = std::fs::read_to_string(&folded_path) {
            match FoldedStacks::parse(&text) {
                Ok(stacks) => {
                    println!(
                        "\nsampled stacks ({folded_path}, {} samples):",
                        stacks.total()
                    );
                    let mut rows: Vec<_> = stacks.iter().collect();
                    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
                    for (stack, n) in rows.into_iter().take(top) {
                        println!("  {n:>8}  {stack}");
                    }
                }
                Err(e) => eprintln!("profile: {folded_path} unparsable: {e}"),
            }
        }
    }
    0
}

fn print_summary(trace: &ClusterTrace) {
    println!(
        "trace: {} ranks, {} spans, {} message edges",
        trace.ranks,
        trace.spans.len(),
        trace.edges.len()
    );
    for (rank, dropped, orphaned) in trace.coverage_gaps() {
        println!(
            "  WARNING: rank {rank} span coverage has gaps ({dropped} events \
             overwritten, {orphaned} span ends with no recorded begin) — the \
             wait breakdown below is a lower bound; raise the ring size \
             (ClusterConfig::builder().event_capacity)"
        );
    }

    let mut by_kind: HashMap<&'static str, (usize, u64)> = HashMap::new();
    for e in &trace.edges {
        let ent = by_kind.entry(e.kind.name()).or_default();
        ent.0 += 1;
        ent.1 += e.latency_nanos().max(0) as u64;
    }
    let mut rows: Vec<_> = by_kind.into_iter().collect();
    rows.sort();
    for (kind, (n, total)) in rows {
        println!(
            "  edges[{kind}]: {n}, mean latency {:.1} us",
            total as f64 / n as f64 / 1e3
        );
    }

    println!("\nper-rank wait time:");
    for wb in trace.wait_breakdown() {
        let pct = if wb.window_nanos == 0 {
            0.0
        } else {
            100.0 * wb.total_wait_nanos as f64 / wb.window_nanos as f64
        };
        println!(
            "  rank {}: {:.3} ms of {:.3} ms window waiting ({pct:.1}%)",
            wb.rank,
            wb.total_wait_nanos as f64 / 1e6,
            wb.window_nanos as f64 / 1e6,
        );
        for (kind, ns) in &wb.by_kind {
            println!("    {:<16} {:.3} ms", kind.name(), *ns as f64 / 1e6);
        }
    }

    let cp = trace.critical_path();
    println!(
        "\ncritical path: {} spans, {:.3} ms of work",
        cp.span_ids.len(),
        cp.total_nanos as f64 / 1e6
    );
    let spans: HashMap<u64, _> = trace.spans.iter().map(|s| (s.id, s)).collect();
    const SHOWN: usize = 20;
    for id in cp.span_ids.iter().take(SHOWN) {
        if let Some(s) = spans.get(id) {
            println!(
                "  #{id} rank {} {:<12} {:.3} ms",
                s.rank,
                s.kind.name(),
                s.dur_nanos() as f64 / 1e6
            );
        }
    }
    if cp.span_ids.len() > SHOWN {
        println!("  ... {} more spans", cp.span_ids.len() - SHOWN);
    }
}
