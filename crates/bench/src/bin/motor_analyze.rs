//! `motor-analyze` — run motor-lint over IL modules from the command
//! line.
//!
//! ```text
//! motor-analyze lint [--ranks N] [--prom]   lint the in-tree IL corpus;
//!                                           exit 1 on any definite
//!                                           diagnostic (the CI gate)
//! motor-analyze demo                        lint a deliberately buggy
//!                                           program and print its
//!                                           diagnostics (for docs)
//! ```
//!
//! `lint` runs the whole-program communication analysis — cross-rank
//! match checking, interprocedural request linearity, and the
//! never-transported escape proof — over every program in
//! [`motor_bench::ilcorpus`], which mirrors the communication patterns
//! the rest of the tree exercises at runtime. Diagnostic counts are
//! mirrored into the `lint_definite` / `lint_possible` metrics;
//! `--prom` dumps the Prometheus text exposition after the run, the
//! same render a scrape of a long-lived VM would see.

use motor_analyze::{load_with, LintConfig, Severity};
use motor_bench::ilcorpus::{corpus, seeded_deadlock, CorpusEntry};
use motor_obs::{to_prometheus, Metric, MetricsRegistry};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("demo") => demo(),
        _ => {
            eprintln!("usage: motor-analyze lint [--ranks N] [--prom]");
            eprintln!("       motor-analyze demo");
            2
        }
    };
    std::process::exit(code);
}

/// Lint one corpus entry; returns (definite, possible, proven classes).
fn lint_entry(entry: &CorpusEntry, cfg: &LintConfig) -> (usize, usize, usize) {
    let CorpusEntry {
        name,
        module,
        registry,
        ..
    } = entry;
    let (verified, report) = match load_with(module.clone(), registry, cfg) {
        Ok(r) => r,
        Err(e) => {
            // A corpus module failing to verify is as fatal as a lint
            // error: surface it with the same shape.
            println!("  {name}: VERIFY ERROR {e}");
            return (1, 0, 0);
        }
    };
    let (def, pos) = (report.definite_count(), report.possible_count());
    let proven = verified.never_transported().len();
    let status = if def > 0 {
        "FAIL"
    } else if pos > 0 {
        "warn"
    } else {
        "ok"
    };
    println!(
        "  {name}: {status} ({def} definite, {pos} possible, {proven} never-transported class(es))"
    );
    for d in &report.diagnostics {
        println!("    {d}");
    }
    (def, pos, proven)
}

fn lint(args: &[String]) -> i32 {
    let mut ranks: Option<usize> = None;
    let mut prom = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ranks" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 2 => ranks = Some(n),
                _ => {
                    eprintln!("lint: --ranks needs an integer >= 2");
                    return 2;
                }
            },
            "--prom" => prom = true,
            other => {
                eprintln!("lint: unknown argument `{other}`");
                return 2;
            }
        }
    }

    let metrics = MetricsRegistry::new();
    let entries = corpus();
    println!("motor-analyze: linting {} corpus module(s)", entries.len());
    let (mut definite, mut possible) = (0usize, 0usize);
    for entry in &entries {
        let cfg = match ranks {
            // A forced communicator size must keep pairwise corpus
            // entries pair-complete; the corpus uses 2 or 4, both of
            // which any even override preserves.
            Some(n) => LintConfig {
                ranks: n,
                ..entry.config.clone()
            },
            None => entry.config.clone(),
        };
        let (d, p, _) = lint_entry(entry, &cfg);
        definite += d;
        possible += p;
    }
    metrics.add(Metric::LintDefinite, definite as u64);
    metrics.add(Metric::LintPossible, possible as u64);
    println!("motor-analyze: {definite} definite, {possible} possible across the corpus");
    if prom {
        println!(
            "\n{}",
            to_prometheus(&metrics.snapshot(), &[("job", "motor-analyze")])
        );
    }
    if definite > 0 {
        eprintln!("motor-analyze: FAILED — definite communication errors in the corpus");
        1
    } else {
        0
    }
}

fn demo() -> i32 {
    let entry = seeded_deadlock();
    println!(
        "motor-analyze demo: linting `{}` on {} ranks",
        entry.name, entry.config.ranks
    );
    let (_, report) = match load_with(entry.module.clone(), &entry.registry, &entry.config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("demo: seeded module failed to verify: {e}");
            return 1;
        }
    };
    for d in &report.diagnostics {
        println!("{d}");
    }
    let found = report
        .diagnostics
        .iter()
        .any(|d| d.severity == Severity::Definite);
    if found {
        0
    } else {
        eprintln!("demo: the seeded deadlock was not diagnosed — lint regression");
        1
    }
}
