//! Application benchmark artifacts and the CI regression gate.
//!
//! ```text
//! apps run [--quick] [--out DIR]     # run cg/bfs/pipeline/ablation_*,
//!                                    # write BENCH_<workload>.json (and
//!                                    # BENCH_<workload>.folded flamegraph
//!                                    # stacks) to DIR
//! apps gate <baseline_dir> <new_dir> # fail (exit 1) when any workload
//!                                    # regressed > 10% vs the baseline
//! ```
//!
//! `run` also enforces two zero-cost gates in place: the typed API's
//! managed-array ping-pong must stay within 2% of the hand-written `Mp`
//! loop (`BENCH_ablation_api.json`), and the interpreter with the
//! profiler attached must stay within 2% of the bare interpreter
//! (`BENCH_ablation_profile.json`) — both ratios retried to shed
//! scheduler noise.  `gate` compares `us_per_iter` per workload between
//! two artifact directories; configs must match or the pair is skipped
//! with a warning (a resize is a new baseline, not a regression).

use std::fs;
use std::path::Path;
use std::process::exit;

use motor_bench::apps::{
    ablation_api_result, ablation_overlap, ablation_pins_result, ablation_profile_result, bfs, cg,
    pipeline, AppConfig, AppResult,
};

/// Fail the `gate` when new/old exceeds this.
const REGRESSION_LIMIT: f64 = 1.10;
/// Fail `run` when the typed API exceeds hand-written Mp by more than
/// this ratio (best over retries).
const ABLATION_LIMIT: f64 = 1.02;
/// Ablation retries before declaring the overhead real.
const ABLATION_RETRIES: usize = 5;
/// Fail `run` (release builds) when the measured comm/compute overlap
/// ratio of `ablation_overlap` drops below this floor. The progress
/// engine exists to move bytes while ranks compute; the pre-engine
/// baseline measured 0.276, the engine must hold ≥ 0.70.
const OVERLAP_FLOOR: f64 = 0.70;
/// Fail the `gate` when `ablation_overlap`'s overlap ratio falls to less
/// than this fraction of the baseline's (higher is better, so the usual
/// us/iter direction does not protect it).
const OVERLAP_KEEP: f64 = 0.90;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") | None => run(&args),
        Some("gate") => gate(&args),
        Some(other) => {
            eprintln!("unknown command `{other}`; use `run` or `gate`");
            exit(2);
        }
    }
}

fn run(args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("bench_results")
        .to_string();
    fs::create_dir_all(&out_dir).expect("create output dir");

    let cfg = if quick {
        AppConfig::quick()
    } else {
        AppConfig::full()
    };
    println!(
        "## Application workloads ({})\n",
        if quick { "quick" } else { "full" }
    );
    println!("| workload | µs/iter | checksum | config |");
    println!("|---|---|---|---|");

    let mut results = vec![cg(cfg), bfs(cfg), pipeline(cfg), ablation_overlap(cfg)];

    // Zero-cost ablations: best ratio over retries must clear the gate.
    let abl_api = best_over_retries(|| ablation_api_result(quick));
    results.push(abl_api.clone());
    let abl_prof = best_over_retries(|| ablation_profile_result(quick));
    results.push(abl_prof.clone());
    let abl_pins = best_over_retries(|| ablation_pins_result(quick));
    results.push(abl_pins.clone());

    for r in &results {
        println!(
            "| {} | {:.3} | {:.6} | {} |",
            r.workload, r.us_per_iter, r.checksum, r.config
        );
        let path = format!("{out_dir}/BENCH_{}.json", r.workload);
        fs::write(&path, r.to_json()).expect("write artifact");
        println!("  wrote {path}");
        if let Some(folded) = &r.folded {
            let path = format!("{out_dir}/BENCH_{}.folded", r.workload);
            fs::write(&path, folded).expect("write folded stacks");
            println!("  wrote {path}");
        }
        if let Some(p) = &r.profile {
            println!(
                "  profile: coverage {:.1}% of wall, overlap ratio {}",
                100.0 * p.min_coverage(),
                p.overlap_ratio()
                    .map_or("-".to_string(), |x| format!("{x:.3}"))
            );
        }
    }

    let mut bad = false;
    if let Some(ov) = results.iter().find(|r| r.workload == "ablation_overlap") {
        bad |= enforce_overlap_floor(ov);
    }
    bad |= enforce_ablation(
        &abl_api,
        "typed API ping-pong vs hand-written Mp — the front-end is supposed to \
         monomorphize away",
    );
    bad |= enforce_ablation(
        &abl_prof,
        "interpreter with profiler attached vs without — the hooks are supposed \
         to be a handful of relaxed counters",
    );
    bad |= enforce_ablation(
        &abl_pins,
        "allocation churn with never-transported proofs installed vs without — \
         skipping pinned-set checks must never cost anything",
    );
    if bad {
        exit(1);
    }
}

/// Retry a paired ablation until it clears [`ABLATION_LIMIT`] or the
/// retries run out, keeping the best (lowest-ratio) result.
fn best_over_retries(mut f: impl FnMut() -> AppResult) -> AppResult {
    let mut best = f();
    for _ in 1..ABLATION_RETRIES {
        if best.us_per_iter <= ABLATION_LIMIT {
            break;
        }
        let again = f();
        if again.us_per_iter < best.us_per_iter {
            best = again;
        }
    }
    best
}

/// Enforce one ablation's ratio against [`ABLATION_LIMIT`]; returns
/// whether it failed (release builds only — debug builds neither inline
/// nor monomorphize the wrappers away, so there the ratio is reported
/// but not enforced).
fn enforce_ablation(r: &AppResult, claim: &str) -> bool {
    if r.us_per_iter > ABLATION_LIMIT {
        let msg = format!(
            "{}: {:.1}% overhead (limit {:.0}%) — {claim}",
            r.workload,
            (r.us_per_iter - 1.0) * 100.0,
            (ABLATION_LIMIT - 1.0) * 100.0
        );
        if cfg!(debug_assertions) {
            println!("{msg} (unoptimized build: reported, not enforced)");
            false
        } else {
            eprintln!("{msg}");
            true
        }
    } else {
        println!(
            "{}: ratio {:.4} (gate {:.2}) — OK",
            r.workload, r.us_per_iter, ABLATION_LIMIT
        );
        false
    }
}

/// Enforce the overlap floor on the `ablation_overlap` artifact (its
/// checksum *is* the measured overlap ratio); returns whether it failed.
/// Release builds only — debug builds run the compute kernel an order of
/// magnitude slower, which distorts the compute/transfer balance the
/// ratio depends on, so there it is reported but not enforced.
fn enforce_overlap_floor(r: &AppResult) -> bool {
    if r.checksum < OVERLAP_FLOOR {
        let msg = format!(
            "{}: overlap ratio {:.3} below floor {:.2} — the progress engine is \
             supposed to drive transfers while the ranks compute",
            r.workload, r.checksum, OVERLAP_FLOOR
        );
        if cfg!(debug_assertions) {
            println!("{msg} (unoptimized build: reported, not enforced)");
            false
        } else {
            eprintln!("{msg}");
            true
        }
    } else {
        println!(
            "{}: overlap ratio {:.3} (floor {:.2}) — OK",
            r.workload, r.checksum, OVERLAP_FLOOR
        );
        false
    }
}

fn load(dir: &str, workload: &str) -> Option<AppResult> {
    let path = Path::new(dir).join(format!("BENCH_{workload}.json"));
    let body = fs::read_to_string(path).ok()?;
    AppResult::from_json(&body)
}

fn gate(args: &[String]) {
    let (old_dir, new_dir) = match (args.get(1), args.get(2)) {
        (Some(o), Some(n)) => (o.as_str(), n.as_str()),
        _ => {
            eprintln!("usage: apps gate <baseline_dir> <new_dir>");
            exit(2);
        }
    };
    let mut failed = false;
    let mut compared = 0;
    for workload in [
        "cg",
        "bfs",
        "pipeline",
        "ablation_overlap",
        "ablation_api",
        "ablation_profile",
        "ablation_pins",
    ] {
        let Some(new) = load(new_dir, workload) else {
            eprintln!("gate: {new_dir}/BENCH_{workload}.json missing or unparsable");
            failed = true;
            continue;
        };
        let Some(old) = load(old_dir, workload) else {
            println!("gate: no baseline for {workload}; accepting current as baseline");
            continue;
        };
        if old.config != new.config {
            println!(
                "gate: {workload} config changed ({} -> {}); skipping comparison",
                old.config, new.config
            );
            continue;
        }
        compared += 1;
        let ratio = new.us_per_iter / old.us_per_iter;
        let verdict = if ratio > REGRESSION_LIMIT {
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "gate: {workload}: {:.3} -> {:.3} µs/iter (x{ratio:.3}) {verdict}",
            old.us_per_iter, new.us_per_iter
        );
        if ratio > REGRESSION_LIMIT {
            failed = true;
        }
        // The overlap artifact's checksum is the overlap ratio, where
        // higher is better: us/iter can hold steady while the engine
        // quietly stops overlapping, so gate the ratio itself too.
        if workload == "ablation_overlap" && old.checksum > 0.0 {
            let keep = new.checksum / old.checksum;
            let verdict = if keep < OVERLAP_KEEP {
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "gate: {workload}: overlap ratio {:.3} -> {:.3} (x{keep:.3}) {verdict}",
                old.checksum, new.checksum
            );
            if keep < OVERLAP_KEEP {
                failed = true;
            }
        }
    }
    if failed {
        eprintln!(
            "gate: regression beyond {:.0}% (or missing artifacts)",
            (REGRESSION_LIMIT - 1.0) * 100.0
        );
        exit(1);
    }
    println!(
        "gate: {compared} workloads within {:.0}%",
        (REGRESSION_LIMIT - 1.0) * 100.0
    );
}
