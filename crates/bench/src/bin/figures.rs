//! Regenerate the paper's figures.
//!
//! ```text
//! figures fig9            # Figure 9: ping-pong, regular MPI operations
//! figures fig10           # Figure 10: ping-pong, linked-list object trees
//! figures all             # both
//! figures fig9 --quick    # reduced protocol (CI smoke)
//! ```
//!
//! Output: a markdown table per figure on stdout, a CSV next to it in
//! `bench_results/`, and a metrics sidecar CSV (`fig9_metrics.csv` /
//! `fig10_metrics.csv`) with one row per (system, size) run carrying the
//! full cluster-aggregated counter and histogram set from `motor-obs`.

use std::fmt::Write as _;
use std::fs;

use motor_bench::protocol::{DEFAULT_PROTOCOL, QUICK_PROTOCOL};
use motor_bench::series::{fig10_object_pingpong, fig9_pingpong, Fig10Impl, Fig9Impl};
use motor_bench::workloads::{fig10_object_counts, fig9_buffer_sizes};
use motor_obs::MetricsSnapshot;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let what = args.first().map(String::as_str).unwrap_or("all");
    let protocol = if quick {
        QUICK_PROTOCOL
    } else {
        DEFAULT_PROTOCOL
    };

    fs::create_dir_all("bench_results").ok();

    match what {
        "fig9" => fig9(protocol),
        "fig10" => fig10(protocol),
        "all" | "--quick" => {
            fig9(protocol);
            fig10(protocol);
        }
        other => {
            eprintln!("unknown figure `{other}`; use fig9, fig10 or all");
            std::process::exit(2);
        }
    }
}

fn fig9(protocol: motor_bench::PingPongProtocol) {
    println!("\n## Figure 9 — ping-pong, regular MPI operations (µs/iteration)\n");
    let systems = Fig9Impl::ALL;
    let sizes = fig9_buffer_sizes();

    let mut md = String::new();
    let mut csv = String::new();
    write!(md, "| Buffer (bytes) |").unwrap();
    write!(csv, "buffer_bytes").unwrap();
    for s in systems {
        write!(md, " {} |", s.label()).unwrap();
        write!(csv, ",{}", s.label()).unwrap();
    }
    writeln!(md).unwrap();
    write!(md, "|---:|").unwrap();
    for _ in systems {
        write!(md, "---:|").unwrap();
    }
    writeln!(md).unwrap();
    writeln!(csv).unwrap();

    let mut metrics_csv = MetricsSnapshot::csv_header();
    metrics_csv.push('\n');
    for &bytes in &sizes {
        write!(md, "| {bytes} |").unwrap();
        write!(csv, "{bytes}").unwrap();
        for sys in systems {
            let (us, snap) = fig9_pingpong(sys, bytes, protocol);
            write!(md, " {us:.2} |").unwrap();
            write!(csv, ",{us:.3}").unwrap();
            let label = format!("{}/{}", sys.label(), bytes);
            metrics_csv.push_str(&snap.csv_row(&label));
            metrics_csv.push('\n');
        }
        writeln!(md).unwrap();
        writeln!(csv).unwrap();
        eprint!(".");
    }
    eprintln!();
    println!("{md}");
    fs::write("bench_results/fig9.csv", csv).expect("write fig9.csv");
    fs::write("bench_results/fig9_metrics.csv", metrics_csv).expect("write fig9_metrics.csv");
    println!(
        "(written to bench_results/fig9.csv, metrics sidecar in bench_results/fig9_metrics.csv)"
    );
}

fn fig10(protocol: motor_bench::PingPongProtocol) {
    println!("\n## Figure 10 — ping-pong, linked-list object transport (µs/iteration)\n");
    let systems = Fig10Impl::PAPER;
    let counts = fig10_object_counts();

    let mut md = String::new();
    let mut csv = String::new();
    write!(md, "| Total objects |").unwrap();
    write!(csv, "total_objects").unwrap();
    for s in systems {
        write!(md, " {} |", s.label()).unwrap();
        write!(csv, ",{}", s.label()).unwrap();
    }
    writeln!(md).unwrap();
    write!(md, "|---:|").unwrap();
    for _ in systems {
        write!(md, "---:|").unwrap();
    }
    writeln!(md).unwrap();
    writeln!(csv).unwrap();

    let mut metrics_csv = MetricsSnapshot::csv_header();
    metrics_csv.push('\n');
    for &objects in &counts {
        write!(md, "| {objects} |").unwrap();
        write!(csv, "{objects}").unwrap();
        for sys in systems {
            match fig10_object_pingpong(sys, objects, protocol) {
                Some((us, snap)) => {
                    write!(md, " {us:.2} |").unwrap();
                    write!(csv, ",{us:.3}").unwrap();
                    let label = format!("{}/{}", sys.label(), objects);
                    metrics_csv.push_str(&snap.csv_row(&label));
                    metrics_csv.push('\n');
                }
                None => {
                    write!(md, " StackOverflow |").unwrap();
                    write!(csv, ",").unwrap();
                }
            }
        }
        writeln!(md).unwrap();
        writeln!(csv).unwrap();
        eprint!(".");
    }
    eprintln!();
    println!("{md}");
    fs::write("bench_results/fig10.csv", csv).expect("write fig10.csv");
    fs::write("bench_results/fig10_metrics.csv", metrics_csv).expect("write fig10_metrics.csv");
    println!(
        "(written to bench_results/fig10.csv, metrics sidecar in bench_results/fig10_metrics.csv)"
    );
}
