//! Regenerate the paper's figures.
//!
//! ```text
//! figures fig9            # Figure 9: ping-pong, regular MPI operations
//! figures fig10           # Figure 10: ping-pong, linked-list object trees
//! figures all             # both
//! figures fig9 --quick    # reduced protocol (CI smoke)
//! ```
//!
//! Output: a markdown table per figure on stdout and a CSV next to it in
//! `bench_results/`.

use std::fmt::Write as _;
use std::fs;

use motor_bench::protocol::{DEFAULT_PROTOCOL, QUICK_PROTOCOL};
use motor_bench::series::{fig10_object_pingpong_us, fig9_pingpong_us, Fig10Impl, Fig9Impl};
use motor_bench::workloads::{fig10_object_counts, fig9_buffer_sizes};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let what = args.first().map(String::as_str).unwrap_or("all");
    let protocol = if quick { QUICK_PROTOCOL } else { DEFAULT_PROTOCOL };

    fs::create_dir_all("bench_results").ok();

    match what {
        "fig9" => fig9(protocol),
        "fig10" => fig10(protocol),
        "all" | "--quick" => {
            fig9(protocol);
            fig10(protocol);
        }
        other => {
            eprintln!("unknown figure `{other}`; use fig9, fig10 or all");
            std::process::exit(2);
        }
    }
}

fn fig9(protocol: motor_bench::PingPongProtocol) {
    println!("\n## Figure 9 — ping-pong, regular MPI operations (µs/iteration)\n");
    let systems = Fig9Impl::ALL;
    let sizes = fig9_buffer_sizes();

    let mut md = String::new();
    let mut csv = String::new();
    write!(md, "| Buffer (bytes) |").unwrap();
    write!(csv, "buffer_bytes").unwrap();
    for s in systems {
        write!(md, " {} |", s.label()).unwrap();
        write!(csv, ",{}", s.label()).unwrap();
    }
    writeln!(md).unwrap();
    write!(md, "|---:|").unwrap();
    for _ in systems {
        write!(md, "---:|").unwrap();
    }
    writeln!(md).unwrap();
    writeln!(csv).unwrap();

    for &bytes in &sizes {
        write!(md, "| {bytes} |").unwrap();
        write!(csv, "{bytes}").unwrap();
        for sys in systems {
            let us = fig9_pingpong_us(sys, bytes, protocol);
            write!(md, " {us:.2} |").unwrap();
            write!(csv, ",{us:.3}").unwrap();
        }
        writeln!(md).unwrap();
        writeln!(csv).unwrap();
        eprint!(".");
    }
    eprintln!();
    println!("{md}");
    fs::write("bench_results/fig9.csv", csv).expect("write fig9.csv");
    println!("(written to bench_results/fig9.csv)");
}

fn fig10(protocol: motor_bench::PingPongProtocol) {
    println!("\n## Figure 10 — ping-pong, linked-list object transport (µs/iteration)\n");
    let systems = Fig10Impl::PAPER;
    let counts = fig10_object_counts();

    let mut md = String::new();
    let mut csv = String::new();
    write!(md, "| Total objects |").unwrap();
    write!(csv, "total_objects").unwrap();
    for s in systems {
        write!(md, " {} |", s.label()).unwrap();
        write!(csv, ",{}", s.label()).unwrap();
    }
    writeln!(md).unwrap();
    write!(md, "|---:|").unwrap();
    for _ in systems {
        write!(md, "---:|").unwrap();
    }
    writeln!(md).unwrap();
    writeln!(csv).unwrap();

    for &objects in &counts {
        write!(md, "| {objects} |").unwrap();
        write!(csv, "{objects}").unwrap();
        for sys in systems {
            match fig10_object_pingpong_us(sys, objects, protocol) {
                Some(us) => {
                    write!(md, " {us:.2} |").unwrap();
                    write!(csv, ",{us:.3}").unwrap();
                }
                None => {
                    write!(md, " StackOverflow |").unwrap();
                    write!(csv, ",").unwrap();
                }
            }
        }
        writeln!(md).unwrap();
        writeln!(csv).unwrap();
        eprint!(".");
    }
    eprintln!();
    println!("{md}");
    fs::write("bench_results/fig10.csv", csv).expect("write fig10.csv");
    println!("(written to bench_results/fig10.csv)");
}
