//! # motor-bench — the paper's evaluation, regenerated
//!
//! Everything needed to reproduce §8 of the paper:
//!
//! * [`protocol`] — the exact timing protocol: "Each experiment performed
//!   200 iterations, the last 100 of which were timed. ... Each buffer
//!   size was tested three times. The average time in microseconds per
//!   iteration was calculated for all three experiments."
//! * [`workloads`] — the Figure 9 buffer-size sweep (4 B … 256 KiB) and
//!   the Figure 10 linked-list generator (total payload 4096 B evenly
//!   distributed; total objects = 2 × list elements).
//! * [`series`] — one ping-pong runner per compared system: native C++
//!   (the Message Passing Core used directly), Motor, the Indiana bindings
//!   on both host profiles, and mpiJava.
//!
//! The `figures` binary drives these and prints the series the paper
//! plots; `benches/` holds Criterion microbenches for each figure and for
//! the design-choice ablations listed in DESIGN.md.

pub mod apps;
pub mod ilcorpus;
pub mod protocol;
pub mod series;
pub mod workloads;

pub use apps::{AppConfig, AppResult};
pub use protocol::{PingPongProtocol, DEFAULT_PROTOCOL};
pub use series::{fig10_object_pingpong_us, fig9_pingpong_us, Fig10Impl, Fig9Impl};
pub use workloads::{fig10_object_counts, fig9_buffer_sizes, LinkedListSpec};
