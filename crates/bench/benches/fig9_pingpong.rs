//! Criterion bench for Figure 9: ping-pong with regular MPI operations.
//!
//! Each sample runs the paper's protocol inside a fresh two-rank cluster
//! and reports the measured per-iteration time. Full sweeps (all 17 buffer
//! sizes) are produced by `cargo run -p motor-bench --release --bin
//! figures -- fig9`; this bench tracks three representative sizes for all
//! five systems.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use motor_bench::protocol::PingPongProtocol;
use motor_bench::series::{fig9_pingpong_us, Fig9Impl};

fn bench_fig9(c: &mut Criterion) {
    let protocol = PingPongProtocol {
        warmup: 20,
        timed: 50,
        repeats: 1,
    };
    let mut g = c.benchmark_group("fig9_pingpong");
    g.sample_size(10);
    for &bytes in &[64usize, 4096, 65536] {
        for sys in Fig9Impl::ALL {
            g.bench_with_input(BenchmarkId::new(sys.label(), bytes), &bytes, |b, &bytes| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let us = fig9_pingpong_us(sys, bytes, protocol);
                        total += Duration::from_nanos((us * 1000.0) as u64);
                    }
                    total
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
