//! Static-verification ablation: what the load-time proof buys at run
//! time.
//!
//! * **Typed dispatch** — the verifier records the element/field kind of
//!   every typed access, so the interpreter skips its per-access registry
//!   lookup (a `RwLock` read + method-table walk). Compared against the
//!   explicit `unverified` escape hatch, which keeps the dynamic checks.
//! * **Transport proof** — modules proved transport-safe by
//!   `motor-analyze` take the trusted `Mp` bindings, eliding the per-send
//!   transportability walk. Compared against the same module verified but
//!   without the proof bit.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use motor_bench::protocol::PingPongProtocol;
use motor_core::cluster::run_cluster_default;
use motor_interp::{FCallId, FnBuilder, Interp, Module, Op, TyDesc, Value};
use motor_runtime::{ClassId, ElemKind, MotorThread, Vm, VmConfig};
use parking_lot::Mutex;

/// `sum_mix(arr, n)`: a loop mixing element loads, field traffic and
/// stores — every op the verifier can pre-resolve.
fn sum_mix_module(acc_cls: ClassId) -> Module {
    let mut f = FnBuilder::new("sum_mix", 2, 4, true);
    f.params(&[TyDesc::Arr(ElemKind::I64), TyDesc::I64]);
    let top = f.label();
    let done = f.label();
    // local2 = Acc object, local3 = i
    f.op(Op::New(acc_cls)).op(Op::Store(2));
    f.op(Op::PushI(0)).op(Op::Store(3));
    f.bind(top);
    f.op(Op::Load(3))
        .op(Op::Load(1))
        .op(Op::CmpLt)
        .br_false(done);
    // acc.v += arr[i % len]
    f.op(Op::Load(2)).op(Op::Dup).op(Op::LdFldI(0));
    f.op(Op::Load(0))
        .op(Op::Load(3))
        .op(Op::Load(0))
        .op(Op::ArrLen)
        .op(Op::Rem)
        .op(Op::LdElemI)
        .op(Op::Add)
        .op(Op::StFldI(0));
    f.op(Op::Load(3))
        .op(Op::PushI(1))
        .op(Op::Add)
        .op(Op::Store(3));
    f.br(top);
    f.bind(done);
    f.op(Op::Load(2)).op(Op::LdFldI(0)).op(Op::Ret);
    let mut m = Module::new();
    m.add(f.build());
    m
}

fn bench_typed_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_verifier_dispatch");
    let vm = Vm::new(VmConfig::default());
    let acc = vm
        .registry_mut()
        .define_class("Acc")
        .prim("v", ElemKind::I64)
        .build();
    let m = sum_mix_module(acc);
    let vmod = motor_analyze::load(m.clone(), &vm.registry()).expect("kernel verifies");
    let t = MotorThread::attach(Arc::clone(&vm));
    let arr = t.alloc_prim_array(ElemKind::I64, 64);
    let data: Vec<i64> = (0..64).collect();
    t.prim_write(arr, 0, &data);
    const N: i64 = 10_000;

    g.bench_function("verified_elided_checks", |b| {
        let interp = Interp::new(&t, &vmod);
        b.iter(|| {
            let r = interp.call(0, &[Value::R(arr), Value::I(N)]).unwrap();
            criterion::black_box(r)
        });
    });
    g.bench_function("unverified_dynamic_checks", |b| {
        let interp = Interp::unverified(&t, &m);
        b.iter(|| {
            let r = interp.call(0, &[Value::R(arr), Value::I(N)]).unwrap();
            criterion::black_box(r)
        });
    });
    g.finish();
}

/// FCall ping-pong kernels: rank 0 alternates send/recv, rank 1 mirrors.
fn pingpong_module() -> Module {
    let mut send_k = FnBuilder::new("send_k", 2, 2, false);
    send_k.params(&[TyDesc::Arr(ElemKind::U8), TyDesc::I64]);
    send_k
        .op(Op::Load(0))
        .op(Op::Load(1))
        .op(Op::PushI(0))
        .op(Op::FCall(FCallId::MpSend))
        .op(Op::Ret);
    let mut recv_k = FnBuilder::new("recv_k", 2, 2, false);
    recv_k.params(&[TyDesc::Arr(ElemKind::U8), TyDesc::I64]);
    recv_k
        .op(Op::Load(0))
        .op(Op::Load(1))
        .op(Op::PushI(0))
        .op(Op::FCall(FCallId::MpRecv))
        .op(Op::Ret);
    let mut m = Module::new();
    m.add(send_k.build());
    m.add(recv_k.build());
    m
}

/// One managed ping-pong over the FCall intrinsics; `proved` selects the
/// transport-proof (trusted) or the merely-verified (checked) module.
fn fcall_pingpong_us(proved: bool, bytes: usize) -> f64 {
    let protocol = PingPongProtocol {
        warmup: 20,
        timed: 50,
        repeats: 1,
    };
    let result = Arc::new(Mutex::new(0.0f64));
    let r = Arc::clone(&result);
    run_cluster_default(
        2,
        |_| {},
        move |proc| {
            let t = proc.thread();
            let vmod = if proved {
                motor_analyze::load(pingpong_module(), &proc.vm().registry()).unwrap()
            } else {
                motor_interp::VerifiedModule::verify(pingpong_module(), &proc.vm().registry())
                    .unwrap()
            };
            assert_eq!(vmod.has_transport_proof(), proved);
            let host = proc.intrinsics();
            let interp = Interp::new(t, &vmod).with_host(&host);
            let buf = t.alloc_prim_array(ElemKind::U8, bytes);
            if proc.mp().rank() == 0 {
                let peer = [Value::R(buf), Value::I(1)];
                let us = protocol.measure(|| {
                    interp.call(0, &peer).unwrap();
                    interp.call(1, &peer).unwrap();
                });
                *r.lock() = us;
            } else {
                let peer = [Value::R(buf), Value::I(0)];
                for _ in 0..protocol.total_iterations() {
                    interp.call(1, &peer).unwrap();
                    interp.call(0, &peer).unwrap();
                }
            }
        },
    )
    .unwrap();
    let v = *result.lock();
    v
}

fn bench_transport_proof(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_verifier_transport");
    g.sample_size(10);
    for (name, proved) in [("proved_trusted_path", true), ("checked_path", false)] {
        g.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let us = fcall_pingpong_us(proved, 1024);
                    total += Duration::from_nanos((us * 1000.0) as u64);
                }
                total
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_typed_dispatch, bench_transport_proof);
criterion_main!(benches);
