//! Runtime-integration ablations (DESIGN.md):
//!
//! * **Pinning policy vs pin-always** — the paper's central performance
//!   claim (§7.4): the policy "minimises the performance overhead imposed
//!   by pinning unnecessarily for each operation."
//! * **Call transitions** — FCall vs P/Invoke vs JNI per-call cost (§5.1).
//! * **Conditional unpin at GC vs a checker pass** — the paper's §4.3
//!   rejected alternative ("test non-blocking transport operations and
//!   unpin buffers in a separate thread ... imposes an unnecessary
//!   overhead").
//! * **Eager vs rendezvous** — the protocol switchover inherited from
//!   MPICH2's CH3 design (§6).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use motor_baselines::{HostProfile, JniEnv, TransitionState};
use motor_bench::protocol::PingPongProtocol;
use motor_core::cluster::{run_cluster, ClusterConfig};
use motor_core::fcall::Fcall;
use motor_core::PinPolicy;
use motor_mpc::universe::{Universe, UniverseConfig};
use motor_mpc::DeviceConfig;
use motor_runtime::{ElemKind, MotorThread, Vm, VmConfig};
use parking_lot::Mutex;

/// Managed ping-pong under an explicit pinning policy.
fn policy_pingpong_us(policy: PinPolicy, bytes: usize) -> f64 {
    let protocol = PingPongProtocol {
        warmup: 20,
        timed: 50,
        repeats: 1,
    };
    let result = Arc::new(Mutex::new(0.0f64));
    let r = Arc::clone(&result);
    run_cluster(
        ClusterConfig::builder().ranks(2).policy(policy).build(),
        |_| {},
        move |proc| {
            let mp = proc.mp();
            let t = proc.thread();
            let buf = t.alloc_prim_array(ElemKind::U8, bytes);
            if mp.rank() == 0 {
                let us = protocol.measure(|| {
                    mp.send(buf, 1, 0).unwrap();
                    mp.recv(buf, 1, 0).unwrap();
                });
                *r.lock() = us;
            } else {
                for _ in 0..protocol.total_iterations() {
                    mp.recv(buf, 0, 0).unwrap();
                    mp.send(buf, 0, 0).unwrap();
                }
            }
        },
    )
    .unwrap();
    let v = *result.lock();
    v
}

fn bench_pinning_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_pinning");
    g.sample_size(10);
    for (name, policy) in [
        ("motor_policy", PinPolicy::Motor),
        ("pin_always", PinPolicy::Always),
    ] {
        g.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let us = policy_pingpong_us(policy, 1024);
                    total += Duration::from_nanos((us * 1000.0) as u64);
                }
                total
            });
        });
    }
    g.finish();
}

fn bench_call_transitions(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_calls");
    let vm = Vm::new(VmConfig::default());
    let thread = MotorThread::attach(vm);
    g.bench_function("fcall", |b| {
        b.iter(|| {
            let fc = Fcall::enter(&thread);
            criterion::black_box(&fc);
        });
    });
    let t = TransitionState::new();
    g.bench_function("pinvoke_net", |b| {
        b.iter(|| criterion::black_box(t.pinvoke(HostProfile::Net, &[1, 2, 3, 4])));
    });
    g.bench_function("pinvoke_sscli", |b| {
        b.iter(|| criterion::black_box(t.pinvoke(HostProfile::Sscli, &[1, 2, 3, 4])));
    });
    let env = JniEnv::new();
    g.bench_function("jni", |b| {
        b.iter(|| criterion::black_box(env.transition("mpi/Comm", "send", "([BIII)V", &[1, 2, 3])));
    });
    g.finish();
}

fn bench_conditional_unpin(c: &mut Criterion) {
    use motor_mpc::request::RequestState;
    let mut g = c.benchmark_group("ablation_unpin");
    g.sample_size(20);
    const N: usize = 64;

    // GC-integrated: N conditional pins on completed requests; the minor
    // collection both resolves and discards them.
    g.bench_function("gc_mark_phase_resolution", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let vm = Vm::new(VmConfig::default());
                let t = MotorThread::attach(Arc::clone(&vm));
                let bufs: Vec<_> = (0..N)
                    .map(|_| t.alloc_prim_array(ElemKind::U8, 64))
                    .collect();
                let reqs: Vec<_> = (0..N).map(|i| RequestState::new(i as u64)).collect();
                for (buf, req) in bufs.iter().zip(&reqs) {
                    let r = Arc::clone(req);
                    t.pin_conditional(*buf, Arc::new(move || r.in_flight()));
                }
                for r in &reqs {
                    r.complete();
                }
                let start = std::time::Instant::now();
                t.collect_minor();
                total += start.elapsed();
            }
            total
        });
    });

    // Checker-pass alternative: hard pins released by an explicit test
    // loop over every request (the "separate thread" design), followed by
    // the same collection.
    g.bench_function("checker_pass_then_gc", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let vm = Vm::new(VmConfig::default());
                let t = MotorThread::attach(Arc::clone(&vm));
                let bufs: Vec<_> = (0..N)
                    .map(|_| t.alloc_prim_array(ElemKind::U8, 64))
                    .collect();
                let reqs: Vec<_> = (0..N).map(|i| RequestState::new(i as u64)).collect();
                let tokens: Vec<_> = bufs.iter().map(|b| t.pin(*b)).collect();
                for r in &reqs {
                    r.complete();
                }
                let start = std::time::Instant::now();
                // The checker must poll each request and unpin.
                for (req, tok) in reqs.iter().zip(tokens) {
                    if req.is_complete() {
                        t.unpin(tok);
                    }
                }
                t.collect_minor();
                total += start.elapsed();
            }
            total
        });
    });
    g.finish();
}

fn native_pingpong_us(eager_threshold: usize, bytes: usize) -> f64 {
    let protocol = PingPongProtocol {
        warmup: 20,
        timed: 50,
        repeats: 1,
    };
    let result = Arc::new(Mutex::new(0.0f64));
    let r = Arc::clone(&result);
    let config = UniverseConfig {
        device: DeviceConfig {
            eager_threshold,
            ..DeviceConfig::default()
        },
        ..Default::default()
    };
    Universe::run_with(2, config, move |proc| {
        let world = proc.world();
        let mut buf = vec![0u8; bytes];
        if world.rank() == 0 {
            let us = protocol.measure(|| {
                world.send_bytes(&buf, 1, 0).unwrap();
                world.recv_bytes(&mut buf, 1, 0).unwrap();
            });
            *r.lock() = us;
        } else {
            for _ in 0..protocol.total_iterations() {
                world.recv_bytes(&mut buf, 0, 0).unwrap();
                world.send_bytes(&buf, 0, 0).unwrap();
            }
        }
    })
    .unwrap();
    let v = *result.lock();
    v
}

fn bench_eager_threshold(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_eager");
    g.sample_size(10);
    const BYTES: usize = 32 * 1024;
    for (name, threshold) in [("eager_path", 1 << 20), ("rendezvous_path", 1024)] {
        g.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let us = native_pingpong_us(threshold, BYTES);
                    total += Duration::from_nanos((us * 1000.0) as u64);
                }
                total
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_pinning_policy,
    bench_call_transitions,
    bench_conditional_unpin,
    bench_eager_threshold
);
criterion_main!(benches);
