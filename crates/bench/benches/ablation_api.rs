//! Criterion bench for the typed-API ablation (DESIGN.md § typed API).
//!
//! Compares the `Communicator` managed-array ping-pong against the
//! hand-written `Mp` loop it delegates to, at three buffer sizes.  The
//! asserted 2% gate lives in the `apps` binary (`apps run`); this bench
//! exists for profiling the two paths side by side.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use motor_bench::apps::ablation_api;

fn bench_ablation_api(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_api");
    g.sample_size(10);
    for &bytes in &[1024usize, 16 * 1024, 128 * 1024] {
        g.bench_with_input(BenchmarkId::new("hand_mp", bytes), &bytes, |b, &bytes| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let (hand, _) = ablation_api(bytes, 10, 30, 1);
                    total += Duration::from_nanos((hand * 1000.0) as u64);
                }
                total
            });
        });
        g.bench_with_input(BenchmarkId::new("typed_api", bytes), &bytes, |b, &bytes| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let (_, api) = ablation_api(bytes, 10, 30, 1);
                    total += Duration::from_nanos((api * 1000.0) as u64);
                }
                total
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation_api);
criterion_main!(benches);
