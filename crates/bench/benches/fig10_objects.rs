//! Criterion bench for Figure 10: ping-pong of linked-list object trees.
//!
//! Tracks representative object counts for the paper's four series plus
//! our hashed-visited ablation variant. The full sweep is produced by the
//! `figures` binary.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use motor_bench::protocol::PingPongProtocol;
use motor_bench::series::{fig10_object_pingpong_us, Fig10Impl};

fn bench_fig10(c: &mut Criterion) {
    let protocol = PingPongProtocol {
        warmup: 10,
        timed: 30,
        repeats: 1,
    };
    let mut g = c.benchmark_group("fig10_objects");
    g.sample_size(10);
    for &objects in &[32usize, 256, 1024] {
        for sys in [
            Fig10Impl::Motor,
            Fig10Impl::MotorHashed,
            Fig10Impl::MpiJava,
            Fig10Impl::IndianaNet,
            Fig10Impl::IndianaSscli,
        ] {
            // mpiJava cannot serialize past 1024 objects; skip the
            // configurations the paper's figure marks as failed.
            if sys == Fig10Impl::MpiJava && objects > 1024 {
                continue;
            }
            g.bench_with_input(
                BenchmarkId::new(sys.label(), objects),
                &objects,
                |b, &objects| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            let us = fig10_object_pingpong_us(sys, objects, protocol)
                                .expect("feasible configuration");
                            total += Duration::from_nanos((us * 1000.0) as u64);
                        }
                        total
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
