//! Serializer ablations (DESIGN.md):
//!
//! * **Linear vs hashed visited structure** — the paper's §7.5 admission
//!   ("a linear structure ... causes excessive search times with large
//!   numbers of objects") against its announced fix.
//! * **FieldDesc Transportable bit vs reflection lookup** — why Motor put
//!   the attribute on the FieldDesc instead of querying metadata.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use motor_core::{AttrLookup, Serializer, VisitedStrategy};
use motor_runtime::{ClassId, ElemKind, Handle, MotorThread, Vm, VmConfig};
use std::sync::Arc;

struct Fixture {
    _vm: Arc<Vm>,
    thread: MotorThread,
    node: ClassId,
}

fn fixture() -> Fixture {
    let vm = Vm::new(VmConfig::default());
    let node = {
        let mut reg = vm.registry_mut();
        let arr = reg.prim_array(ElemKind::I32);
        let next_id = ClassId(reg.len() as u32);
        reg.define_class("LinkedArray")
            .prim("tag", ElemKind::I32)
            .transportable("array", arr)
            .transportable("next", next_id)
            .reference("next2", next_id)
            .build()
    };
    let thread = MotorThread::attach(Arc::clone(&vm));
    Fixture {
        _vm: vm,
        thread,
        node,
    }
}

fn build_list(f: &Fixture, elements: usize) -> Handle {
    let t = &f.thread;
    let (ftag, farr, fnext) = (
        t.field_index(f.node, "tag"),
        t.field_index(f.node, "array"),
        t.field_index(f.node, "next"),
    );
    let mut head = t.null_handle();
    for i in (0..elements).rev() {
        let h = t.alloc_instance(f.node);
        t.set_prim::<i32>(h, ftag, i as i32);
        let a = t.alloc_prim_array(ElemKind::I32, 4);
        t.set_ref(h, farr, a);
        t.set_ref(h, fnext, head);
        t.release(a);
        t.release(head);
        head = h;
    }
    head
}

fn bench_visited(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_visited");
    g.sample_size(20);
    for &elements in &[64usize, 512, 2048] {
        let f = fixture();
        let head = build_list(&f, elements);
        for (name, strategy) in [
            ("linear", VisitedStrategy::Linear),
            ("hashed", VisitedStrategy::Hashed),
        ] {
            let ser = Serializer::new(&f.thread).with_strategy(strategy);
            g.bench_with_input(BenchmarkId::new(name, elements * 2), &elements, |b, _| {
                b.iter(|| {
                    let (bytes, _) = ser.serialize(head).unwrap();
                    criterion::black_box(bytes.len())
                });
            });
        }
    }
    g.finish();
}

fn bench_attr_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_transportable_lookup");
    g.sample_size(20);
    let f = fixture();
    let head = build_list(&f, 256);
    for (name, attrs) in [
        ("fielddesc_bit", AttrLookup::FieldDescBit),
        ("reflection", AttrLookup::Reflection),
    ] {
        // The hashed strategy isolates the attribute-lookup cost from the
        // visited-list quadratic term.
        let ser = Serializer::new(&f.thread)
            .with_strategy(VisitedStrategy::Hashed)
            .with_attr_lookup(attrs);
        g.bench_function(name, |b| {
            b.iter(|| {
                let (bytes, _) = ser.serialize(head).unwrap();
                criterion::black_box(bytes.len())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_visited, bench_attr_lookup);
criterion_main!(benches);
