//! End-to-end continuous profiling across a 4-rank cluster running an
//! interpreted CG-style kernel.
//!
//! Each rank builds the same two-function IL module — `cg_dot`, the hot
//! inner dot-product loop, and `cg_iterate`, the outer driver calling it
//! — attaches the IL hotness profiler, arms a sampler over its own
//! registry, and interleaves interpreted compute with an `allreduce`
//! between iterations (the CG convergence check shape). The test then
//! asserts the full profiling story: the inner-loop function ranks
//! hottest on every rank, the folded stacks parse and contain IL frames,
//! and the time-bucket partition covers ≥95% of each rank's measured
//! wall clock with both compute and comm-wait time present.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use motor_api::Communicator;
use motor_core::cluster::{run_cluster, ClusterConfig};
use motor_interp::il::{FnBuilder, Module, Op, PROFILE_NAMES};
use motor_interp::interp::Interp;
use motor_interp::verify::VerifiedModule;
use motor_mpc::ReduceOp;
use motor_obs::{IlHot, TimeBucket};
use motor_pal::clock::Stopwatch;
use motor_profile::{FoldedStacks, ProfTarget, Sampler};

const RANKS: usize = 4;
const OUTER_ITERS: usize = 24;
/// Inner-loop trip count: large enough that `cg_dot` dominates both the
/// backedge counters and the sampled stacks.
const DOT_TRIPS: i64 = 2_000;

/// `cg_dot`: a `DOT_TRIPS`-iteration accumulate loop (the hot leaf), and
/// `cg_iterate`: calls it 4 times per invocation (one "CG iteration").
fn build_module() -> (Module, u16, u16) {
    let mut dot = FnBuilder::new("cg_dot", 0, 2, true);
    let top = dot.label();
    let done = dot.label();
    dot.op(Op::PushI(DOT_TRIPS)).op(Op::Store(0));
    dot.op(Op::PushI(0)).op(Op::Store(1));
    dot.bind(top);
    dot.op(Op::Load(0))
        .op(Op::PushI(0))
        .op(Op::CmpLe)
        .br_true(done);
    dot.op(Op::Load(1))
        .op(Op::Load(0))
        .op(Op::PushI(3))
        .op(Op::Mul)
        .op(Op::Add)
        .op(Op::Store(1));
    dot.op(Op::Load(0))
        .op(Op::PushI(1))
        .op(Op::Sub)
        .op(Op::Store(0));
    dot.br(top);
    dot.bind(done);
    dot.op(Op::Load(1)).op(Op::Ret);

    let mut m = Module::new();
    let dot_idx = m.add(dot.build());

    let mut iter = FnBuilder::new("cg_iterate", 0, 1, true);
    iter.op(Op::PushI(0)).op(Op::Store(0));
    for _ in 0..4 {
        iter.op(Op::Call(dot_idx))
            .op(Op::Load(0))
            .op(Op::Add)
            .op(Op::Store(0));
    }
    iter.op(Op::Load(0)).op(Op::Ret);
    let iter_idx = m.add(iter.build());
    (m, dot_idx, iter_idx)
}

/// What each rank reports back for assertion on the main thread.
struct RankReport {
    rank: usize,
    hottest: String,
    dot_backedges: u64,
    folded: String,
    wall_nanos: u64,
    bucket_nanos: [u64; motor_obs::N_BUCKETS],
}

#[test]
fn four_rank_cg_kernel_hotness_and_coverage() {
    let sink: Arc<Mutex<Vec<RankReport>>> = Arc::new(Mutex::new(Vec::new()));
    let s = Arc::clone(&sink);

    run_cluster(
        ClusterConfig::builder().ranks(RANKS).build(),
        |_reg| {},
        move |proc| {
            let comm = Communicator::bind(proc.mp());
            let rank = comm.rank();
            let (m, _dot_idx, iter_idx) = build_module();
            let vmod =
                VerifiedModule::verify(m, &proc.vm().registry()).expect("CG module verifies");
            let names: Vec<String> = vmod
                .module()
                .functions
                .iter()
                .map(|f| f.name.clone())
                .collect();
            let hot = Arc::new(IlHot::new(names, PROFILE_NAMES.to_vec()));
            let interp = Interp::new(proc.thread(), &vmod).with_profiler(Arc::clone(&hot));

            let registry = Arc::clone(proc.vm().metrics());
            let base = registry.phase_snapshot();
            let sampler = Sampler::spawn(
                vec![ProfTarget {
                    rank,
                    registry: Arc::clone(&registry),
                    hot: Some(Arc::clone(&hot)),
                }],
                Duration::from_micros(100),
            );

            let sw = Stopwatch::start();
            let mut residual = 0i64;
            for _ in 0..OUTER_ITERS {
                let ret = interp.call(iter_idx, &[]).expect("kernel runs");
                let Some(motor_interp::interp::Value::I(v)) = ret else {
                    panic!("kernel returns an integer, got {ret:?}");
                };
                residual += v;
                // The CG shape: a scalar allreduce after each iteration's
                // local compute (convergence check stand-in).
                let global = comm.allreduce(residual, ReduceOp::Sum).unwrap();
                assert_eq!(global, residual * RANKS as i64, "SPMD ranks agree");
            }
            let wall_nanos = sw.elapsed().as_nanos() as u64;
            let (folded, _rounds) = sampler.stop();
            let end = registry.phase_snapshot();
            let mut bucket_nanos = [0u64; motor_obs::N_BUCKETS];
            for (i, b) in bucket_nanos.iter_mut().enumerate() {
                *b = end.bucket_nanos[i].saturating_sub(base.bucket_nanos[i]);
            }

            let top = hot.hottest().expect("kernel functions ran");
            let by_name = hot.top_functions();
            let dot_backedges = by_name
                .iter()
                .find(|f| f.name == "cg_dot")
                .map(|f| f.backedges)
                .unwrap_or(0);
            s.lock().unwrap().push(RankReport {
                rank,
                hottest: top.name.clone(),
                dot_backedges,
                folded: folded.render(),
                wall_nanos,
                bucket_nanos,
            });
        },
    )
    .expect("cluster run succeeds");

    let mut reports = sink.lock().unwrap();
    reports.sort_by_key(|r| r.rank);
    assert_eq!(reports.len(), RANKS, "every rank reported");

    for r in reports.iter() {
        // (1) The inner dot loop tops the hotness counters on every rank.
        assert_eq!(
            r.hottest, "cg_dot",
            "rank {}: inner loop must rank hottest",
            r.rank
        );
        assert_eq!(
            r.dot_backedges,
            OUTER_ITERS as u64 * 4 * DOT_TRIPS as u64,
            "rank {}: backedge counter is exact",
            r.rank
        );

        // (2) The folded-stack output parses and carries IL frames.
        let stacks = FoldedStacks::parse(&r.folded).expect("folded output parses");
        assert!(stacks.total() > 0, "rank {}: sampler sampled", r.rank);
        assert!(
            stacks.iter().any(|(k, _)| k.contains("cg_dot")),
            "rank {}: sampled stacks reach the hot IL function: {:?}",
            r.rank,
            stacks
                .iter()
                .map(|(k, _)| k.to_string())
                .collect::<Vec<_>>()
        );

        // (3) Buckets partition the measured window: coverage ≥95%, with
        // real compute time and real comm-wait time (the allreduces).
        let accounted: u64 = r.bucket_nanos.iter().sum();
        assert!(
            accounted as f64 >= 0.95 * r.wall_nanos as f64,
            "rank {}: buckets cover {} of {} ns",
            r.rank,
            accounted,
            r.wall_nanos
        );
        assert!(
            r.bucket_nanos[TimeBucket::Compute as usize] > 0,
            "rank {}: interpreted kernel accrues compute",
            r.rank
        );
        assert!(
            r.bucket_nanos[TimeBucket::CommWait as usize] > 0,
            "rank {}: allreduces accrue comm_wait",
            r.rank
        );
    }
}
