//! `#[derive(Transportable)]` — compile-time split-representation serializers.
//!
//! The managed serializer (`motor-core::serial`) walks class metadata at run
//! time, consulting the per-field Transportable bit.  This derive performs the
//! same traversal decision *at compile time* over a plain Rust struct and
//! emits straight-line `write_fields`/`read_fields` bodies, so a native peer
//! can exchange objects with managed ranks at zero reflective overhead
//! (paper §7.5: the split representation moves type discovery out of the
//! per-record path; the derive moves it out of run time entirely).
//!
//! Supported field shapes (mirroring the managed object model):
//!
//! | Rust field                  | managed field          | wire form        |
//! |-----------------------------|------------------------|------------------|
//! | `bool u8 i8 i16 u16 i32 …`  | primitive              | raw LE bytes     |
//! | `#[transportable] Vec<P>`   | transportable prim `[]`| object reference |
//! | `#[transportable] Option<Vec<P>>` | same, nullable   | reference / NULL |
//! | `#[transportable] Option<Box<T>>` | transportable ref| reference / NULL |
//! | `Vec<P>` / `Option<..>` (no attr) | non-transportable ref | always NULL |
//! | `#[transportable(skip)] T: Default` | (absent)       | (absent)         |
//!
//! Reference-shaped fields *without* `#[transportable]` mirror the managed
//! semantics for references whose class lacks the Transportable attribute:
//! the field exists in the type table (ref entry, bit = 0), is sent as NULL,
//! and is restored as `Default::default()` on receive.  Any other field type
//! is rejected at compile time — that is deliberate: transport surface must
//! be explicit, not inferred.
//!
//! This crate intentionally has **no dependencies** (no `syn`/`quote`): the
//! accepted grammar — a non-generic struct with named fields — is small
//! enough to hand-parse from the raw token stream.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Primitive types the wire format understands, with their managed
/// `ElemKind` tags (must stay in sync with `motor-runtime::ElemKind::tag`).
const PRIMS: &[(&str, u8)] = &[
    ("bool", 0),
    ("u8", 1),
    ("i8", 2),
    ("i16", 3),
    ("u16", 4),
    ("i32", 6),
    ("u32", 7),
    ("i64", 8),
    ("u64", 9),
    ("f32", 10),
    ("f64", 11),
];

fn prim_tag(ty: &str) -> Option<u8> {
    PRIMS.iter().find(|(n, _)| *n == ty).map(|(_, t)| *t)
}

/// How a single field travels (or doesn't).
enum FieldKind {
    /// Inline primitive value.
    Prim { ty: String },
    /// `Vec<P>` — reference to a primitive array record.
    PrimArray,
    /// `Option<Vec<P>>` — nullable reference to a primitive array record.
    OptPrimArray,
    /// `Option<Box<T>>` — nullable reference to a class record.
    ClassRef { ty: String },
    /// Reference-shaped field without `#[transportable]`: on the wire as a
    /// ref entry with the bit clear, always NULL, `Default` on receive.
    NullRef,
    /// `#[transportable(skip)]`: not on the wire at all.
    Skip,
}

struct Field {
    name: String,
    kind: FieldKind,
}

struct Parsed {
    name: String,
    fields: Vec<Field>,
}

#[proc_macro_derive(Transportable, attributes(transportable))]
pub fn derive_transportable(input: TokenStream) -> TokenStream {
    match parse_struct(input) {
        Ok(p) => generate(&p)
            .parse()
            .expect("derive(Transportable): generated code must parse"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// parsing
// ---------------------------------------------------------------------------

/// Flatten a token tree back to source text with no spaces, so type
/// comparisons are purely textual (`Option < Box < T > >` → `Option<Box<T>>`).
fn flat(tt: &TokenTree) -> String {
    match tt {
        TokenTree::Ident(i) => i.to_string(),
        TokenTree::Punct(p) => p.to_string(),
        TokenTree::Literal(l) => l.to_string(),
        TokenTree::Group(g) => {
            let (open, close) = match g.delimiter() {
                Delimiter::Parenthesis => ("(", ")"),
                Delimiter::Brace => ("{", "}"),
                Delimiter::Bracket => ("[", "]"),
                Delimiter::None => ("", ""),
            };
            let inner: String = g.stream().into_iter().map(|t| flat(&t)).collect();
            format!("{open}{inner}{close}")
        }
    }
}

fn parse_struct(input: TokenStream) -> Result<Parsed, String> {
    let mut iter = input.into_iter().peekable();

    // Skip outer attributes and visibility until the `struct` keyword.
    let mut name = None;
    while let Some(tt) = iter.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // attribute: consume the following [...] group
                iter.next();
            }
            TokenTree::Ident(i) if i.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    _ => return Err("derive(Transportable): expected struct name".into()),
                }
                break;
            }
            _ => {} // visibility tokens, `pub(crate)` groups, etc.
        }
    }
    let name = name.ok_or("derive(Transportable) only supports structs")?;

    // Generic parameters are not supported: the type entry must name one
    // concrete managed class.
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "derive(Transportable): `{name}` is generic; transportable classes must be concrete types"
            ));
        }
        _ => {
            return Err(format!(
                "derive(Transportable): `{name}` must be a struct with named fields (tuple and unit structs have no managed class layout)"
            ));
        }
    };

    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // field := attrs* vis? name ':' type ','?
        let mut transportable = false;
        let mut skip = false;
        let fname;
        loop {
            match toks.next() {
                None => return Ok(Parsed { name, fields }),
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = toks.next() {
                        let txt: String = g.stream().into_iter().map(|t| flat(&t)).collect();
                        if txt == "transportable" {
                            transportable = true;
                        } else if txt == "transportable(skip)" {
                            skip = true;
                        } else if txt.starts_with("transportable") {
                            return Err(format!(
                                "derive(Transportable): unknown attribute form `#[{txt}]`; use `#[transportable]` or `#[transportable(skip)]`"
                            ));
                        }
                    }
                }
                Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                    // optional `(crate)` / `(super)` restriction group
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                Some(TokenTree::Ident(i)) => {
                    fname = i.to_string();
                    break;
                }
                Some(other) => {
                    return Err(format!(
                        "derive(Transportable): unexpected token `{}` in field list",
                        flat(&other)
                    ));
                }
            }
        }
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => {
                return Err(format!(
                    "derive(Transportable): expected `:` after field `{fname}`"
                ))
            }
        }
        // Collect the type: everything until a top-level `,`.
        let mut ty = String::new();
        let mut depth = 0i32;
        loop {
            match toks.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    toks.next();
                    break;
                }
                Some(tt) => {
                    if let TokenTree::Punct(p) = tt {
                        match p.as_char() {
                            '<' => depth += 1,
                            '>' => depth -= 1,
                            _ => {}
                        }
                    }
                    ty.push_str(&flat(tt));
                    toks.next();
                }
            }
        }

        let kind = classify(&name, &fname, &ty, transportable, skip)?;
        fields.push(Field { name: fname, kind });
    }
}

fn inner_of<'a>(ty: &'a str, wrapper: &str) -> Option<&'a str> {
    let open = format!("{wrapper}<");
    if ty.starts_with(&open) && ty.ends_with('>') {
        Some(&ty[open.len()..ty.len() - 1])
    } else {
        None
    }
}

fn classify(
    sname: &str,
    fname: &str,
    ty: &str,
    transportable: bool,
    skip: bool,
) -> Result<FieldKind, String> {
    if skip {
        return Ok(FieldKind::Skip);
    }
    if prim_tag(ty).is_some() {
        if transportable {
            return Err(format!(
                "derive(Transportable): primitive field `{sname}.{fname}` is always sent inline; remove `#[transportable]`"
            ));
        }
        return Ok(FieldKind::Prim { ty: ty.to_string() });
    }

    // Reference-shaped field?
    let ref_shape = if let Some(elem) = inner_of(ty, "Vec") {
        prim_tag(elem).map(|_| FieldKind::PrimArray)
    } else if let Some(inner) = inner_of(ty, "Option") {
        if let Some(elem) = inner_of(inner, "Vec") {
            prim_tag(elem).map(|_| FieldKind::OptPrimArray)
        } else {
            inner_of(inner, "Box").map(|t| FieldKind::ClassRef { ty: t.to_string() })
        }
    } else {
        None
    };

    match (ref_shape, transportable) {
        (Some(kind), true) => Ok(kind),
        (Some(_), false) => Ok(FieldKind::NullRef),
        (None, _) => Err(format!(
            "derive(Transportable): field `{sname}.{fname}: {ty}` is not transportable; \
             use a primitive, `Vec<prim>`, `Option<Vec<prim>>`, or `Option<Box<T: Transportable>>`, \
             or exclude it with `#[transportable(skip)]`"
        )),
    }
}

// ---------------------------------------------------------------------------
// code generation
// ---------------------------------------------------------------------------

fn generate(p: &Parsed) -> String {
    let name = &p.name;
    let wire_fields: Vec<&Field> = p
        .fields
        .iter()
        .filter(|f| !matches!(f.kind, FieldKind::Skip))
        .collect();
    let nfields = wire_fields.len();

    // -- type table entry ---------------------------------------------------
    let mut entry = String::new();
    for f in &wire_fields {
        match &f.kind {
            FieldKind::Prim { ty } => {
                entry += &format!(
                    "::motor_api::wire::prim_field::<{ty}>(out, {:?});\n",
                    f.name
                );
            }
            FieldKind::PrimArray | FieldKind::OptPrimArray | FieldKind::ClassRef { .. } => {
                entry += &format!("::motor_api::wire::ref_field(out, {:?}, true);\n", f.name);
            }
            FieldKind::NullRef => {
                entry += &format!("::motor_api::wire::ref_field(out, {:?}, false);\n", f.name);
            }
            FieldKind::Skip => unreachable!(),
        }
    }

    // -- write_fields -------------------------------------------------------
    let mut write = String::new();
    for f in &wire_fields {
        let fname = &f.name;
        match &f.kind {
            FieldKind::Prim { .. } => write += &format!("enc.put_prim(self.{fname});\n"),
            FieldKind::PrimArray => write += &format!("enc.put_prim_array(&self.{fname});\n"),
            FieldKind::OptPrimArray => {
                write += &format!("enc.put_opt_prim_array(&self.{fname});\n")
            }
            FieldKind::ClassRef { .. } => write += &format!("enc.put_class_ref(&self.{fname});\n"),
            FieldKind::NullRef => write += "enc.put_null_ref();\n",
            FieldKind::Skip => unreachable!(),
        }
    }

    // -- read_fields --------------------------------------------------------
    let mut read = String::new();
    for f in &p.fields {
        let fname = &f.name;
        match &f.kind {
            FieldKind::Prim { .. } => read += &format!("{fname}: r.prim()?,\n"),
            FieldKind::PrimArray => read += &format!("{fname}: r.prim_array()?,\n"),
            FieldKind::OptPrimArray => read += &format!("{fname}: r.opt_prim_array()?,\n"),
            FieldKind::ClassRef { ty } => read += &format!("{fname}: r.class_ref::<{ty}>()?,\n"),
            FieldKind::NullRef => read += &format!("{fname}: r.null_ref()?,\n"),
            FieldKind::Skip => read += &format!("{fname}: ::core::default::Default::default(),\n"),
        }
    }

    format!(
        r#"
#[automatically_derived]
impl ::motor_api::Transportable for {name} {{
    const TYPE_NAME: &'static str = {name:?};

    fn type_entry(out: &mut ::std::vec::Vec<u8>) {{
        ::motor_api::wire::class_entry_header(out, {name:?}, {nfields}u16);
        {entry}
    }}

    fn write_fields<'mw>(&'mw self, enc: &mut ::motor_api::wire::Encoder<'mw>) {{
        {write}
    }}

    fn read_fields(r: &mut ::motor_api::wire::FieldReader<'_, '_>) -> ::std::result::Result<Self, ::motor_api::Error> {{
        ::std::result::Result::Ok({name} {{
            {read}
        }})
    }}
}}

#[automatically_derived]
impl ::motor_api::wire::Node for {name} {{
    fn addr(&self) -> usize {{
        self as *const {name} as usize
    }}
    fn type_key(&self) -> ::motor_api::wire::TypeKey {{
        ::motor_api::wire::TypeKey::Class(<{name} as ::motor_api::Transportable>::TYPE_NAME)
    }}
    fn type_entry(&self, out: &mut ::std::vec::Vec<u8>) {{
        <{name} as ::motor_api::Transportable>::type_entry(out)
    }}
    fn write_record<'mw>(&'mw self, enc: &mut ::motor_api::wire::Encoder<'mw>) {{
        <{name} as ::motor_api::Transportable>::write_fields(self, enc)
    }}
}}
"#
    )
}
