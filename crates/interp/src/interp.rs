//! The dispatch loop.
//!
//! Safepoint discipline: the interpreter polls the collector on every
//! function call and on every *backward* branch (the classic JIT poll
//! placement — any loop must cross one), plus every 256 straight-line
//! instructions as a backstop. Reference values are [`Handle`]s rooted in
//! the VM handle table; each frame releases the handles it created when it
//! returns, transferring only the return value.

use motor_runtime::{ElemKind, Handle, MotorThread};

use crate::il::{FCallId, Function, Module, Op};
use crate::verify::{FuncMeta, VerifiedModule};

/// Straight-line instruction budget between forced polls.
const POLL_INTERVAL: u32 = 256;

/// Instructions between opcode-mix samples (`profile` feature). Prime and
/// unrelated to [`POLL_INTERVAL`] — the poll countdown resets on every
/// back edge, so a tight loop would never reach a poll-based sample; this
/// countdown never resets early, and the prime stride keeps it from
/// phase-locking onto loop bodies of a round length. Sized so the
/// sample-path work (two relaxed stores) amortizes to well under 1% of
/// the dispatch cost — `BENCH_ablation_profile.json` gates the total
/// profiler overhead at 2%.
#[cfg(feature = "profile")]
const SAMPLE_INTERVAL: u32 = 251;

/// A value on the evaluation stack or in a local slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    I(i64),
    /// 64-bit float.
    F(f64),
    /// Object reference (a rooted handle) or null.
    R(Handle),
    /// The null reference.
    Null,
    /// An in-flight message-passing request: an index into the bound
    /// [`FcallHost`]'s request table. Created by `MpIsend`/`MpIrecv`,
    /// consumed by `MpWait`; the verifier guarantees it never escapes the
    /// function that created it.
    Req(u32),
}

impl Value {
    fn as_i(self) -> Result<i64, TrapKind> {
        match self {
            Value::I(v) => Ok(v),
            _ => Err(TrapKind::TypeMismatch("expected int")),
        }
    }
    fn as_f(self) -> Result<f64, TrapKind> {
        match self {
            Value::F(v) => Ok(v),
            _ => Err(TrapKind::TypeMismatch("expected float")),
        }
    }
}

/// Runtime traps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapKind {
    /// Integer division by zero.
    DivideByZero,
    /// Null dereference.
    NullReference,
    /// Array index out of range.
    IndexOutOfRange,
    /// Stack/locals type confusion (would be caught by the verifier).
    TypeMismatch(&'static str),
    /// Call of an unknown function index.
    UnknownFunction(u16),
    /// Evaluation stack underflow.
    StackUnderflow,
    /// A message-passing intrinsic failed (no host bound, bad arguments,
    /// transport refused, or a communicator error).
    Fcall(&'static str),
}

impl std::fmt::Display for TrapKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrapKind::DivideByZero => write!(f, "divide by zero"),
            TrapKind::NullReference => write!(f, "null reference"),
            TrapKind::IndexOutOfRange => write!(f, "index out of range"),
            TrapKind::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            TrapKind::UnknownFunction(i) => write!(f, "unknown function {i}"),
            TrapKind::StackUnderflow => write!(f, "stack underflow"),
            TrapKind::Fcall(m) => write!(f, "fcall: {m}"),
        }
    }
}

/// Host for the message-passing intrinsics ([`Op::FCall`]).
///
/// Implemented by `motor-core` over its `Mp`/`Oomp` bindings; each call
/// runs as an FCall frame with entry/exit GC polls (paper §5.1). The
/// interpreter owns the operand handles (frame arena); the host only
/// borrows them for the duration of the call.
pub trait FcallHost {
    /// Execute intrinsic `id`. `args` holds the popped operands in push
    /// order (e.g. `[buf, peer, tag]` for the transport ops). `trusted`
    /// carries the module's transport proof: when set, the host may elide
    /// its per-call transportability walk because the `motor-analyze`
    /// pass already vouched for every buffer reaching this site.
    fn fcall(&self, id: FCallId, args: &[Value], trusted: bool) -> Result<Option<Value>, TrapKind>;
}

/// The interpreter bound to a managed thread and module.
///
/// The normal entry point is [`Interp::new`] over a [`VerifiedModule`]:
/// the typed verifier's side tables let the hot loop skip the registry
/// lock and dynamic kind checks on every field/element access, and the
/// transport-proof bit is forwarded to the [`FcallHost`].
/// [`Interp::unverified`] is the explicit escape hatch for code that has
/// not been through the verifier; it keeps every dynamic check.
pub struct Interp<'t, 'm> {
    thread: &'t MotorThread,
    module: &'m Module,
    /// Per-function verifier side tables, parallel to `module.functions`
    /// (`None` for unverified modules).
    meta: Option<&'m [FuncMeta]>,
    /// Bound message-passing host for `Op::FCall`.
    host: Option<&'m dyn FcallHost>,
    /// The module's transport proof (granted by `motor-analyze`).
    trusted: bool,
    /// IL hotness table fed by the dispatch loop (None = hooks dormant).
    #[cfg(feature = "profile")]
    prof: Option<std::sync::Arc<motor_obs::IlHot>>,
}

/// One activation frame's handle arena: handles minted during the call,
/// released wholesale on return.
struct Arena {
    minted: Vec<Handle>,
}

impl Arena {
    fn new() -> Self {
        Arena { minted: Vec::new() }
    }
    fn track(&mut self, h: Handle) -> Handle {
        self.minted.push(h);
        h
    }
    fn release_all(self, t: &MotorThread, keep: Option<Handle>) {
        for h in self.minted {
            if Some(h) != keep {
                t.release(h);
            }
        }
    }
}

impl<'t, 'm> Interp<'t, 'm> {
    /// Create an interpreter over a verified module (the default path).
    ///
    /// If the module carries never-transported escape proofs (set by the
    /// motor-analyze pipeline; plain [`VerifiedModule::verify`] leaves
    /// them empty), they are installed into the thread's VM here so the
    /// minor collector can elide pinned-set checks for proven classes.
    pub fn new(thread: &'t MotorThread, verified: &'m VerifiedModule) -> Self {
        let proven = verified.never_transported();
        if !proven.is_empty() {
            thread.vm().install_never_transported(proven);
        }
        Interp {
            thread,
            module: verified.module(),
            meta: Some(verified.meta()),
            host: None,
            trusted: verified.has_transport_proof(),
            #[cfg(feature = "profile")]
            prof: None,
        }
    }

    /// Escape hatch: interpret a module that has *not* been through the
    /// typed verifier. Every dynamic type check stays on, and message
    /// transports are never trusted.
    pub fn unverified(thread: &'t MotorThread, module: &'m Module) -> Self {
        Interp {
            thread,
            module,
            meta: None,
            host: None,
            trusted: false,
            #[cfg(feature = "profile")]
            prof: None,
        }
    }

    /// Bind the message-passing host used by `Op::FCall`.
    pub fn with_host(mut self, host: &'m dyn FcallHost) -> Self {
        self.host = Some(host);
        self
    }

    /// Attach an IL hotness table: the dispatch loop then counts every
    /// invocation and loop back edge, samples the opcode mix every
    /// [`SAMPLE_INTERVAL`] instructions, and keeps the sampler-visible
    /// current-function/pc and shadow stack up to date. The table should
    /// be built with one name per module function (same indexing as
    /// `Op::Call`) and [`crate::il::PROFILE_NAMES`] for the opcodes.
    #[cfg(feature = "profile")]
    pub fn with_profiler(mut self, prof: std::sync::Arc<motor_obs::IlHot>) -> Self {
        self.prof = Some(prof);
        self
    }

    /// Call function `idx` with `args`. Returns its value (or `None` for
    /// void functions).
    pub fn call(&self, idx: u16, args: &[Value]) -> Result<Option<Value>, TrapKind> {
        self.thread.poll(); // call-site safepoint
        let f: &Function = self
            .module
            .functions
            .get(idx as usize)
            .ok_or(TrapKind::UnknownFunction(idx))?;
        let meta = self.meta.map(|m| &m[idx as usize]);
        assert_eq!(
            args.len(),
            f.argc as usize,
            "arity mismatch calling {}",
            f.name
        );
        let mut locals: Vec<Value> = Vec::with_capacity(f.locals as usize);
        locals.extend_from_slice(args);
        locals.resize(f.locals as usize, Value::I(0));
        let mut stack: Vec<Value> = Vec::with_capacity(16);
        let mut arena = Arena::new();
        #[cfg(feature = "profile")]
        if let Some(p) = &self.prof {
            p.on_call(idx as u32);
        }
        let result = self.run(f, meta, idx, &mut locals, &mut stack, &mut arena);
        #[cfg(feature = "profile")]
        if let Some(p) = &self.prof {
            p.on_return();
        }
        match result {
            Ok(ret) => {
                // Transfer the return handle out of the arena by cloning.
                let transferred = match ret {
                    Some(Value::R(h)) => {
                        let c = self.thread.clone_handle(h);
                        arena.release_all(self.thread, None);
                        Some(Value::R(c))
                    }
                    other => {
                        arena.release_all(self.thread, None);
                        other
                    }
                };
                Ok(transferred)
            }
            Err(t) => {
                arena.release_all(self.thread, None);
                Err(t)
            }
        }
    }

    fn run(
        &self,
        f: &Function,
        meta: Option<&FuncMeta>,
        fidx: u16,
        locals: &mut [Value],
        stack: &mut Vec<Value>,
        arena: &mut Arena,
    ) -> Result<Option<Value>, TrapKind> {
        #[cfg(not(feature = "profile"))]
        let _ = fidx;
        let code = &f.code;
        let mut pc: usize = 0;
        let mut since_poll: u32 = 0;
        #[cfg(feature = "profile")]
        let mut since_sample: u32 = SAMPLE_INTERVAL;
        // Hoisted once: keeps the per-op profiler check a register test
        // instead of a field reload inside the dispatch loop.
        #[cfg(feature = "profile")]
        let prof = self.prof.as_deref();
        macro_rules! pop {
            () => {
                stack.pop().ok_or(TrapKind::StackUnderflow)?
            };
        }
        // Statically resolved field/element kind for the instruction at
        // `pc` (verified modules only): replaces the registry lock +
        // dynamic kind check on the access fast path.
        macro_rules! hint {
            ($pc:expr) => {
                meta.and_then(|m| m.kinds[$pc])
            };
        }
        while pc < code.len() {
            let op = code[pc];
            let op_pc = pc;
            pc += 1;
            since_poll += 1;
            if since_poll >= POLL_INTERVAL {
                since_poll = 0;
                self.thread.poll();
            }
            #[cfg(feature = "profile")]
            if let Some(p) = prof {
                since_sample -= 1;
                if since_sample == 0 {
                    since_sample = SAMPLE_INTERVAL;
                    p.sample_op(op.profile_index(), fidx as u32, op_pc as u32);
                }
            }
            match op {
                Op::PushI(v) => stack.push(Value::I(v)),
                Op::PushF(v) => stack.push(Value::F(v)),
                Op::PushNull => stack.push(Value::Null),
                Op::Dup => {
                    let v = *stack.last().ok_or(TrapKind::StackUnderflow)?;
                    // Handles are plain slots; duplicating the Value is
                    // fine — the arena owns the slot once.
                    stack.push(v);
                }
                Op::Pop => {
                    pop!();
                }
                Op::Load(i) => stack.push(locals[i as usize]),
                Op::Store(i) => locals[i as usize] = pop!(),
                Op::Add => {
                    let b = pop!().as_i()?;
                    let a = pop!().as_i()?;
                    stack.push(Value::I(a.wrapping_add(b)));
                }
                Op::Sub => {
                    let b = pop!().as_i()?;
                    let a = pop!().as_i()?;
                    stack.push(Value::I(a.wrapping_sub(b)));
                }
                Op::Mul => {
                    let b = pop!().as_i()?;
                    let a = pop!().as_i()?;
                    stack.push(Value::I(a.wrapping_mul(b)));
                }
                Op::Div => {
                    let b = pop!().as_i()?;
                    let a = pop!().as_i()?;
                    if b == 0 {
                        return Err(TrapKind::DivideByZero);
                    }
                    stack.push(Value::I(a.wrapping_div(b)));
                }
                Op::Rem => {
                    let b = pop!().as_i()?;
                    let a = pop!().as_i()?;
                    if b == 0 {
                        return Err(TrapKind::DivideByZero);
                    }
                    stack.push(Value::I(a.wrapping_rem(b)));
                }
                Op::Neg => {
                    let a = pop!().as_i()?;
                    stack.push(Value::I(a.wrapping_neg()));
                }
                Op::FAdd => {
                    let b = pop!().as_f()?;
                    let a = pop!().as_f()?;
                    stack.push(Value::F(a + b));
                }
                Op::FSub => {
                    let b = pop!().as_f()?;
                    let a = pop!().as_f()?;
                    stack.push(Value::F(a - b));
                }
                Op::FMul => {
                    let b = pop!().as_f()?;
                    let a = pop!().as_f()?;
                    stack.push(Value::F(a * b));
                }
                Op::FDiv => {
                    let b = pop!().as_f()?;
                    let a = pop!().as_f()?;
                    stack.push(Value::F(a / b));
                }
                Op::I2F => {
                    let a = pop!().as_i()?;
                    stack.push(Value::F(a as f64));
                }
                Op::F2I => {
                    let a = pop!().as_f()?;
                    stack.push(Value::I(a as i64));
                }
                Op::CmpEq => {
                    let b = pop!();
                    let a = pop!();
                    let eq = match (a, b) {
                        (Value::I(x), Value::I(y)) => x == y,
                        (Value::F(x), Value::F(y)) => x == y,
                        (Value::Null, Value::Null) => true,
                        (Value::R(x), Value::R(y)) => self.thread.same_object(x, y),
                        (Value::R(h), Value::Null) | (Value::Null, Value::R(h)) => {
                            self.thread.is_null(h)
                        }
                        _ => return Err(TrapKind::TypeMismatch("CmpEq operands")),
                    };
                    stack.push(Value::I(eq as i64));
                }
                Op::CmpLt => {
                    let b = pop!();
                    let a = pop!();
                    let lt = match (a, b) {
                        (Value::I(x), Value::I(y)) => x < y,
                        (Value::F(x), Value::F(y)) => x < y,
                        _ => return Err(TrapKind::TypeMismatch("CmpLt operands")),
                    };
                    stack.push(Value::I(lt as i64));
                }
                Op::CmpLe => {
                    let b = pop!();
                    let a = pop!();
                    let le = match (a, b) {
                        (Value::I(x), Value::I(y)) => x <= y,
                        (Value::F(x), Value::F(y)) => x <= y,
                        _ => return Err(TrapKind::TypeMismatch("CmpLe operands")),
                    };
                    stack.push(Value::I(le as i64));
                }
                Op::Br(rel) => {
                    if rel < 0 {
                        // Backward-branch safepoint (the JIT poll).
                        self.thread.poll();
                        since_poll = 0;
                        #[cfg(feature = "profile")]
                        if let Some(p) = prof {
                            p.on_backedge(fidx as u32, op_pc as u32);
                        }
                    }
                    pc = (pc as i64 + rel as i64) as usize;
                }
                Op::BrTrue(rel) => {
                    let c = pop!().as_i()?;
                    if c != 0 {
                        if rel < 0 {
                            self.thread.poll();
                            since_poll = 0;
                            #[cfg(feature = "profile")]
                            if let Some(p) = prof {
                                p.on_backedge(fidx as u32, op_pc as u32);
                            }
                        }
                        pc = (pc as i64 + rel as i64) as usize;
                    }
                }
                Op::BrFalse(rel) => {
                    let c = pop!().as_i()?;
                    if c == 0 {
                        if rel < 0 {
                            self.thread.poll();
                            since_poll = 0;
                            #[cfg(feature = "profile")]
                            if let Some(p) = prof {
                                p.on_backedge(fidx as u32, op_pc as u32);
                            }
                        }
                        pc = (pc as i64 + rel as i64) as usize;
                    }
                }
                Op::Call(fi) => {
                    let callee = self
                        .module
                        .functions
                        .get(fi as usize)
                        .ok_or(TrapKind::UnknownFunction(fi))?;
                    let n = callee.argc as usize;
                    if stack.len() < n {
                        return Err(TrapKind::StackUnderflow);
                    }
                    let args: Vec<Value> = stack.split_off(stack.len() - n);
                    let ret = self.call(fi, &args)?;
                    if let Some(v) = ret {
                        // Re-own any returned handle in this frame's arena.
                        if let Value::R(h) = v {
                            arena.track(h);
                        }
                        if callee.returns_value {
                            stack.push(v);
                        }
                    }
                }
                Op::Ret => {
                    return Ok(if f.returns_value { Some(pop!()) } else { None });
                }
                Op::New(class) => {
                    let h = arena.track(self.thread.alloc_instance(class));
                    stack.push(Value::R(h));
                }
                Op::LdFldI(fi) => {
                    let h = self.ref_val(pop!())?;
                    stack.push(Value::I(self.load_int_field(
                        h,
                        fi as usize,
                        hint!(op_pc),
                    )?));
                }
                Op::StFldI(fi) => {
                    let v = pop!().as_i()?;
                    let h = self.ref_val(pop!())?;
                    self.store_int_field(h, fi as usize, v, hint!(op_pc))?;
                }
                Op::LdFldF(fi) => {
                    let h = self.ref_val(pop!())?;
                    if hint!(op_pc).is_none() {
                        self.check_f64_field(h, fi as usize)?;
                    }
                    stack.push(Value::F(self.thread.get_prim::<f64>(h, fi as usize)));
                }
                Op::StFldF(fi) => {
                    let v = pop!().as_f()?;
                    let h = self.ref_val(pop!())?;
                    if hint!(op_pc).is_none() {
                        self.check_f64_field(h, fi as usize)?;
                    }
                    self.thread.set_prim::<f64>(h, fi as usize, v);
                }
                Op::LdFldR(fi) => {
                    let h = self.ref_val(pop!())?;
                    let v = arena.track(self.thread.get_ref(h, fi as usize));
                    if self.thread.is_null(v) {
                        stack.push(Value::Null);
                    } else {
                        stack.push(Value::R(v));
                    }
                }
                Op::StFldR(fi) => {
                    let v = pop!();
                    let h = self.ref_val(pop!())?;
                    match v {
                        Value::R(r) => self.thread.set_ref(h, fi as usize, r),
                        Value::Null => {
                            let null = arena.track(self.thread.null_handle());
                            self.thread.set_ref(h, fi as usize, null);
                        }
                        _ => return Err(TrapKind::TypeMismatch("StFldR value")),
                    }
                }
                Op::NewArr(kind) => {
                    let len = pop!().as_i()?;
                    if len < 0 {
                        return Err(TrapKind::IndexOutOfRange);
                    }
                    let h = arena.track(self.thread.alloc_prim_array(kind, len as usize));
                    stack.push(Value::R(h));
                }
                Op::NewObjArr(class) => {
                    let len = pop!().as_i()?;
                    if len < 0 {
                        return Err(TrapKind::IndexOutOfRange);
                    }
                    let h = arena.track(self.thread.alloc_obj_array(class, len as usize));
                    stack.push(Value::R(h));
                }
                Op::LdElemI => {
                    let idx = pop!().as_i()?;
                    let h = self.ref_val(pop!())?;
                    stack.push(Value::I(self.load_int_elem(h, idx, hint!(op_pc))?));
                }
                Op::StElemI => {
                    let v = pop!().as_i()?;
                    let idx = pop!().as_i()?;
                    let h = self.ref_val(pop!())?;
                    self.store_int_elem(h, idx, v, hint!(op_pc))?;
                }
                Op::LdElemF => {
                    let idx = pop!().as_i()?;
                    let h = self.ref_val(pop!())?;
                    self.bounds(h, idx)?;
                    if hint!(op_pc).is_none() {
                        self.check_f64_elem(h)?;
                    }
                    let mut out = [0f64];
                    self.thread.prim_read(h, idx as usize, &mut out);
                    stack.push(Value::F(out[0]));
                }
                Op::StElemF => {
                    let v = pop!().as_f()?;
                    let idx = pop!().as_i()?;
                    let h = self.ref_val(pop!())?;
                    self.bounds(h, idx)?;
                    if hint!(op_pc).is_none() {
                        self.check_f64_elem(h)?;
                    }
                    self.thread.prim_write(h, idx as usize, &[v]);
                }
                Op::LdElemR => {
                    let idx = pop!().as_i()?;
                    let h = self.ref_val(pop!())?;
                    self.bounds(h, idx)?;
                    let v = arena.track(self.thread.obj_array_get(h, idx as usize));
                    if self.thread.is_null(v) {
                        stack.push(Value::Null);
                    } else {
                        stack.push(Value::R(v));
                    }
                }
                Op::StElemR => {
                    let v = pop!();
                    let idx = pop!().as_i()?;
                    let h = self.ref_val(pop!())?;
                    self.bounds(h, idx)?;
                    match v {
                        Value::R(r) => self.thread.obj_array_set(h, idx as usize, r),
                        Value::Null => {
                            let null = arena.track(self.thread.null_handle());
                            self.thread.obj_array_set(h, idx as usize, null);
                        }
                        _ => return Err(TrapKind::TypeMismatch("StElemR value")),
                    }
                }
                Op::ArrLen => {
                    let h = self.ref_val(pop!())?;
                    stack.push(Value::I(self.thread.array_len(h) as i64));
                }
                Op::FCall(id) => {
                    let host = self
                        .host
                        .ok_or(TrapKind::Fcall("no message-passing host bound"))?;
                    let n = id.arity();
                    if stack.len() < n {
                        return Err(TrapKind::StackUnderflow);
                    }
                    let args: Vec<Value> = stack.split_off(stack.len() - n);
                    let ret = host.fcall(id, &args, self.trusted)?;
                    if let Some(v) = ret {
                        if let Value::R(h) = v {
                            // Received objects are owned by this frame.
                            arena.track(h);
                        }
                        stack.push(v);
                    }
                }
            }
        }
        // Fell off the end of a void function.
        Ok(None)
    }

    fn ref_val(&self, v: Value) -> Result<Handle, TrapKind> {
        match v {
            Value::R(h) if !self.thread.is_null(h) => Ok(h),
            Value::R(_) | Value::Null => Err(TrapKind::NullReference),
            _ => Err(TrapKind::TypeMismatch("expected reference")),
        }
    }

    fn bounds(&self, h: Handle, idx: i64) -> Result<(), TrapKind> {
        if idx < 0 || idx as usize >= self.thread.array_len(h) {
            return Err(TrapKind::IndexOutOfRange);
        }
        Ok(())
    }

    fn elem_kind(&self, h: Handle) -> ElemKind {
        let vm = self.thread.vm();
        let reg = vm.registry();
        match reg.table(self.thread.class_of(h)).kind {
            motor_runtime::TypeKind::PrimArray(k) => k,
            motor_runtime::TypeKind::MdArray { elem, .. } => elem,
            _ => ElemKind::U8,
        }
    }

    /// Reject non-f64 fields on the unverified `LdFldF`/`StFldF` path
    /// (verified modules carry the kind in their side table instead).
    fn check_f64_field(&self, h: Handle, fi: usize) -> Result<(), TrapKind> {
        let vm = self.thread.vm();
        let reg = vm.registry();
        match reg
            .table(self.thread.class_of(h))
            .fields
            .get(fi)
            .map(|f| f.ty)
        {
            Some(motor_runtime::FieldType::Prim(ElemKind::F64)) => Ok(()),
            Some(_) => Err(TrapKind::TypeMismatch("float access to non-f64 field")),
            None => Err(TrapKind::TypeMismatch("field index out of range")),
        }
    }

    /// Reject non-f64 arrays on the unverified `LdElemF`/`StElemF` path.
    fn check_f64_elem(&self, h: Handle) -> Result<(), TrapKind> {
        match self.elem_kind(h) {
            ElemKind::F64 => Ok(()),
            _ => Err(TrapKind::TypeMismatch("float access to non-f64 array")),
        }
    }

    fn load_int_elem(&self, h: Handle, idx: i64, hint: Option<ElemKind>) -> Result<i64, TrapKind> {
        self.bounds(h, idx)?;
        let idx = idx as usize;
        let kind = match hint {
            Some(k) => k,
            None => self.elem_kind(h),
        };
        Ok(match kind {
            ElemKind::Bool | ElemKind::U8 => {
                let mut o = [0u8];
                self.thread.prim_read(h, idx, &mut o);
                o[0] as i64
            }
            ElemKind::I8 => {
                let mut o = [0i8];
                self.thread.prim_read(h, idx, &mut o);
                o[0] as i64
            }
            ElemKind::I16 => {
                let mut o = [0i16];
                self.thread.prim_read(h, idx, &mut o);
                o[0] as i64
            }
            ElemKind::U16 | ElemKind::Char => {
                let mut o = [0u16];
                self.thread.prim_read(h, idx, &mut o);
                o[0] as i64
            }
            ElemKind::I32 => {
                let mut o = [0i32];
                self.thread.prim_read(h, idx, &mut o);
                o[0] as i64
            }
            ElemKind::U32 => {
                let mut o = [0u32];
                self.thread.prim_read(h, idx, &mut o);
                o[0] as i64
            }
            ElemKind::I64 | ElemKind::U64 => {
                let mut o = [0i64];
                self.thread.prim_read(h, idx, &mut o);
                o[0]
            }
            ElemKind::F32 | ElemKind::F64 => {
                return Err(TrapKind::TypeMismatch("int load from float array"))
            }
        })
    }

    fn store_int_elem(
        &self,
        h: Handle,
        idx: i64,
        v: i64,
        hint: Option<ElemKind>,
    ) -> Result<(), TrapKind> {
        self.bounds(h, idx)?;
        let idx = idx as usize;
        let kind = match hint {
            Some(k) => k,
            None => self.elem_kind(h),
        };
        match kind {
            ElemKind::Bool | ElemKind::U8 => self.thread.prim_write(h, idx, &[v as u8]),
            ElemKind::I8 => self.thread.prim_write(h, idx, &[v as i8]),
            ElemKind::I16 => self.thread.prim_write(h, idx, &[v as i16]),
            ElemKind::U16 | ElemKind::Char => self.thread.prim_write(h, idx, &[v as u16]),
            ElemKind::I32 => self.thread.prim_write(h, idx, &[v as i32]),
            ElemKind::U32 => self.thread.prim_write(h, idx, &[v as u32]),
            ElemKind::I64 | ElemKind::U64 => self.thread.prim_write(h, idx, &[v]),
            ElemKind::F32 | ElemKind::F64 => {
                return Err(TrapKind::TypeMismatch("int store to float array"))
            }
        }
        Ok(())
    }

    fn load_int_field(
        &self,
        h: Handle,
        fi: usize,
        hint: Option<ElemKind>,
    ) -> Result<i64, TrapKind> {
        let kind = match hint {
            Some(k) => k,
            None => {
                let vm = self.thread.vm();
                let reg = vm.registry();
                match reg
                    .table(self.thread.class_of(h))
                    .fields
                    .get(fi)
                    .map(|f| f.ty)
                {
                    Some(motor_runtime::FieldType::Prim(k)) => k,
                    Some(motor_runtime::FieldType::Ref(_)) => {
                        return Err(TrapKind::TypeMismatch("LdFldI on reference field"))
                    }
                    None => return Err(TrapKind::TypeMismatch("field index out of range")),
                }
            }
        };
        Ok(match kind {
            ElemKind::Bool | ElemKind::U8 => self.thread.get_prim::<u8>(h, fi) as i64,
            ElemKind::I8 => self.thread.get_prim::<i8>(h, fi) as i64,
            ElemKind::I16 => self.thread.get_prim::<i16>(h, fi) as i64,
            ElemKind::U16 | ElemKind::Char => self.thread.get_prim::<u16>(h, fi) as i64,
            ElemKind::I32 => self.thread.get_prim::<i32>(h, fi) as i64,
            ElemKind::U32 => self.thread.get_prim::<u32>(h, fi) as i64,
            ElemKind::I64 | ElemKind::U64 => self.thread.get_prim::<i64>(h, fi),
            ElemKind::F32 | ElemKind::F64 => {
                return Err(TrapKind::TypeMismatch("LdFldI on float field"))
            }
        })
    }

    fn store_int_field(
        &self,
        h: Handle,
        fi: usize,
        v: i64,
        hint: Option<ElemKind>,
    ) -> Result<(), TrapKind> {
        let kind = match hint {
            Some(k) => k,
            None => {
                let vm = self.thread.vm();
                let reg = vm.registry();
                match reg
                    .table(self.thread.class_of(h))
                    .fields
                    .get(fi)
                    .map(|f| f.ty)
                {
                    Some(motor_runtime::FieldType::Prim(k)) => k,
                    Some(motor_runtime::FieldType::Ref(_)) => {
                        return Err(TrapKind::TypeMismatch("StFldI on reference field"))
                    }
                    None => return Err(TrapKind::TypeMismatch("field index out of range")),
                }
            }
        };
        match kind {
            ElemKind::Bool | ElemKind::U8 => self.thread.set_prim::<u8>(h, fi, v as u8),
            ElemKind::I8 => self.thread.set_prim::<i8>(h, fi, v as i8),
            ElemKind::I16 => self.thread.set_prim::<i16>(h, fi, v as i16),
            ElemKind::U16 | ElemKind::Char => self.thread.set_prim::<u16>(h, fi, v as u16),
            ElemKind::I32 => self.thread.set_prim::<i32>(h, fi, v as i32),
            ElemKind::U32 => self.thread.set_prim::<u32>(h, fi, v as u32),
            ElemKind::I64 | ElemKind::U64 => self.thread.set_prim::<i64>(h, fi, v),
            ElemKind::F32 | ElemKind::F64 => {
                return Err(TrapKind::TypeMismatch("StFldI on float field"))
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::il::{FnBuilder, Module, TyDesc};
    use motor_runtime::heap::HeapConfig;
    use motor_runtime::{Vm, VmConfig};
    use std::sync::Arc;

    fn vm_small() -> Arc<Vm> {
        Vm::new(VmConfig {
            heap: HeapConfig {
                young_bytes: 8 * 1024,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    fn verified(m: Module, vm: &Vm) -> VerifiedModule {
        VerifiedModule::verify(m, &vm.registry()).expect("test module must verify")
    }

    #[test]
    fn arithmetic_and_loop_sum() {
        // sum(n) = 0 + 1 + ... + n via a loop.
        let mut f = FnBuilder::new("sum", 1, 2, true);
        let top = f.label();
        let done = f.label();
        f.op(Op::PushI(0)).op(Op::Store(1));
        f.bind(top);
        f.op(Op::Load(0))
            .op(Op::PushI(0))
            .op(Op::CmpLe)
            .br_true(done);
        f.op(Op::Load(1))
            .op(Op::Load(0))
            .op(Op::Add)
            .op(Op::Store(1));
        f.op(Op::Load(0))
            .op(Op::PushI(1))
            .op(Op::Sub)
            .op(Op::Store(0));
        f.br(top);
        f.bind(done);
        f.op(Op::Load(1)).op(Op::Ret);
        let mut m = Module::new();
        let idx = m.add(f.build());
        let vm = vm_small();
        let vmod = verified(m, &vm);
        let t = motor_runtime::MotorThread::attach(vm);
        let i = Interp::new(&t, &vmod);
        let r = i.call(idx, &[Value::I(100)]).unwrap();
        assert_eq!(r, Some(Value::I(5050)));
    }

    #[test]
    fn recursive_factorial_via_calls() {
        // fact(n) = n <= 1 ? 1 : n * fact(n-1)
        let mut m = Module::new();
        let mut f = FnBuilder::new("fact", 1, 1, true);
        let rec = f.label();
        f.op(Op::Load(0))
            .op(Op::PushI(1))
            .op(Op::CmpLe)
            .br_false(rec);
        f.op(Op::PushI(1)).op(Op::Ret);
        f.bind(rec);
        f.op(Op::Load(0));
        f.op(Op::Load(0)).op(Op::PushI(1)).op(Op::Sub);
        f.op(Op::Call(0));
        f.op(Op::Mul).op(Op::Ret);
        let idx = m.add(f.build());
        assert_eq!(idx, 0);
        let vm = vm_small();
        let vmod = verified(m, &vm);
        let t = motor_runtime::MotorThread::attach(vm);
        let i = Interp::new(&t, &vmod);
        assert_eq!(
            i.call(0, &[Value::I(10)]).unwrap(),
            Some(Value::I(3_628_800))
        );
    }

    #[test]
    fn float_math() {
        let mut f = FnBuilder::new("avg", 2, 2, true);
        f.params(&[TyDesc::F64, TyDesc::F64]).ret_ty(TyDesc::F64);
        f.op(Op::Load(0)).op(Op::Load(1)).op(Op::FAdd);
        f.op(Op::PushF(2.0)).op(Op::FDiv).op(Op::Ret);
        let mut m = Module::new();
        let idx = m.add(f.build());
        let vm = vm_small();
        let vmod = verified(m, &vm);
        let t = motor_runtime::MotorThread::attach(vm);
        let i = Interp::new(&t, &vmod);
        assert_eq!(
            i.call(idx, &[Value::F(3.0), Value::F(4.0)]).unwrap(),
            Some(Value::F(3.5))
        );
    }

    #[test]
    fn division_by_zero_traps() {
        let mut f = FnBuilder::new("div", 2, 2, true);
        f.op(Op::Load(0)).op(Op::Load(1)).op(Op::Div).op(Op::Ret);
        let mut m = Module::new();
        let idx = m.add(f.build());
        let vm = vm_small();
        let vmod = verified(m, &vm);
        let t = motor_runtime::MotorThread::attach(vm);
        let i = Interp::new(&t, &vmod);
        assert_eq!(
            i.call(idx, &[Value::I(1), Value::I(0)]),
            Err(TrapKind::DivideByZero)
        );
    }

    #[test]
    fn object_fields_through_il() {
        let vm = vm_small();
        let cls = vm
            .registry_mut()
            .define_class("Pt")
            .prim("x", ElemKind::I32)
            .prim("y", ElemKind::F64)
            .build();
        // make() { p = new Pt; p.x = 7; p.y = 2.5; return p.x + (int)p.y }
        let mut f = FnBuilder::new("make", 0, 1, true);
        f.op(Op::New(cls)).op(Op::Store(0));
        f.op(Op::Load(0)).op(Op::PushI(7)).op(Op::StFldI(0));
        f.op(Op::Load(0)).op(Op::PushF(2.5)).op(Op::StFldF(1));
        f.op(Op::Load(0)).op(Op::LdFldI(0));
        f.op(Op::Load(0)).op(Op::LdFldF(1)).op(Op::F2I);
        f.op(Op::Add).op(Op::Ret);
        let mut m = Module::new();
        let idx = m.add(f.build());
        let vmod = verified(m, &vm);
        let t = motor_runtime::MotorThread::attach(vm);
        let i = Interp::new(&t, &vmod);
        assert_eq!(i.call(idx, &[]).unwrap(), Some(Value::I(9)));
    }

    #[test]
    fn arrays_through_il_with_bounds() {
        // fill-and-sum: a = new i32[n]; for i: a[i] = i*i; return sum(a)
        let mut f = FnBuilder::new("sumsq", 1, 3, true);
        let top = f.label();
        let done = f.label();
        let top2 = f.label();
        let done2 = f.label();
        f.op(Op::Load(0))
            .op(Op::NewArr(ElemKind::I32))
            .op(Op::Store(1));
        f.op(Op::PushI(0)).op(Op::Store(2));
        f.bind(top);
        f.op(Op::Load(2))
            .op(Op::Load(0))
            .op(Op::CmpLt)
            .br_false(done);
        f.op(Op::Load(1))
            .op(Op::Load(2))
            .op(Op::Load(2))
            .op(Op::Load(2))
            .op(Op::Mul)
            .op(Op::StElemI);
        f.op(Op::Load(2))
            .op(Op::PushI(1))
            .op(Op::Add)
            .op(Op::Store(2));
        f.br(top);
        f.bind(done);
        // Sum phase: reuse local 0 as accumulator.
        f.op(Op::PushI(0)).op(Op::Store(0));
        f.op(Op::PushI(0)).op(Op::Store(2));
        f.bind(top2);
        f.op(Op::Load(2))
            .op(Op::Load(1))
            .op(Op::ArrLen)
            .op(Op::CmpLt)
            .br_false(done2);
        f.op(Op::Load(0))
            .op(Op::Load(1))
            .op(Op::Load(2))
            .op(Op::LdElemI)
            .op(Op::Add)
            .op(Op::Store(0));
        f.op(Op::Load(2))
            .op(Op::PushI(1))
            .op(Op::Add)
            .op(Op::Store(2));
        f.br(top2);
        f.bind(done2);
        f.op(Op::Load(0)).op(Op::Ret);
        let mut m = Module::new();
        let idx = m.add(f.build());
        // Out-of-range traps.
        let mut g = FnBuilder::new("oob", 0, 1, true);
        g.op(Op::PushI(2))
            .op(Op::NewArr(ElemKind::I32))
            .op(Op::Store(0));
        g.op(Op::Load(0))
            .op(Op::PushI(5))
            .op(Op::LdElemI)
            .op(Op::Ret);
        let gi = m.add(g.build());
        let vm = vm_small();
        let vmod = verified(m, &vm);
        let t = motor_runtime::MotorThread::attach(vm);
        let i = Interp::new(&t, &vmod);
        // 0+1+4+9+16 = 30
        assert_eq!(i.call(idx, &[Value::I(5)]).unwrap(), Some(Value::I(30)));
        assert_eq!(i.call(gi, &[]), Err(TrapKind::IndexOutOfRange));
    }

    #[test]
    fn allocation_loop_survives_gc() {
        // Allocate thousands of nodes into a linked structure held through
        // a local while GC churns — handles in locals are roots.
        let vm = vm_small();
        let arr_cls = vm.registry_mut().prim_array(ElemKind::I64);
        let cls = {
            let mut reg = vm.registry_mut();
            let next_id = motor_runtime::ClassId(reg.len() as u32);
            reg.define_class("Cell")
                .prim("v", ElemKind::I64)
                .transportable("next", next_id)
                .build()
        };
        let _ = arr_cls;
        // build(n): head = null; for i in 0..n { c = new Cell; c.v = i;
        //           c.next = head; head = c } ; then count the list.
        let mut f = FnBuilder::new("build", 1, 4, true);
        let top = f.label();
        let done = f.label();
        let count_top = f.label();
        let count_done = f.label();
        f.op(Op::PushNull).op(Op::Store(1)); // head
        f.op(Op::PushI(0)).op(Op::Store(2)); // i
        f.bind(top);
        f.op(Op::Load(2))
            .op(Op::Load(0))
            .op(Op::CmpLt)
            .br_false(done);
        f.op(Op::New(cls)).op(Op::Store(3));
        f.op(Op::Load(3)).op(Op::Load(2)).op(Op::StFldI(0));
        f.op(Op::Load(3)).op(Op::Load(1)).op(Op::StFldR(1));
        f.op(Op::Load(3)).op(Op::Store(1));
        f.op(Op::Load(2))
            .op(Op::PushI(1))
            .op(Op::Add)
            .op(Op::Store(2));
        f.br(top);
        f.bind(done);
        // count
        f.op(Op::PushI(0)).op(Op::Store(2));
        f.bind(count_top);
        f.op(Op::Load(1))
            .op(Op::PushNull)
            .op(Op::CmpEq)
            .br_true(count_done);
        f.op(Op::Load(1)).op(Op::LdFldR(1)).op(Op::Store(1));
        f.op(Op::Load(2))
            .op(Op::PushI(1))
            .op(Op::Add)
            .op(Op::Store(2));
        f.br(count_top);
        f.bind(count_done);
        f.op(Op::Load(2)).op(Op::Ret);
        let mut m = Module::new();
        let idx = m.add(f.build());
        let vmod = verified(m, &vm);
        let t = motor_runtime::MotorThread::attach(Arc::clone(&vm));
        let i = Interp::new(&t, &vmod);
        let n = 2000i64;
        assert_eq!(i.call(idx, &[Value::I(n)]).unwrap(), Some(Value::I(n)));
        assert!(
            vm.stats_snapshot().minor_collections > 0,
            "the allocation loop must have triggered GC"
        );
    }

    #[test]
    fn object_arrays_and_null_elements() {
        let vm = vm_small();
        let cls = vm
            .registry_mut()
            .define_class("Box")
            .prim("v", ElemKind::I32)
            .build();
        // a = new Box[3]; a[1] = new Box{v=42}; return a[1].v + (a[0]==null)
        let mut f = FnBuilder::new("g", 0, 2, true);
        f.op(Op::PushI(3)).op(Op::NewObjArr(cls)).op(Op::Store(0));
        f.op(Op::New(cls)).op(Op::Store(1));
        f.op(Op::Load(1)).op(Op::PushI(42)).op(Op::StFldI(0));
        f.op(Op::Load(0))
            .op(Op::PushI(1))
            .op(Op::Load(1))
            .op(Op::StElemR);
        f.op(Op::Load(0))
            .op(Op::PushI(1))
            .op(Op::LdElemR)
            .op(Op::LdFldI(0));
        f.op(Op::Load(0))
            .op(Op::PushI(0))
            .op(Op::LdElemR)
            .op(Op::PushNull)
            .op(Op::CmpEq);
        f.op(Op::Add).op(Op::Ret);
        let mut m = Module::new();
        let idx = m.add(f.build());
        let vmod = verified(m, &vm);
        let t = motor_runtime::MotorThread::attach(vm);
        let i = Interp::new(&t, &vmod);
        assert_eq!(i.call(idx, &[]).unwrap(), Some(Value::I(43)));
    }

    #[test]
    fn null_dereference_traps() {
        let vm = vm_small();
        let cls = vm
            .registry_mut()
            .define_class("B2")
            .prim("v", ElemKind::I32)
            .build();
        let _ = cls;
        let mut f = FnBuilder::new("h", 0, 0, true);
        f.op(Op::PushNull).op(Op::LdFldI(0)).op(Op::Ret);
        let mut m = Module::new();
        let idx = m.add(f.build());
        let vmod = verified(m, &vm);
        let t = motor_runtime::MotorThread::attach(vm);
        let i = Interp::new(&t, &vmod);
        assert_eq!(i.call(idx, &[]), Err(TrapKind::NullReference));
    }

    use motor_runtime::ElemKind;

    #[cfg(feature = "profile")]
    #[test]
    fn profiler_hooks_count_calls_backedges_and_ops() {
        use crate::il::PROFILE_NAMES;
        use motor_obs::IlHot;
        use std::sync::Arc;

        // leaf(): a 100-trip empty loop — the hot function.
        let mut leaf = FnBuilder::new("leaf", 0, 1, true);
        let top = leaf.label();
        let done = leaf.label();
        leaf.op(Op::PushI(100)).op(Op::Store(0));
        leaf.bind(top);
        leaf.op(Op::Load(0))
            .op(Op::PushI(0))
            .op(Op::CmpLe)
            .br_true(done);
        leaf.op(Op::Load(0))
            .op(Op::PushI(1))
            .op(Op::Sub)
            .op(Op::Store(0));
        leaf.br(top);
        leaf.bind(done);
        leaf.op(Op::PushI(0)).op(Op::Ret);
        // driver(): calls leaf() 5 times.
        let mut m = Module::new();
        let leaf_idx = m.add(leaf.build());
        let mut driver = FnBuilder::new("driver", 0, 1, true);
        for _ in 0..5 {
            driver.op(Op::Call(leaf_idx)).op(Op::Pop);
        }
        driver.op(Op::PushI(0)).op(Op::Ret);
        let driver_idx = m.add(driver.build());

        let vm = vm_small();
        let vmod = verified(m, &vm);
        let t = motor_runtime::MotorThread::attach(vm);
        let prof = Arc::new(IlHot::new(
            vmod.module()
                .functions
                .iter()
                .map(|f| f.name.clone())
                .collect(),
            PROFILE_NAMES.to_vec(),
        ));
        let i = Interp::new(&t, &vmod).with_profiler(Arc::clone(&prof));
        i.call(driver_idx, &[]).unwrap();

        let hot = prof.hottest().expect("something ran");
        assert_eq!(hot.name, "leaf", "the loop function must rank hottest");
        assert_eq!(hot.calls, 5);
        assert_eq!(hot.backedges, 5 * 100);
        let by_name: std::collections::HashMap<_, _> = prof
            .top_functions()
            .into_iter()
            .map(|f| (f.name.clone(), f))
            .collect();
        assert_eq!(by_name["driver"].calls, 1);
        assert_eq!(by_name["driver"].backedges, 0);
        // ~500 loop trips × 6 ops each: the sampled mix must have fired.
        assert!(prof.op_counts().iter().sum::<u64>() > 0, "op mix sampled");
        // Interpreter idle again: stack unwound, no current frame.
        assert_eq!(prof.current(), None);
        assert!(prof.stack_snapshot().is_empty());
    }
}
