//! A lightweight IL verifier.
//!
//! The CLI requires loaded code to be verifiable before it may run in a
//! trusted context; this verifier enforces the structural properties the
//! interpreter relies on: branch targets inside the function, local
//! indices in range, call targets present, and a consistent evaluation
//! stack depth along every path (merge points must agree).

use std::collections::HashMap;

use crate::il::{Function, Module, Op};

/// Verification failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A branch leaves the function body.
    BranchOutOfRange { func: String, at: usize },
    /// A local index exceeds the declared local count.
    BadLocal { func: String, at: usize, local: u16 },
    /// A call names a missing function.
    BadCallTarget {
        func: String,
        at: usize,
        target: u16,
    },
    /// An instruction would pop from an empty stack.
    Underflow { func: String, at: usize },
    /// Two paths reach the same instruction with different stack depths.
    DepthMismatch {
        func: String,
        at: usize,
        a: usize,
        b: usize,
    },
    /// A value-returning function can fall off the end.
    MissingReturn { func: String },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::BranchOutOfRange { func, at } => {
                write!(f, "{func}@{at}: branch out of range")
            }
            VerifyError::BadLocal { func, at, local } => {
                write!(f, "{func}@{at}: local {local} out of range")
            }
            VerifyError::BadCallTarget { func, at, target } => {
                write!(f, "{func}@{at}: unknown function {target}")
            }
            VerifyError::Underflow { func, at } => write!(f, "{func}@{at}: stack underflow"),
            VerifyError::DepthMismatch { func, at, a, b } => {
                write!(f, "{func}@{at}: stack depth mismatch ({a} vs {b})")
            }
            VerifyError::MissingReturn { func } => {
                write!(f, "{func}: value-returning function may fall off the end")
            }
        }
    }
}

/// Net stack effect and pop count of one instruction.
fn effect(op: &Op, module: &Module) -> (usize, usize) {
    // (pops, pushes)
    match op {
        Op::PushI(_) | Op::PushF(_) | Op::PushNull => (0, 1),
        Op::Dup => (1, 2),
        Op::Pop => (1, 0),
        Op::Load(_) => (0, 1),
        Op::Store(_) => (1, 0),
        Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Div
        | Op::Rem
        | Op::FAdd
        | Op::FSub
        | Op::FMul
        | Op::FDiv
        | Op::CmpEq
        | Op::CmpLt
        | Op::CmpLe => (2, 1),
        Op::Neg | Op::I2F | Op::F2I => (1, 1),
        Op::Br(_) => (0, 0),
        Op::BrTrue(_) | Op::BrFalse(_) => (1, 0),
        Op::Call(i) => {
            let callee = &module.functions[*i as usize];
            (callee.argc as usize, callee.returns_value as usize)
        }
        Op::Ret => (0, 0), // handled specially
        Op::New(_) => (0, 1),
        Op::LdFldI(_) | Op::LdFldF(_) | Op::LdFldR(_) => (1, 1),
        Op::StFldI(_) | Op::StFldF(_) | Op::StFldR(_) => (2, 0),
        Op::NewArr(_) | Op::NewObjArr(_) => (1, 1),
        Op::LdElemI | Op::LdElemF | Op::LdElemR => (2, 1),
        Op::StElemI | Op::StElemF | Op::StElemR => (3, 0),
        Op::ArrLen => (1, 1),
    }
}

fn verify_function(f: &Function, module: &Module) -> Result<(), VerifyError> {
    let n = f.code.len();
    let name = || f.name.clone();
    // First pass: structural checks + branch targets.
    for (at, op) in f.code.iter().enumerate() {
        match op {
            Op::Br(r) | Op::BrTrue(r) | Op::BrFalse(r) => {
                let t = at as i64 + 1 + *r as i64;
                if t < 0 || t > n as i64 {
                    return Err(VerifyError::BranchOutOfRange { func: name(), at });
                }
            }
            Op::Load(l) | Op::Store(l) if *l >= f.locals => {
                return Err(VerifyError::BadLocal {
                    func: name(),
                    at,
                    local: *l,
                });
            }
            Op::Call(t) if *t as usize >= module.functions.len() => {
                return Err(VerifyError::BadCallTarget {
                    func: name(),
                    at,
                    target: *t,
                });
            }
            _ => {}
        }
    }
    // Second pass: abstract stack-depth interpretation (worklist).
    let mut depth_at: HashMap<usize, usize> = HashMap::new();
    let mut work: Vec<(usize, usize)> = vec![(0, 0)];
    let mut can_fall_off = false;
    while let Some((pc, depth)) = work.pop() {
        if pc >= n {
            can_fall_off = true;
            continue;
        }
        if let Some(&d) = depth_at.get(&pc) {
            if d != depth {
                return Err(VerifyError::DepthMismatch {
                    func: name(),
                    at: pc,
                    a: d,
                    b: depth,
                });
            }
            continue;
        }
        depth_at.insert(pc, depth);
        let op = &f.code[pc];
        if matches!(op, Op::Ret) {
            let need = f.returns_value as usize;
            if depth < need {
                return Err(VerifyError::Underflow {
                    func: name(),
                    at: pc,
                });
            }
            continue;
        }
        let (pops, pushes) = effect(op, module);
        if depth < pops {
            return Err(VerifyError::Underflow {
                func: name(),
                at: pc,
            });
        }
        let next = depth - pops + pushes;
        match op {
            Op::Br(r) => work.push(((pc as i64 + 1 + *r as i64) as usize, next)),
            Op::BrTrue(r) | Op::BrFalse(r) => {
                work.push(((pc as i64 + 1 + *r as i64) as usize, next));
                work.push((pc + 1, next));
            }
            _ => work.push((pc + 1, next)),
        }
    }
    if can_fall_off && f.returns_value {
        return Err(VerifyError::MissingReturn { func: name() });
    }
    Ok(())
}

/// Verify every function in a module.
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    for f in &module.functions {
        verify_function(f, module)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::il::FnBuilder;

    fn module_of(f: Function) -> Module {
        let mut m = Module::new();
        m.add(f);
        m
    }

    #[test]
    fn valid_function_passes() {
        let mut f = FnBuilder::new("ok", 1, 2, true);
        let done = f.label();
        f.op(Op::Load(0)).br_false(done);
        f.op(Op::PushI(1)).op(Op::Ret);
        f.bind(done);
        f.op(Op::PushI(0)).op(Op::Ret);
        assert_eq!(verify_module(&module_of(f.build())), Ok(()));
    }

    #[test]
    fn branch_out_of_range_rejected() {
        let f = Function {
            name: "bad".into(),
            argc: 0,
            locals: 0,
            returns_value: false,
            code: vec![Op::Br(100)],
        };
        assert!(matches!(
            verify_module(&module_of(f)),
            Err(VerifyError::BranchOutOfRange { .. })
        ));
    }

    #[test]
    fn bad_local_rejected() {
        let f = Function {
            name: "bad".into(),
            argc: 0,
            locals: 1,
            returns_value: false,
            code: vec![Op::Load(3), Op::Pop],
        };
        assert!(matches!(
            verify_module(&module_of(f)),
            Err(VerifyError::BadLocal { .. })
        ));
    }

    #[test]
    fn underflow_rejected() {
        let f = Function {
            name: "bad".into(),
            argc: 0,
            locals: 0,
            returns_value: false,
            code: vec![Op::Add],
        };
        assert!(matches!(
            verify_module(&module_of(f)),
            Err(VerifyError::Underflow { .. })
        ));
    }

    #[test]
    fn depth_mismatch_at_merge_rejected() {
        // One path pushes an extra value before the merge.
        let f = Function {
            name: "bad".into(),
            argc: 1,
            locals: 1,
            returns_value: false,
            code: vec![
                Op::Load(0),
                Op::BrTrue(1), // skip the extra push
                Op::PushI(9),  // only on the fall-through path
                Op::Pop,       // merge point: depth 1 vs 0
            ],
        };
        let r = verify_module(&module_of(f));
        assert!(
            matches!(
                r,
                Err(VerifyError::DepthMismatch { .. }) | Err(VerifyError::Underflow { .. })
            ),
            "got {r:?}"
        );
    }

    #[test]
    fn missing_return_rejected() {
        let f = Function {
            name: "bad".into(),
            argc: 0,
            locals: 0,
            returns_value: true,
            code: vec![Op::PushI(1), Op::Pop],
        };
        assert!(matches!(
            verify_module(&module_of(f)),
            Err(VerifyError::MissingReturn { .. })
        ));
    }

    #[test]
    fn call_effects_respect_arity() {
        let mut m = Module::new();
        let mut callee = FnBuilder::new("two_args", 2, 2, true);
        callee
            .op(Op::Load(0))
            .op(Op::Load(1))
            .op(Op::Add)
            .op(Op::Ret);
        m.add(callee.build());
        let mut caller = FnBuilder::new("caller", 0, 0, true);
        caller
            .op(Op::PushI(1))
            .op(Op::PushI(2))
            .op(Op::Call(0))
            .op(Op::Ret);
        m.add(caller.build());
        assert_eq!(verify_module(&m), Ok(()));
        // A caller providing one argument underflows.
        let mut bad = FnBuilder::new("bad_caller", 0, 0, true);
        bad.op(Op::PushI(1)).op(Op::Call(0)).op(Op::Ret);
        let mut m2 = Module::new();
        let mut callee = FnBuilder::new("two_args", 2, 2, true);
        callee
            .op(Op::Load(0))
            .op(Op::Load(1))
            .op(Op::Add)
            .op(Op::Ret);
        m2.add(callee.build());
        m2.add(bad.build());
        assert!(matches!(
            verify_module(&m2),
            Err(VerifyError::Underflow { .. })
        ));
    }
}
