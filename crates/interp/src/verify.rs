//! The typed IL verifier.
//!
//! The CLI requires loaded code to be verifiable before it may run in a
//! trusted context. This verifier performs a typed abstract
//! interpretation over the evaluation stack and locals (the classic
//! CIL/JVM dataflow discipline) and enforces, at module load time,
//! everything the interpreter would otherwise have to check (or trap on)
//! dynamically:
//!
//! * structural properties — branch targets inside the function, local
//!   indices in range, call targets present, consistent stack depth;
//! * **type safety** — every operand has the abstract type its opcode
//!   needs ([`StackTy`]: `Int`, `Float`, `Null`, `Ref(class)`,
//!   `Arr(elem)`, `ObjArr(class)`, `Req`), field and element accesses
//!   are checked against the runtime type registry, and control-flow
//!   merges must join to a single type;
//! * **request type-state** — message-passing requests produced by
//!   `MpIsend`/`MpIrecv` are *linear*: they may not be duplicated or
//!   discarded, and must be consumed on every control-flow path before
//!   the function exits — by `MpWait`, by being passed to a callee whose
//!   parameter is declared [`TyDesc::Req`], or by being returned from a
//!   function whose return is declared [`TyDesc::Req`]. The per-function
//!   rule composes: every caller of a `Req`-returning function inherits
//!   the obligation, and the whole-program `motor-analyze` lint closes
//!   the loop at module entry points. This is the static guarantee
//!   backing the GC's lazy-unpin contract (paper §4.3): no pinned
//!   transport buffer can leak past its window.
//!
//! Verification produces a [`VerifiedModule`] carrying per-instruction
//! side tables ([`FuncMeta`]): the statically resolved field/element kind
//! for every typed access (letting the interpreter skip its registry
//! lookups and dynamic kind checks on the hot path) and the buffer type
//! at every [`Op::FCall`] site (consumed by the `motor-analyze`
//! transport-safety pass).

use std::collections::HashMap;

use motor_runtime::{ClassId, ElemKind, FieldType, TypeKind, TypeRegistry};

use crate::il::{FCallId, Function, Module, Op, TyDesc};

/// Abstract type of one evaluation-stack slot (or local) as tracked by
/// the verifier's dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackTy {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// The null reference (bottom of the reference lattice: joins with
    /// any reference-shaped type).
    Null,
    /// Reference to an instance of exactly this class (nullable).
    Ref(ClassId),
    /// One-dimensional primitive array (nullable).
    Arr(ElemKind),
    /// One-dimensional object array (nullable).
    ObjArr(ClassId),
    /// An in-flight message-passing request created at instruction
    /// `origin`. Linear: never duplicated, never dropped, consumed by
    /// `MpWait`, by a `Req`-typed call argument, or by a `Req`-typed
    /// return.
    Req {
        /// Instruction index of the `MpIsend`/`MpIrecv` that created it,
        /// or [`REQ_PARAM_ORIGIN_BASE`]` + i` for a request received as
        /// parameter `i`.
        origin: u32,
    },
}

/// Origins at or above this base denote a request received as a function
/// parameter (`origin - REQ_PARAM_ORIGIN_BASE` = the parameter index)
/// rather than one created by an `MpIsend`/`MpIrecv` in this body.
pub const REQ_PARAM_ORIGIN_BASE: u32 = 0xFFFF_0000;

impl std::fmt::Display for StackTy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StackTy::Int => write!(f, "int"),
            StackTy::Float => write!(f, "float"),
            StackTy::Null => write!(f, "null"),
            StackTy::Ref(c) => write!(f, "ref(class {})", c.0),
            StackTy::Arr(k) => write!(f, "{k:?}[]"),
            StackTy::ObjArr(c) => write!(f, "ref(class {})[]", c.0),
            StackTy::Req { origin } if *origin >= REQ_PARAM_ORIGIN_BASE => {
                write!(f, "request(param {})", origin - REQ_PARAM_ORIGIN_BASE)
            }
            StackTy::Req { origin } => write!(f, "request(from pc {origin})"),
        }
    }
}

/// Abstract type of a local variable slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LocalTy {
    /// Holds a value of the given type.
    Val(StackTy),
    /// Held a request that was loaded (moved) onto the stack.
    Moved,
    /// Paths merged with incompatible (non-request) types; unusable until
    /// overwritten.
    Conflict,
}

/// Verification failures. `Display` renders `func@pc: message` so every
/// diagnostic points at the offending instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A branch leaves the function body.
    BranchOutOfRange { func: String, at: usize },
    /// A local index exceeds the declared local count.
    BadLocal { func: String, at: usize, local: u16 },
    /// A call names a missing function.
    BadCallTarget {
        func: String,
        at: usize,
        target: u16,
    },
    /// An instruction would pop from an empty stack.
    Underflow { func: String, at: usize },
    /// Two paths reach the same instruction with different stack depths.
    DepthMismatch {
        func: String,
        at: usize,
        a: usize,
        b: usize,
    },
    /// A value-returning function can fall off the end.
    MissingReturn { func: String },
    /// An operand (or field/element access) has the wrong type.
    TypeError {
        func: String,
        at: usize,
        what: String,
    },
    /// Two paths merge with incompatible stack slot types.
    MergeConflict {
        func: String,
        at: usize,
        what: String,
    },
    /// A message-passing request escapes without reaching `MpWait`.
    RequestLeak {
        func: String,
        at: usize,
        origin: usize,
    },
    /// The declared signature is malformed (arity/type mismatch or a
    /// declaration naming an unknown class).
    BadSignature { func: String, what: String },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::BranchOutOfRange { func, at } => {
                write!(f, "{func}@{at}: branch out of range")
            }
            VerifyError::BadLocal { func, at, local } => {
                write!(f, "{func}@{at}: local {local} out of range")
            }
            VerifyError::BadCallTarget { func, at, target } => {
                write!(f, "{func}@{at}: unknown function {target}")
            }
            VerifyError::Underflow { func, at } => write!(f, "{func}@{at}: stack underflow"),
            VerifyError::DepthMismatch { func, at, a, b } => {
                write!(f, "{func}@{at}: stack depth mismatch ({a} vs {b})")
            }
            VerifyError::MissingReturn { func } => {
                write!(f, "{func}: value-returning function may fall off the end")
            }
            VerifyError::TypeError { func, at, what } => write!(f, "{func}@{at}: {what}"),
            VerifyError::MergeConflict { func, at, what } => {
                write!(f, "{func}@{at}: merge conflict: {what}")
            }
            VerifyError::RequestLeak { func, at, origin } => {
                if *origin >= REQ_PARAM_ORIGIN_BASE as usize {
                    write!(
                        f,
                        "{func}@{at}: request received as parameter {} is never consumed on this path",
                        origin - REQ_PARAM_ORIGIN_BASE as usize
                    )
                } else {
                    write!(
                        f,
                        "{func}@{at}: request created at pc {origin} is never waited on this path"
                    )
                }
            }
            VerifyError::BadSignature { func, what } => write!(f, "{func}: bad signature: {what}"),
        }
    }
}

/// An [`Op::FCall`] site discovered by verification, with the statically
/// inferred buffer type (None for buffer-less intrinsics like `MpWait`,
/// `MpBarrier` and `Orecv`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FcallSite {
    /// Instruction index of the `FCall`.
    pub at: usize,
    /// Which intrinsic.
    pub id: FCallId,
    /// Static type of the transported buffer argument, if any.
    pub buf: Option<StackTy>,
}

/// Per-function verification side tables.
#[derive(Debug, Clone, Default)]
pub struct FuncMeta {
    /// For each instruction: the statically resolved primitive kind of the
    /// field or array element it accesses (`LdFldI`/`StFldI`/`LdFldF`/
    /// `StFldF`/`LdElemI`/`StElemI`), or `None` where resolution was not
    /// possible (e.g. a definitely-null receiver, which traps before any
    /// kind is consulted). The interpreter reads this instead of taking
    /// the registry lock and re-validating the kind.
    pub kinds: Vec<Option<ElemKind>>,
    /// Every `FCall` site with its inferred buffer type, in pc order.
    pub fcalls: Vec<FcallSite>,
}

/// A module that passed typed verification, plus the proof artifacts the
/// interpreter and the transport analysis consume.
#[derive(Debug, Clone)]
pub struct VerifiedModule {
    module: Module,
    meta: Vec<FuncMeta>,
    transport_proof: bool,
    never_transported: Vec<ClassId>,
}

impl VerifiedModule {
    /// Verify `module` against the class registry, producing the verified
    /// wrapper with its side tables.
    pub fn verify(module: Module, reg: &TypeRegistry) -> Result<VerifiedModule, VerifyError> {
        let meta = verify_with_meta(&module, reg)?;
        Ok(VerifiedModule {
            module,
            meta,
            transport_proof: false,
            never_transported: Vec::new(),
        })
    }

    /// The verified code.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Per-function side tables, parallel to `module().functions`.
    pub fn meta(&self) -> &[FuncMeta] {
        &self.meta
    }

    /// Whether the `motor-analyze` transport-safety pass vouched for every
    /// `FCall` buffer in this module. When set, the interpreter tells the
    /// message-passing host to elide its per-send transportability walk.
    pub fn has_transport_proof(&self) -> bool {
        self.transport_proof
    }

    /// Record that the transport-safety pass accepted this module. Called
    /// by `motor-analyze::load` after its checks; granting it without
    /// running the pass forfeits the paper's object-model-integrity
    /// guarantee for raw transports.
    pub fn grant_transport_proof(&mut self) {
        self.transport_proof = true;
    }

    /// Classes the `motor-analyze` escape pass proved can never flow to a
    /// transport `FCall` in this module (empty when the pass has not
    /// run). Instances of these classes can never be pinned by the
    /// message-passing layer, so the GC may skip its per-object
    /// pinned-set check for them ([`Interp::new`] installs the bits into
    /// the VM).
    ///
    /// [`Interp::new`]: crate::interp::Interp::new
    pub fn never_transported(&self) -> &[ClassId] {
        &self.never_transported
    }

    /// Record the escape-proof result. Called by `motor-analyze::load`;
    /// the bits assert that *no* instance of these classes is ever used
    /// as a transport buffer (and hence never pinned), so setting them
    /// without running the pass forfeits GC soundness for pinned buffers.
    pub fn set_never_transported(&mut self, classes: Vec<ClassId>) {
        self.never_transported = classes;
    }

    /// Unwrap the module (dropping the proofs).
    pub fn into_module(self) -> Module {
        self.module
    }
}

/// Verify every function in a module (discarding the side tables).
pub fn verify_module(module: &Module, reg: &TypeRegistry) -> Result<(), VerifyError> {
    verify_with_meta(module, reg).map(|_| ())
}

fn verify_with_meta(module: &Module, reg: &TypeRegistry) -> Result<Vec<FuncMeta>, VerifyError> {
    module
        .functions
        .iter()
        .map(|f| verify_function(f, module, reg))
        .collect()
}

/// One dataflow state: the evaluation stack and every local's type.
#[derive(Debug, Clone, PartialEq, Eq)]
struct State {
    stack: Vec<StackTy>,
    locals: Vec<LocalTy>,
}

fn class_ok(reg: &TypeRegistry, c: ClassId) -> bool {
    (c.0 as usize) < reg.len() && matches!(reg.table(c).kind, TypeKind::Class)
}

/// Whether `ty` satisfies the declared type `d` (Null satisfies any
/// reference-shaped declaration).
fn matches_decl(ty: StackTy, d: TyDesc) -> bool {
    match (ty, d) {
        (StackTy::Int, TyDesc::I64) | (StackTy::Float, TyDesc::F64) => true,
        (StackTy::Null, TyDesc::Ref(_) | TyDesc::Arr(_) | TyDesc::ObjArr(_)) => true,
        (StackTy::Ref(a), TyDesc::Ref(b)) => a == b,
        (StackTy::Arr(a), TyDesc::Arr(b)) => a == b,
        (StackTy::ObjArr(a), TyDesc::ObjArr(b)) => a == b,
        // A live request satisfies (and is consumed by) a Req declaration;
        // Null never does — requests are not nullable.
        (StackTy::Req { .. }, TyDesc::Req) => true,
        _ => false,
    }
}

/// `origin` is used only for `Req` declarations: the parameter encoding
/// ([`REQ_PARAM_ORIGIN_BASE`]` + i`) when seeding argument locals, the
/// call-site pc when typing a `Req`-returning `Op::Call`.
fn decl_to_ty(d: TyDesc, origin: u32) -> StackTy {
    match d {
        TyDesc::I64 => StackTy::Int,
        TyDesc::F64 => StackTy::Float,
        TyDesc::Ref(c) => StackTy::Ref(c),
        TyDesc::Arr(k) => StackTy::Arr(k),
        TyDesc::ObjArr(c) => StackTy::ObjArr(c),
        TyDesc::Req => StackTy::Req { origin },
    }
}

/// Join two stack slot types; `None` means incompatible.
fn join_stack(a: StackTy, b: StackTy) -> Option<StackTy> {
    use StackTy::*;
    match (a, b) {
        _ if a == b => Some(a),
        (Req { origin: x }, Req { origin: y }) => Some(Req { origin: x.min(y) }),
        (Null, t @ (Ref(_) | Arr(_) | ObjArr(_))) | (t @ (Ref(_) | Arr(_) | ObjArr(_)), Null) => {
            Some(t)
        }
        _ => None,
    }
}

/// Whether a stack/local type carries a live request.
fn is_req(t: StackTy) -> bool {
    matches!(t, StackTy::Req { .. })
}

struct Verifier<'a> {
    f: &'a Function,
    module: &'a Module,
    reg: &'a TypeRegistry,
    kinds: Vec<Option<ElemKind>>,
    fcalls: HashMap<usize, FcallSite>,
}

impl Verifier<'_> {
    fn name(&self) -> String {
        self.f.name.clone()
    }

    fn type_err(&self, at: usize, what: impl Into<String>) -> VerifyError {
        VerifyError::TypeError {
            func: self.name(),
            at,
            what: what.into(),
        }
    }

    fn pop(&self, at: usize, st: &mut State) -> Result<StackTy, VerifyError> {
        st.stack.pop().ok_or(VerifyError::Underflow {
            func: self.name(),
            at,
        })
    }

    fn pop_int(&self, at: usize, st: &mut State, what: &str) -> Result<(), VerifyError> {
        match self.pop(at, st)? {
            StackTy::Int => Ok(()),
            other => Err(self.type_err(at, format!("{what}: expected int, found {other}"))),
        }
    }

    fn pop_float(&self, at: usize, st: &mut State, what: &str) -> Result<(), VerifyError> {
        match self.pop(at, st)? {
            StackTy::Float => Ok(()),
            other => Err(self.type_err(at, format!("{what}: expected float, found {other}"))),
        }
    }

    /// Pop a class-instance receiver: `Ref(c)` (returning the class) or
    /// `Null` (returning `None`; the interpreter traps NullReference
    /// before any type information is consulted).
    fn pop_obj(
        &self,
        at: usize,
        st: &mut State,
        what: &str,
    ) -> Result<Option<ClassId>, VerifyError> {
        match self.pop(at, st)? {
            StackTy::Ref(c) => Ok(Some(c)),
            StackTy::Null => Ok(None),
            other => Err(self.type_err(
                at,
                format!("{what}: expected object reference, found {other}"),
            )),
        }
    }

    /// Look up field `fi` of class `c`; `Ok(None)` when the receiver is
    /// statically null.
    fn field_ty(
        &self,
        at: usize,
        c: Option<ClassId>,
        fi: u16,
        op: &str,
    ) -> Result<Option<FieldType>, VerifyError> {
        let Some(c) = c else { return Ok(None) };
        let mt = self.reg.table(c);
        let Some(fd) = mt.fields.get(fi as usize) else {
            return Err(self.type_err(at, format!("{op}: class `{}` has no field {fi}", mt.name)));
        };
        Ok(Some(fd.ty))
    }

    /// Record a statically resolved access kind for the interpreter's
    /// fast path.
    fn resolve_kind(&mut self, at: usize, k: ElemKind) {
        self.kinds[at] = Some(k);
    }

    /// Pop the transported-buffer operand of an `FCall`: any
    /// reference-shaped value. Transport *legality* (ref-free closure for
    /// raw `Mp`) is the `motor-analyze` pass's job; the buffer type is
    /// recorded for it in the side table.
    fn pop_buf(&self, at: usize, st: &mut State, what: &str) -> Result<StackTy, VerifyError> {
        match self.pop(at, st)? {
            t @ (StackTy::Ref(_) | StackTy::Arr(_) | StackTy::ObjArr(_) | StackTy::Null) => Ok(t),
            other => Err(self.type_err(
                at,
                format!("{what}: expected a transportable object, found {other}"),
            )),
        }
    }

    /// Fail if the state carries a live request (function exit paths).
    fn check_no_requests(&self, at: usize, st: &State) -> Result<(), VerifyError> {
        let leaked = st
            .stack
            .iter()
            .copied()
            .chain(st.locals.iter().filter_map(|l| match l {
                LocalTy::Val(t) => Some(*t),
                _ => None,
            }))
            .find_map(|t| match t {
                StackTy::Req { origin } => Some(origin),
                _ => None,
            });
        match leaked {
            Some(origin) => Err(VerifyError::RequestLeak {
                func: self.name(),
                at,
                origin: origin as usize,
            }),
            None => Ok(()),
        }
    }

    /// Join `incoming` into the recorded state at `pc`. Returns whether
    /// the state changed (and the target must be re-analyzed).
    fn join_into(
        &self,
        pc: usize,
        states: &mut HashMap<usize, State>,
        incoming: State,
    ) -> Result<bool, VerifyError> {
        let Some(existing) = states.get_mut(&pc) else {
            states.insert(pc, incoming);
            return Ok(true);
        };
        if existing.stack.len() != incoming.stack.len() {
            return Err(VerifyError::DepthMismatch {
                func: self.name(),
                at: pc,
                a: existing.stack.len(),
                b: incoming.stack.len(),
            });
        }
        let mut changed = false;
        for (i, b) in incoming.stack.iter().copied().enumerate() {
            let a = existing.stack[i];
            let j = join_stack(a, b).ok_or_else(|| VerifyError::MergeConflict {
                func: self.name(),
                at: pc,
                what: format!("stack slot {i}: {a} vs {b}"),
            })?;
            if j != a {
                existing.stack[i] = j;
                changed = true;
            }
        }
        for (i, b) in incoming.locals.iter().copied().enumerate() {
            let a = existing.locals[i];
            let j = self.join_local(pc, i, a, b)?;
            if j != a {
                existing.locals[i] = j;
                changed = true;
            }
        }
        Ok(changed)
    }

    fn join_local(
        &self,
        pc: usize,
        slot: usize,
        a: LocalTy,
        b: LocalTy,
    ) -> Result<LocalTy, VerifyError> {
        use LocalTy::*;
        // Request divergence between paths is always an error: one path
        // holds (or consumed) a request where the other does not, so some
        // path either leaks or double-waits it.
        let req_err = |origin: u32| {
            Err(VerifyError::RequestLeak {
                func: self.name(),
                at: pc,
                origin: origin as usize,
            })
        };
        match (a, b) {
            _ if a == b => Ok(a),
            (Val(StackTy::Req { origin }), other) | (other, Val(StackTy::Req { origin }))
                if other != Val(StackTy::Req { origin }) =>
            {
                match other {
                    Val(StackTy::Req { origin: o2 }) => Ok(Val(StackTy::Req {
                        origin: origin.min(o2),
                    })),
                    _ => req_err(origin),
                }
            }
            (Val(x), Val(y)) => Ok(match join_stack(x, y) {
                Some(j) => Val(j),
                None => Conflict,
            }),
            (Moved, Val(t)) | (Val(t), Moved) => {
                debug_assert!(!is_req(t), "handled above");
                let _ = slot;
                Ok(Conflict)
            }
            (Conflict, _) | (_, Conflict) | (Moved, Moved) => Ok(Conflict),
        }
    }

    /// Execute one instruction over the abstract state; returns the
    /// successor pcs to propagate to (`None` target = function exit).
    fn step(&mut self, pc: usize, st: &mut State) -> Result<smallvec::Succ, VerifyError> {
        use StackTy::*;
        let op = self.f.code[pc];
        let next = smallvec::Succ::one(pc + 1);
        match op {
            Op::PushI(_) => st.stack.push(Int),
            Op::PushF(_) => st.stack.push(Float),
            Op::PushNull => st.stack.push(Null),
            Op::Dup => {
                let &t = st.stack.last().ok_or(VerifyError::Underflow {
                    func: self.name(),
                    at: pc,
                })?;
                if is_req(t) {
                    return Err(self.type_err(pc, "Dup: requests are linear (cannot duplicate)"));
                }
                st.stack.push(t);
            }
            Op::Pop => {
                let t = self.pop(pc, st)?;
                if let Req { origin } = t {
                    return Err(VerifyError::RequestLeak {
                        func: self.name(),
                        at: pc,
                        origin: origin as usize,
                    });
                }
            }
            Op::Load(i) => {
                let slot = &mut st.locals[i as usize];
                match *slot {
                    LocalTy::Val(t) => {
                        if is_req(t) {
                            // Loading a request *moves* it out of the
                            // local, preserving linearity.
                            *slot = LocalTy::Moved;
                        }
                        st.stack.push(t);
                    }
                    LocalTy::Moved => {
                        return Err(self.type_err(
                            pc,
                            format!("Load: local {i} holds a request already moved to the stack"),
                        ))
                    }
                    LocalTy::Conflict => {
                        return Err(self.type_err(
                            pc,
                            format!("Load: local {i} has incompatible types on merged paths"),
                        ))
                    }
                }
            }
            Op::Store(i) => {
                let v = self.pop(pc, st)?;
                if let LocalTy::Val(Req { origin }) = st.locals[i as usize] {
                    return Err(VerifyError::RequestLeak {
                        func: self.name(),
                        at: pc,
                        origin: origin as usize,
                    });
                }
                st.locals[i as usize] = LocalTy::Val(v);
            }
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Rem => {
                self.pop_int(pc, st, "integer arithmetic")?;
                self.pop_int(pc, st, "integer arithmetic")?;
                st.stack.push(Int);
            }
            Op::Neg => {
                self.pop_int(pc, st, "Neg")?;
                st.stack.push(Int);
            }
            Op::FAdd | Op::FSub | Op::FMul | Op::FDiv => {
                self.pop_float(pc, st, "float arithmetic")?;
                self.pop_float(pc, st, "float arithmetic")?;
                st.stack.push(Float);
            }
            Op::I2F => {
                self.pop_int(pc, st, "I2F")?;
                st.stack.push(Float);
            }
            Op::F2I => {
                self.pop_float(pc, st, "F2I")?;
                st.stack.push(Int);
            }
            Op::CmpEq => {
                let b = self.pop(pc, st)?;
                let a = self.pop(pc, st)?;
                let ok = matches!((a, b), (Int, Int) | (Float, Float))
                    || (matches!(a, Null | Ref(_) | Arr(_) | ObjArr(_))
                        && matches!(b, Null | Ref(_) | Arr(_) | ObjArr(_)));
                if !ok {
                    return Err(self.type_err(pc, format!("CmpEq: incomparable {a} vs {b}")));
                }
                st.stack.push(Int);
            }
            Op::CmpLt | Op::CmpLe => {
                let b = self.pop(pc, st)?;
                let a = self.pop(pc, st)?;
                if !matches!((a, b), (Int, Int) | (Float, Float)) {
                    return Err(self.type_err(pc, format!("ordered compare: {a} vs {b}")));
                }
                st.stack.push(Int);
            }
            Op::Br(r) => {
                return Ok(smallvec::Succ::one((pc as i64 + 1 + r as i64) as usize));
            }
            Op::BrTrue(r) | Op::BrFalse(r) => {
                self.pop_int(pc, st, "branch condition")?;
                return Ok(smallvec::Succ::two(
                    (pc as i64 + 1 + r as i64) as usize,
                    pc + 1,
                ));
            }
            Op::Call(t) => {
                let callee = &self.module.functions[t as usize];
                for (i, &d) in callee.params.iter().enumerate().rev() {
                    let got = self.pop(pc, st)?;
                    if !matches_decl(got, d) {
                        return Err(self.type_err(
                            pc,
                            format!(
                                "Call `{}` argument {i}: expected {d:?}, found {got}",
                                callee.name
                            ),
                        ));
                    }
                }
                if let Some(r) = callee.ret {
                    // A Req return materializes a live request at this
                    // call site: the caller now owns the obligation.
                    st.stack.push(decl_to_ty(r, pc as u32));
                }
            }
            Op::Ret => {
                if self.f.returns_value {
                    let got = self.pop(pc, st)?;
                    let d = self.f.ret.expect("checked in signature pass");
                    if !matches_decl(got, d) {
                        return Err(self.type_err(pc, format!("Ret: expected {d:?}, found {got}")));
                    }
                }
                self.check_no_requests(pc, st)?;
                return Ok(smallvec::Succ::none());
            }
            Op::New(c) => {
                if !class_ok(self.reg, c) {
                    return Err(self.type_err(pc, format!("New: class {} unknown", c.0)));
                }
                st.stack.push(Ref(c));
            }
            Op::LdFldI(fi) => {
                let c = self.pop_obj(pc, st, "LdFldI")?;
                match self.field_ty(pc, c, fi, "LdFldI")? {
                    None => {}
                    Some(FieldType::Prim(k)) if !matches!(k, ElemKind::F32 | ElemKind::F64) => {
                        self.resolve_kind(pc, k)
                    }
                    Some(FieldType::Prim(_)) => {
                        return Err(self.type_err(pc, "LdFldI on a float field"))
                    }
                    Some(FieldType::Ref(_)) => {
                        return Err(self.type_err(pc, "LdFldI on a reference field"))
                    }
                }
                st.stack.push(Int);
            }
            Op::StFldI(fi) => {
                self.pop_int(pc, st, "StFldI value")?;
                let c = self.pop_obj(pc, st, "StFldI")?;
                match self.field_ty(pc, c, fi, "StFldI")? {
                    None => {}
                    Some(FieldType::Prim(k)) if !matches!(k, ElemKind::F32 | ElemKind::F64) => {
                        self.resolve_kind(pc, k)
                    }
                    Some(FieldType::Prim(_)) => {
                        return Err(self.type_err(pc, "StFldI on a float field"))
                    }
                    Some(FieldType::Ref(_)) => {
                        return Err(self.type_err(pc, "StFldI on a reference field"))
                    }
                }
            }
            Op::LdFldF(fi) => {
                let c = self.pop_obj(pc, st, "LdFldF")?;
                match self.field_ty(pc, c, fi, "LdFldF")? {
                    None => {}
                    Some(FieldType::Prim(ElemKind::F64)) => self.resolve_kind(pc, ElemKind::F64),
                    Some(other) => {
                        return Err(
                            self.type_err(pc, format!("LdFldF on a non-f64 field ({other:?})"))
                        )
                    }
                }
                st.stack.push(Float);
            }
            Op::StFldF(fi) => {
                self.pop_float(pc, st, "StFldF value")?;
                let c = self.pop_obj(pc, st, "StFldF")?;
                match self.field_ty(pc, c, fi, "StFldF")? {
                    None => {}
                    Some(FieldType::Prim(ElemKind::F64)) => self.resolve_kind(pc, ElemKind::F64),
                    Some(other) => {
                        return Err(
                            self.type_err(pc, format!("StFldF on a non-f64 field ({other:?})"))
                        )
                    }
                }
            }
            Op::LdFldR(fi) => {
                let c = self.pop_obj(pc, st, "LdFldR")?;
                match self.field_ty(pc, c, fi, "LdFldR")? {
                    // Statically-null receiver: traps before pushing; the
                    // successor state still needs a slot, call it Null.
                    None => st.stack.push(Null),
                    Some(FieldType::Ref(target)) => {
                        if !class_ok(self.reg, target) {
                            return Err(self.type_err(
                                pc,
                                format!("LdFldR: field names unknown class {}", target.0),
                            ));
                        }
                        st.stack.push(Ref(target));
                    }
                    Some(FieldType::Prim(_)) => {
                        return Err(self.type_err(pc, "LdFldR on a primitive field"))
                    }
                }
            }
            Op::StFldR(fi) => {
                let v = self.pop(pc, st)?;
                let c = self.pop_obj(pc, st, "StFldR")?;
                match self.field_ty(pc, c, fi, "StFldR")? {
                    None => {}
                    Some(FieldType::Ref(target)) if !matches!(v, Null) && v != Ref(target) => {
                        return Err(self.type_err(
                            pc,
                            format!("StFldR: field expects ref(class {}), found {v}", target.0),
                        ));
                    }
                    Some(FieldType::Ref(_)) => {}
                    Some(FieldType::Prim(_)) => {
                        return Err(self.type_err(pc, "StFldR on a primitive field"))
                    }
                }
            }
            Op::NewArr(k) => {
                self.pop_int(pc, st, "NewArr length")?;
                st.stack.push(Arr(k));
            }
            Op::NewObjArr(c) => {
                if !class_ok(self.reg, c) {
                    return Err(self.type_err(pc, format!("NewObjArr: class {} unknown", c.0)));
                }
                self.pop_int(pc, st, "NewObjArr length")?;
                st.stack.push(ObjArr(c));
            }
            Op::LdElemI => {
                self.pop_int(pc, st, "LdElemI index")?;
                match self.pop(pc, st)? {
                    Arr(k) if !matches!(k, ElemKind::F32 | ElemKind::F64) => {
                        self.resolve_kind(pc, k)
                    }
                    Arr(k) => {
                        return Err(
                            self.type_err(pc, format!("LdElemI on a {k:?} array (use LdElemF)"))
                        )
                    }
                    Null => {}
                    other => {
                        return Err(self.type_err(
                            pc,
                            format!("LdElemI: expected primitive array, found {other}"),
                        ))
                    }
                }
                st.stack.push(Int);
            }
            Op::StElemI => {
                self.pop_int(pc, st, "StElemI value")?;
                self.pop_int(pc, st, "StElemI index")?;
                match self.pop(pc, st)? {
                    Arr(k) if !matches!(k, ElemKind::F32 | ElemKind::F64) => {
                        self.resolve_kind(pc, k)
                    }
                    Arr(k) => {
                        return Err(
                            self.type_err(pc, format!("StElemI into a {k:?} array (use StElemF)"))
                        )
                    }
                    Null => {}
                    other => {
                        return Err(self.type_err(
                            pc,
                            format!("StElemI: expected primitive array, found {other}"),
                        ))
                    }
                }
            }
            Op::LdElemF => {
                self.pop_int(pc, st, "LdElemF index")?;
                match self.pop(pc, st)? {
                    Arr(ElemKind::F64) => self.resolve_kind(pc, ElemKind::F64),
                    Null => {}
                    other => {
                        return Err(self
                            .type_err(pc, format!("LdElemF: expected f64 array, found {other}")))
                    }
                }
                st.stack.push(Float);
            }
            Op::StElemF => {
                self.pop_float(pc, st, "StElemF value")?;
                self.pop_int(pc, st, "StElemF index")?;
                match self.pop(pc, st)? {
                    Arr(ElemKind::F64) => self.resolve_kind(pc, ElemKind::F64),
                    Null => {}
                    other => {
                        return Err(self
                            .type_err(pc, format!("StElemF: expected f64 array, found {other}")))
                    }
                }
            }
            Op::LdElemR => {
                self.pop_int(pc, st, "LdElemR index")?;
                match self.pop(pc, st)? {
                    ObjArr(c) => st.stack.push(Ref(c)),
                    Null => st.stack.push(Null),
                    other => {
                        return Err(self.type_err(
                            pc,
                            format!("LdElemR: expected object array, found {other}"),
                        ))
                    }
                }
            }
            Op::StElemR => {
                let v = self.pop(pc, st)?;
                self.pop_int(pc, st, "StElemR index")?;
                match self.pop(pc, st)? {
                    ObjArr(c) => {
                        if !matches!(v, Null) && v != Ref(c) {
                            return Err(self.type_err(
                                pc,
                                format!("StElemR: array expects ref(class {}), found {v}", c.0),
                            ));
                        }
                    }
                    Null => {
                        if !matches!(v, Null | Ref(_)) {
                            return Err(self.type_err(
                                pc,
                                format!("StElemR: value must be a reference, found {v}"),
                            ));
                        }
                    }
                    other => {
                        return Err(self.type_err(
                            pc,
                            format!("StElemR: expected object array, found {other}"),
                        ))
                    }
                }
            }
            Op::ArrLen => {
                match self.pop(pc, st)? {
                    Arr(_) | ObjArr(_) | Null => {}
                    other => {
                        return Err(
                            self.type_err(pc, format!("ArrLen: expected array, found {other}"))
                        )
                    }
                }
                st.stack.push(Int);
            }
            Op::FCall(id) => {
                let mut buf = None;
                match id {
                    FCallId::MpSend | FCallId::MpRecv | FCallId::MpIsend | FCallId::MpIrecv => {
                        self.pop_int(pc, st, "FCall tag")?;
                        self.pop_int(pc, st, "FCall peer")?;
                        buf = Some(self.pop_buf(pc, st, "FCall buffer")?);
                        if matches!(id, FCallId::MpIsend | FCallId::MpIrecv) {
                            st.stack.push(Req { origin: pc as u32 });
                        }
                    }
                    FCallId::MpWait => match self.pop(pc, st)? {
                        Req { .. } => {}
                        other => {
                            return Err(self.type_err(
                                pc,
                                format!("MpWait: expected a request, found {other}"),
                            ))
                        }
                    },
                    FCallId::MpBarrier => {}
                    FCallId::MpBcast => {
                        self.pop_int(pc, st, "MpBcast root")?;
                        buf = Some(self.pop_buf(pc, st, "MpBcast buffer")?);
                    }
                    FCallId::Osend => {
                        self.pop_int(pc, st, "Osend tag")?;
                        self.pop_int(pc, st, "Osend dest")?;
                        buf = Some(self.pop_buf(pc, st, "Osend object")?);
                    }
                    FCallId::Orecv(c) => {
                        self.pop_int(pc, st, "Orecv tag")?;
                        self.pop_int(pc, st, "Orecv source")?;
                        if (c.0 as usize) >= self.reg.len() {
                            return Err(self.type_err(pc, format!("Orecv: class {} unknown", c.0)));
                        }
                        st.stack.push(match self.reg.table(c).kind {
                            TypeKind::Class => Ref(c),
                            TypeKind::PrimArray(k) => Arr(k),
                            TypeKind::ObjArray(e) => ObjArr(e),
                            TypeKind::MdArray { .. } => {
                                return Err(self.type_err(
                                    pc,
                                    "Orecv of multidimensional arrays is not expressible in IL",
                                ))
                            }
                        });
                    }
                }
                self.fcalls.insert(pc, FcallSite { at: pc, id, buf });
            }
        }
        Ok(next)
    }
}

/// Tiny fixed successor set (0, 1 or 2 targets) to avoid allocating per
/// instruction.
mod smallvec {
    pub struct Succ {
        targets: [usize; 2],
        len: u8,
    }

    impl Succ {
        pub fn none() -> Succ {
            Succ {
                targets: [0; 2],
                len: 0,
            }
        }
        pub fn one(a: usize) -> Succ {
            Succ {
                targets: [a, 0],
                len: 1,
            }
        }
        pub fn two(a: usize, b: usize) -> Succ {
            Succ {
                targets: [a, b],
                len: 2,
            }
        }
        pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
            self.targets[..self.len as usize].iter().copied()
        }
    }
}

fn check_signature(f: &Function, reg: &TypeRegistry) -> Result<(), VerifyError> {
    let bad = |what: String| VerifyError::BadSignature {
        func: f.name.clone(),
        what,
    };
    if f.params.len() != f.argc as usize {
        return Err(bad(format!(
            "{} declared parameter types for {} arguments",
            f.params.len(),
            f.argc
        )));
    }
    if f.ret.is_some() != f.returns_value {
        return Err(bad("return declaration disagrees with returns_value".into()));
    }
    if f.locals < f.argc {
        return Err(bad("locals must include arguments".into()));
    }
    for d in f.params.iter().chain(f.ret.iter()) {
        match *d {
            TyDesc::Ref(c) | TyDesc::ObjArr(c) => {
                if !class_ok(reg, c) {
                    return Err(bad(format!("declaration names unknown class {}", c.0)));
                }
            }
            TyDesc::I64 | TyDesc::F64 | TyDesc::Arr(_) | TyDesc::Req => {}
        }
    }
    Ok(())
}

fn verify_function(
    f: &Function,
    module: &Module,
    reg: &TypeRegistry,
) -> Result<FuncMeta, VerifyError> {
    check_signature(f, reg)?;
    let n = f.code.len();
    let name = || f.name.clone();
    // First pass: structural checks + branch targets.
    for (at, op) in f.code.iter().enumerate() {
        match op {
            Op::Br(r) | Op::BrTrue(r) | Op::BrFalse(r) => {
                let t = at as i64 + 1 + *r as i64;
                if t < 0 || t > n as i64 {
                    return Err(VerifyError::BranchOutOfRange { func: name(), at });
                }
            }
            Op::Load(l) | Op::Store(l) if *l >= f.locals => {
                return Err(VerifyError::BadLocal {
                    func: name(),
                    at,
                    local: *l,
                });
            }
            Op::Call(t) if *t as usize >= module.functions.len() => {
                return Err(VerifyError::BadCallTarget {
                    func: name(),
                    at,
                    target: *t,
                });
            }
            _ => {}
        }
    }
    // Second pass: typed abstract interpretation (worklist to a fixpoint;
    // the lattice is flat apart from Null-joins and local Conflicts, so
    // every slot changes at most twice).
    let mut v = Verifier {
        f,
        module,
        reg,
        kinds: vec![None; n],
        fcalls: HashMap::new(),
    };
    let mut locals: Vec<LocalTy> = f
        .params
        .iter()
        .enumerate()
        .map(|(i, &d)| LocalTy::Val(decl_to_ty(d, REQ_PARAM_ORIGIN_BASE + i as u32)))
        .collect();
    // Non-argument locals are zero-initialized integers in the
    // interpreter.
    locals.resize(f.locals as usize, LocalTy::Val(StackTy::Int));
    let entry = State {
        stack: Vec::new(),
        locals,
    };
    let mut states: HashMap<usize, State> = HashMap::new();
    let mut work: Vec<usize> = Vec::new();
    let mut can_fall_off = false;
    if n == 0 {
        can_fall_off = true;
    } else {
        states.insert(0, entry);
        work.push(0);
    }
    while let Some(pc) = work.pop() {
        let mut st = states.get(&pc).expect("state exists for queued pc").clone();
        let succ = v.step(pc, &mut st)?;
        for t in succ.iter() {
            if t >= n {
                can_fall_off = true;
                if f.returns_value {
                    return Err(VerifyError::MissingReturn { func: name() });
                }
                v.check_no_requests(pc, &st)?;
                continue;
            }
            if v.join_into(t, &mut states, st.clone())? {
                work.push(t);
            }
        }
    }
    if can_fall_off && f.returns_value {
        return Err(VerifyError::MissingReturn { func: name() });
    }
    let mut fcalls: Vec<FcallSite> = v.fcalls.into_values().collect();
    fcalls.sort_by_key(|s| s.at);
    Ok(FuncMeta {
        kinds: v.kinds,
        fcalls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::il::FnBuilder;

    fn module_of(f: Function) -> Module {
        let mut m = Module::new();
        m.add(f);
        m
    }

    fn empty_reg() -> TypeRegistry {
        TypeRegistry::new()
    }

    #[test]
    fn valid_function_passes() {
        let mut f = FnBuilder::new("ok", 1, 2, true);
        let done = f.label();
        f.op(Op::Load(0)).br_false(done);
        f.op(Op::PushI(1)).op(Op::Ret);
        f.bind(done);
        f.op(Op::PushI(0)).op(Op::Ret);
        assert_eq!(verify_module(&module_of(f.build()), &empty_reg()), Ok(()));
    }

    #[test]
    fn branch_out_of_range_rejected() {
        let f = Function {
            name: "bad".into(),
            argc: 0,
            locals: 0,
            returns_value: false,
            params: vec![],
            ret: None,
            code: vec![Op::Br(100)],
        };
        assert!(matches!(
            verify_module(&module_of(f), &empty_reg()),
            Err(VerifyError::BranchOutOfRange { .. })
        ));
    }

    #[test]
    fn bad_local_rejected() {
        let f = Function {
            name: "bad".into(),
            argc: 0,
            locals: 1,
            returns_value: false,
            params: vec![],
            ret: None,
            code: vec![Op::Load(3), Op::Pop],
        };
        assert!(matches!(
            verify_module(&module_of(f), &empty_reg()),
            Err(VerifyError::BadLocal { .. })
        ));
    }

    #[test]
    fn underflow_rejected() {
        let f = Function {
            name: "bad".into(),
            argc: 0,
            locals: 0,
            returns_value: false,
            params: vec![],
            ret: None,
            code: vec![Op::Add],
        };
        assert!(matches!(
            verify_module(&module_of(f), &empty_reg()),
            Err(VerifyError::Underflow { .. })
        ));
    }

    #[test]
    fn depth_mismatch_at_merge_rejected() {
        // One path pushes an extra value before the merge.
        let f = Function {
            name: "bad".into(),
            argc: 1,
            locals: 1,
            returns_value: false,
            params: vec![TyDesc::I64],
            ret: None,
            code: vec![
                Op::Load(0),
                Op::BrTrue(1), // skip the extra push
                Op::PushI(9),  // only on the fall-through path
                Op::Pop,       // merge point: depth 1 vs 0
            ],
        };
        let r = verify_module(&module_of(f), &empty_reg());
        assert!(
            matches!(
                r,
                Err(VerifyError::DepthMismatch { .. }) | Err(VerifyError::Underflow { .. })
            ),
            "got {r:?}"
        );
    }

    #[test]
    fn missing_return_rejected() {
        let f = Function {
            name: "bad".into(),
            argc: 0,
            locals: 0,
            returns_value: true,
            params: vec![],
            ret: Some(TyDesc::I64),
            code: vec![Op::PushI(1), Op::Pop],
        };
        assert!(matches!(
            verify_module(&module_of(f), &empty_reg()),
            Err(VerifyError::MissingReturn { .. })
        ));
    }

    #[test]
    fn call_effects_respect_arity() {
        let mut m = Module::new();
        let mut callee = FnBuilder::new("two_args", 2, 2, true);
        callee
            .op(Op::Load(0))
            .op(Op::Load(1))
            .op(Op::Add)
            .op(Op::Ret);
        m.add(callee.build());
        let mut caller = FnBuilder::new("caller", 0, 0, true);
        caller
            .op(Op::PushI(1))
            .op(Op::PushI(2))
            .op(Op::Call(0))
            .op(Op::Ret);
        m.add(caller.build());
        assert_eq!(verify_module(&m, &empty_reg()), Ok(()));
        // A caller providing one argument underflows.
        let mut bad = FnBuilder::new("bad_caller", 0, 0, true);
        bad.op(Op::PushI(1)).op(Op::Call(0)).op(Op::Ret);
        let mut m2 = Module::new();
        let mut callee = FnBuilder::new("two_args", 2, 2, true);
        callee
            .op(Op::Load(0))
            .op(Op::Load(1))
            .op(Op::Add)
            .op(Op::Ret);
        m2.add(callee.build());
        m2.add(bad.build());
        assert!(matches!(
            verify_module(&m2, &empty_reg()),
            Err(VerifyError::Underflow { .. })
        ));
    }

    #[test]
    fn float_int_confusion_rejected() {
        // PushF then integer Add.
        let mut f = FnBuilder::new("bad", 0, 0, true);
        f.op(Op::PushF(1.0))
            .op(Op::PushI(2))
            .op(Op::Add)
            .op(Op::Ret);
        assert!(matches!(
            verify_module(&module_of(f.build()), &empty_reg()),
            Err(VerifyError::TypeError { .. })
        ));
    }

    #[test]
    fn typed_field_access_resolves_kinds() {
        let mut reg = TypeRegistry::new();
        let cls = reg
            .define_class("Pt")
            .prim("x", ElemKind::I32)
            .prim("y", ElemKind::F64)
            .build();
        let mut f = FnBuilder::new("mk", 0, 1, true);
        f.op(Op::New(cls)).op(Op::Store(0));
        f.op(Op::Load(0)).op(Op::PushI(7)).op(Op::StFldI(0));
        f.op(Op::Load(0)).op(Op::PushF(2.5)).op(Op::StFldF(1));
        f.op(Op::Load(0)).op(Op::LdFldI(0)).op(Op::Ret);
        let vm = VerifiedModule::verify(module_of(f.build()), &reg).unwrap();
        let kinds = &vm.meta()[0].kinds;
        // StFldI at pc 4, StFldF at pc 7, LdFldI at pc 9.
        assert_eq!(kinds[4], Some(ElemKind::I32));
        assert_eq!(kinds[7], Some(ElemKind::F64));
        assert_eq!(kinds[9], Some(ElemKind::I32));
    }

    #[test]
    fn field_kind_confusion_rejected() {
        let mut reg = TypeRegistry::new();
        let cls = reg
            .define_class("Pt")
            .prim("x", ElemKind::I32)
            .prim("y", ElemKind::F64)
            .build();
        // LdFldI on the float field.
        let mut f = FnBuilder::new("bad", 0, 1, true);
        f.op(Op::New(cls)).op(Op::LdFldI(1)).op(Op::Ret);
        let r = verify_module(&module_of(f.build()), &reg);
        assert!(
            matches!(&r, Err(VerifyError::TypeError { what, .. }) if what.contains("float")),
            "got {r:?}"
        );
    }

    #[test]
    fn incompatible_merge_rejected() {
        let mut reg = TypeRegistry::new();
        let cls = reg.define_class("C").prim("x", ElemKind::I64).build();
        // One path leaves an int on the stack, the other a reference.
        let mut f = FnBuilder::new("bad", 1, 1, false);
        let other = f.label();
        let join = f.label();
        f.op(Op::Load(0)).br_true(other);
        f.op(Op::PushI(1)).br(join);
        f.bind(other);
        f.op(Op::New(cls));
        f.bind(join);
        f.op(Op::Pop).op(Op::Ret);
        assert!(matches!(
            verify_module(&module_of(f.build()), &reg),
            Err(VerifyError::MergeConflict { .. })
        ));
    }

    #[test]
    fn request_must_be_waited_on_every_path() {
        // irecv; if (flag) wait; ret  — the fall-through path leaks.
        let mut f = FnBuilder::new("leaky", 1, 2, false);
        let wait = f.label();
        let done = f.label();
        f.op(Op::PushNull)
            .op(Op::PushI(0))
            .op(Op::PushI(0))
            .op(Op::FCall(FCallId::MpIrecv))
            .op(Op::Store(1));
        f.op(Op::Load(0)).br_true(wait);
        f.br(done);
        f.bind(wait);
        f.op(Op::Load(1)).op(Op::FCall(FCallId::MpWait));
        f.bind(done);
        f.op(Op::Ret);
        assert!(matches!(
            verify_module(&module_of(f.build()), &empty_reg()),
            Err(VerifyError::RequestLeak { .. })
        ));
    }

    #[test]
    fn request_waited_on_all_paths_passes() {
        let mut f = FnBuilder::new("ok", 0, 1, false);
        f.op(Op::PushNull)
            .op(Op::PushI(0))
            .op(Op::PushI(0))
            .op(Op::FCall(FCallId::MpIrecv))
            .op(Op::FCall(FCallId::MpWait))
            .op(Op::Ret);
        assert_eq!(verify_module(&module_of(f.build()), &empty_reg()), Ok(()));
    }

    #[test]
    fn request_may_be_passed_to_a_req_typed_callee() {
        // finish(req) { wait(req) }  — callee owns the obligation.
        let mut m = Module::new();
        let mut finish = FnBuilder::new("finish", 1, 1, false);
        finish.params(&[TyDesc::Req]);
        finish
            .op(Op::Load(0))
            .op(Op::FCall(FCallId::MpWait))
            .op(Op::Ret);
        m.add(finish.build());
        let mut main = FnBuilder::new("main", 0, 0, false);
        main.op(Op::PushNull)
            .op(Op::PushI(0))
            .op(Op::PushI(0))
            .op(Op::FCall(FCallId::MpIsend))
            .op(Op::Call(0))
            .op(Op::Ret);
        m.add(main.build());
        assert_eq!(verify_module(&m, &empty_reg()), Ok(()));
    }

    #[test]
    fn request_may_be_returned_when_declared() {
        // start() -> Req { return isend(...) } ; main waits it.
        let mut m = Module::new();
        let mut start = FnBuilder::new("start", 0, 0, true);
        start.ret_ty(TyDesc::Req);
        start
            .op(Op::PushNull)
            .op(Op::PushI(0))
            .op(Op::PushI(0))
            .op(Op::FCall(FCallId::MpIrecv))
            .op(Op::Ret);
        m.add(start.build());
        let mut main = FnBuilder::new("main", 0, 0, false);
        main.op(Op::Call(0))
            .op(Op::FCall(FCallId::MpWait))
            .op(Op::Ret);
        m.add(main.build());
        assert_eq!(verify_module(&m, &empty_reg()), Ok(()));
    }

    #[test]
    fn req_param_must_be_consumed_by_the_callee() {
        // sink(req) { ret } — drops the parameter request.
        let mut f = FnBuilder::new("sink", 1, 1, false);
        f.params(&[TyDesc::Req]);
        f.op(Op::Ret);
        let r = verify_module(&module_of(f.build()), &empty_reg());
        match r {
            Err(VerifyError::RequestLeak { origin, .. }) => {
                assert_eq!(origin, REQ_PARAM_ORIGIN_BASE as usize);
            }
            other => panic!("expected a parameter-request leak, got {other:?}"),
        }
    }

    #[test]
    fn returned_request_binds_the_caller() {
        // main calls a Req-returning function and pops the result: leak.
        let mut m = Module::new();
        let mut start = FnBuilder::new("start", 0, 0, true);
        start.ret_ty(TyDesc::Req);
        start
            .op(Op::PushNull)
            .op(Op::PushI(0))
            .op(Op::PushI(0))
            .op(Op::FCall(FCallId::MpIsend))
            .op(Op::Ret);
        m.add(start.build());
        let mut main = FnBuilder::new("main", 0, 0, false);
        main.op(Op::Call(0)).op(Op::Pop).op(Op::Ret);
        m.add(main.build());
        assert!(matches!(
            verify_module(&m, &empty_reg()),
            Err(VerifyError::RequestLeak { .. })
        ));
    }

    #[test]
    fn request_cannot_be_passed_as_non_req_argument() {
        let mut m = Module::new();
        let mut callee = FnBuilder::new("int_arg", 1, 1, false);
        callee.op(Op::Ret);
        m.add(callee.build());
        let mut main = FnBuilder::new("main", 0, 0, false);
        main.op(Op::PushNull)
            .op(Op::PushI(0))
            .op(Op::PushI(0))
            .op(Op::FCall(FCallId::MpIrecv))
            .op(Op::Call(0))
            .op(Op::Ret);
        m.add(main.build());
        assert!(matches!(
            verify_module(&m, &empty_reg()),
            Err(VerifyError::TypeError { .. })
        ));
    }

    #[test]
    fn null_does_not_satisfy_a_req_declaration() {
        let mut m = Module::new();
        let mut finish = FnBuilder::new("finish", 1, 1, false);
        finish.params(&[TyDesc::Req]);
        finish
            .op(Op::Load(0))
            .op(Op::FCall(FCallId::MpWait))
            .op(Op::Ret);
        m.add(finish.build());
        let mut main = FnBuilder::new("main", 0, 0, false);
        main.op(Op::PushNull).op(Op::Call(0)).op(Op::Ret);
        m.add(main.build());
        assert!(matches!(
            verify_module(&m, &empty_reg()),
            Err(VerifyError::TypeError { .. })
        ));
    }

    #[test]
    fn request_cannot_be_dropped_or_duplicated() {
        for bad_op in [Op::Pop, Op::Dup] {
            let mut f = FnBuilder::new("bad", 0, 0, false);
            f.op(Op::PushNull)
                .op(Op::PushI(0))
                .op(Op::PushI(0))
                .op(Op::FCall(FCallId::MpIsend))
                .op(bad_op)
                .op(Op::Ret);
            let r = verify_module(&module_of(f.build()), &empty_reg());
            assert!(
                matches!(
                    r,
                    Err(VerifyError::RequestLeak { .. }) | Err(VerifyError::TypeError { .. })
                ),
                "{bad_op:?}: got {r:?}"
            );
        }
    }
}
