//! The intermediate language: opcodes, functions, modules, assembler.
//!
//! A small stack-machine IL in the spirit of the subset of CIL that
//! scientific kernels use: integer/float arithmetic, locals, structured
//! control flow via relative branches, calls, object allocation and
//! field/array access.

use motor_runtime::{ClassId, ElemKind};

/// Declared static type of a function parameter or return value.
///
/// The typed verifier ([`crate::verify`]) checks every call site and
/// `Ret` against these declarations and seeds argument locals from them.
/// Requests ([`Op::FCall`] with [`FCallId::MpIsend`]/[`FCallId::MpIrecv`])
/// may cross call boundaries only through an explicit [`TyDesc::Req`]
/// declaration: the callee inherits the linearity obligation for a `Req`
/// parameter, and a `Req` return hands the live request back to the
/// caller. Within each function the verifier still enforces that every
/// request is consumed (waited, passed on, or returned) on all paths;
/// the whole-program `motor-analyze` lint proves the obligation is
/// discharged globally (no entry point takes or returns a request, no
/// call cycle hands one around forever).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TyDesc {
    /// 64-bit integer.
    I64,
    /// 64-bit float.
    F64,
    /// Reference to an instance of the class (nullable).
    Ref(ClassId),
    /// One-dimensional primitive array of the element kind (nullable).
    Arr(ElemKind),
    /// One-dimensional object array of the class (nullable).
    ObjArr(ClassId),
    /// An in-flight message-passing request (linear; never nullable).
    Req,
}

/// Message-passing intrinsics callable from IL via [`Op::FCall`].
///
/// These are the paper's `System.MP` / `System.OOMP` entry points surfaced
/// to managed code; the interpreter routes them through a
/// [`crate::interp::FcallHost`] (implemented by `motor-core` over its
/// `Mp`/`Oomp` bindings, each an FCall frame with entry/exit GC polls).
/// Stack conventions (arguments pushed left to right, so the rightmost is
/// on top; `peer` is an integer rank, or `-1` for a wildcard receive
/// source):
///
/// | id         | pops                     | pushes        |
/// |------------|--------------------------|---------------|
/// | `MpSend`   | `buf, dest, tag`         | —             |
/// | `MpRecv`   | `buf, src, tag`          | —             |
/// | `MpIsend`  | `buf, dest, tag`         | request       |
/// | `MpIrecv`  | `buf, src, tag`          | request       |
/// | `MpWait`   | `request`                | —             |
/// | `MpBarrier`| —                        | —             |
/// | `MpBcast`  | `buf, root`              | —             |
/// | `Osend`    | `obj, dest, tag`         | —             |
/// | `Orecv(c)` | `src, tag`               | object of `c` |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FCallId {
    /// Blocking standard-mode send of a whole object (raw `Mp`).
    MpSend,
    /// Blocking receive into a whole object (raw `Mp`).
    MpRecv,
    /// Immediate send; pushes a request that must reach `MpWait`.
    MpIsend,
    /// Immediate receive; pushes a request that must reach `MpWait`.
    MpIrecv,
    /// Complete an immediate operation.
    MpWait,
    /// Barrier across the communicator.
    MpBarrier,
    /// Broadcast a whole object from `root`.
    MpBcast,
    /// Object-tree transport via the serializer (`Oomp::osend`).
    Osend,
    /// Object-tree receive; the deserialized root must be of the declared
    /// class (checked once on arrival).
    Orecv(ClassId),
}

impl FCallId {
    /// Number of stack operands popped.
    pub fn arity(self) -> usize {
        match self {
            FCallId::MpBarrier => 0,
            FCallId::MpWait => 1,
            FCallId::MpBcast | FCallId::Orecv(_) => 2,
            FCallId::MpSend
            | FCallId::MpRecv
            | FCallId::MpIsend
            | FCallId::MpIrecv
            | FCallId::Osend => 3,
        }
    }

    /// Whether a value is pushed on completion.
    pub fn pushes(self) -> bool {
        matches!(
            self,
            FCallId::MpIsend | FCallId::MpIrecv | FCallId::Orecv(_)
        )
    }

    /// Whether this intrinsic transports via the *raw* `Mp` bindings,
    /// whose buffers must be reference-free (paper §4.2.1).
    pub fn is_raw_mp_transport(self) -> bool {
        matches!(
            self,
            FCallId::MpSend
                | FCallId::MpRecv
                | FCallId::MpIsend
                | FCallId::MpIrecv
                | FCallId::MpBcast
        )
    }
}

/// Wildcard receive source for [`FCallId::MpRecv`] / [`FCallId::MpIrecv`]
/// (the managed-level `MPI_ANY_SOURCE`).
pub const FCALL_ANY_SOURCE: i64 = -1;

/// One IL instruction. Branch offsets are relative to the *next*
/// instruction (offset 0 falls through).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    // --- stack / constants ---
    /// Push an integer constant.
    PushI(i64),
    /// Push a float constant.
    PushF(f64),
    /// Push the null reference.
    PushNull,
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,

    // --- locals (index includes arguments: locals 0..argc are args) ---
    /// Load a local onto the stack.
    Load(u16),
    /// Store the top of stack into a local.
    Store(u16),

    // --- integer arithmetic ---
    /// `a + b` (wrapping).
    Add,
    /// `a - b` (wrapping).
    Sub,
    /// `a * b` (wrapping).
    Mul,
    /// `a / b`; traps on division by zero.
    Div,
    /// `a % b`; traps on division by zero.
    Rem,
    /// Negate.
    Neg,

    // --- float arithmetic ---
    /// Float add.
    FAdd,
    /// Float subtract.
    FSub,
    /// Float multiply.
    FMul,
    /// Float divide.
    FDiv,

    // --- conversions ---
    /// Integer → float.
    I2F,
    /// Float → integer (truncating).
    F2I,

    // --- comparisons (push 1 or 0 as integer) ---
    /// Equal (ints, floats or refs).
    CmpEq,
    /// Strictly less (ints or floats).
    CmpLt,
    /// Less or equal.
    CmpLe,

    // --- control flow (relative to next instruction) ---
    /// Unconditional branch.
    Br(i32),
    /// Branch if the popped integer is non-zero.
    BrTrue(i32),
    /// Branch if the popped integer is zero.
    BrFalse(i32),
    /// Call function `fn_index`; its arguments are popped (last on top),
    /// its return value pushed.
    Call(u16),
    /// Return the top of stack (or nothing for void functions).
    Ret,

    // --- objects ---
    /// Allocate a class instance; push the reference.
    New(ClassId),
    /// Load integer-kind field `f` of the popped object reference.
    LdFldI(u16),
    /// Store int into field: `[obj, value] → []`.
    StFldI(u16),
    /// Load f64 field.
    LdFldF(u16),
    /// Store f64 field.
    StFldF(u16),
    /// Load reference field.
    LdFldR(u16),
    /// Store reference field: `[obj, value] → []`.
    StFldR(u16),

    // --- arrays ---
    /// Allocate a primitive array; length popped from the stack.
    NewArr(ElemKind),
    /// Allocate an object array of the class; length popped.
    NewObjArr(ClassId),
    /// `[arr, idx] → [value]` integer element load (any int kind widens).
    LdElemI,
    /// `[arr, idx, value] → []` integer element store.
    StElemI,
    /// Float element load.
    LdElemF,
    /// Float element store.
    StElemF,
    /// Reference element load.
    LdElemR,
    /// Reference element store.
    StElemR,
    /// `[arr] → [len]`.
    ArrLen,

    // --- message passing ---
    /// Invoke a message-passing intrinsic; see [`FCallId`] for stack
    /// conventions. Executed through the bound
    /// [`crate::interp::FcallHost`].
    FCall(FCallId),
}

/// Stable opcode names for the profiler's opcode-mix report, indexed by
/// [`Op::profile_index`].
pub const PROFILE_NAMES: [&str; 44] = [
    "push_i",
    "push_f",
    "push_null",
    "dup",
    "pop",
    "load",
    "store",
    "add",
    "sub",
    "mul",
    "div",
    "rem",
    "neg",
    "fadd",
    "fsub",
    "fmul",
    "fdiv",
    "i2f",
    "f2i",
    "cmp_eq",
    "cmp_lt",
    "cmp_le",
    "br",
    "br_true",
    "br_false",
    "call",
    "ret",
    "new",
    "ld_fld_i",
    "st_fld_i",
    "ld_fld_f",
    "st_fld_f",
    "ld_fld_r",
    "st_fld_r",
    "new_arr",
    "new_obj_arr",
    "ld_elem_i",
    "st_elem_i",
    "ld_elem_f",
    "st_elem_f",
    "ld_elem_r",
    "st_elem_r",
    "arr_len",
    "fcall",
];

impl Op {
    /// Dense per-opcode index (operands ignored), used by the sampled
    /// opcode-mix histogram; names in [`PROFILE_NAMES`].
    pub fn profile_index(&self) -> usize {
        match self {
            Op::PushI(_) => 0,
            Op::PushF(_) => 1,
            Op::PushNull => 2,
            Op::Dup => 3,
            Op::Pop => 4,
            Op::Load(_) => 5,
            Op::Store(_) => 6,
            Op::Add => 7,
            Op::Sub => 8,
            Op::Mul => 9,
            Op::Div => 10,
            Op::Rem => 11,
            Op::Neg => 12,
            Op::FAdd => 13,
            Op::FSub => 14,
            Op::FMul => 15,
            Op::FDiv => 16,
            Op::I2F => 17,
            Op::F2I => 18,
            Op::CmpEq => 19,
            Op::CmpLt => 20,
            Op::CmpLe => 21,
            Op::Br(_) => 22,
            Op::BrTrue(_) => 23,
            Op::BrFalse(_) => 24,
            Op::Call(_) => 25,
            Op::Ret => 26,
            Op::New(_) => 27,
            Op::LdFldI(_) => 28,
            Op::StFldI(_) => 29,
            Op::LdFldF(_) => 30,
            Op::StFldF(_) => 31,
            Op::LdFldR(_) => 32,
            Op::StFldR(_) => 33,
            Op::NewArr(_) => 34,
            Op::NewObjArr(_) => 35,
            Op::LdElemI => 36,
            Op::StElemI => 37,
            Op::LdElemF => 38,
            Op::StElemF => 39,
            Op::LdElemR => 40,
            Op::StElemR => 41,
            Op::ArrLen => 42,
            Op::FCall(_) => 43,
        }
    }
}

/// A function body.
#[derive(Debug, Clone)]
pub struct Function {
    /// Symbolic name.
    pub name: String,
    /// Number of arguments (stored in locals `0..argc`).
    pub argc: u16,
    /// Total locals including arguments.
    pub locals: u16,
    /// Whether the function returns a value.
    pub returns_value: bool,
    /// Declared parameter types, one per argument. The typed verifier
    /// requires `params.len() == argc`; [`FnBuilder`] defaults every
    /// parameter to [`TyDesc::I64`].
    pub params: Vec<TyDesc>,
    /// Declared return type; `Some` iff `returns_value`. Defaults to
    /// [`TyDesc::I64`] for value-returning functions.
    pub ret: Option<TyDesc>,
    /// The instruction stream.
    pub code: Vec<Op>,
}

/// A module: the unit of loading.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// Functions, addressed by index in `Op::Call`.
    pub functions: Vec<Function>,
}

impl Module {
    /// Create an empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a function; returns its call index.
    pub fn add(&mut self, f: Function) -> u16 {
        self.functions.push(f);
        (self.functions.len() - 1) as u16
    }

    /// Find a function by name.
    pub fn find(&self, name: &str) -> Option<u16> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u16)
    }
}

/// A forward-reference label used by the [`FnBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Assembler for function bodies with labels and automatic branch-offset
/// resolution.
pub struct FnBuilder {
    name: String,
    argc: u16,
    locals: u16,
    returns_value: bool,
    params: Vec<TyDesc>,
    ret: Option<TyDesc>,
    code: Vec<Op>,
    /// label id → bound instruction index.
    labels: Vec<Option<usize>>,
    /// (instruction index, label id) fixups.
    fixups: Vec<(usize, usize)>,
}

impl FnBuilder {
    /// Start a function with `argc` arguments and `locals` total locals
    /// (must be >= argc). Parameters and the return value default to
    /// [`TyDesc::I64`]; declare other types with [`FnBuilder::params`] and
    /// [`FnBuilder::ret_ty`].
    pub fn new(name: &str, argc: u16, locals: u16, returns_value: bool) -> FnBuilder {
        assert!(locals >= argc, "locals include arguments");
        FnBuilder {
            name: name.to_string(),
            argc,
            locals,
            returns_value,
            params: vec![TyDesc::I64; argc as usize],
            ret: returns_value.then_some(TyDesc::I64),
            code: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Declare the parameter types (length must equal `argc`).
    pub fn params(&mut self, params: &[TyDesc]) -> &mut Self {
        assert_eq!(params.len(), self.argc as usize, "one type per argument");
        self.params = params.to_vec();
        self
    }

    /// Declare the return type (the function must return a value).
    pub fn ret_ty(&mut self, ty: TyDesc) -> &mut Self {
        assert!(self.returns_value, "void function cannot declare a return");
        self.ret = Some(ty);
        self
    }

    /// Emit an instruction.
    pub fn op(&mut self, op: Op) -> &mut Self {
        self.code.push(op);
        self
    }

    /// Create an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind a label to the current position.
    pub fn bind(&mut self, l: Label) -> &mut Self {
        assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.code.len());
        self
    }

    /// Emit a branch to a label (fixed up at build time).
    pub fn br(&mut self, l: Label) -> &mut Self {
        self.fixups.push((self.code.len(), l.0));
        self.code.push(Op::Br(0));
        self
    }

    /// Emit a conditional branch (taken when non-zero).
    pub fn br_true(&mut self, l: Label) -> &mut Self {
        self.fixups.push((self.code.len(), l.0));
        self.code.push(Op::BrTrue(0));
        self
    }

    /// Emit a conditional branch (taken when zero).
    pub fn br_false(&mut self, l: Label) -> &mut Self {
        self.fixups.push((self.code.len(), l.0));
        self.code.push(Op::BrFalse(0));
        self
    }

    /// Resolve labels and produce the function.
    pub fn build(mut self) -> Function {
        for (at, label) in self.fixups {
            let target = self.labels[label].expect("unbound label");
            let rel = target as i64 - (at as i64 + 1);
            let op = match self.code[at] {
                Op::Br(_) => Op::Br(rel as i32),
                Op::BrTrue(_) => Op::BrTrue(rel as i32),
                Op::BrFalse(_) => Op::BrFalse(rel as i32),
                other => panic!("fixup on non-branch {other:?}"),
            };
            self.code[at] = op;
        }
        Function {
            name: self.name,
            argc: self.argc,
            locals: self.locals,
            returns_value: self.returns_value,
            params: self.params,
            ret: self.ret,
            code: self.code,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_resolves_forward_and_backward_branches() {
        let mut f = FnBuilder::new("loop", 1, 2, true);
        let top = f.label();
        let done = f.label();
        // local1 = 0; while (local0 != 0) { local1 += local0; local0 -= 1 }
        f.op(Op::PushI(0)).op(Op::Store(1));
        f.bind(top);
        f.op(Op::Load(0)).br_false(done);
        f.op(Op::Load(1))
            .op(Op::Load(0))
            .op(Op::Add)
            .op(Op::Store(1));
        f.op(Op::Load(0))
            .op(Op::PushI(1))
            .op(Op::Sub)
            .op(Op::Store(0));
        f.br(top);
        f.bind(done);
        f.op(Op::Load(1)).op(Op::Ret);
        let func = f.build();
        // The backward branch must be negative, the forward positive.
        let backs: Vec<i32> = func
            .code
            .iter()
            .filter_map(|o| match o {
                Op::Br(r) => Some(*r),
                _ => None,
            })
            .collect();
        assert_eq!(backs.len(), 1);
        assert!(backs[0] < 0);
        let fwd: Vec<i32> = func
            .code
            .iter()
            .filter_map(|o| match o {
                Op::BrFalse(r) => Some(*r),
                _ => None,
            })
            .collect();
        assert!(fwd[0] > 0);
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new();
        let f = FnBuilder::new("f", 0, 0, false).build();
        let idx = m.add(f);
        assert_eq!(m.find("f"), Some(idx));
        assert_eq!(m.find("g"), None);
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_rejected() {
        let mut f = FnBuilder::new("x", 0, 0, false);
        let l = f.label();
        f.bind(l);
        f.bind(l);
    }
}
