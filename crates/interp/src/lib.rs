//! # motor-interp — managed code execution for the Motor VM
//!
//! The SSCLI executes applications by JIT-compiling a processor-agnostic
//! intermediate language, and "the jitted code periodically polls to yield
//! itself to garbage collection" (paper §5.2). This crate is the execution
//! engine of the reproduction: a compact stack-based intermediate language
//! and interpreter whose dispatch loop performs exactly those safepoint
//! polls — every backward branch and call polls the collector, so a
//! long-running managed loop can never starve a collection (the property
//! FCalls must emulate by hand, §5.1).
//!
//! Object references on the evaluation stack and in locals are GC-safe:
//! they are runtime [`Handle`]s, i.e. entries in the VM's root set that
//! the moving collector rewrites. Every handle created during a call is
//! owned by its frame and released on return.

pub mod il;
pub mod interp;
pub mod verify;

pub use il::{FCallId, FnBuilder, Function, Module, Op, TyDesc, FCALL_ANY_SOURCE};
pub use interp::{FcallHost, Interp, TrapKind, Value};
pub use verify::{verify_module, FcallSite, FuncMeta, StackTy, VerifiedModule, VerifyError};
