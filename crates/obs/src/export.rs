//! Chrome-trace-event (Perfetto) export of a [`ClusterTrace`], and the
//! inverse parse used by the `motor-trace` binary and smoke tests.
//!
//! The output follows the Trace Event Format's JSON-object form:
//! `traceEvents` holds one `"X"` (complete) event per span — `pid` is the
//! rank, `ts`/`dur` are microseconds — plus `"s"`/`"f"` flow events for
//! every message edge and `"M"` metadata naming each rank. Open the file
//! directly in <https://ui.perfetto.dev> or `chrome://tracing`.
//!
//! Exact nanosecond times and all edge fields ride in `args`, so
//! [`from_chrome_json`] reconstructs the [`ClusterTrace`] losslessly
//! (the µs `ts`/`dur` are for the viewer only).

use crate::trace::{ClusterTrace, EdgeKind, MessageEdge, TraceSpan};
use crate::SpanKind;

/// Serialize a trace to Chrome-trace-event JSON.
pub fn to_chrome_json(trace: &ClusterTrace) -> String {
    let mut ev: Vec<String> = Vec::new();
    for rank in 0..trace.ranks {
        ev.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{rank},\"tid\":0,\
             \"args\":{{\"name\":\"rank {rank}\"}}}}"
        ));
    }
    for s in &trace.spans {
        ev.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":0,\
             \"ts\":{},\"dur\":{},\"args\":{{\"span_id\":{},\"t_begin_ns\":{},\
             \"t_end_ns\":{},\"arg\":{}}}}}",
            s.kind.name(),
            s.rank,
            micros(s.t_begin),
            micros_dur(s.dur_nanos()),
            s.id,
            s.t_begin,
            s.t_end,
            s.arg,
        ));
    }
    for (i, e) in trace.edges.iter().enumerate() {
        // Flow start at the send; all edge fields ride here so the parse
        // needs only the "s" record.
        ev.push(format!(
            "{{\"name\":\"msg\",\"cat\":\"{kind}\",\"ph\":\"s\",\"id\":{i},\
             \"pid\":{src},\"tid\":0,\"ts\":{ts},\"args\":{{\
             \"edge_kind\":\"{kind}\",\"src_rank\":{src},\"dst_rank\":{dst},\
             \"tag\":{tag},\"bytes\":{bytes},\"rndv\":{rndv},\
             \"t_send_ns\":{tsend},\"t_recv_ns\":{trecv},\
             \"src_span\":{sspan},\"dst_span\":{dspan}}}}}",
            kind = e.kind.name(),
            src = e.src_rank,
            dst = e.dst_rank,
            tag = e.tag,
            bytes = e.bytes,
            rndv = if e.rndv { 1 } else { 0 },
            ts = micros(e.t_send),
            tsend = e.t_send,
            trecv = e.t_recv,
            sspan = opt(e.src_span),
            dspan = opt(e.dst_span),
            i = i,
        ));
        ev.push(format!(
            "{{\"name\":\"msg\",\"cat\":\"{}\",\"ph\":\"f\",\"bp\":\"e\",\
             \"id\":{i},\"pid\":{},\"tid\":0,\"ts\":{}}}",
            e.kind.name(),
            e.dst_rank,
            micros(e.t_recv),
        ));
    }
    let dropped: Vec<String> = trace.dropped_events.iter().map(|d| d.to_string()).collect();
    let orphaned: Vec<String> = trace.orphaned_ends.iter().map(|d| d.to_string()).collect();
    format!(
        "{{\"displayTimeUnit\":\"ns\",\"motorRanks\":{},\"motorDropped\":[{}],\
         \"motorOrphaned\":[{}],\"traceEvents\":[{}]}}",
        trace.ranks,
        dropped.join(","),
        orphaned.join(","),
        ev.join(",")
    )
}

fn micros(nanos: i64) -> String {
    format!("{}.{:03}", nanos / 1000, (nanos % 1000).unsigned_abs())
}

fn micros_dur(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1000, nanos % 1000)
}

fn opt(v: Option<u64>) -> String {
    v.map_or_else(|| "null".into(), |x| x.to_string())
}

/// Reconstruct a [`ClusterTrace`] from [`to_chrome_json`] output.
pub fn from_chrome_json(text: &str) -> Result<ClusterTrace, String> {
    let root = json::parse(text)?;
    let events = root
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("missing traceEvents array")?;
    let mut trace = ClusterTrace {
        ranks: root.get("motorRanks").and_then(|v| v.as_u64()).unwrap_or(0) as usize,
        spans: Vec::new(),
        edges: Vec::new(),
        dropped_events: root
            .get("motorDropped")
            .and_then(|v| v.as_array())
            .map(|a| a.iter().filter_map(|v| v.as_u64()).collect())
            .unwrap_or_default(),
        orphaned_ends: root
            .get("motorOrphaned")
            .and_then(|v| v.as_array())
            .map(|a| a.iter().filter_map(|v| v.as_u64()).collect())
            .unwrap_or_default(),
    };
    for e in events {
        let ph = e.get("ph").and_then(|v| v.as_str()).unwrap_or("");
        let args = e.get("args");
        match ph {
            "X" => {
                let name = e.get("name").and_then(|v| v.as_str()).unwrap_or("");
                let kind = SpanKind::from_name(name)
                    .ok_or_else(|| format!("unknown span kind {name:?}"))?;
                let a = args.ok_or("X event without args")?;
                let rank = e.get("pid").and_then(|v| v.as_u64()).unwrap_or(0) as usize;
                trace.spans.push(TraceSpan {
                    id: a
                        .get("span_id")
                        .and_then(|v| v.as_u64())
                        .ok_or("no span_id")?,
                    rank,
                    kind,
                    t_begin: a
                        .get("t_begin_ns")
                        .and_then(|v| v.as_i64())
                        .ok_or("no t_begin_ns")?,
                    t_end: a
                        .get("t_end_ns")
                        .and_then(|v| v.as_i64())
                        .ok_or("no t_end_ns")?,
                    arg: a.get("arg").and_then(|v| v.as_u64()).unwrap_or(0),
                });
                trace.ranks = trace.ranks.max(rank + 1);
            }
            "s" => {
                let a = args.ok_or("s event without args")?;
                let kind_name = a
                    .get("edge_kind")
                    .and_then(|v| v.as_str())
                    .ok_or("no edge_kind")?;
                let kind = EdgeKind::from_name(kind_name)
                    .ok_or_else(|| format!("unknown edge kind {kind_name:?}"))?;
                let src_rank = a
                    .get("src_rank")
                    .and_then(|v| v.as_u64())
                    .ok_or("no src_rank")? as usize;
                let dst_rank = a
                    .get("dst_rank")
                    .and_then(|v| v.as_u64())
                    .ok_or("no dst_rank")? as usize;
                trace.edges.push(MessageEdge {
                    kind,
                    src_rank,
                    dst_rank,
                    tag: a.get("tag").and_then(|v| v.as_i64()).unwrap_or(0),
                    bytes: a.get("bytes").and_then(|v| v.as_u64()).unwrap_or(0),
                    rndv: a.get("rndv").and_then(|v| v.as_u64()).unwrap_or(0) != 0,
                    t_send: a
                        .get("t_send_ns")
                        .and_then(|v| v.as_i64())
                        .ok_or("no t_send_ns")?,
                    t_recv: a
                        .get("t_recv_ns")
                        .and_then(|v| v.as_i64())
                        .ok_or("no t_recv_ns")?,
                    src_span: a.get("src_span").and_then(|v| v.as_u64()),
                    dst_span: a.get("dst_span").and_then(|v| v.as_u64()),
                });
                trace.ranks = trace.ranks.max(src_rank.max(dst_rank) + 1);
            }
            _ => {} // "f" flow ends and "M" metadata carry no extra state
        }
    }
    // Older files without `motorDropped`/`motorOrphaned` (and traces whose
    // rank count grew while parsing) report zeroes for the missing ranks.
    trace.dropped_events.resize(trace.ranks, 0);
    trace.orphaned_ends.resize(trace.ranks, 0);
    Ok(trace)
}

/// A minimal recursive-descent JSON parser — just enough for the trace
/// format (and vendored so the crate stays dependency-free offline).
pub mod json {
    use std::collections::BTreeMap;

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true`/`false`.
        Bool(bool),
        /// Any number (f64 holds every integer the trace emits exactly:
        /// nanosecond stamps stay well under 2^53).
        Num(f64),
        /// A string, unescaped.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, key-ordered.
        Obj(BTreeMap<String, Value>),
    }

    impl Value {
        /// Member lookup (None on non-objects).
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(m) => m.get(key),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }

        /// The string, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The number as u64, if this is a non-negative integral number.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
                _ => None,
            }
        }

        /// The number as i64, if integral.
        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Value::Num(n) if n.fract() == 0.0 => Some(*n as i64),
                _ => None,
            }
        }
    }

    /// Parse one JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }

    struct Parser<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl Parser<'_> {
        fn ws(&mut self) {
            while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.i += 1;
            }
        }

        fn eat(&mut self, c: u8) -> Result<(), String> {
            if self.b.get(self.i) == Some(&c) {
                self.i += 1;
                Ok(())
            } else {
                Err(format!("expected {:?} at offset {}", c as char, self.i))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            self.ws();
            match self.b.get(self.i) {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.lit("true", Value::Bool(true)),
                Some(b'f') => self.lit("false", Value::Bool(false)),
                Some(b'n') => self.lit("null", Value::Null),
                Some(_) => self.number(),
                None => Err("unexpected end of input".into()),
            }
        }

        fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
            if self.b[self.i..].starts_with(word.as_bytes()) {
                self.i += word.len();
                Ok(v)
            } else {
                Err(format!("bad literal at offset {}", self.i))
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.eat(b'{')?;
            let mut m = BTreeMap::new();
            self.ws();
            if self.b.get(self.i) == Some(&b'}') {
                self.i += 1;
                return Ok(Value::Obj(m));
            }
            loop {
                self.ws();
                let k = self.string()?;
                self.ws();
                self.eat(b':')?;
                m.insert(k, self.value()?);
                self.ws();
                match self.b.get(self.i) {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        return Ok(Value::Obj(m));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.eat(b'[')?;
            let mut v = Vec::new();
            self.ws();
            if self.b.get(self.i) == Some(&b']') {
                self.i += 1;
                return Ok(Value::Arr(v));
            }
            loop {
                v.push(self.value()?);
                self.ws();
                match self.b.get(self.i) {
                    Some(b',') => self.i += 1,
                    Some(b']') => {
                        self.i += 1;
                        return Ok(Value::Arr(v));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.eat(b'"')?;
            let mut s = String::new();
            loop {
                match self.b.get(self.i) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        self.i += 1;
                        return Ok(s);
                    }
                    Some(b'\\') => {
                        self.i += 1;
                        let esc = self.b.get(self.i).ok_or("unterminated escape")?;
                        self.i += 1;
                        match esc {
                            b'"' => s.push('"'),
                            b'\\' => s.push('\\'),
                            b'/' => s.push('/'),
                            b'b' => s.push('\u{8}'),
                            b'f' => s.push('\u{c}'),
                            b'n' => s.push('\n'),
                            b'r' => s.push('\r'),
                            b't' => s.push('\t'),
                            b'u' => {
                                let hex = self
                                    .b
                                    .get(self.i..self.i + 4)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                    16,
                                )
                                .map_err(|_| "bad \\u escape")?;
                                self.i += 4;
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                            _ => return Err(format!("bad escape at offset {}", self.i)),
                        }
                    }
                    Some(&c) => {
                        // Multi-byte UTF-8 passes through byte by byte.
                        let start = self.i;
                        let len = if c < 0x80 {
                            1
                        } else if c < 0xe0 {
                            2
                        } else if c < 0xf0 {
                            3
                        } else {
                            4
                        };
                        let chunk = self
                            .b
                            .get(start..start + len)
                            .ok_or("truncated UTF-8 sequence")?;
                        s.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?);
                        self.i += len;
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.i;
            if self.b.get(self.i) == Some(&b'-') {
                self.i += 1;
            }
            while matches!(
                self.b.get(self.i),
                Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            ) {
                self.i += 1;
            }
            std::str::from_utf8(&self.b[start..self.i])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("bad number at offset {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{build_cluster_trace, EdgeKind};
    use crate::{EventKind, MetricsRegistry, SpanKind};
    use std::time::Instant;

    fn sample_trace() -> ClusterTrace {
        let epoch = Instant::now();
        let r0 = MetricsRegistry::with_epoch(epoch, 64);
        let r1 = MetricsRegistry::with_epoch(epoch, 64);
        {
            let _g = r0.span(SpanKind::MpSend, crate::span_arg_peer_tag(1, 3));
            r0.event3(EventKind::MsgSend, 1, 3, 32);
        }
        {
            let _g = r1.span(SpanKind::MpRecv, crate::span_arg_peer_tag(0, 3));
            r1.event3(EventKind::MsgRecv, 0, 3, 32);
        }
        build_cluster_trace(&[r0.snapshot(), r1.snapshot()])
    }

    #[test]
    fn chrome_json_roundtrips() {
        let t = sample_trace();
        let text = to_chrome_json(&t);
        let back = from_chrome_json(&text).expect("parse");
        assert_eq!(back, t);
    }

    #[test]
    fn chrome_json_has_flow_pair_and_metadata() {
        let t = sample_trace();
        let text = to_chrome_json(&t);
        assert!(text.contains("\"ph\":\"s\""));
        assert!(text.contains("\"ph\":\"f\""));
        assert!(text.contains("\"process_name\""));
        assert!(text.contains("\"edge_kind\":\"payload\""));
        // And it is valid JSON by our own parser's standards.
        json::parse(&text).expect("valid json");
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        let v =
            json::parse(r#"{"s":"a\"b\nA","n":-12.5,"t":true,"x":null,"a":[1,2]}"#).expect("parse");
        assert_eq!(v.get("s").and_then(|s| s.as_str()), Some("a\"b\nA"));
        assert_eq!(v.get("n"), Some(&json::Value::Num(-12.5)));
        assert_eq!(v.get("t"), Some(&json::Value::Bool(true)));
        assert_eq!(v.get("x"), Some(&json::Value::Null));
        assert_eq!(
            v.get("a").and_then(|a| a.as_array()).map(|a| a.len()),
            Some(2)
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(json::parse("{").is_err());
        assert!(json::parse("[1,]").is_err());
        assert!(json::parse("{}extra").is_err());
        assert!(json::parse("\"unterminated").is_err());
    }

    #[test]
    fn edge_kinds_survive_roundtrip() {
        for k in [
            EdgeKind::Payload,
            EdgeKind::Rts,
            EdgeKind::Cts,
            EdgeKind::Done,
        ] {
            assert_eq!(EdgeKind::from_name(k.name()), Some(k));
        }
    }
}
