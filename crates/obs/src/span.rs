//! Begin/end span pairs over the event ring.
//!
//! A [`SpanGuard`] stamps a [`SpanBegin`](crate::EventKind::SpanBegin)
//! event when created and the matching
//! [`SpanEnd`](crate::EventKind::SpanEnd) when dropped, both carrying a
//! process-unique span id. The post-mortem [`trace`](crate::trace) module
//! pairs them back into intervals, so every `System.MP` / `System.MP.OO`
//! operation, rendezvous phase, serializer pass, GC pause and safepoint
//! stall becomes a slice on the cluster timeline.
//!
//! Recording a span costs two ring writes (a `fetch_add` plus a handful
//! of relaxed stores each) and never takes a lock, so guards are cheap
//! enough for the hot paths the paper measures.

use crate::{alloc_span_id, EventKind, MetricsRegistry};

macro_rules! define_span_kinds {
    ($( $(#[$doc:meta])* $variant:ident => $name:literal ),+ $(,)?) => {
        /// What a span covers. The discriminant travels as the `b` word of
        /// the begin/end events.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(u64)]
        pub enum SpanKind {
            $( $(#[$doc])* $variant ),+
        }

        impl SpanKind {
            /// Every kind, in declaration order.
            pub const ALL: [SpanKind; [$(SpanKind::$variant),+].len()] =
                [$(SpanKind::$variant),+];

            /// Stable export name (Perfetto slice name).
            pub fn name(self) -> &'static str {
                match self {
                    $( SpanKind::$variant => $name ),+
                }
            }

            /// Inverse of `as u64` (unknown values map to `None`).
            pub fn from_u64(v: u64) -> Option<SpanKind> {
                SpanKind::ALL.get(v as usize).copied()
            }

            /// Inverse of [`SpanKind::name`].
            pub fn from_name(name: &str) -> Option<SpanKind> {
                SpanKind::ALL.iter().copied().find(|k| k.name() == name)
            }
        }
    };
}

define_span_kinds! {
    // ---- System.MP point-to-point ----
    /// Blocking standard-mode send.
    MpSend => "mp_send",
    /// Blocking synchronous-mode send.
    MpSsend => "mp_ssend",
    /// Blocking receive.
    MpRecv => "mp_recv",
    /// Non-blocking send initiation.
    MpIsend => "mp_isend",
    /// Non-blocking receive initiation.
    MpIrecv => "mp_irecv",
    /// Wait on a non-blocking request.
    MpWait => "mp_wait",
    /// Blocking probe.
    MpProbe => "mp_probe",

    // ---- collectives ----
    /// Barrier.
    Barrier => "barrier",
    /// Broadcast.
    Bcast => "bcast",
    /// Scatter (incl. scatterv).
    Scatter => "scatter",
    /// Gather (incl. gatherv).
    Gather => "gather",
    /// Allgather.
    Allgather => "allgather",
    /// Reduce.
    Reduce => "reduce",
    /// Allreduce.
    Allreduce => "allreduce",
    /// Scan.
    Scan => "scan",
    /// All-to-all.
    Alltoall => "alltoall",

    // ---- System.MP.OO ----
    /// Object-tree send.
    Osend => "osend",
    /// Object-tree receive.
    Orecv => "orecv",
    /// Object-tree broadcast.
    Obcast => "obcast",
    /// Object-array scatter.
    Oscatter => "oscatter",
    /// Object-array gather.
    Ogather => "ogather",

    // ---- runtime phases (synthesized from non-span events too) ----
    /// Serializer pass (paired from `SerBegin`/`SerEnd`).
    Serialize => "serialize",
    /// Deserializer pass (paired from `DeserBegin`/`DeserEnd`).
    Deserialize => "deserialize",
    /// Transport-level blocking wait (paired from `OpBegin`/`OpEnd`).
    DeviceWait => "device_wait",
    /// Rendezvous handshake on the sender (RTS out → transfer done).
    RndvHandshake => "rndv_handshake",
    /// Garbage collection pause (paired from `GcBegin`/`GcEnd`).
    Gc => "gc",
    /// Mutator stalled at a safepoint (synthesized from `SafepointStall`).
    SafepointStall => "safepoint_stall",
    /// Pin lifetime (paired from `PinAcquire`/`PinRelease`).
    PinHeld => "pin_held",
}

impl SpanKind {
    /// Kinds that count as *waiting on the cluster* (vs doing local work)
    /// in the per-rank wait-time breakdown.
    pub fn is_wait(self) -> bool {
        matches!(
            self,
            SpanKind::MpWait
                | SpanKind::MpProbe
                | SpanKind::DeviceWait
                | SpanKind::Gc
                | SpanKind::SafepointStall
        )
    }

    /// Which time bucket this span's duration is attributed to in the
    /// per-rank phase accounting (see [`crate::profile`]). `None` means
    /// the span is informational only (e.g. pin lifetimes overlap other
    /// work and must not steal compute time).
    pub fn bucket(self) -> Option<crate::profile::TimeBucket> {
        use crate::profile::TimeBucket;
        match self {
            SpanKind::MpSend
            | SpanKind::MpSsend
            | SpanKind::MpRecv
            | SpanKind::MpIsend
            | SpanKind::MpIrecv
            | SpanKind::MpWait
            | SpanKind::Barrier
            | SpanKind::Bcast
            | SpanKind::Scatter
            | SpanKind::Gather
            | SpanKind::Allgather
            | SpanKind::Reduce
            | SpanKind::Allreduce
            | SpanKind::Scan
            | SpanKind::Alltoall
            | SpanKind::Osend
            | SpanKind::Orecv
            | SpanKind::Obcast
            | SpanKind::Oscatter
            | SpanKind::Ogather
            | SpanKind::DeviceWait
            | SpanKind::RndvHandshake => Some(TimeBucket::CommWait),
            SpanKind::MpProbe => Some(TimeBucket::Progress),
            SpanKind::Serialize | SpanKind::Deserialize => Some(TimeBucket::Serialize),
            SpanKind::Gc | SpanKind::SafepointStall => Some(TimeBucket::Gc),
            SpanKind::PinHeld => None,
        }
    }
}

/// Pack a peer rank and a tag into one span argument word
/// (`peer << 32 | tag as u32`).
pub fn span_arg_peer_tag(peer: usize, tag: i32) -> u64 {
    ((peer as u64) << 32) | (tag as u32 as u64)
}

/// Unpack [`span_arg_peer_tag`].
pub fn span_arg_unpack(arg: u64) -> (usize, i32) {
    ((arg >> 32) as usize, arg as u32 as i32)
}

/// An open span; dropping it stamps the end event.
///
/// Opening a span also registers the operation in the registry's live
/// in-flight table (see [`crate::doctor`]), so every spanned operation is
/// visible to the `motor-doctor` watchdog while it runs; dropping the
/// guard deregisters it.
pub struct SpanGuard<'r> {
    registry: &'r MetricsRegistry,
    id: u64,
    kind: SpanKind,
    arg: u64,
    inflight: usize,
    phase_pushed: bool,
}

impl SpanGuard<'_> {
    /// This span's process-unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Replace the argument word carried by the end event (e.g. with a
    /// byte count known only at completion).
    pub fn set_arg(&mut self, arg: u64) {
        self.arg = arg;
    }

    /// Report a sign of life to the in-flight table: the operation is
    /// still advancing (call from polling loops so a long-but-live wait
    /// is not mistaken for a stall).
    pub fn heartbeat(&self) {
        self.registry.op_beat(self.inflight);
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if self.phase_pushed {
            self.registry.phases().pop_at(self.registry.now_nanos());
        }
        self.registry.op_end(self.inflight);
        self.registry
            .event3(EventKind::SpanEnd, self.id, self.kind as u64, self.arg);
    }
}

impl MetricsRegistry {
    /// Open a span; the returned guard closes it on drop.
    ///
    /// When phase accounting is live on this registry
    /// ([`profile_start`](MetricsRegistry::profile_start)) and the kind
    /// maps to a time bucket, the span's lifetime is also attributed to
    /// that bucket.
    pub fn span(&self, kind: SpanKind, arg: u64) -> SpanGuard<'_> {
        let id = alloc_span_id();
        self.event3(EventKind::SpanBegin, id, kind as u64, arg);
        let phase_pushed = match kind.bucket() {
            Some(b) => self.phases().push_at(b, self.now_nanos()),
            None => false,
        };
        SpanGuard {
            registry: self,
            id,
            kind,
            arg,
            inflight: self.op_begin(kind, arg),
            phase_pushed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    #[test]
    fn span_guard_emits_matched_pair() {
        let r = MetricsRegistry::new();
        let arg = span_arg_peer_tag(3, 17);
        {
            let _g = r.span(SpanKind::MpSend, arg);
        }
        let s = r.snapshot();
        let ev = s.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].kind, EventKind::SpanBegin);
        assert_eq!(ev[1].kind, EventKind::SpanEnd);
        assert_eq!(ev[0].a, ev[1].a, "same span id");
        assert_eq!(ev[0].b, SpanKind::MpSend as u64);
        assert_eq!(span_arg_unpack(ev[0].c), (3, 17));
        assert!(ev[1].t_nanos >= ev[0].t_nanos);
    }

    #[test]
    fn span_ids_unique_across_registries() {
        let r1 = MetricsRegistry::new();
        let r2 = MetricsRegistry::new();
        let a = r1.span(SpanKind::Barrier, 0).id();
        let b = r2.span(SpanKind::Barrier, 0).id();
        assert_ne!(a, b);
    }

    #[test]
    fn span_arg_roundtrip_negative_tag() {
        let arg = span_arg_peer_tag(7, -1);
        assert_eq!(span_arg_unpack(arg), (7, -1));
    }

    #[test]
    fn kind_name_roundtrip() {
        for k in SpanKind::ALL {
            assert_eq!(SpanKind::from_name(k.name()), Some(k));
            assert_eq!(SpanKind::from_u64(k as u64), Some(k));
        }
    }
}
