//! Prometheus text-exposition export of a [`MetricsSnapshot`], so
//! long-running clusters can be scraped.
//!
//! Counters become `motor_<name>` counter families (high-water marks are
//! gauges — they are not monotonic across restarts); each log2 histogram
//! becomes a `motor_<name>` histogram family with **cumulative** `le`
//! buckets at the power-of-two upper bounds, an exact `_count`, and a
//! midpoint-estimated `_sum` (log2 buckets keep counts, not sums).
//!
//! [`check_prometheus_text`] is a line-syntax validator used by the tests
//! (and usable as a cheap pre-scrape sanity check): metric-name grammar,
//! label quoting, numeric sample values, and TYPE-before-samples.

use crate::{profile::TimeBucket, Hist, Metric, MetricsSnapshot, HIST_BUCKETS};

fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("{{{}}}", parts.join(","))
}

fn label_block_with_le(labels: &[(&str, &str)], le: &str) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    parts.push(format!("le=\"{le}\""));
    format!("{{{}}}", parts.join(","))
}

/// Upper bound of log2 bucket `k` (bucket 0 holds exactly 0, bucket k
/// covers `(2^(k-1), 2^k]`).
fn bucket_upper(k: usize) -> u64 {
    if k == 0 {
        0
    } else {
        1u64 << k
    }
}

/// Midpoint of bucket `k`, for the `_sum` estimate.
fn bucket_mid(k: usize) -> f64 {
    if k == 0 {
        0.0
    } else {
        let hi = (1u64 << k) as f64;
        (hi / 2.0 + hi) / 2.0
    }
}

/// Render `snap` in the Prometheus text exposition format. `labels` are
/// attached to every sample (e.g. `&[("rank", "2")]`).
///
/// Every [`Metric`] and every [`Hist`] appears exactly once; for each
/// histogram the final cumulative bucket (`le="+Inf"`) and `_count`
/// equal [`crate::HistSnapshot::count`].
pub fn to_prometheus(snap: &MetricsSnapshot, labels: &[(&str, &str)]) -> String {
    to_prometheus_multi(&[(snap, labels)])
}

/// The binary identity gauge: `motor_build_info{version,git} 1`, so a
/// scrape always says what produced it. `git` comes from the
/// `MOTOR_GIT_SHA` compile-time environment variable when the build sets
/// it (CI does), `unknown` otherwise.
pub fn build_info_prometheus() -> String {
    format!(
        "# TYPE motor_build_info gauge\nmotor_build_info{{version=\"{}\",git=\"{}\"}} 1\n",
        env!("CARGO_PKG_VERSION"),
        option_env!("MOTOR_GIT_SHA").unwrap_or("unknown")
    )
}

/// Render several labeled snapshots (e.g. one per rank) into **one**
/// exposition document: each `# TYPE` line is emitted exactly once per
/// family, followed by one sample per snapshot. Concatenating separate
/// [`to_prometheus`] outputs would repeat the TYPE lines, which real
/// Prometheus servers reject even though each half is well-formed — this
/// is what a multi-rank `/metrics` endpoint must serve instead.
pub fn to_prometheus_multi(snaps: &[(&MetricsSnapshot, &[(&str, &str)])]) -> String {
    let mut out = build_info_prometheus();
    for m in Metric::ALL {
        let family = format!("motor_{}", m.name());
        let ty = if m.is_peak() { "gauge" } else { "counter" };
        out.push_str(&format!("# TYPE {family} {ty}\n"));
        for (snap, labels) in snaps {
            out.push_str(&format!(
                "{family}{} {}\n",
                label_block(labels),
                snap.get(m)
            ));
        }
    }
    // Derived profiling gauges: where the rank's wall clock went
    // (fraction per time bucket) and how much non-blocking communication
    // overlapped computation. The raw nanos already travel as prof_*
    // counters above; these save every dashboard the same division.
    out.push_str("# TYPE motor_profile_bucket_fraction gauge\n");
    for (snap, labels) in snaps {
        let wall: u64 = snap.bucket_nanos().iter().sum();
        for (bucket, nanos) in TimeBucket::ALL.iter().zip(snap.bucket_nanos()) {
            let frac = if wall == 0 {
                0.0
            } else {
                nanos as f64 / wall as f64
            };
            let mut labels = labels.to_vec();
            labels.push(("bucket", bucket.name()));
            out.push_str(&format!(
                "motor_profile_bucket_fraction{} {frac}\n",
                label_block(&labels)
            ));
        }
    }
    out.push_str("# TYPE motor_profile_overlap_ratio gauge\n");
    for (snap, labels) in snaps {
        out.push_str(&format!(
            "motor_profile_overlap_ratio{} {}\n",
            label_block(labels),
            snap.overlap_ratio().unwrap_or(0.0)
        ));
    }
    for h in Hist::ALL {
        let family = format!("motor_{}", h.name());
        out.push_str(&format!("# TYPE {family} histogram\n"));
        for (snap, labels) in snaps {
            let lb = label_block(labels);
            let hs = snap.hist(h);
            let total = hs.count();
            let last = hs.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
            let mut cumulative = 0u64;
            let mut sum = 0.0f64;
            for k in 0..=last.min(HIST_BUCKETS - 1) {
                cumulative += hs.buckets[k];
                sum += hs.buckets[k] as f64 * bucket_mid(k);
                out.push_str(&format!(
                    "{family}_bucket{} {cumulative}\n",
                    label_block_with_le(labels, &bucket_upper(k).to_string())
                ));
            }
            out.push_str(&format!(
                "{family}_bucket{} {total}\n",
                label_block_with_le(labels, "+Inf")
            ));
            out.push_str(&format!("{family}_sum{lb} {sum}\n"));
            out.push_str(&format!("{family}_count{lb} {total}\n"));
        }
    }
    out
}

fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Base family name of a sample: strips histogram suffixes.
fn family_of(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            return base;
        }
    }
    name
}

/// Validate Prometheus text-exposition syntax line by line: `# TYPE` /
/// `# HELP` comments, `name{labels} value` samples with well-formed
/// names, quoted label values, parseable numbers — and every sample's
/// family must have been declared by a preceding `# TYPE` line.
pub fn check_prometheus_text(text: &str) -> Result<(), String> {
    let mut typed: Vec<String> = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let err = |msg: &str| Err(format!("line {}: {msg}: {line:?}", ln + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut it = rest.splitn(3, ' ');
            let keyword = it.next().unwrap_or("");
            if keyword == "TYPE" {
                let name = it.next().unwrap_or("");
                let kind = it.next().unwrap_or("");
                if !valid_name(name) {
                    return err("bad metric name in TYPE");
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return err("bad metric type");
                }
                typed.push(name.to_string());
            }
            continue; // HELP and free comments pass
        }
        if line.starts_with('#') {
            continue;
        }
        // Sample: name[{labels}] value
        let (name_labels, value) = match line.rsplit_once(' ') {
            Some(split) => split,
            None => return err("sample without value"),
        };
        if value.parse::<f64>().is_err() && value != "+Inf" && value != "-Inf" && value != "NaN" {
            return err("unparseable sample value");
        }
        let name = match name_labels.split_once('{') {
            Some((n, labels)) => {
                let labels = match labels.strip_suffix('}') {
                    Some(l) => l,
                    None => return err("unterminated label block"),
                };
                for pair in split_labels(labels) {
                    let (k, v) = match pair.split_once('=') {
                        Some(kv) => kv,
                        None => return err("label without '='"),
                    };
                    if !valid_name(k) {
                        return err("bad label name");
                    }
                    if !(v.len() >= 2 && v.starts_with('"') && v.ends_with('"')) {
                        return err("unquoted label value");
                    }
                }
                n
            }
            None => name_labels,
        };
        if !valid_name(name) {
            return err("bad metric name");
        }
        if !typed.iter().any(|t| t == family_of(name)) {
            return err("sample before its # TYPE declaration");
        }
    }
    Ok(())
}

/// Split a label body on commas outside quotes.
fn split_labels(body: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let (mut start, mut in_quotes, mut escaped) = (0usize, false, false);
    for (i, c) in body.char_indices() {
        match c {
            '\\' if in_quotes => escaped = !escaped,
            '"' if !escaped => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                out.push(&body[start..i]);
                start = i + 1;
            }
            _ => escaped = false,
        }
    }
    if start < body.len() {
        out.push(&body[start..]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn every_metric_and_hist_appears() {
        let r = MetricsRegistry::new();
        r.bump(Metric::SendsEager);
        r.record(Hist::EagerSendBytes, 100);
        let text = to_prometheus(&r.snapshot(), &[("rank", "0")]);
        for m in Metric::ALL {
            assert!(
                text.contains(&format!("motor_{}{{rank=\"0\"}}", m.name())),
                "missing counter {}",
                m.name()
            );
        }
        for h in Hist::ALL {
            assert!(
                text.contains(&format!("# TYPE motor_{} histogram", h.name())),
                "missing histogram {}",
                h.name()
            );
            assert!(text.contains(&format!("motor_{}_count{{rank=\"0\"}}", h.name())));
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_sum_to_count() {
        let r = MetricsRegistry::new();
        for v in [0u64, 1, 1, 3, 100, 70_000] {
            r.record(Hist::WaitNanos, v);
        }
        let snap = r.snapshot();
        let text = to_prometheus(&snap, &[]);
        let total = snap.hist(Hist::WaitNanos).count();
        let mut prev = 0u64;
        let mut inf = None;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("motor_wait_nanos_bucket{le=\"") {
                let (le, val) = rest.split_once("\"} ").unwrap();
                let val: u64 = val.parse().unwrap();
                assert!(val >= prev, "buckets must be cumulative");
                prev = val;
                if le == "+Inf" {
                    inf = Some(val);
                }
            }
        }
        assert_eq!(inf, Some(total), "+Inf bucket equals the total count");
        assert!(text.contains(&format!("motor_wait_nanos_count {total}")));
    }

    #[test]
    fn output_passes_line_syntax_check() {
        let r = MetricsRegistry::new();
        r.add(Metric::ChanBytesOut, 12345);
        r.record_max(Metric::PostedQueuePeak, 4);
        r.record(Hist::RndvSendBytes, 1 << 20);
        let text = to_prometheus(&r.snapshot(), &[("rank", "3"), ("job", "heat\"2\"")]);
        check_prometheus_text(&text).expect("valid exposition format");
    }

    #[test]
    fn peaks_are_gauges_counters_are_counters() {
        let text = to_prometheus(&MetricsRegistry::new().snapshot(), &[]);
        assert!(text.contains("# TYPE motor_posted_queue_peak gauge"));
        assert!(text.contains("# TYPE motor_unexpected_queue_peak gauge"));
        assert!(text.contains("# TYPE motor_sends_eager counter"));
    }

    #[test]
    fn profile_gauges_exported_and_valid() {
        use crate::profile::TimeBucket;
        let r = MetricsRegistry::new();
        r.profile_start();
        {
            let _comm = r.phase_scope(TimeBucket::CommWait);
        }
        let text = to_prometheus(&r.snapshot(), &[("rank", "1")]);
        check_prometheus_text(&text).expect("valid exposition format");
        assert!(text.contains("# TYPE motor_profile_bucket_fraction gauge"));
        assert!(text.contains("# TYPE motor_profile_overlap_ratio gauge"));
        for b in TimeBucket::ALL {
            assert!(
                text.contains(&format!(
                    "motor_profile_bucket_fraction{{rank=\"1\",bucket=\"{}\"}}",
                    b.name()
                )),
                "missing bucket gauge {}",
                b.name()
            );
        }
        // Nothing in flight: ratio reported as 0.
        assert!(text.contains("motor_profile_overlap_ratio{rank=\"1\"} 0"));
        // Raw nanos counters travel too.
        assert!(text.contains("motor_prof_comm_wait_nanos{rank=\"1\"}"));
    }

    #[test]
    fn build_info_always_identifies_the_binary() {
        let text = to_prometheus(&MetricsRegistry::new().snapshot(), &[]);
        assert!(text.contains("# TYPE motor_build_info gauge"));
        assert!(text.contains(&format!(
            "motor_build_info{{version=\"{}\",git=",
            env!("CARGO_PKG_VERSION")
        )));
        check_prometheus_text(&text).expect("valid exposition format");
    }

    #[test]
    fn trace_ring_overflow_is_scrapable() {
        // The live endpoint must surface ring overflow: overflow the
        // 4-slot ring and check the counter travels the Prometheus path.
        let r = MetricsRegistry::with_event_capacity(4);
        for i in 0..10u64 {
            r.event(crate::EventKind::OpBegin, i, 0);
        }
        let text = to_prometheus(&r.snapshot(), &[("rank", "0")]);
        assert!(text.contains("# TYPE motor_trace_events_dropped counter"));
        assert!(text.contains("motor_trace_events_dropped{rank=\"0\"} 6"));
    }

    #[test]
    fn multi_rank_exposition_declares_each_family_once() {
        let r0 = MetricsRegistry::new();
        let r1 = MetricsRegistry::new();
        r0.bump(Metric::SendsEager);
        r1.add(Metric::SendsEager, 3);
        r1.record(Hist::WaitNanos, 512);
        let (s0, s1) = (r0.snapshot(), r1.snapshot());
        let text = to_prometheus_multi(&[
            (&s0, &[("group", "0"), ("rank", "0")]),
            (&s1, &[("group", "0"), ("rank", "1")]),
        ]);
        check_prometheus_text(&text).expect("valid exposition format");
        // One TYPE per family even with two snapshots...
        let type_lines = text
            .lines()
            .filter(|l| *l == "# TYPE motor_sends_eager counter")
            .count();
        assert_eq!(type_lines, 1);
        // ...but one sample per rank.
        assert!(text.contains("motor_sends_eager{group=\"0\",rank=\"0\"} 1"));
        assert!(text.contains("motor_sends_eager{group=\"0\",rank=\"1\"} 3"));
        assert!(text.contains("motor_wait_nanos_count{group=\"0\",rank=\"1\"} 1"));
        let hist_types = text
            .lines()
            .filter(|l| *l == "# TYPE motor_wait_nanos histogram")
            .count();
        assert_eq!(hist_types, 1);
    }

    #[test]
    fn syntax_check_rejects_garbage() {
        assert!(check_prometheus_text("motor_x 1").is_err(), "no TYPE");
        assert!(check_prometheus_text("# TYPE motor_x counter\nmotor_x").is_err());
        assert!(check_prometheus_text("# TYPE motor_x counter\nmotor_x abc").is_err());
        assert!(check_prometheus_text("# TYPE 9bad counter\n").is_err());
        assert!(
            check_prometheus_text("# TYPE motor_x counter\nmotor_x{le=1} 2").is_err(),
            "unquoted label value"
        );
        assert!(check_prometheus_text("# TYPE motor_x counter\nmotor_x{a=\"b\"} 2\n").is_ok());
    }
}
