//! The live telemetry plane's data model: timestamped **delta frames**
//! over a bounded ring.
//!
//! Post-mortem snapshots answer "what happened"; a live dashboard needs
//! *rates* and *sliding-window* statistics — msg/s right now, the GC
//! stall p99 over the last collection window, how the current second's
//! wall clock split across time buckets. A [`TelemetryFrame`] is one
//! collection tick: per rank, the [`MetricsSnapshot::diff`] against the
//! previous tick (so every counter in it is a windowed delta), the live
//! in-flight op table, queue depths, heap occupancy and the window's
//! safepoint-stall percentiles. Frames go into a [`FrameRing`] that keeps
//! the most recent `capacity` ticks, so a late-attaching client
//! (`motor-top`, the `/frames` endpoint) can reconstruct a time series
//! without having polled from the start.
//!
//! The collection loop that *produces* frames lives in `motor-core`
//! (`telemetry::Collector`) next to the rank hooks; this module is the
//! transport-free half — frame structure, ring, JSON wire format, and the
//! Prometheus rate/window gauges derived from the newest frame — so the
//! `motor-top` client and the tests share one schema with the server.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::doctor::{inflight_json, InflightOp};
use crate::{Hist, Metric, MetricsSnapshot};

/// Default number of frames a [`FrameRing`] retains.
pub const DEFAULT_FRAME_CAPACITY: usize = 240;

/// One rank's contribution to a [`TelemetryFrame`]: windowed deltas plus
/// the live state that has no meaningful delta (in-flight ops, queues,
/// heap occupancy).
#[derive(Debug, Clone)]
pub struct RankDelta {
    /// Spawn group (0 for the initial world).
    pub group: usize,
    /// Rank within its group.
    pub rank: usize,
    /// Human label (`"rank 2"`, `"child 1.0"`, ...).
    pub label: String,
    /// Whether the rank's body has returned.
    pub done: bool,
    /// Device queue depths `(posted, unexpected, pending_sends,
    /// active_recvs)` at tick time.
    pub queue_depths: (usize, usize, usize, usize),
    /// Live heap bytes in use (young + elder), 0 if unavailable.
    pub heap_used_bytes: u64,
    /// Live heap capacity in bytes, 0 if unavailable.
    pub heap_capacity_bytes: u64,
    /// p50 of safepoint stalls recorded *within this window* (nanos).
    pub gc_stall_p50_nanos: u64,
    /// p99 of safepoint stalls recorded within this window (nanos).
    pub gc_stall_p99_nanos: u64,
    /// Counter/histogram deltas over the window
    /// ([`MetricsSnapshot::diff`] against the previous tick; events
    /// stripped — the flight record carries full rings).
    pub delta: MetricsSnapshot,
    /// The rank's in-flight op table at tick time.
    pub inflight: Vec<InflightOp>,
}

impl RankDelta {
    /// Messages sent in the window (all four send paths).
    pub fn msgs_out(&self) -> u64 {
        self.delta.get(Metric::SendsEager)
            + self.delta.get(Metric::SendsRndv)
            + self.delta.get(Metric::SendsSync)
            + self.delta.get(Metric::SendsSelf)
    }

    /// Messages received (matched) in the window.
    pub fn msgs_in(&self) -> u64 {
        self.delta.get(Metric::RecvsPosted) + self.delta.get(Metric::RecvsUnexpected)
    }

    /// Comm/compute overlap ratio over the window (`None` when nothing
    /// was in flight during it).
    pub fn window_overlap_ratio(&self) -> Option<f64> {
        self.delta.overlap_ratio()
    }
}

/// Per-second rate of a windowed count (0 when the window is empty).
pub fn per_sec(count: u64, window_nanos: u64) -> f64 {
    if window_nanos == 0 {
        0.0
    } else {
        count as f64 * 1e9 / window_nanos as f64
    }
}

/// One collection tick across every registered rank.
#[derive(Debug, Clone)]
pub struct TelemetryFrame {
    /// Monotonic frame number (1-based within one ring).
    pub seq: u64,
    /// Shared-epoch clock at the tick (nanoseconds).
    pub t_nanos: u64,
    /// Nanoseconds since the previous tick (0 on the first frame, whose
    /// deltas cover the whole run so far).
    pub window_nanos: u64,
    /// Per-rank deltas, in (group, rank) order.
    pub ranks: Vec<RankDelta>,
}

/// Bounded ring of the most recent frames. Push-side is the collection
/// loop; readers (`/frames`, `/metrics` rate gauges, the doctor) take
/// cheap `Arc` copies.
pub struct FrameRing {
    frames: Mutex<VecDeque<Arc<TelemetryFrame>>>,
    capacity: usize,
    next_seq: AtomicU64,
}

impl FrameRing {
    /// Ring retaining the most recent `capacity` frames (min 1).
    pub fn new(capacity: usize) -> FrameRing {
        FrameRing {
            frames: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            next_seq: AtomicU64::new(0),
        }
    }

    /// Number of frames retained before overwrite.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sequence number for the next frame (1-based).
    pub fn alloc_seq(&self) -> u64 {
        self.next_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Append a frame, evicting the oldest past capacity.
    pub fn push(&self, frame: TelemetryFrame) -> Arc<TelemetryFrame> {
        let frame = Arc::new(frame);
        let mut q = self.frames.lock().unwrap();
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(Arc::clone(&frame));
        frame
    }

    /// Every retained frame, oldest first.
    pub fn frames(&self) -> Vec<Arc<TelemetryFrame>> {
        self.frames.lock().unwrap().iter().cloned().collect()
    }

    /// The newest frame, if any tick has happened.
    pub fn latest(&self) -> Option<Arc<TelemetryFrame>> {
        self.frames.lock().unwrap().back().cloned()
    }

    /// Total frames ever pushed (not capped by capacity).
    pub fn frames_seen(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }
}

/// One frame as a JSON object. Counters serialize sparsely (only
/// non-zero deltas) to keep a full ring's `/frames` response small;
/// histogram detail is pre-reduced to the stall percentiles.
pub fn frame_to_json(f: &TelemetryFrame) -> String {
    let ranks: Vec<String> = f
        .ranks
        .iter()
        .map(|r| {
            let counters: Vec<String> = Metric::ALL
                .iter()
                .filter(|m| r.delta.get(**m) > 0)
                .map(|m| format!("\"{}\":{}", m.name(), r.delta.get(*m)))
                .collect();
            let (p, u, s, a) = r.queue_depths;
            format!(
                "{{\"group\":{},\"rank\":{},\"label\":\"{}\",\"done\":{},\
                 \"queues\":{{\"posted\":{p},\"unexpected\":{u},\
                 \"pending_sends\":{s},\"active_recvs\":{a}}},\
                 \"heap_used_bytes\":{},\"heap_capacity_bytes\":{},\
                 \"gc_stall_p50_nanos\":{},\"gc_stall_p99_nanos\":{},\
                 \"counters\":{{{}}},\"inflight\":{}}}",
                r.group,
                r.rank,
                crate::doctor::esc(&r.label),
                r.done,
                r.heap_used_bytes,
                r.heap_capacity_bytes,
                r.gc_stall_p50_nanos,
                r.gc_stall_p99_nanos,
                counters.join(","),
                inflight_json(&r.inflight),
            )
        })
        .collect();
    format!(
        "{{\"seq\":{},\"t_nanos\":{},\"window_nanos\":{},\"ranks\":[{}]}}",
        f.seq,
        f.t_nanos,
        f.window_nanos,
        ranks.join(",")
    )
}

/// The whole ring as one JSON document (the `/frames` endpoint body).
pub fn frames_to_json(frames: &[Arc<TelemetryFrame>], capacity: usize) -> String {
    let items: Vec<String> = frames.iter().map(|f| frame_to_json(f)).collect();
    format!(
        "{{\"motor_frames\":1,\"capacity\":{capacity},\"frames\":[{}]}}",
        items.join(",")
    )
}

fn gauge_family(
    out: &mut String,
    family: &str,
    f: &TelemetryFrame,
    value: impl Fn(&RankDelta) -> f64,
) {
    out.push_str(&format!("# TYPE {family} gauge\n"));
    for r in &f.ranks {
        out.push_str(&format!(
            "{family}{{group=\"{}\",rank=\"{}\"}} {}\n",
            r.group,
            r.rank,
            value(r)
        ));
    }
}

/// Rate and sliding-window gauges derived from the newest frame,
/// rendered in Prometheus text exposition (appended to `/metrics` after
/// the cumulative families). Everything here is a gauge: rates go up and
/// down, window percentiles reset every tick.
pub fn frame_prometheus(f: &TelemetryFrame) -> String {
    let w = f.window_nanos;
    let mut out = String::new();
    gauge_family(&mut out, "motor_rate_msgs_out_per_sec", f, |r| {
        per_sec(r.msgs_out(), w)
    });
    gauge_family(&mut out, "motor_rate_msgs_in_per_sec", f, |r| {
        per_sec(r.msgs_in(), w)
    });
    gauge_family(&mut out, "motor_rate_bytes_out_per_sec", f, |r| {
        per_sec(r.delta.get(Metric::ChanBytesOut), w)
    });
    gauge_family(&mut out, "motor_rate_bytes_in_per_sec", f, |r| {
        per_sec(r.delta.get(Metric::ChanBytesIn), w)
    });
    gauge_family(&mut out, "motor_window_gc_stall_p50_nanos", f, |r| {
        r.gc_stall_p50_nanos as f64
    });
    gauge_family(&mut out, "motor_window_gc_stall_p99_nanos", f, |r| {
        r.gc_stall_p99_nanos as f64
    });
    gauge_family(&mut out, "motor_window_wait_p99_nanos", f, |r| {
        r.delta.percentile(Hist::WaitNanos, 0.99) as f64
    });
    gauge_family(&mut out, "motor_window_overlap_ratio", f, |r| {
        r.window_overlap_ratio().unwrap_or(0.0)
    });
    gauge_family(&mut out, "motor_heap_used_bytes", f, |r| {
        r.heap_used_bytes as f64
    });
    gauge_family(&mut out, "motor_heap_capacity_bytes", f, |r| {
        r.heap_capacity_bytes as f64
    });
    gauge_family(&mut out, "motor_inflight_ops", f, |r| {
        r.inflight.len() as f64
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_prometheus_text, MetricsRegistry};

    fn delta(rank: usize) -> RankDelta {
        let r = MetricsRegistry::new();
        r.add(Metric::SendsEager, 10);
        r.add(Metric::ChanBytesOut, 4096);
        r.record(Hist::SafepointStallNanos, 1500);
        RankDelta {
            group: 0,
            rank,
            label: format!("rank {rank}"),
            done: false,
            queue_depths: (1, 0, 2, 0),
            heap_used_bytes: 1 << 20,
            heap_capacity_bytes: 1 << 24,
            gc_stall_p50_nanos: 1100,
            gc_stall_p99_nanos: 2000,
            delta: r.snapshot(),
            inflight: Vec::new(),
        }
    }

    fn frame(seq: u64) -> TelemetryFrame {
        TelemetryFrame {
            seq,
            t_nanos: seq * 1_000_000,
            window_nanos: 1_000_000,
            ranks: vec![delta(0), delta(1)],
        }
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let ring = FrameRing::new(4);
        for _ in 0..10 {
            let seq = ring.alloc_seq();
            ring.push(frame(seq));
        }
        let frames = ring.frames();
        assert_eq!(frames.len(), 4);
        let seqs: Vec<u64> = frames.iter().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10]);
        assert_eq!(ring.latest().unwrap().seq, 10);
        assert_eq!(ring.frames_seen(), 10);
    }

    #[test]
    fn frame_json_parses_and_is_sparse() {
        let f = frame(3);
        let text = frames_to_json(&[Arc::new(f)], 240);
        let v = crate::export::json::parse(&text).expect("frames JSON parses");
        assert_eq!(v.get("motor_frames").and_then(|x| x.as_u64()), Some(1));
        let frames = v.get("frames").and_then(|x| x.as_array()).unwrap();
        assert_eq!(frames.len(), 1);
        let ranks = frames[0].get("ranks").and_then(|x| x.as_array()).unwrap();
        assert_eq!(ranks.len(), 2);
        let counters = ranks[0].get("counters").unwrap();
        assert_eq!(
            counters.get("sends_eager").and_then(|x| x.as_u64()),
            Some(10)
        );
        // Zero deltas are omitted from the wire format.
        assert!(counters.get("sends_rndv").is_none());
        assert_eq!(
            ranks[1].get("gc_stall_p99_nanos").and_then(|x| x.as_u64()),
            Some(2000)
        );
    }

    #[test]
    fn rate_math() {
        let d = delta(0);
        assert_eq!(d.msgs_out(), 10);
        // 10 msgs over 1 ms = 10k msg/s.
        assert!((per_sec(d.msgs_out(), 1_000_000) - 10_000.0).abs() < 1e-6);
        assert_eq!(per_sec(5, 0), 0.0);
    }

    #[test]
    fn frame_gauges_pass_exposition_check() {
        let text = frame_prometheus(&frame(1));
        check_prometheus_text(&text).expect("valid exposition format");
        assert!(text.contains("# TYPE motor_rate_msgs_out_per_sec gauge"));
        assert!(text.contains("motor_rate_msgs_out_per_sec{group=\"0\",rank=\"1\"} 10000"));
        assert!(text.contains("motor_window_gc_stall_p99_nanos{group=\"0\",rank=\"0\"} 2000"));
        assert!(text.contains("motor_heap_used_bytes{group=\"0\",rank=\"0\"} 1048576"));
    }
}
