//! Continuous-profiling primitives: per-rank time-bucket accounting,
//! comm/compute overlap tracking, and the IL hotness table.
//!
//! Everything here is lock-free and built for a **single writer** — the
//! rank thread — with any number of concurrent readers (the sampling
//! profiler thread, `motor-doctor`, snapshot collection). Writes are
//! relaxed atomics; a racing reader can observe a slightly stale value
//! but never a torn or corrupt one.
//!
//! # Time buckets
//!
//! [`PhaseStats`] classifies a rank's wall clock into the five
//! [`TimeBucket`]s by piggybacking on the span layer: opening a span
//! whose [`SpanKind`](crate::SpanKind) classifies to a bucket pushes
//! that bucket onto a small phase stack; dropping the guard pops it.
//! Time accrues to whatever bucket is on top — [`TimeBucket::Compute`]
//! whenever nothing else is — so the buckets always partition the wall
//! clock exactly, from [`PhaseStats::start_at`] to the moment of
//! observation. Nesting attributes correctly: a GC pause inside an
//! `mp_wait` bills the pause to `gc`, not `comm_wait`.
//!
//! # Overlap
//!
//! The same flush points maintain two more accumulators: the union of
//! in-flight non-blocking op intervals (`inflight_nanos`, while
//! [`PhaseStats::async_begin_at`]..[`PhaseStats::async_end_at`] nesting
//! is non-zero) and the portion of that union spent in the `compute`
//! bucket (`overlap_nanos`). Their ratio is the comm/compute overlap
//! ratio — the headline metric for asynchronous-progress work.
//!
//! Every transition method takes an explicit `now` timestamp so the
//! whole machine runs unchanged under `motor-sim`'s virtual clock; the
//! [`MetricsRegistry`](crate::MetricsRegistry) wrappers feed it the
//! registry clock.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Number of [`TimeBucket`]s.
pub const N_BUCKETS: usize = 5;

/// Maximum phase-nesting depth tracked exactly; deeper nesting keeps
/// billing the bucket at the cap (and still pops correctly).
const MAX_PHASE_DEPTH: usize = 32;

/// Maximum IL shadow-stack depth captured for flamegraph samples.
pub const MAX_IL_STACK: usize = 64;

/// Where a slice of a rank's wall clock went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum TimeBucket {
    /// Application code between message-passing / runtime phases (the
    /// default: whatever is not claimed by another bucket).
    Compute = 0,
    /// Blocking communication: point-to-point ops, waits, probes,
    /// collectives, rendezvous handshakes.
    CommWait = 1,
    /// Explicit non-blocking progress (`test`/`iprobe` polling).
    Progress = 2,
    /// Garbage collection pauses and safepoint stalls.
    Gc = 3,
    /// Object-graph (de)serialization passes.
    Serialize = 4,
}

impl TimeBucket {
    /// Every bucket, in index order.
    pub const ALL: [TimeBucket; N_BUCKETS] = [
        TimeBucket::Compute,
        TimeBucket::CommWait,
        TimeBucket::Progress,
        TimeBucket::Gc,
        TimeBucket::Serialize,
    ];

    /// Stable export name (Prometheus label / JSON key).
    pub fn name(self) -> &'static str {
        match self {
            TimeBucket::Compute => "compute",
            TimeBucket::CommWait => "comm_wait",
            TimeBucket::Progress => "progress",
            TimeBucket::Gc => "gc",
            TimeBucket::Serialize => "serialize",
        }
    }
}

/// Observed totals of a [`PhaseStats`] at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// Nanoseconds accrued per [`TimeBucket`] (index order).
    pub bucket_nanos: [u64; N_BUCKETS],
    /// Union of in-flight non-blocking op intervals (nanoseconds).
    pub inflight_nanos: u64,
    /// Portion of `inflight_nanos` spent computing (nanoseconds).
    pub overlap_nanos: u64,
}

impl PhaseSnapshot {
    /// Total accounted wall clock: the buckets partition the window from
    /// `start_at` to the observation instant, so this *is* the window.
    pub fn wall_nanos(&self) -> u64 {
        self.bucket_nanos.iter().sum()
    }

    /// Comm/compute overlap ratio: the fraction of in-flight op time
    /// that overlapped computation. `None` when nothing was in flight.
    pub fn overlap_ratio(&self) -> Option<f64> {
        if self.inflight_nanos == 0 {
            None
        } else {
            Some(self.overlap_nanos as f64 / self.inflight_nanos as f64)
        }
    }
}

/// Online per-rank time-bucket and overlap accounting (see module docs).
#[derive(Debug)]
pub struct PhaseStats {
    started: AtomicBool,
    last_flush: AtomicU64,
    cur: AtomicUsize,
    depth: AtomicUsize,
    stack: [AtomicUsize; MAX_PHASE_DEPTH],
    bucket_nanos: [AtomicU64; N_BUCKETS],
    async_ops: AtomicU64,
    inflight_nanos: AtomicU64,
    overlap_nanos: AtomicU64,
}

impl Default for PhaseStats {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseStats {
    /// A fresh, not-yet-started accounting machine (all transitions are
    /// no-ops until [`Self::start_at`]).
    pub fn new() -> PhaseStats {
        PhaseStats {
            started: AtomicBool::new(false),
            last_flush: AtomicU64::new(0),
            cur: AtomicUsize::new(TimeBucket::Compute as usize),
            depth: AtomicUsize::new(0),
            stack: std::array::from_fn(|_| AtomicUsize::new(0)),
            bucket_nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            async_ops: AtomicU64::new(0),
            inflight_nanos: AtomicU64::new(0),
            overlap_nanos: AtomicU64::new(0),
        }
    }

    /// Whether accounting has started.
    #[inline]
    pub fn started(&self) -> bool {
        self.started.load(Ordering::Relaxed)
    }

    /// Close the open segment `[last_flush, now)` into the accumulators.
    #[inline]
    fn flush_to(&self, now: u64) {
        let last = self.last_flush.load(Ordering::Relaxed);
        let dt = now.saturating_sub(last);
        if dt > 0 {
            let cur = self.cur.load(Ordering::Relaxed).min(N_BUCKETS - 1);
            self.bucket_nanos[cur].fetch_add(dt, Ordering::Relaxed);
            if self.async_ops.load(Ordering::Relaxed) > 0 {
                self.inflight_nanos.fetch_add(dt, Ordering::Relaxed);
                if cur == TimeBucket::Compute as usize {
                    self.overlap_nanos.fetch_add(dt, Ordering::Relaxed);
                }
            }
        }
        self.last_flush.store(now, Ordering::Relaxed);
    }

    /// Start the accounting clock: everything from `now` on is
    /// classified. Idempotent (a second start is ignored).
    pub fn start_at(&self, now: u64) {
        if self.started.swap(true, Ordering::Relaxed) {
            return;
        }
        self.last_flush.store(now, Ordering::Relaxed);
        self.cur
            .store(TimeBucket::Compute as usize, Ordering::Relaxed);
        self.depth.store(0, Ordering::Relaxed);
    }

    /// Enter `bucket` (e.g. a classified span opened). Returns whether
    /// the push was recorded — the caller must pop iff it was.
    #[inline]
    pub fn push_at(&self, bucket: TimeBucket, now: u64) -> bool {
        if !self.started() {
            return false;
        }
        self.flush_to(now);
        let d = self.depth.load(Ordering::Relaxed);
        if d < MAX_PHASE_DEPTH {
            self.stack[d].store(self.cur.load(Ordering::Relaxed), Ordering::Relaxed);
            self.cur.store(bucket as usize, Ordering::Relaxed);
        }
        self.depth.store(d + 1, Ordering::Relaxed);
        true
    }

    /// Leave the bucket entered by the matching [`Self::push_at`].
    #[inline]
    pub fn pop_at(&self, now: u64) {
        let d = self.depth.load(Ordering::Relaxed);
        if !self.started() || d == 0 {
            return;
        }
        self.flush_to(now);
        let d = d - 1;
        self.depth.store(d, Ordering::Relaxed);
        if d < MAX_PHASE_DEPTH {
            self.cur
                .store(self.stack[d].load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// A non-blocking operation went in flight.
    #[inline]
    pub fn async_begin_at(&self, now: u64) {
        if self.started() {
            self.flush_to(now);
        }
        self.async_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// A non-blocking operation completed (or was dropped).
    #[inline]
    pub fn async_end_at(&self, now: u64) {
        if self.started() {
            self.flush_to(now);
        }
        // Saturating decrement: a stray end (e.g. double-completion in a
        // torn-down cluster) must not wrap the gauge to u64::MAX.
        let _ = self
            .async_ops
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
    }

    /// The bucket currently accruing time.
    #[inline]
    pub fn current_bucket(&self) -> TimeBucket {
        TimeBucket::ALL[self.cur.load(Ordering::Relaxed).min(N_BUCKETS - 1)]
    }

    /// Totals as of `now`, including the still-open segment. Read-only:
    /// safe to call from any thread while the owner keeps transitioning
    /// (a racing reader sees totals at most one segment stale).
    pub fn read_at(&self, now: u64) -> PhaseSnapshot {
        let mut snap = PhaseSnapshot::default();
        if !self.started() {
            return snap;
        }
        for (i, b) in self.bucket_nanos.iter().enumerate() {
            snap.bucket_nanos[i] = b.load(Ordering::Relaxed);
        }
        snap.inflight_nanos = self.inflight_nanos.load(Ordering::Relaxed);
        snap.overlap_nanos = self.overlap_nanos.load(Ordering::Relaxed);
        let last = self.last_flush.load(Ordering::Relaxed);
        let dt = now.saturating_sub(last);
        if dt > 0 {
            let cur = self.cur.load(Ordering::Relaxed).min(N_BUCKETS - 1);
            snap.bucket_nanos[cur] += dt;
            if self.async_ops.load(Ordering::Relaxed) > 0 {
                snap.inflight_nanos += dt;
                if cur == TimeBucket::Compute as usize {
                    snap.overlap_nanos += dt;
                }
            }
        }
        snap
    }
}

/// Per-function hotness counters.
#[derive(Debug, Default)]
pub struct FuncHot {
    /// Invocations of the function.
    pub calls: AtomicU64,
    /// Loop back-edges taken inside the function.
    pub backedges: AtomicU64,
}

/// One function's hotness, snapshotted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncHotness {
    /// Function name.
    pub name: String,
    /// Invocations.
    pub calls: u64,
    /// Loop back-edges taken.
    pub backedges: u64,
}

/// Lock-free IL hotness table for one interpreter (= one rank thread):
/// per-function invocation and back-edge counters, a sampled opcode-mix
/// histogram, and the sampler-visible current state (shadow call stack
/// plus current function/pc).
///
/// The interpreter is the single writer; the sampling profiler thread
/// reads concurrently. The shadow stack is captured opportunistically —
/// a sample racing a call/return may drop or duplicate the youngest
/// frame, which is exactly the tolerance a statistical profiler has
/// anyway.
#[derive(Debug)]
pub struct IlHot {
    names: Vec<String>,
    funcs: Vec<FuncHot>,
    op_names: Vec<&'static str>,
    op_mix: Vec<AtomicU64>,
    /// `(func + 1) << 32 | pc`; 0 when idle.
    cur: AtomicU64,
    depth: AtomicUsize,
    stack: [AtomicU32; MAX_IL_STACK],
}

impl IlHot {
    /// Table for `names.len()` functions and the given opcode name set.
    pub fn new(names: Vec<String>, op_names: Vec<&'static str>) -> IlHot {
        let funcs = (0..names.len()).map(|_| FuncHot::default()).collect();
        let op_mix = (0..op_names.len()).map(|_| AtomicU64::new(0)).collect();
        IlHot {
            names,
            funcs,
            op_names,
            op_mix,
            cur: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
            stack: std::array::from_fn(|_| AtomicU32::new(0)),
        }
    }

    #[inline]
    fn pack(f: u32, pc: u32) -> u64 {
        ((f as u64 + 1) << 32) | pc as u64
    }

    /// Function `f` was invoked (interpreter hook).
    #[inline]
    pub fn on_call(&self, f: u32) {
        if let Some(c) = self.funcs.get(f as usize) {
            // Single-writer (the interpreter thread): a plain load+store
            // increment compiles to unlocked movs, where fetch_add is a
            // full `lock xadd` — and this runs on every function entry.
            c.calls
                .store(c.calls.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        }
        let d = self.depth.load(Ordering::Relaxed);
        if d < MAX_IL_STACK {
            self.stack[d].store(f, Ordering::Relaxed);
        }
        self.depth.store(d + 1, Ordering::Relaxed);
        self.cur.store(Self::pack(f, 0), Ordering::Relaxed);
    }

    /// The current function returned (interpreter hook).
    #[inline]
    pub fn on_return(&self) {
        let d = self.depth.load(Ordering::Relaxed).saturating_sub(1);
        self.depth.store(d, Ordering::Relaxed);
        let cur = if d == 0 || d > MAX_IL_STACK {
            0
        } else {
            Self::pack(self.stack[d - 1].load(Ordering::Relaxed), u32::MAX)
        };
        self.cur.store(cur, Ordering::Relaxed);
    }

    /// A backward branch was taken at `pc` in function `f`.
    #[inline]
    pub fn on_backedge(&self, f: u32, pc: u32) {
        if let Some(c) = self.funcs.get(f as usize) {
            // Single-writer increment (see `on_call`) — this one runs on
            // every loop trip of every interpreted function.
            c.backedges
                .store(c.backedges.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        }
        self.cur.store(Self::pack(f, pc), Ordering::Relaxed);
    }

    /// Periodic opcode-mix sample: the interpreter is executing opcode
    /// `op_idx` at `pc` in function `f`.
    #[inline]
    pub fn sample_op(&self, op_idx: usize, f: u32, pc: u32) {
        if let Some(c) = self.op_mix.get(op_idx) {
            // Single-writer increment (see `on_call`).
            c.store(c.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        }
        self.cur.store(Self::pack(f, pc), Ordering::Relaxed);
    }

    /// Currently executing `(function, pc)`, if the interpreter is live.
    pub fn current(&self) -> Option<(u32, u32)> {
        let v = self.cur.load(Ordering::Relaxed);
        if v == 0 {
            None
        } else {
            Some(((v >> 32) as u32 - 1, v as u32))
        }
    }

    /// Opportunistic copy of the shadow call stack, outermost first.
    /// Frames with out-of-range function indices (torn reads) are
    /// dropped.
    pub fn stack_snapshot(&self) -> Vec<u32> {
        let d = self.depth.load(Ordering::Relaxed).min(MAX_IL_STACK);
        (0..d)
            .map(|i| self.stack[i].load(Ordering::Relaxed))
            .filter(|&f| (f as usize) < self.names.len())
            .collect()
    }

    /// Function names, by index.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Opcode names, by profile index.
    pub fn op_names(&self) -> &[&'static str] {
        &self.op_names
    }

    /// Sampled opcode-mix counts, by profile index.
    pub fn op_counts(&self) -> Vec<u64> {
        self.op_mix
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Per-function hotness, sorted hottest first (back-edges weigh the
    /// ranking — a function's loop trips dominate its call count — with
    /// calls as the tie-breaker).
    pub fn top_functions(&self) -> Vec<FuncHotness> {
        let mut v: Vec<FuncHotness> = self
            .names
            .iter()
            .zip(&self.funcs)
            .map(|(name, f)| FuncHotness {
                name: name.clone(),
                calls: f.calls.load(Ordering::Relaxed),
                backedges: f.backedges.load(Ordering::Relaxed),
            })
            .collect();
        v.sort_by(|a, b| (b.backedges, b.calls, &a.name).cmp(&(a.backedges, a.calls, &b.name)));
        v
    }

    /// The hottest function by [`Self::top_functions`] order.
    pub fn hottest(&self) -> Option<FuncHotness> {
        self.top_functions().into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_wall_clock() {
        let p = PhaseStats::new();
        p.start_at(100);
        assert!(p.push_at(TimeBucket::CommWait, 200)); // compute 100..200
        assert!(p.push_at(TimeBucket::Gc, 250)); // comm_wait 200..250
        p.pop_at(300); // gc 250..300
        p.pop_at(400); // comm_wait 300..400
        let s = p.read_at(450); // compute 400..450
        assert_eq!(s.bucket_nanos[TimeBucket::Compute as usize], 150);
        assert_eq!(s.bucket_nanos[TimeBucket::CommWait as usize], 150);
        assert_eq!(s.bucket_nanos[TimeBucket::Gc as usize], 50);
        assert_eq!(s.wall_nanos(), 350);
    }

    #[test]
    fn transitions_before_start_are_noops() {
        let p = PhaseStats::new();
        assert!(!p.push_at(TimeBucket::CommWait, 50));
        p.pop_at(60);
        assert_eq!(p.read_at(100), PhaseSnapshot::default());
        p.start_at(100);
        assert_eq!(p.read_at(150).wall_nanos(), 50);
    }

    #[test]
    fn overlap_counts_compute_while_in_flight() {
        let p = PhaseStats::new();
        p.start_at(0);
        p.async_begin_at(100); // compute+inflight from 100
        assert!(p.push_at(TimeBucket::CommWait, 300)); // overlap 100..300
        p.pop_at(400); // inflight-but-waiting 300..400
        p.async_end_at(600); // overlap 400..600
        let s = p.read_at(1000);
        assert_eq!(s.inflight_nanos, 500);
        assert_eq!(s.overlap_nanos, 400);
        assert_eq!(s.overlap_ratio(), Some(0.8));
        assert_eq!(s.wall_nanos(), 1000);
    }

    #[test]
    fn deep_nesting_saturates_but_stays_paired() {
        let p = PhaseStats::new();
        p.start_at(0);
        for i in 0..(MAX_PHASE_DEPTH + 10) as u64 {
            assert!(p.push_at(TimeBucket::Serialize, i));
        }
        for i in 0..(MAX_PHASE_DEPTH + 10) as u64 {
            p.pop_at(100 + i);
        }
        assert_eq!(p.current_bucket(), TimeBucket::Compute);
    }

    #[test]
    fn async_end_never_underflows() {
        let p = PhaseStats::new();
        p.start_at(0);
        p.async_end_at(10);
        p.async_begin_at(20);
        p.async_end_at(30);
        let s = p.read_at(40);
        assert_eq!(s.inflight_nanos, 10);
    }

    #[test]
    fn hotness_table_counts_and_ranks() {
        let h = IlHot::new(
            vec!["main".into(), "dot".into(), "axpy".into()],
            vec!["add", "br"],
        );
        h.on_call(0);
        for _ in 0..10 {
            h.on_call(1);
            for pc in 0..100 {
                h.on_backedge(1, pc);
            }
            h.on_return();
        }
        h.on_call(2);
        h.on_backedge(2, 7);
        h.on_return();
        h.sample_op(1, 2, 7);
        h.on_return();
        let top = h.top_functions();
        assert_eq!(top[0].name, "dot");
        assert_eq!(top[0].calls, 10);
        assert_eq!(top[0].backedges, 1000);
        assert_eq!(h.hottest().unwrap().name, "dot");
        assert_eq!(h.op_counts(), vec![0, 1]);
        assert_eq!(h.current(), None, "returned to idle");
    }

    #[test]
    fn shadow_stack_tracks_nesting() {
        let h = IlHot::new(vec!["a".into(), "b".into()], vec![]);
        h.on_call(0);
        h.on_call(1);
        assert_eq!(h.stack_snapshot(), vec![0, 1]);
        assert_eq!(h.current(), Some((1, 0)));
        h.on_return();
        assert_eq!(h.stack_snapshot(), vec![0]);
        assert_eq!(h.current(), Some((0, u32::MAX)));
        h.on_return();
        assert!(h.stack_snapshot().is_empty());
    }
}
