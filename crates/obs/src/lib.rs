//! Observability for the Motor stack: a lock-free per-rank metrics
//! registry plus a fixed-capacity event-trace ring.
//!
//! The paper's argument is a *measured* cost structure — FCall vs
//! P/Invoke/JNI transitions, pin-avoidance, eager vs rendezvous — so every
//! layer (channel, device, comm, pinning, serializer, buffer pool, GC)
//! reports into one [`MetricsRegistry`]. Hot paths pay exactly one relaxed
//! atomic RMW per counter bump and never take a lock:
//!
//! * **Counters** ([`Metric`]) are monotonic `AtomicU64`s, except a few
//!   high-water marks (`*_peak`) maintained with a CAS max-loop and merged
//!   across ranks by `max` rather than `+`.
//! * **Histograms** ([`Hist`]) are 64 log2 buckets of `AtomicU64` — a
//!   value `v` lands in bucket `ceil(log2(v+1))`, so bucket 0 is exactly 0,
//!   bucket 1 is 1, bucket k covers `(2^(k-1), 2^k]`.
//! * **Events** go to a fixed-capacity ring stamped by a monotonically
//!   increasing sequence; writers claim a slot with one `fetch_add` and
//!   publish with a release store, old entries are overwritten.
//!
//! [`MetricsRegistry::snapshot`] is wait-free for writers; snapshots can be
//! [`diff`](MetricsSnapshot::diff)-ed (what happened between two points),
//! [`merge`](MetricsSnapshot::merge)-d (across ranks or across the device-
//! and VM-side registries of one rank), and exported as CSV or JSON.

use std::fmt;
use std::sync::atomic::{fence, AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

pub mod doctor;
pub mod export;
pub mod profile;
pub mod prom;
pub mod span;
pub mod telemetry;
pub mod trace;

pub use doctor::{
    classify, Anomaly, AnomalyKind, DoctorConfig, FlightRecord, InflightOp, InflightTable,
    RankFlight, RankHealth, INFLIGHT_NONE,
};
pub use export::{from_chrome_json, to_chrome_json};
pub use profile::{FuncHotness, IlHot, PhaseSnapshot, PhaseStats, TimeBucket, N_BUCKETS};
pub use prom::{check_prometheus_text, to_prometheus, to_prometheus_multi};
pub use span::{span_arg_peer_tag, span_arg_unpack, SpanGuard, SpanKind};
pub use telemetry::{
    frame_prometheus, frame_to_json, frames_to_json, FrameRing, RankDelta, TelemetryFrame,
    DEFAULT_FRAME_CAPACITY,
};
pub use trace::{
    build_cluster_trace, estimate_clock_offset, ClusterTrace, EdgeKind, MessageEdge, TraceSpan,
    MSG_RNDV_FLAG,
};

/// Number of log2 buckets per histogram (covers the full u64 range).
pub const HIST_BUCKETS: usize = 64;

/// Default capacity of the event-trace ring.
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

macro_rules! define_metrics {
    ($( $(#[$doc:meta])* $variant:ident => $name:literal ),+ $(,)?) => {
        /// Monotonic counter identifiers. `*Peak` entries are high-water
        /// marks (merged by `max`, bumped with [`MetricsRegistry::record_max`]).
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum Metric {
            $( $(#[$doc])* $variant ),+
        }

        impl Metric {
            /// Number of defined counters.
            pub const COUNT: usize = [$(Metric::$variant),+].len();
            /// Every counter, in declaration (= export) order.
            pub const ALL: [Metric; Self::COUNT] = [$(Metric::$variant),+];

            /// Stable export name (CSV column / JSON key).
            pub fn name(self) -> &'static str {
                match self {
                    $( Metric::$variant => $name ),+
                }
            }
        }
    };
}

define_metrics! {
    // ---- channel layer (frames on the wire) ----
    /// Frames written to the link by `pump_out`.
    ChanFramesOut => "chan_frames_out",
    /// Payload bytes written to the link.
    ChanBytesOut => "chan_bytes_out",
    /// Frames fully received by `pump_in`.
    ChanFramesIn => "chan_frames_in",
    /// Payload bytes received from the link.
    ChanBytesIn => "chan_bytes_in",

    // ---- device layer (CH3-style protocol engine) ----
    /// Sends that took the eager path (payload rides the first frame).
    SendsEager => "sends_eager",
    /// Sends that took the rendezvous path (RTS/CTS handshake).
    SendsRndv => "sends_rndv",
    /// Synchronous-mode sends (eager-sync with explicit ack).
    SendsSync => "sends_sync",
    /// Loopback sends delivered without touching a link.
    SendsSelf => "sends_self",
    /// Receives that had to be queued on the posted queue.
    RecvsPosted => "recvs_posted",
    /// Receives satisfied from the unexpected queue.
    RecvsUnexpected => "recvs_unexpected",
    /// Envelope comparisons while matching posted/unexpected queues.
    MatchAttempts => "match_attempts",
    /// Rendezvous ready-to-send control packets received.
    RndvRtsIn => "rndv_rts_in",
    /// Rendezvous clear-to-send control packets received.
    RndvCtsIn => "rndv_cts_in",
    /// Rendezvous transfers fully completed.
    RndvDone => "rndv_done",
    /// High-water mark of the posted-receive queue.
    PostedQueuePeak => "posted_queue_peak",
    /// High-water mark of the unexpected-message queue.
    UnexpectedQueuePeak => "unexpected_queue_peak",
    /// Progress-engine pump invocations.
    ProgressPolls => "progress_polls",
    /// Requests completed by progress passes (eager matches, rendezvous
    /// completions, sync-acks) — the asynchronous progress engine's
    /// throughput gauge.
    ProgressOpsCompleted => "progress_ops_completed",
    /// Progress passes stolen on behalf of this device by another rank's
    /// parked thread (`poke`-style stealable progress).
    ProgressSteals => "progress_steals",
    /// Nanoseconds a dedicated progress-engine thread spent pumping this
    /// device — communication work done off the rank thread, i.e. the
    /// off-thread share of the `progress` time bucket.
    ProgressEngineNanos => "progress_engine_nanos",
    /// Links dropped after a transport failure (peer closed mid-stream);
    /// each drop fails every in-flight operation bound to that peer.
    LinksDropped => "links_dropped",

    // ---- comm layer (per-collective call counts) ----
    /// `barrier` calls.
    CollBarrier => "coll_barrier",
    /// `bcast` calls.
    CollBcast => "coll_bcast",
    /// `scatter` calls.
    CollScatter => "coll_scatter",
    /// `scatterv` calls.
    CollScatterv => "coll_scatterv",
    /// `gather` calls.
    CollGather => "coll_gather",
    /// `gatherv` calls.
    CollGatherv => "coll_gatherv",
    /// `allgather` calls.
    CollAllgather => "coll_allgather",
    /// `reduce` calls.
    CollReduce => "coll_reduce",
    /// `allreduce` calls.
    CollAllreduce => "coll_allreduce",
    /// `scan` calls.
    CollScan => "coll_scan",
    /// `alltoall` calls.
    CollAlltoall => "coll_alltoall",

    // ---- System.MP.OO (object-passing operations) ----
    /// `osend`/`osend_range` calls.
    OompOsends => "oomp_osends",
    /// `orecv` calls.
    OompOrecvs => "oomp_orecvs",
    /// Object-graph collective calls (`obcast`/`oscatter`/`ogather`).
    OompCollectives => "oomp_collectives",

    // ---- serializer ----
    /// Object graphs serialized.
    SerOps => "ser_ops",
    /// Objects walked while serializing.
    SerObjects => "ser_objects",
    /// Wire bytes produced by the serializer.
    SerBytes => "ser_bytes",
    /// Visited-structure probes while serializing.
    SerVisitedProbes => "ser_visited_probes",
    /// Object graphs deserialized.
    DeserOps => "deser_ops",
    /// Wire bytes consumed by the deserializer.
    DeserBytes => "deser_bytes",

    // ---- transfer buffer pool ----
    /// Pool lookups.
    PoolGets => "pool_gets",
    /// Lookups satisfied by a buffer that already fit.
    PoolHits => "pool_hits",
    /// Lookups that reused a buffer but had to grow it.
    PoolPartialHits => "pool_partial_hits",
    /// Lookups that allocated fresh.
    PoolMisses => "pool_misses",
    /// Buffers returned to the pool.
    PoolPuts => "pool_puts",
    /// Buffers discarded by the GC-epoch trim.
    PoolTrimmed => "pool_trimmed",

    // ---- safepoint ----
    /// Safepoint polls that found a GC pending (the slow path).
    SafepointStalls => "safepoint_stalls",

    // ---- observability self-monitoring ----
    /// Trace-ring events overwritten before they could be snapshotted
    /// (computed at snapshot time from the ring cursor, so a truncated
    /// timeline is never mistaken for a complete one).
    TraceEventsDropped => "trace_events_dropped",
    /// In-flight op registrations dropped because the table was full.
    InflightOverflows => "inflight_overflows",

    // ---- continuous profiling (time buckets / overlap; synthesized
    // ---- from PhaseStats at snapshot time, see profile.rs) ----
    /// Wall clock spent computing (the default bucket).
    ProfComputeNanos => "prof_compute_nanos",
    /// Wall clock spent in blocking communication (ops, waits, probes,
    /// collectives, rendezvous).
    ProfCommWaitNanos => "prof_comm_wait_nanos",
    /// Wall clock spent driving explicit non-blocking progress
    /// (`test`/`iprobe`).
    ProfProgressNanos => "prof_progress_nanos",
    /// Wall clock spent in GC pauses and safepoint stalls.
    ProfGcNanos => "prof_gc_nanos",
    /// Wall clock spent (de)serializing object graphs.
    ProfSerializeNanos => "prof_serialize_nanos",
    /// Union of in-flight non-blocking op intervals.
    ProfInflightNanos => "prof_inflight_nanos",
    /// Portion of `prof_inflight_nanos` that overlapped computation.
    ProfOverlapNanos => "prof_overlap_nanos",
    /// Interpreter-state samples taken by the profiler thread.
    ProfSamples => "prof_samples",

    // ---- static analysis (motor-analyze lint) ----
    /// Definite communication errors reported by the lint passes.
    LintDefinite => "lint_definite",
    /// Possible (imprecision-qualified) lint diagnostics reported.
    LintPossible => "lint_possible",

    // ---- GC bridge (copied from GcStats at snapshot time) ----
    /// Minor collections.
    GcMinorCollections => "gc_minor_collections",
    /// Full collections.
    GcFullCollections => "gc_full_collections",
    /// Objects promoted young -> elder.
    GcObjectsPromoted => "gc_objects_promoted",
    /// Bytes promoted young -> elder.
    GcBytesPromoted => "gc_bytes_promoted",
    /// Pinned blocks promoted in place.
    GcPinnedBlockPromotions => "gc_pinned_block_promotions",
    /// Hard pins taken.
    GcPins => "gc_pins",
    /// Hard pins released.
    GcUnpins => "gc_unpins",
    /// Conditional pins registered (non-blocking ops).
    GcCondPinsRegistered => "gc_cond_pins_registered",
    /// Conditional pins still in flight when a GC resolved them.
    GcCondPinsHeld => "gc_cond_pins_held",
    /// Conditional pins found complete and discarded at mark.
    GcCondPinsReleased => "gc_cond_pins_released",
    /// Pins avoided because the buffer was elder.
    GcPinsAvoidedElder => "gc_pins_avoided_elder",
    /// Pins avoided by the fast-blocking-completion path.
    GcPinsAvoidedFastBlocking => "gc_pins_avoided_fast_blocking",
    /// Objects swept.
    GcObjectsSwept => "gc_objects_swept",
    /// Bytes swept.
    GcBytesSwept => "gc_bytes_swept",
    /// Pinned-set membership checks elided via never-transported proofs.
    GcPinChecksElided => "gc_pin_checks_elided",
}

impl Metric {
    /// High-water marks merge by `max` instead of `+` and survive `diff`.
    pub fn is_peak(self) -> bool {
        matches!(self, Metric::PostedQueuePeak | Metric::UnexpectedQueuePeak)
    }

    /// GC-bridge counters are copied wholesale from [`GcStats`]-style
    /// snapshots rather than bumped through the registry.
    pub fn is_gc_bridge(self) -> bool {
        (self as usize) >= (Metric::GcMinorCollections as usize)
    }

    /// The synthesized phase counter for each [`profile::TimeBucket`],
    /// in bucket order (see [`MetricsSnapshot::bucket_nanos`]).
    pub const BUCKET_METRICS: [Metric; profile::N_BUCKETS] = [
        Metric::ProfComputeNanos,
        Metric::ProfCommWaitNanos,
        Metric::ProfProgressNanos,
        Metric::ProfGcNanos,
        Metric::ProfSerializeNanos,
    ];
}

macro_rules! define_hists {
    ($( $(#[$doc:meta])* $variant:ident => $name:literal ),+ $(,)?) => {
        /// Log2-bucket histogram identifiers.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum Hist {
            $( $(#[$doc])* $variant ),+
        }

        impl Hist {
            /// Number of defined histograms.
            pub const COUNT: usize = [$(Hist::$variant),+].len();
            /// Every histogram, in declaration (= export) order.
            pub const ALL: [Hist; Self::COUNT] = [$(Hist::$variant),+];

            /// Stable export name.
            pub fn name(self) -> &'static str {
                match self {
                    $( Hist::$variant => $name ),+
                }
            }
        }
    };
}

define_hists! {
    /// Payload size of eager-path sends (bytes).
    EagerSendBytes => "eager_send_bytes",
    /// Payload size of rendezvous-path sends (bytes).
    RndvSendBytes => "rndv_send_bytes",
    /// Blocking-wait latency at the device (nanoseconds).
    WaitNanos => "wait_nanos",
    /// Time a mutator stalled at a safepoint for GC (nanoseconds).
    SafepointStallNanos => "safepoint_stall_nanos",
    /// Serialized object-graph sizes (wire bytes per osend).
    SerializedGraphBytes => "serialized_graph_bytes",
    /// Requests completed per batched progress-engine poll (completion
    /// batching: CTS windows and eager frames drained together).
    ProgressBatch => "progress_batch",
}

/// Bucket index for a value: 0 holds exactly 0, bucket k covers
/// `(2^(k-1), 2^k]`.
pub fn log2_bucket(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - (value - 1).leading_zeros()) as usize).clamp(1, HIST_BUCKETS - 1)
    }
}

/// Kinds of entries in the event-trace ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum EventKind {
    /// A blocking operation started (`a` = request/op id, `b` = peer|tag).
    OpBegin = 0,
    /// A blocking operation finished (`a` = request/op id, `b` = nanos).
    OpEnd = 1,
    /// Rendezvous RTS observed (`a` = send id, `b` = payload bytes).
    RndvRts = 2,
    /// Rendezvous CTS observed (`a` = send id, `b` = payload bytes).
    RndvCts = 3,
    /// Rendezvous transfer completed (`a` = send id, `b` = payload bytes).
    RndvDone = 4,
    /// A mutator stalled at a safepoint (`a` = nanos stalled, `b` unused).
    SafepointStall = 5,
    /// A collection started (`a` = 0 minor / 1 full, `b` = epoch).
    GcBegin = 6,
    /// A collection finished (`a` = 0 minor / 1 full, `b` = nanos).
    GcEnd = 7,
    /// A [`span`] opened (`a` = span id, `b` = [`SpanKind`] as u64,
    /// `c` = kind-specific argument, usually [`span_arg_peer_tag`]).
    SpanBegin = 8,
    /// A [`span`] closed (payload mirrors [`EventKind::SpanBegin`]).
    SpanEnd = 9,
    /// A point-to-point payload left this rank (`a` = destination global
    /// rank, `b` = tag as i64, `c` = payload bytes). Stamped when the send
    /// is initiated; the cross-rank trace matches it FIFO against the
    /// peer's [`EventKind::MsgRecv`] with the same `(src, dst, tag)`.
    MsgSend = 10,
    /// A point-to-point receive completed (`a` = source global rank,
    /// `b` = tag as i64, `c` = bytes delivered).
    MsgRecv = 11,
    /// A buffer was pinned (`a` = object address, `b` = 1 if the pin is
    /// conditional — released by the collector when the transport
    /// finishes — 0 for a hard pin).
    PinAcquire = 12,
    /// A hard pin was released (`a` = object address).
    PinRelease = 13,
    /// A serializer pass started (`a` = pass id from [`alloc_span_id`]).
    SerBegin = 14,
    /// A serializer pass finished (`a` = pass id, `b` = wire bytes
    /// produced, `c` = objects walked).
    SerEnd = 15,
    /// A deserializer pass started (`a` = pass id).
    DeserBegin = 16,
    /// A deserializer pass finished (`a` = pass id, `b` = wire bytes
    /// consumed).
    DeserEnd = 17,
    /// A profiler sample of the rank's interpreter state
    /// (`a` = `(func + 1) << 32 | pc`, 0 when no IL is running;
    /// `b` = the native [`profile::TimeBucket`] index at the sample;
    /// `c` = IL shadow-stack depth).
    ProfSample = 18,
}

impl EventKind {
    /// Stable export name.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::OpBegin => "op_begin",
            EventKind::OpEnd => "op_end",
            EventKind::RndvRts => "rndv_rts",
            EventKind::RndvCts => "rndv_cts",
            EventKind::RndvDone => "rndv_done",
            EventKind::SafepointStall => "safepoint_stall",
            EventKind::GcBegin => "gc_begin",
            EventKind::GcEnd => "gc_end",
            EventKind::SpanBegin => "span_begin",
            EventKind::SpanEnd => "span_end",
            EventKind::MsgSend => "msg_send",
            EventKind::MsgRecv => "msg_recv",
            EventKind::PinAcquire => "pin_acquire",
            EventKind::PinRelease => "pin_release",
            EventKind::SerBegin => "ser_begin",
            EventKind::SerEnd => "ser_end",
            EventKind::DeserBegin => "deser_begin",
            EventKind::DeserEnd => "deser_end",
            EventKind::ProfSample => "prof_sample",
        }
    }

    fn from_u64(v: u64) -> Option<EventKind> {
        Some(match v {
            0 => EventKind::OpBegin,
            1 => EventKind::OpEnd,
            2 => EventKind::RndvRts,
            3 => EventKind::RndvCts,
            4 => EventKind::RndvDone,
            5 => EventKind::SafepointStall,
            6 => EventKind::GcBegin,
            7 => EventKind::GcEnd,
            8 => EventKind::SpanBegin,
            9 => EventKind::SpanEnd,
            10 => EventKind::MsgSend,
            11 => EventKind::MsgRecv,
            12 => EventKind::PinAcquire,
            13 => EventKind::PinRelease,
            14 => EventKind::SerBegin,
            15 => EventKind::SerEnd,
            16 => EventKind::DeserBegin,
            17 => EventKind::DeserEnd,
            18 => EventKind::ProfSample,
            _ => return None,
        })
    }
}

/// One recorded trace entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (monotonic per registry, 1-based).
    pub seq: u64,
    /// Nanoseconds since the registry's epoch (see
    /// [`MetricsRegistry::with_epoch`] for sharing epochs across ranks).
    pub t_nanos: u64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload.
    pub a: u64,
    /// Kind-specific payload.
    pub b: u64,
    /// Kind-specific payload (third word; 0 for two-word events).
    pub c: u64,
}

struct EventSlot {
    // 0 = empty; otherwise the 1-based sequence number, published last
    // with Release so readers that Acquire it see the payload stores.
    seq: AtomicU64,
    t_nanos: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    c: AtomicU64,
}

impl EventSlot {
    fn empty() -> Self {
        EventSlot {
            seq: AtomicU64::new(0),
            t_nanos: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
            c: AtomicU64::new(0),
        }
    }
}

/// Process-wide span/pass id allocator. Ids must be unique across every
/// registry of a rank (each rank carries a transport-side *and* a
/// VM-side registry whose event streams are merged), so they come from
/// one shared counter rather than per-registry state.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh id for a span or serializer pass (1-based).
pub fn alloc_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// Lock-free per-rank metrics: counters, histograms, event ring, and the
/// live in-flight op table scanned by `motor-doctor`.
pub struct MetricsRegistry {
    counters: Vec<AtomicU64>,
    hists: Vec<AtomicU64>, // Hist::COUNT * HIST_BUCKETS, row-major
    slots: Vec<EventSlot>,
    next_seq: AtomicU64,
    epoch: Instant,
    /// Calibrated offset added to event timestamps when merging this
    /// rank's trace with its peers' (nanoseconds; see `set_clock_offset`).
    clock_offset: AtomicI64,
    /// What this rank is doing right now (see [`doctor::InflightTable`]).
    inflight: doctor::InflightTable,
    /// Time-bucket and overlap accounting (see [`profile::PhaseStats`]).
    /// Dormant (all transitions no-ops) until [`Self::profile_start`].
    phases: profile::PhaseStats,
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("events_seen", &self.next_seq.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Registry with the default event-ring capacity.
    pub fn new() -> Self {
        Self::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// Registry with an explicit event-ring capacity (rounded up to 1).
    ///
    /// The ring **overwrites on wrap**: once `capacity` events have been
    /// recorded, each new event replaces the oldest one. Snapshots always
    /// return the youngest `<= capacity` events, oldest first; counters
    /// and histograms are unaffected by the wrap.
    pub fn with_event_capacity(capacity: usize) -> Self {
        Self::with_epoch(Instant::now(), capacity)
    }

    /// Registry with an explicit time epoch and event-ring capacity.
    ///
    /// Every event timestamp is nanoseconds since `epoch`. Registries of
    /// ranks that share an address space should share one epoch so their
    /// event streams are directly comparable; registries that cannot
    /// (separate processes/hosts) keep private epochs and align through
    /// [`MetricsRegistry::set_clock_offset`] instead.
    pub fn with_epoch(epoch: Instant, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        MetricsRegistry {
            counters: (0..Metric::COUNT).map(|_| AtomicU64::new(0)).collect(),
            hists: (0..Hist::COUNT * HIST_BUCKETS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            slots: (0..capacity).map(|_| EventSlot::empty()).collect(),
            next_seq: AtomicU64::new(0),
            epoch,
            clock_offset: AtomicI64::new(0),
            inflight: doctor::InflightTable::new(doctor::DEFAULT_INFLIGHT_CAPACITY),
            phases: profile::PhaseStats::new(),
        }
    }

    /// Start this registry's time-bucket accounting: from now on every
    /// classified span open/close transitions the rank's phase, and
    /// [`Self::snapshot`] carries `prof_*` counters that partition the
    /// wall clock since this call. Call once per rank, on the rank's own
    /// thread, before the body runs (`run_cluster` does). Idempotent.
    pub fn profile_start(&self) {
        self.phases.start_at(self.now_nanos());
    }

    /// The phase machine (explicit-timestamp transitions for virtual-
    /// clock tests, current-bucket queries by the sampler).
    pub fn phases(&self) -> &profile::PhaseStats {
        &self.phases
    }

    /// Enter a time bucket outside the span layer (e.g. collective
    /// wrappers, progress polls). The guard pops on drop; no ring events
    /// are written, so this is cheap enough for per-`test` polling.
    #[inline]
    pub fn phase_scope(&self, bucket: profile::TimeBucket) -> PhaseScope<'_> {
        PhaseScope {
            registry: self,
            pushed: self.phases.push_at(bucket, self.now_nanos()),
        }
    }

    /// A non-blocking operation went in flight (overlap accounting).
    #[inline]
    pub fn async_op_begin(&self) {
        self.phases.async_begin_at(self.now_nanos());
    }

    /// A non-blocking operation completed (overlap accounting).
    #[inline]
    pub fn async_op_end(&self) {
        self.phases.async_end_at(self.now_nanos());
    }

    /// Live time-bucket totals as of now (zeroes before
    /// [`Self::profile_start`]).
    pub fn phase_snapshot(&self) -> profile::PhaseSnapshot {
        self.phases.read_at(self.now_nanos())
    }

    /// Register an in-flight op in this registry's live table; pair with
    /// [`Self::op_end`]. Spans do this automatically — use these directly
    /// only for registrations that outlive a stack frame (outstanding
    /// `Isend`/`Irecv`, device-level waits).
    #[inline]
    pub fn op_begin(&self, kind: SpanKind, arg: u64) -> usize {
        self.inflight.begin(kind, arg, self.now_nanos())
    }

    /// Heartbeat a registered op: the op (and the rank) made progress.
    #[inline]
    pub fn op_beat(&self, slot: usize) {
        self.inflight.beat(slot, self.now_nanos());
    }

    /// Deregister an in-flight op.
    #[inline]
    pub fn op_end(&self, slot: usize) {
        self.inflight.end(slot);
    }

    /// Record rank-wide progress without a specific op (the device's
    /// progress engine moved bytes).
    #[inline]
    pub fn note_progress(&self) {
        self.inflight.note_progress(self.now_nanos());
    }

    /// Wait-free copy of the live in-flight op table.
    pub fn inflight_ops(&self) -> Vec<doctor::InflightOp> {
        self.inflight.snapshot()
    }

    /// Registry clock of the last heartbeat on this registry's table.
    pub fn last_progress_nanos(&self) -> u64 {
        self.inflight.last_beat_nanos()
    }

    /// Event-ring capacity (events kept before overwrite-on-wrap).
    pub fn event_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Set the calibrated clock offset: nanoseconds to *add* to this
    /// registry's event timestamps to express them on the cluster
    /// reference clock (rank 0's). Computed by the `run_cluster` startup
    /// handshake; zero when ranks share an epoch.
    pub fn set_clock_offset(&self, nanos: i64) {
        self.clock_offset.store(nanos, Ordering::Relaxed);
    }

    /// The calibrated clock offset (see [`Self::set_clock_offset`]).
    pub fn clock_offset(&self) -> i64 {
        self.clock_offset.load(Ordering::Relaxed)
    }

    /// Add 1 to a counter. One relaxed RMW; no locks.
    #[inline]
    pub fn bump(&self, m: Metric) {
        self.add(m, 1);
    }

    /// Add `n` to a counter.
    #[inline]
    pub fn add(&self, m: Metric, n: u64) {
        self.counters[m as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Raise a high-water mark to at least `v` (CAS max-loop).
    #[inline]
    pub fn record_max(&self, m: Metric, v: u64) {
        let c = &self.counters[m as usize];
        let mut cur = c.load(Ordering::Relaxed);
        while cur < v {
            match c.compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Overwrite a counter (used by the GC bridge at snapshot time).
    #[inline]
    pub fn set(&self, m: Metric, v: u64) {
        self.counters[m as usize].store(v, Ordering::Relaxed);
    }

    /// Current value of a counter.
    #[inline]
    pub fn get(&self, m: Metric) -> u64 {
        self.counters[m as usize].load(Ordering::Relaxed)
    }

    /// Record `value` into a histogram's log2 bucket.
    #[inline]
    pub fn record(&self, h: Hist, value: u64) {
        let idx = (h as usize) * HIST_BUCKETS + log2_bucket(value);
        self.hists[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// The instant this registry's timestamps count from. Builders that
    /// create further registries for the same rank group (e.g. dynamic
    /// spawning) should reuse it so all timestamps stay comparable.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Cheap copy of one histogram's buckets (no event-ring drain) — lets
    /// a monitor thread poll a single histogram without paying for a full
    /// [`Self::snapshot`].
    pub fn hist_snapshot(&self, h: Hist) -> HistSnapshot {
        let base = (h as usize) * HIST_BUCKETS;
        let mut buckets = [0u64; HIST_BUCKETS];
        for (k, b) in buckets.iter_mut().enumerate() {
            *b = self.hists[base + k].load(Ordering::Relaxed);
        }
        HistSnapshot { buckets }
    }

    /// Nanoseconds since this registry was created (event clock).
    #[inline]
    pub fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Append a two-word event to the trace ring (see [`Self::event3`]).
    #[inline]
    pub fn event(&self, kind: EventKind, a: u64, b: u64) {
        self.event3(kind, a, b, 0);
    }

    /// Append an event to the trace ring. Lock-free: one `fetch_add`
    /// claims a slot, a release store publishes it; the oldest entry in
    /// the slot is overwritten (overwrite-on-wrap).
    ///
    /// Publication follows the seqlock protocol: invalidate the slot,
    /// release-fence so the invalidation is ordered before the payload
    /// stores, write the payload, publish the sequence with a release
    /// store. A reader that observes a stable non-zero sequence around
    /// its payload loads (with an acquire fence in between) is guaranteed
    /// an untorn event.
    pub fn event3(&self, kind: EventKind, a: u64, b: u64, c: u64) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let slot = &self.slots[(seq - 1) as usize % self.slots.len()];
        slot.seq.store(0, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.t_nanos.store(self.now_nanos(), Ordering::Relaxed);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.c.store(c, Ordering::Relaxed);
        slot.seq.store(seq, Ordering::Release);
    }

    /// Consistent-enough copy of everything. Wait-free for writers; events
    /// caught mid-write are skipped.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<u64> = self
            .counters
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let hists: Vec<u64> = self
            .hists
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let mut events = Vec::new();
        for slot in &self.slots {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == 0 {
                continue;
            }
            let (t, k, a, b, c) = (
                slot.t_nanos.load(Ordering::Relaxed),
                slot.kind.load(Ordering::Relaxed),
                slot.a.load(Ordering::Relaxed),
                slot.b.load(Ordering::Relaxed),
                slot.c.load(Ordering::Relaxed),
            );
            // Seqlock read validation: the acquire fence orders the payload
            // loads above before the re-check below, so a matching sequence
            // proves the payload was not overwritten mid-read.
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != seq {
                continue; // overwritten while reading
            }
            if let Some(kind) = EventKind::from_u64(k) {
                events.push(Event {
                    seq,
                    t_nanos: t,
                    kind,
                    a,
                    b,
                    c,
                });
            }
        }
        events.sort_by_key(|e| e.seq);
        let events_through = self.next_seq.load(Ordering::Relaxed);
        // Self-monitoring: events the wrap already overwrote, and in-flight
        // registrations the table had to drop. Derived here rather than
        // bumped on the hot path.
        counters[Metric::TraceEventsDropped as usize] =
            events_through.saturating_sub(self.slots.len() as u64);
        counters[Metric::InflightOverflows as usize] = self.inflight.overflows();
        // Time-bucket / overlap attribution: materialized from the phase
        // machine here (including the still-open segment) rather than
        // bumped on the hot path, so the buckets partition the wall clock
        // exactly up to this snapshot.
        let prof = self.phases.read_at(self.now_nanos());
        for (bucket, metric) in profile::TimeBucket::ALL.iter().zip(Metric::BUCKET_METRICS) {
            counters[metric as usize] = prof.bucket_nanos[*bucket as usize];
        }
        counters[Metric::ProfInflightNanos as usize] = prof.inflight_nanos;
        counters[Metric::ProfOverlapNanos as usize] = prof.overlap_nanos;
        MetricsSnapshot {
            counters,
            hists,
            events,
            events_through,
            clock_offset_nanos: self.clock_offset(),
        }
    }
}

/// An entered time bucket (see [`MetricsRegistry::phase_scope`]);
/// dropping it returns the rank to the enclosing bucket.
pub struct PhaseScope<'r> {
    registry: &'r MetricsRegistry,
    pushed: bool,
}

impl Drop for PhaseScope<'_> {
    fn drop(&mut self) {
        if self.pushed {
            self.registry.phases.pop_at(self.registry.now_nanos());
        }
    }
}

/// Per-bucket view of one histogram inside a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// `buckets[k]` counts values in `(2^(k-1), 2^k]` (bucket 0: exactly 0).
    pub buckets: [u64; HIST_BUCKETS],
}

impl HistSnapshot {
    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper bound of the highest non-empty bucket (0 if empty).
    pub fn max_bound(&self) -> u64 {
        match self.buckets.iter().rposition(|&c| c > 0) {
            Some(0) | None => 0,
            Some(k) => 1u64 << k,
        }
    }

    /// Estimated p-quantile (`p` in `[0, 1]`) by linear interpolation
    /// inside the log2 bucket holding the quantile rank. Bucket 0 is
    /// exactly 0; bucket k spans `(2^(k-1), 2^k]`, so the estimate is
    /// within a factor of 2 of the true order statistic. Returns 0 on an
    /// empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let before = cumulative;
            cumulative += c;
            if cumulative >= target {
                if k == 0 {
                    return 0;
                }
                let lo = if k == 1 { 1 } else { (1u64 << (k - 1)) + 1 };
                let hi = 1u64 << k;
                // Midpoint convention: the j-th of c values sits at
                // (j - 0.5) / c of the bucket span, so a lone value
                // estimates the bucket's middle, not its upper bound.
                let frac = ((target - before) as f64 - 0.5) / c as f64;
                return lo + ((hi - lo) as f64 * frac) as u64;
            }
        }
        self.max_bound()
    }

    /// Estimated sum of every recorded value (bucket-midpoint estimate,
    /// the same convention the Prometheus exporter uses for `_sum`).
    pub fn estimated_sum(&self) -> f64 {
        let mut sum = 0.0;
        for (k, &c) in self.buckets.iter().enumerate() {
            if c > 0 && k > 0 {
                let hi = (1u64 << k) as f64;
                sum += c as f64 * (hi / 2.0 + hi) / 2.0;
            }
        }
        sum
    }

    /// Median estimate (see [`Self::percentile`]).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 99th-percentile estimate (see [`Self::percentile`]).
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
}

/// Point-in-time copy of a [`MetricsRegistry`]; also the unit of
/// aggregation across ranks and layers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    counters: Vec<u64>,
    hists: Vec<u64>,
    events: Vec<Event>,
    events_through: u64,
    clock_offset_nanos: i64,
}

impl MetricsSnapshot {
    /// An all-zero snapshot (identity for [`merge`](Self::merge)).
    pub fn empty() -> Self {
        MetricsSnapshot {
            counters: vec![0; Metric::COUNT],
            hists: vec![0; Hist::COUNT * HIST_BUCKETS],
            events: Vec::new(),
            events_through: 0,
            clock_offset_nanos: 0,
        }
    }

    /// The calibrated clock offset of the registry this snapshot was taken
    /// from (nanoseconds to add to event times; see
    /// [`MetricsRegistry::set_clock_offset`]).
    pub fn clock_offset_nanos(&self) -> i64 {
        self.clock_offset_nanos
    }

    /// Value of one counter.
    pub fn get(&self, m: Metric) -> u64 {
        self.counters.get(m as usize).copied().unwrap_or(0)
    }

    /// Per-bucket phase nanos carried by this snapshot, in
    /// [`profile::TimeBucket::ALL`] order. Zeroes unless the registry had
    /// [`MetricsRegistry::profile_start`] called.
    pub fn bucket_nanos(&self) -> [u64; profile::N_BUCKETS] {
        let mut out = [0u64; profile::N_BUCKETS];
        for (slot, m) in out.iter_mut().zip(Metric::BUCKET_METRICS) {
            *slot = self.get(m);
        }
        out
    }

    /// Comm/compute overlap ratio: the fraction of in-flight
    /// non-blocking-op time that coincided with computation. `None` when
    /// nothing was ever in flight.
    pub fn overlap_ratio(&self) -> Option<f64> {
        let inflight = self.get(Metric::ProfInflightNanos);
        if inflight == 0 {
            return None;
        }
        Some(self.get(Metric::ProfOverlapNanos) as f64 / inflight as f64)
    }

    /// Estimated p-quantile of one histogram (see
    /// [`HistSnapshot::percentile`]).
    pub fn percentile(&self, h: Hist, p: f64) -> u64 {
        self.hist(h).percentile(p)
    }

    /// View of one histogram.
    pub fn hist(&self, h: Hist) -> HistSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        let base = (h as usize) * HIST_BUCKETS;
        for (k, b) in buckets.iter_mut().enumerate() {
            *b = self.hists.get(base + k).copied().unwrap_or(0);
        }
        HistSnapshot { buckets }
    }

    /// Recorded trace events, oldest first.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Copy of `self` with the event drain dropped. The telemetry plane's
    /// delta frames carry counters and histograms only — a bounded ring of
    /// frames must not retain every rank's event ring many times over.
    pub fn without_events(mut self) -> MetricsSnapshot {
        self.events.clear();
        self
    }

    /// What happened between `earlier` and `self`: counters and histogram
    /// buckets subtract (saturating), peaks keep the later high-water mark,
    /// and only events newer than `earlier` survive.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = Self::empty();
        for m in Metric::ALL {
            let i = m as usize;
            out.counters[i] = if m.is_peak() {
                self.counters[i]
            } else {
                self.counters[i].saturating_sub(earlier.counters.get(i).copied().unwrap_or(0))
            };
        }
        for (i, slot) in out.hists.iter_mut().enumerate() {
            *slot = self.hists[i].saturating_sub(earlier.hists.get(i).copied().unwrap_or(0));
        }
        out.events = self
            .events
            .iter()
            .filter(|e| e.seq > earlier.events_through)
            .copied()
            .collect();
        out.events_through = self.events_through;
        out.clock_offset_nanos = self.clock_offset_nanos;
        out
    }

    /// Fold `other` into `self`: counters and buckets add, peaks take the
    /// max, event streams concatenate (kept in per-source order).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for m in Metric::ALL {
            let i = m as usize;
            let o = other.counters.get(i).copied().unwrap_or(0);
            if m.is_peak() {
                self.counters[i] = self.counters[i].max(o);
            } else {
                self.counters[i] += o;
            }
        }
        for (i, slot) in self.hists.iter_mut().enumerate() {
            *slot += other.hists.get(i).copied().unwrap_or(0);
        }
        self.events.extend_from_slice(&other.events);
        self.events_through = self.events_through.max(other.events_through);
        // Merging the device- and VM-side registries of one rank: both are
        // calibrated to the same reference, so keep whichever is set.
        if self.clock_offset_nanos == 0 {
            self.clock_offset_nanos = other.clock_offset_nanos;
        }
    }

    /// Merged copy (see [`merge`](Self::merge)).
    pub fn merged(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// Copy a GC-stats snapshot into the `gc_*` bridge counters. The
    /// arguments follow `GcStatsSnapshot` field order; a slice keeps
    /// `motor-obs` free of a dependency on the runtime crate.
    pub fn set_gc_bridge(&mut self, values: &[(Metric, u64)]) {
        for &(m, v) in values {
            debug_assert!(m.is_gc_bridge(), "{} is not a GC bridge counter", m.name());
            self.counters[m as usize] = v;
        }
    }

    /// Header for [`csv_row`](Self::csv_row): `label`, every counter name,
    /// and `<hist>_count`/`<hist>_p50`/`<hist>_p99`/`<hist>_max` per
    /// histogram.
    pub fn csv_header() -> String {
        let mut cols = vec!["label".to_string()];
        cols.extend(Metric::ALL.iter().map(|m| m.name().to_string()));
        for h in Hist::ALL {
            cols.push(format!("{}_count", h.name()));
            cols.push(format!("{}_p50", h.name()));
            cols.push(format!("{}_p99", h.name()));
            cols.push(format!("{}_max", h.name()));
        }
        cols.join(",")
    }

    /// One wide CSV row under [`csv_header`](Self::csv_header).
    pub fn csv_row(&self, label: &str) -> String {
        let mut cols = vec![label.to_string()];
        cols.extend(Metric::ALL.iter().map(|m| self.get(*m).to_string()));
        for h in Hist::ALL {
            let hs = self.hist(h);
            cols.push(hs.count().to_string());
            cols.push(hs.p50().to_string());
            cols.push(hs.p99().to_string());
            cols.push(hs.max_bound().to_string());
        }
        cols.join(",")
    }

    /// The whole snapshot as a JSON object (counters, histogram buckets,
    /// events). Hand-rolled: values are all integers or names.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"counters\":{");
        for (i, m) in Metric::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", m.name(), self.get(*m)));
        }
        s.push_str("},\"hists\":{");
        for (i, h) in Hist::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let hs = self.hist(*h);
            let last = hs.buckets.iter().rposition(|&c| c > 0).map_or(0, |k| k + 1);
            let buckets: Vec<String> = hs.buckets[..last].iter().map(|c| c.to_string()).collect();
            s.push_str(&format!(
                "\"{}\":{{\"buckets\":[{}],\"count\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
                h.name(),
                buckets.join(","),
                hs.count(),
                hs.p50(),
                hs.p99(),
                hs.max_bound()
            ));
        }
        s.push_str(&format!(
            "}},\"clock_offset_nanos\":{},\"events\":[",
            self.clock_offset_nanos
        ));
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"seq\":{},\"t_nanos\":{},\"kind\":\"{}\",\"a\":{},\"b\":{},\"c\":{}}}",
                e.seq,
                e.t_nanos,
                e.kind.name(),
                e.a,
                e.b,
                e.c
            ));
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn log2_bucket_boundaries() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 1);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 2);
        assert_eq!(log2_bucket(5), 3);
        assert_eq!(log2_bucket(1024), 10);
        assert_eq!(log2_bucket(1025), 11);
        assert_eq!(log2_bucket(u64::MAX), 63);
    }

    #[test]
    fn counters_and_peaks() {
        let r = MetricsRegistry::new();
        r.bump(Metric::SendsEager);
        r.add(Metric::SendsEager, 4);
        r.record_max(Metric::PostedQueuePeak, 3);
        r.record_max(Metric::PostedQueuePeak, 2);
        let s = r.snapshot();
        assert_eq!(s.get(Metric::SendsEager), 5);
        assert_eq!(s.get(Metric::PostedQueuePeak), 3);
    }

    #[test]
    fn diff_subtracts_counters_but_keeps_peaks() {
        let r = MetricsRegistry::new();
        r.add(Metric::ChanBytesOut, 100);
        r.record_max(Metric::UnexpectedQueuePeak, 7);
        let a = r.snapshot();
        r.add(Metric::ChanBytesOut, 50);
        r.event(EventKind::RndvRts, 1, 2);
        let b = r.snapshot();
        let d = b.diff(&a);
        assert_eq!(d.get(Metric::ChanBytesOut), 50);
        assert_eq!(d.get(Metric::UnexpectedQueuePeak), 7);
        assert_eq!(d.events().len(), 1);
        assert_eq!(d.events()[0].kind, EventKind::RndvRts);
    }

    #[test]
    fn merge_adds_and_maxes() {
        let r1 = MetricsRegistry::new();
        let r2 = MetricsRegistry::new();
        r1.add(Metric::SendsRndv, 2);
        r1.record_max(Metric::PostedQueuePeak, 4);
        r2.add(Metric::SendsRndv, 3);
        r2.record_max(Metric::PostedQueuePeak, 9);
        r1.record(Hist::EagerSendBytes, 100);
        r2.record(Hist::EagerSendBytes, 100);
        let mut m = r1.snapshot();
        m.merge(&r2.snapshot());
        assert_eq!(m.get(Metric::SendsRndv), 5);
        assert_eq!(m.get(Metric::PostedQueuePeak), 9);
        assert_eq!(m.hist(Hist::EagerSendBytes).count(), 2);
    }

    #[test]
    fn event_ring_overwrites_oldest() {
        let r = MetricsRegistry::with_event_capacity(4);
        for i in 0..10u64 {
            r.event(EventKind::OpBegin, i, 0);
        }
        let s = r.snapshot();
        let seqs: Vec<u64> = s.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10]);
        assert!(s.events().iter().all(|e| e.kind == EventKind::OpBegin));
        // Payloads are the newest four writes, oldest first.
        let payloads: Vec<u64> = s.events().iter().map(|e| e.a).collect();
        assert_eq!(payloads, vec![6, 7, 8, 9]);
    }

    #[test]
    fn wrapped_ring_events_stay_ordered_and_capacity_bounded() {
        let r = MetricsRegistry::with_event_capacity(8);
        for i in 0..1000u64 {
            r.event3(EventKind::OpBegin, i, i * 2, i * 3);
        }
        let s = r.snapshot();
        assert_eq!(s.events().len(), r.event_capacity());
        // Seqs strictly increase (oldest-first) and timestamps never run
        // backwards: the snapshot is a coherent suffix of the stream.
        for w in s.events().windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
            assert!(w[1].t_nanos >= w[0].t_nanos);
        }
        for e in s.events() {
            assert_eq!(e.b, e.a * 2);
            assert_eq!(e.c, e.a * 3);
        }
    }

    #[test]
    fn concurrent_event_writers_never_tear() {
        // Writers stamp each event with `b = !a` and `c = a ^ SALT`; any
        // snapshot mixing words from two different writes would break the
        // invariants. Readers run concurrently against the wrapping ring,
        // which is exactly when the seqlock has to reject in-flight slots.
        const SALT: u64 = 0x9e37_79b9_7f4a_7c15;
        let r = Arc::new(MetricsRegistry::with_event_capacity(16));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..4u64)
            .map(|w| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..20_000u64 {
                        let a = (w << 32) | i;
                        r.event3(EventKind::OpBegin, a, !a, a ^ SALT);
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let r = Arc::clone(&r);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut seen = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let s = r.snapshot();
                        for e in s.events() {
                            assert_eq!(e.kind, EventKind::OpBegin);
                            assert_eq!(e.b, !e.a, "torn event payload");
                            assert_eq!(e.c, e.a ^ SALT, "torn event payload");
                            seen += 1;
                        }
                        // Seqs must be strictly increasing within one
                        // snapshot even while writers race the cursor.
                        for w in s.events().windows(2) {
                            assert!(w[1].seq > w[0].seq);
                        }
                    }
                    seen
                })
            })
            .collect();
        for t in writers {
            t.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for t in readers {
            assert!(t.join().unwrap() > 0);
        }
        // After the dust settles the ring holds the stream's last slots.
        assert_eq!(r.snapshot().events().len(), r.event_capacity());
    }

    #[test]
    fn histogram_summary() {
        let r = MetricsRegistry::new();
        for v in [0u64, 1, 100, 70_000] {
            r.record(Hist::RndvSendBytes, v);
        }
        let h = r.snapshot().hist(Hist::RndvSendBytes);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max_bound(), 131_072);
    }

    #[test]
    fn concurrent_bumps_are_not_lost() {
        let r = Arc::new(MetricsRegistry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        r.bump(Metric::MatchAttempts);
                        if i % 64 == 0 {
                            r.event(EventKind::OpEnd, i, 0);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.snapshot().get(Metric::MatchAttempts), 40_000);
    }

    #[test]
    fn csv_and_json_are_well_formed() {
        let r = MetricsRegistry::new();
        r.bump(Metric::CollBarrier);
        r.record(Hist::WaitNanos, 1500);
        r.event(EventKind::SafepointStall, 12, 0);
        let s = r.snapshot();
        let header = MetricsSnapshot::csv_header();
        let row = s.csv_row("rank0");
        assert_eq!(header.split(',').count(), row.split(',').count());
        assert!(header.starts_with("label,"));
        assert!(row.starts_with("rank0,"));
        let json = s.to_json();
        assert!(json.contains("\"coll_barrier\":1"));
        assert!(json.contains("\"kind\":\"safepoint_stall\""));
    }

    #[test]
    fn gc_bridge_sets_exact_values() {
        let mut s = MetricsSnapshot::empty();
        s.set_gc_bridge(&[(Metric::GcPins, 10), (Metric::GcPinsAvoidedElder, 3)]);
        assert_eq!(s.get(Metric::GcPins), 10);
        assert_eq!(s.get(Metric::GcPinsAvoidedElder), 3);
    }

    #[test]
    fn diff_underflow_on_restarted_registry_saturates() {
        // A "later" snapshot from a restarted (fresh) registry reads lower
        // than the earlier one; diff must clamp at zero, not wrap.
        let old = MetricsRegistry::new();
        old.add(Metric::ChanBytesOut, 500);
        old.record(Hist::EagerSendBytes, 64);
        let earlier = old.snapshot();
        let restarted = MetricsRegistry::new();
        restarted.add(Metric::ChanBytesOut, 20);
        let d = restarted.snapshot().diff(&earlier);
        assert_eq!(d.get(Metric::ChanBytesOut), 0);
        assert_eq!(d.hist(Hist::EagerSendBytes).count(), 0);
    }

    #[test]
    fn merge_device_and_vm_side_registries() {
        // One rank's two registries: the transport side carries queue
        // peaks and a calibrated clock offset, the VM side carries
        // safepoint data with offset zero. The merge must add counters,
        // max the peaks, keep the nonzero offset, and preserve both event
        // streams.
        let device = MetricsRegistry::new();
        device.add(Metric::SendsEager, 3);
        device.record_max(Metric::PostedQueuePeak, 5);
        device.set_clock_offset(1234);
        device.event(EventKind::MsgSend, 1, 0);
        let vm = MetricsRegistry::new();
        vm.add(Metric::SafepointStalls, 2);
        vm.record_max(Metric::PostedQueuePeak, 1);
        vm.event(EventKind::SafepointStall, 9, 0);
        let mut merged = device.snapshot();
        merged.merge(&vm.snapshot());
        assert_eq!(merged.get(Metric::SendsEager), 3);
        assert_eq!(merged.get(Metric::SafepointStalls), 2);
        assert_eq!(merged.get(Metric::PostedQueuePeak), 5, "peaks max, not add");
        assert_eq!(merged.clock_offset_nanos(), 1234);
        assert_eq!(merged.events().len(), 2);
        // Merging in the other direction keeps the (only) nonzero offset.
        let mut other = vm.snapshot();
        other.merge(&device.snapshot());
        assert_eq!(other.clock_offset_nanos(), 1234);
    }

    #[test]
    fn merge_peaks_by_max_survives_diff_and_empty_identity() {
        let r1 = MetricsRegistry::new();
        r1.record_max(Metric::UnexpectedQueuePeak, 9);
        let r2 = MetricsRegistry::new();
        r2.record_max(Metric::UnexpectedQueuePeak, 4);
        let mut m = MetricsSnapshot::empty();
        m.merge(&r1.snapshot());
        m.merge(&r2.snapshot());
        assert_eq!(m.get(Metric::UnexpectedQueuePeak), 9);
        // diff against a snapshot with a *higher* earlier peak still keeps
        // the later high-water mark (peaks are levels, not rates).
        let d = r2.snapshot().diff(&r1.snapshot());
        assert_eq!(d.get(Metric::UnexpectedQueuePeak), 4);
    }

    #[test]
    fn dropped_ring_events_are_counted() {
        let r = MetricsRegistry::with_event_capacity(4);
        for i in 0..10u64 {
            r.event(EventKind::OpBegin, i, 0);
        }
        let s = r.snapshot();
        assert_eq!(s.get(Metric::TraceEventsDropped), 6);
        assert_eq!(s.events().len(), 4);
        // A ring that never wrapped reports zero.
        let quiet = MetricsRegistry::with_event_capacity(64);
        quiet.event(EventKind::OpBegin, 1, 0);
        assert_eq!(quiet.snapshot().get(Metric::TraceEventsDropped), 0);
    }

    #[test]
    fn percentile_interpolates_log2_buckets() {
        let r = MetricsRegistry::new();
        for _ in 0..50 {
            r.record(Hist::WaitNanos, 100); // bucket 7: (64, 128]
        }
        for _ in 0..50 {
            r.record(Hist::WaitNanos, 1000); // bucket 10: (512, 1024]
        }
        let h = r.snapshot().hist(Hist::WaitNanos);
        let p50 = h.p50();
        assert!((65..=128).contains(&p50), "p50 = {p50}");
        let p99 = h.p99();
        assert!((513..=1024).contains(&p99), "p99 = {p99}");
        assert!(h.percentile(0.25) <= p50);
        // Degenerate cases.
        assert_eq!(
            HistSnapshot {
                buckets: [0; HIST_BUCKETS]
            }
            .p50(),
            0
        );
        let zeros = MetricsRegistry::new();
        zeros.record(Hist::WaitNanos, 0);
        assert_eq!(zeros.snapshot().hist(Hist::WaitNanos).p99(), 0);
        let ones = MetricsRegistry::new();
        ones.record(Hist::WaitNanos, 1);
        assert_eq!(ones.snapshot().percentile(Hist::WaitNanos, 0.5), 1);
    }

    #[test]
    fn percentile_edge_cases() {
        // Empty histogram: every quantile is 0, including the extremes
        // and out-of-range p values (clamped, not panicking).
        let empty = HistSnapshot {
            buckets: [0; HIST_BUCKETS],
        };
        for p in [0.0, 0.5, 1.0, -3.0, 42.0] {
            assert_eq!(empty.percentile(p), 0, "empty hist, p = {p}");
        }
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.max_bound(), 0);

        // Single occupied bucket: every quantile lands inside that
        // bucket's span, and p=0/p=1 don't escape it.
        let r = MetricsRegistry::new();
        for _ in 0..7 {
            r.record(Hist::WaitNanos, 100); // bucket 7: (64, 128]
        }
        let h = r.snapshot().hist(Hist::WaitNanos);
        for p in [0.0, 0.01, 0.5, 0.99, 1.0] {
            let v = h.percentile(p);
            assert!((65..=128).contains(&v), "single bucket, p = {p}, v = {v}");
        }
        assert_eq!(h.max_bound(), 128);

        // Saturated top bucket: values beyond 2^(HIST_BUCKETS-1) clamp
        // into the last bucket; the interpolation must not overflow and
        // the estimate stays within the bucket's (huge) span.
        assert_eq!(log2_bucket(u64::MAX), HIST_BUCKETS - 1);
        let r = MetricsRegistry::new();
        r.record(Hist::WaitNanos, u64::MAX);
        r.record(Hist::WaitNanos, u64::MAX - 1);
        let h = r.snapshot().hist(Hist::WaitNanos);
        let top_lo = (1u64 << (HIST_BUCKETS - 2)) + 1;
        let top_hi = 1u64 << (HIST_BUCKETS - 1);
        for p in [0.5, 0.99, 1.0] {
            let v = h.percentile(p);
            assert!(
                (top_lo..=top_hi).contains(&v),
                "saturated bucket, p = {p}, v = {v}"
            );
        }
        assert_eq!(h.max_bound(), top_hi);

        // Mixed: a zero plus a saturated value — p0 pins to bucket 0,
        // p100 to the top bucket.
        let r = MetricsRegistry::new();
        r.record(Hist::WaitNanos, 0);
        r.record(Hist::WaitNanos, u64::MAX);
        let h = r.snapshot().hist(Hist::WaitNanos);
        assert_eq!(h.percentile(0.0), 0);
        assert!(h.percentile(1.0) >= top_lo);
    }

    #[test]
    fn csv_and_json_carry_percentiles() {
        let r = MetricsRegistry::new();
        for _ in 0..10 {
            r.record(Hist::WaitNanos, 100);
        }
        let header = MetricsSnapshot::csv_header();
        assert!(header.contains("wait_nanos_p50"));
        assert!(header.contains("wait_nanos_p99"));
        let s = r.snapshot();
        assert_eq!(header.split(',').count(), s.csv_row("x").split(',').count());
        let json = s.to_json();
        assert!(json.contains("\"p50\":"));
        assert!(json.contains("\"p99\":"));
        export::json::parse(&json).expect("snapshot JSON parses");
    }

    #[test]
    fn spans_register_in_the_inflight_table() {
        let r = MetricsRegistry::new();
        assert!(r.inflight_ops().is_empty());
        {
            let g = r.span(span::SpanKind::MpRecv, span::span_arg_peer_tag(3, 7));
            let ops = r.inflight_ops();
            assert_eq!(ops.len(), 1);
            assert_eq!(ops[0].kind, span::SpanKind::MpRecv);
            assert_eq!(ops[0].peer_tag(), (3, 7));
            g.heartbeat();
            assert_eq!(r.inflight_ops()[0].beats, 1);
            assert!(r.last_progress_nanos() > 0);
        }
        assert!(r.inflight_ops().is_empty());
    }
}
