//! Live health: the per-rank **in-flight op table**, anomaly
//! classification, and the **flight record**.
//!
//! The metrics registry and trace ring are passive — they answer "what
//! happened" after a run ends. A rank stuck in a blocking `Wait` with no
//! matching sender, a pin leaked past its transfer, or GC pressure
//! starving progress is invisible until then (or forever, if the run
//! never ends). This module is the active half:
//!
//! * [`InflightTable`] — a lock-free slot table where every blocking
//!   `System.MP`/`System.MP.OO` operation, collective, and outstanding
//!   `Isend`/`Irecv` registers entry, heartbeats, and exit, so at any
//!   instant a rank can report *what am I doing, since when, waiting on
//!   whom*. Publication reuses the seqlock discipline of the event ring:
//!   writers claim a slot with one CAS and publish a generation token
//!   with a release store; readers validate the token around their loads.
//! * [`classify`] — the watchdog's pure decision procedure: given one
//!   [`RankHealth`] observation per rank it reports [`Anomaly`]s —
//!   *stall*, *deadlock suspect*, *pin leak*, *GC pressure*.
//! * [`FlightRecord`] — the crash-dump analog: anomalies + per-rank
//!   metrics snapshots + in-flight tables, serialized to JSON
//!   ([`FlightRecord::to_json`]) with a one-screen human diagnosis
//!   ([`FlightRecord::diagnosis`]).
//!
//! The classification is deliberately conservative: a *stall* requires
//! both the op and the whole rank to have made no observable progress
//! past the deadline, and a *deadlock suspect* additionally requires the
//! blamed peer to show no matching activity (or a wait-for cycle).

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::time::Duration;

use crate::span::{span_arg_unpack, SpanKind};
use crate::{Hist, Metric, MetricsSnapshot};

/// Default number of slots in an [`InflightTable`].
pub const DEFAULT_INFLIGHT_CAPACITY: usize = 128;

/// Sentinel slot index meaning "not registered" (table was full, or the
/// op chose not to register). All table operations ignore it.
pub const INFLIGHT_NONE: usize = usize::MAX;

// Slot states: 0 = free, CLAIMING = a writer is mid-publish, >= FIRST_TOKEN
// = published generation token.
const CLAIMING: u64 = 1;
const FIRST_TOKEN: u64 = 2;

struct InflightSlot {
    /// Seqlock word: free / claiming / published token (see above).
    state: AtomicU64,
    kind: AtomicU64,
    arg: AtomicU64,
    since_nanos: AtomicU64,
    beat_nanos: AtomicU64,
    beats: AtomicU64,
}

impl InflightSlot {
    fn empty() -> Self {
        InflightSlot {
            state: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            arg: AtomicU64::new(0),
            since_nanos: AtomicU64::new(0),
            beat_nanos: AtomicU64::new(0),
            beats: AtomicU64::new(0),
        }
    }
}

/// One published entry of an [`InflightTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InflightOp {
    /// Generation token (unique per registration within one table).
    pub token: u64,
    /// What the op is.
    pub kind: SpanKind,
    /// Kind-specific argument — [`crate::span_arg_peer_tag`] for
    /// point-to-point ops, the root rank for rooted collectives.
    pub arg: u64,
    /// Registry clock when the op entered (nanoseconds since epoch).
    pub since_nanos: u64,
    /// Registry clock of the last heartbeat (= `since_nanos` if none).
    pub beat_nanos: u64,
    /// Number of heartbeats recorded.
    pub beats: u64,
}

impl InflightOp {
    /// The `(peer, tag)` pair packed in `arg` (meaningful for
    /// point-to-point kinds; see [`crate::span_arg_peer_tag`]).
    pub fn peer_tag(&self) -> (usize, i32) {
        span_arg_unpack(self.arg)
    }

    /// Nanoseconds since the op entered, as of `now_nanos`.
    pub fn age_nanos(&self, now_nanos: u64) -> u64 {
        now_nanos.saturating_sub(self.since_nanos)
    }

    /// Nanoseconds since the op last showed a sign of life.
    pub fn idle_nanos(&self, now_nanos: u64) -> u64 {
        now_nanos.saturating_sub(self.beat_nanos.max(self.since_nanos))
    }

    /// Whether this kind blocks the rank until a peer acts (the stall /
    /// deadlock candidates). Outstanding `Isend`/`Irecv` registrations
    /// are *not* blocking — the rank is free to compute past them.
    pub fn is_blocking(&self) -> bool {
        !matches!(self.kind, SpanKind::MpIsend | SpanKind::MpIrecv)
    }
}

/// Lock-free in-flight op table: fixed slots, seqlock-published entries.
///
/// Writers ([`begin`](Self::begin) / [`beat`](Self::beat) /
/// [`end`](Self::end)) never block; if every slot is taken the
/// registration is dropped and counted in
/// [`overflows`](Self::overflows). Readers ([`snapshot`](Self::snapshot))
/// are wait-free and skip entries caught mid-publish.
pub struct InflightTable {
    slots: Vec<InflightSlot>,
    cursor: AtomicU64,
    next_token: AtomicU64,
    overflows: AtomicU64,
    /// Registry clock of the last heartbeat anywhere in this table — the
    /// rank-wide "last sign of progress" the watchdog compares against.
    last_beat: AtomicU64,
}

impl InflightTable {
    /// Table with `capacity` slots (rounded up to 1).
    pub fn new(capacity: usize) -> Self {
        InflightTable {
            slots: (0..capacity.max(1))
                .map(|_| InflightSlot::empty())
                .collect(),
            cursor: AtomicU64::new(0),
            next_token: AtomicU64::new(FIRST_TOKEN),
            overflows: AtomicU64::new(0),
            last_beat: AtomicU64::new(0),
        }
    }

    /// Register an op. Returns the claimed slot index, or
    /// [`INFLIGHT_NONE`] if the table is full (the drop is counted).
    pub fn begin(&self, kind: SpanKind, arg: u64, now_nanos: u64) -> usize {
        let hint = self.cursor.fetch_add(1, Ordering::Relaxed) as usize;
        for i in 0..self.slots.len() {
            let idx = (hint + i) % self.slots.len();
            let slot = &self.slots[idx];
            if slot
                .state
                .compare_exchange(0, CLAIMING, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            let token = self.next_token.fetch_add(1, Ordering::Relaxed);
            slot.kind.store(kind as u64, Ordering::Relaxed);
            slot.arg.store(arg, Ordering::Relaxed);
            slot.since_nanos.store(now_nanos, Ordering::Relaxed);
            slot.beat_nanos.store(now_nanos, Ordering::Relaxed);
            slot.beats.store(0, Ordering::Relaxed);
            slot.state.store(token, Ordering::Release);
            return idx;
        }
        self.overflows.fetch_add(1, Ordering::Relaxed);
        INFLIGHT_NONE
    }

    /// Record a sign of life on a registered op (and on the whole table).
    pub fn beat(&self, idx: usize, now_nanos: u64) {
        self.last_beat.store(now_nanos, Ordering::Relaxed);
        if let Some(slot) = self.slots.get(idx) {
            slot.beat_nanos.store(now_nanos, Ordering::Relaxed);
            slot.beats.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record table-wide progress without a specific op (e.g. the device
    /// progress engine moved bytes while polling).
    pub fn note_progress(&self, now_nanos: u64) {
        self.last_beat.store(now_nanos, Ordering::Relaxed);
    }

    /// Deregister an op (idempotent on [`INFLIGHT_NONE`]).
    pub fn end(&self, idx: usize) {
        if let Some(slot) = self.slots.get(idx) {
            slot.state.store(0, Ordering::Release);
        }
    }

    /// Registrations dropped because the table was full.
    pub fn overflows(&self) -> u64 {
        self.overflows.load(Ordering::Relaxed)
    }

    /// Registry clock of the last heartbeat anywhere in the table.
    pub fn last_beat_nanos(&self) -> u64 {
        self.last_beat.load(Ordering::Relaxed)
    }

    /// Wait-free copy of every published entry. Entries caught mid-claim
    /// or recycled while being read are skipped (seqlock validation).
    pub fn snapshot(&self) -> Vec<InflightOp> {
        let mut out = Vec::new();
        for slot in &self.slots {
            let token = slot.state.load(Ordering::Acquire);
            if token < FIRST_TOKEN {
                continue;
            }
            let (k, arg, since, beat, beats) = (
                slot.kind.load(Ordering::Relaxed),
                slot.arg.load(Ordering::Relaxed),
                slot.since_nanos.load(Ordering::Relaxed),
                slot.beat_nanos.load(Ordering::Relaxed),
                slot.beats.load(Ordering::Relaxed),
            );
            // Seqlock read validation, as in the event ring: the acquire
            // fence orders the payload loads before the re-check, so a
            // matching token proves the slot was not recycled mid-read.
            fence(Ordering::Acquire);
            if slot.state.load(Ordering::Relaxed) != token {
                continue;
            }
            if let Some(kind) = SpanKind::from_u64(k) {
                out.push(InflightOp {
                    token,
                    kind,
                    arg,
                    since_nanos: since,
                    beat_nanos: beat,
                    beats,
                });
            }
        }
        out.sort_by_key(|op| op.token);
        out
    }
}

/// Watchdog tuning and flight-record policy. Build one directly, or parse
/// the `MOTOR_DOCTOR` environment variable with
/// [`DoctorConfig::from_env`].
#[derive(Debug, Clone)]
pub struct DoctorConfig {
    /// How often the watchdog scans every rank's table.
    pub scan_interval: Duration,
    /// No observable progress for this long while blocked → *stall*.
    pub stall_deadline: Duration,
    /// A hard pin older than this with no transport op in flight →
    /// *pin leak*.
    pub pin_leak_deadline: Duration,
    /// Fraction of wall time stalled at safepoints → *GC pressure*.
    pub gc_stall_ratio: f64,
    /// Where to write the flight-record JSON (on anomaly, and at shutdown
    /// when [`record_on_exit`](Self::record_on_exit) is set).
    pub record_path: Option<String>,
    /// Terminate the process with this code after the first anomaly's
    /// flight record is written (CI liveness gates); `None` keeps running.
    pub exit_code: Option<i32>,
    /// Also emit a flight record when the cluster shuts down cleanly.
    pub record_on_exit: bool,
}

impl Default for DoctorConfig {
    fn default() -> Self {
        DoctorConfig {
            scan_interval: Duration::from_millis(50),
            stall_deadline: Duration::from_secs(2),
            pin_leak_deadline: Duration::from_secs(2),
            gc_stall_ratio: 0.5,
            record_path: None,
            exit_code: None,
            record_on_exit: false,
        }
    }
}

impl DoctorConfig {
    /// Parse a `MOTOR_DOCTOR` value. `"1"`/`"on"` yield the defaults;
    /// otherwise a comma list of `key=value` pairs: `deadline_ms`,
    /// `interval_ms`, `pin_ms`, `gc_ratio`, `record=<path>`,
    /// `abort=<exit code>`, `record_on_exit=0|1`. Unknown keys are
    /// ignored so old commands keep working.
    pub fn parse(spec: &str) -> DoctorConfig {
        let mut cfg = DoctorConfig::default();
        for part in spec.split(',') {
            let part = part.trim();
            let (key, value) = match part.split_once('=') {
                Some(kv) => kv,
                None => continue, // bare "1"/"on" enable the defaults
            };
            match key {
                "deadline_ms" => {
                    if let Ok(ms) = value.parse() {
                        cfg.stall_deadline = Duration::from_millis(ms);
                        cfg.pin_leak_deadline = Duration::from_millis(ms);
                    }
                }
                "interval_ms" => {
                    if let Ok(ms) = value.parse() {
                        cfg.scan_interval = Duration::from_millis(ms);
                    }
                }
                "pin_ms" => {
                    if let Ok(ms) = value.parse() {
                        cfg.pin_leak_deadline = Duration::from_millis(ms);
                    }
                }
                "gc_ratio" => {
                    if let Ok(r) = value.parse() {
                        cfg.gc_stall_ratio = r;
                    }
                }
                "record" => cfg.record_path = Some(value.to_string()),
                "abort" => cfg.exit_code = value.parse().ok(),
                "record_on_exit" => cfg.record_on_exit = value != "0",
                _ => {}
            }
        }
        cfg
    }

    /// The configuration requested by the `MOTOR_DOCTOR` environment
    /// variable, if set (empty/`"0"`/`"off"` mean disabled).
    pub fn from_env() -> Option<DoctorConfig> {
        match std::env::var("MOTOR_DOCTOR") {
            Ok(v) if !v.is_empty() && v != "0" && v != "off" => Some(Self::parse(&v)),
            _ => None,
        }
    }
}

/// One watchdog observation of one rank — everything [`classify`] needs.
#[derive(Debug, Clone)]
pub struct RankHealth {
    /// World rank (or slot index for dynamically spawned processes).
    pub rank: usize,
    /// Human label (`"rank 2"`, `"child 0"`, ...).
    pub label: String,
    /// Whether the rank's body has returned.
    pub done: bool,
    /// Registry clock at scan time (nanoseconds since the shared epoch).
    pub now_nanos: u64,
    /// Registry clock of the rank's last observable progress (max over
    /// its tables' [`InflightTable::last_beat_nanos`]; 0 if none yet).
    pub last_progress_nanos: u64,
    /// Merged in-flight ops from the rank's transport- and VM-side tables.
    pub inflight: Vec<InflightOp>,
    /// Device queue depths `(posted, unexpected, pending_sends,
    /// active_recvs)`.
    pub queue_depths: (usize, usize, usize, usize),
    /// Hard pins currently held.
    pub hard_pins: usize,
    /// Conditional pin requests currently registered.
    pub cond_pins: usize,
    /// Age of the oldest hard pin in nanoseconds (0 when none).
    pub oldest_pin_nanos: u64,
    /// Estimated nanoseconds stalled at safepoints since the last scan.
    pub safepoint_stall_nanos: u64,
    /// Wall nanoseconds covered by `safepoint_stall_nanos` (scan window).
    pub window_nanos: u64,
    /// Cumulative links dropped after transport failures
    /// ([`crate::Metric::LinksDropped`]).
    pub links_dropped: u64,
}

/// What kind of trouble the watchdog diagnosed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// A blocking op made no observable progress past the deadline.
    Stall,
    /// A stall whose blamed peer shows no matching activity, or a
    /// wait-for cycle among stalled ranks.
    DeadlockSuspect,
    /// A hard pin outlived every transport operation on its rank.
    PinLeak,
    /// Safepoint stalls consumed more than the configured fraction of
    /// wall time.
    GcPressure,
    /// A transport link died and was dropped; operations bound to that
    /// peer were failed with `PeerClosed`.
    LinkDrop,
}

impl AnomalyKind {
    /// Stable export name.
    pub fn name(self) -> &'static str {
        match self {
            AnomalyKind::Stall => "stall",
            AnomalyKind::DeadlockSuspect => "deadlock_suspect",
            AnomalyKind::PinLeak => "pin_leak",
            AnomalyKind::GcPressure => "gc_pressure",
            AnomalyKind::LinkDrop => "link_drop",
        }
    }
}

/// One diagnosed problem, blaming a rank (and op, when there is one).
#[derive(Debug, Clone)]
pub struct Anomaly {
    /// Classification.
    pub kind: AnomalyKind,
    /// The blamed rank.
    pub rank: usize,
    /// The blamed rank's label.
    pub label: String,
    /// The stuck op, for stall/deadlock anomalies.
    pub op: Option<InflightOp>,
    /// Peer the op waits on, when the op kind carries one.
    pub peer: Option<usize>,
    /// Nanoseconds the condition has persisted.
    pub age_nanos: u64,
    /// One-line human explanation.
    pub detail: String,
}

impl Anomaly {
    /// Stable dedup key: one report per (kind, rank, op token).
    pub fn key(&self) -> (AnomalyKind, usize, u64) {
        (
            self.kind,
            self.rank,
            self.op.as_ref().map_or(0, |o| o.token),
        )
    }

    /// This anomaly as a JSON object (shared by the flight record and the
    /// telemetry plane's `/healthz` endpoint).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"kind\":\"{}\",\"rank\":{},\"label\":\"{}\",\"op\":{},\
             \"peer\":{},\"age_nanos\":{},\"detail\":\"{}\"}}",
            self.kind.name(),
            self.rank,
            esc(&self.label),
            self.op
                .as_ref()
                .map_or("null".into(), |o| format!("\"{}\"", o.kind.name())),
            self.peer.map_or("null".into(), |p| p.to_string()),
            self.age_nanos,
            esc(&self.detail)
        )
    }
}

/// Point-to-point kinds whose `arg` names the peer being waited on.
fn waits_on_peer(kind: SpanKind) -> bool {
    matches!(
        kind,
        SpanKind::MpSend
            | SpanKind::MpSsend
            | SpanKind::MpRecv
            | SpanKind::MpProbe
            | SpanKind::Osend
            | SpanKind::Orecv
    )
}

/// Collective kinds (every live rank must enter them).
fn is_collective(kind: SpanKind) -> bool {
    matches!(
        kind,
        SpanKind::Barrier
            | SpanKind::Bcast
            | SpanKind::Scatter
            | SpanKind::Gather
            | SpanKind::Allgather
            | SpanKind::Reduce
            | SpanKind::Allreduce
            | SpanKind::Scan
            | SpanKind::Alltoall
            | SpanKind::Obcast
            | SpanKind::Oscatter
            | SpanKind::Ogather
    )
}

/// The oldest blocking op a rank is stuck in past the deadline, if the
/// rank as a whole has also shown no progress for that long.
fn stalled_op(h: &RankHealth, deadline_nanos: u64) -> Option<&InflightOp> {
    if h.done {
        return None;
    }
    let rank_idle = h.now_nanos.saturating_sub(h.last_progress_nanos);
    if h.last_progress_nanos != 0 && rank_idle <= deadline_nanos {
        return None;
    }
    h.inflight
        .iter()
        .filter(|op| op.is_blocking() && op.idle_nanos(h.now_nanos) > deadline_nanos)
        .max_by_key(|op| op.age_nanos(h.now_nanos))
}

/// Kinds that ship data to the peer (can complete the peer's receive).
fn is_send_kind(kind: SpanKind) -> bool {
    matches!(
        kind,
        SpanKind::MpSend | SpanKind::MpSsend | SpanKind::MpIsend | SpanKind::Osend
    )
}

/// Kinds that consume data from the peer (can complete the peer's send).
fn is_recv_kind(kind: SpanKind) -> bool {
    matches!(
        kind,
        SpanKind::MpRecv | SpanKind::MpIrecv | SpanKind::MpProbe | SpanKind::Orecv
    )
}

/// Whether `peer`'s observation shows activity that could still complete
/// `rank`'s wait of kind `our_kind`: an in-flight op of the *opposite
/// direction* addressed to `rank` (a send satisfies our recv and vice
/// versa), or transport frames still queued for delivery.
fn peer_matches(peer: &RankHealth, rank: usize, our_kind: SpanKind) -> bool {
    if peer.queue_depths.2 > 0 {
        return true; // pending sends may still be addressed to the waiter
    }
    peer.inflight.iter().any(|op| {
        op.peer_tag().0 == rank
            && if is_recv_kind(our_kind) {
                is_send_kind(op.kind)
            } else {
                is_recv_kind(op.kind)
            }
    })
}

/// The watchdog's decision procedure: one pass over the latest
/// observations, returning every anomaly found (empty when healthy).
/// Pure — all timing comes from the observations — so it is directly
/// unit-testable with synthetic [`RankHealth`] values.
pub fn classify(health: &[RankHealth], cfg: &DoctorConfig) -> Vec<Anomaly> {
    let deadline = cfg.stall_deadline.as_nanos() as u64;
    let pin_deadline = cfg.pin_leak_deadline.as_nanos() as u64;
    let mut out = Vec::new();

    // Wait-for edges rank -> peer for cycle detection among stalled ranks.
    let mut waits_for: Vec<Option<usize>> = vec![None; health.len()];
    let any_done = health.iter().any(|h| h.done);

    for (i, h) in health.iter().enumerate() {
        if let Some(op) = stalled_op(h, deadline) {
            let age = op.idle_nanos(h.now_nanos);
            let (peer, _tag) = op.peer_tag();
            let peer = (waits_on_peer(op.kind) && peer < health.len()).then_some(peer);
            if let Some(p) = peer {
                // Wait-for edge only when the peer is *not* already acting
                // toward us — a matched pair is slow, not deadlocked.
                if !peer_matches(&health[p], h.rank, op.kind) {
                    waits_for[i] = Some(p);
                }
            }
            let (kind, detail) = match peer {
                // Peer exited, or is itself stuck with nothing addressed
                // to us: nobody can complete this wait.
                Some(p) if health[p].done && !peer_matches(&health[p], h.rank, op.kind) => (
                    AnomalyKind::DeadlockSuspect,
                    format!(
                        "{} waits on {} which exited with no matching activity",
                        op.kind.name(),
                        health[p].label
                    ),
                ),
                Some(p)
                    if stalled_op(&health[p], deadline).is_some()
                        && !peer_matches(&health[p], h.rank, op.kind) =>
                {
                    (
                        AnomalyKind::DeadlockSuspect,
                        format!(
                            "{} waits on {} which is itself stuck with no matching activity",
                            op.kind.name(),
                            health[p].label
                        ),
                    )
                }
                // A collective some ranks already exited past can never
                // complete for the ranks still inside it.
                None if is_collective(op.kind) && any_done => (
                    AnomalyKind::DeadlockSuspect,
                    format!(
                        "stuck in collective {} while other ranks already exited",
                        op.kind.name()
                    ),
                ),
                _ => (
                    AnomalyKind::Stall,
                    format!("no progress in {} past the deadline", op.kind.name()),
                ),
            };
            out.push(Anomaly {
                kind,
                rank: h.rank,
                label: h.label.clone(),
                op: Some(op.clone()),
                peer,
                age_nanos: age,
                detail,
            });
        }

        if !h.done && h.hard_pins > 0 && h.oldest_pin_nanos > pin_deadline && h.inflight.is_empty()
        {
            out.push(Anomaly {
                kind: AnomalyKind::PinLeak,
                rank: h.rank,
                label: h.label.clone(),
                op: None,
                peer: None,
                age_nanos: h.oldest_pin_nanos,
                detail: format!(
                    "{} hard pin(s) held with no transport op in flight",
                    h.hard_pins
                ),
            });
        }

        if h.links_dropped > 0 {
            out.push(Anomaly {
                kind: AnomalyKind::LinkDrop,
                rank: h.rank,
                label: h.label.clone(),
                op: None,
                peer: None,
                age_nanos: 0,
                detail: format!(
                    "{} transport link(s) dropped; bound operations failed with PeerClosed",
                    h.links_dropped
                ),
            });
        }

        if h.window_nanos > 0 {
            let ratio = h.safepoint_stall_nanos as f64 / h.window_nanos as f64;
            if ratio > cfg.gc_stall_ratio {
                out.push(Anomaly {
                    kind: AnomalyKind::GcPressure,
                    rank: h.rank,
                    label: h.label.clone(),
                    op: None,
                    peer: None,
                    age_nanos: h.safepoint_stall_nanos,
                    detail: format!(
                        "{:.0}% of the last {} ms stalled at safepoints",
                        ratio * 100.0,
                        h.window_nanos / 1_000_000
                    ),
                });
            }
        }
    }

    // Upgrade wait-for cycles to deadlock suspects: r0 -> r1 -> ... -> r0
    // can never resolve regardless of queue contents.
    let mut on_cycle = vec![false; waits_for.len()];
    for (start, cycle_flag) in on_cycle.iter_mut().enumerate() {
        let mut cur = start;
        for _ in 0..=waits_for.len() {
            match waits_for[cur] {
                Some(next) if next == start => {
                    *cycle_flag = true;
                    break;
                }
                Some(next) => cur = next,
                None => break,
            }
        }
    }
    for (i, h) in health.iter().enumerate() {
        if !on_cycle[i] {
            continue;
        }
        for a in out
            .iter_mut()
            .filter(|a| a.kind == AnomalyKind::Stall && a.rank == h.rank)
        {
            a.kind = AnomalyKind::DeadlockSuspect;
            a.detail = format!("wait-for cycle: {}", a.detail);
        }
    }
    out
}

/// One rank's contribution to a [`FlightRecord`].
#[derive(Debug, Clone)]
pub struct RankFlight {
    /// World rank (or spawn slot).
    pub rank: usize,
    /// Human label.
    pub label: String,
    /// Whether the rank's body had returned when the record was cut.
    pub done: bool,
    /// In-flight ops at record time.
    pub inflight: Vec<InflightOp>,
    /// Device queue depths `(posted, unexpected, pending_sends,
    /// active_recvs)`.
    pub queue_depths: (usize, usize, usize, usize),
    /// Merged metrics snapshot (transport + VM registries).
    pub snapshot: MetricsSnapshot,
}

/// Everything needed to diagnose a run after the fact: anomalies, every
/// rank's metrics + trace-ring drain + in-flight table.
#[derive(Debug, Clone)]
pub struct FlightRecord {
    /// Shared-epoch clock when the record was cut (nanoseconds).
    pub t_nanos: u64,
    /// Diagnosed anomalies (empty for an on-demand record of a healthy
    /// cluster).
    pub anomalies: Vec<Anomaly>,
    /// Per-rank state, in rank order.
    pub ranks: Vec<RankFlight>,
}

pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn inflight_json(ops: &[InflightOp]) -> String {
    let items: Vec<String> = ops
        .iter()
        .map(|op| {
            let (peer, tag) = op.peer_tag();
            format!(
                "{{\"kind\":\"{}\",\"arg\":{},\"peer\":{},\"tag\":{},\
                 \"since_nanos\":{},\"beat_nanos\":{},\"beats\":{}}}",
                op.kind.name(),
                op.arg,
                peer,
                tag,
                op.since_nanos,
                op.beat_nanos,
                op.beats
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

impl FlightRecord {
    /// The record as one JSON object (hand-rolled like every exporter in
    /// this crate; see `DESIGN.md` "Offline builds").
    pub fn to_json(&self) -> String {
        let anomalies: Vec<String> = self.anomalies.iter().map(Anomaly::to_json).collect();
        let ranks: Vec<String> = self
            .ranks
            .iter()
            .map(|r| {
                let (p, u, s, a) = r.queue_depths;
                format!(
                    "{{\"rank\":{},\"label\":\"{}\",\"done\":{},\
                     \"queues\":{{\"posted\":{p},\"unexpected\":{u},\
                     \"pending_sends\":{s},\"active_recvs\":{a}}},\
                     \"inflight\":{},\"metrics\":{}}}",
                    r.rank,
                    esc(&r.label),
                    r.done,
                    inflight_json(&r.inflight),
                    r.snapshot.to_json()
                )
            })
            .collect();
        format!(
            "{{\"motor_flight_record\":1,\"t_nanos\":{},\"anomalies\":[{}],\"ranks\":[{}]}}",
            self.t_nanos,
            anomalies.join(","),
            ranks.join(",")
        )
    }

    /// A one-screen human diagnosis naming the blamed ranks and ops.
    pub fn diagnosis(&self) -> String {
        let mut s = format!(
            "motor-doctor: {} anomal{} across {} rank(s) at t={:.3}s\n",
            self.anomalies.len(),
            if self.anomalies.len() == 1 {
                "y"
            } else {
                "ies"
            },
            self.ranks.len(),
            self.t_nanos as f64 / 1e9
        );
        for a in &self.anomalies {
            let op = a.op.as_ref().map_or(String::new(), |o| {
                let (peer, tag) = o.peer_tag();
                format!(" in {}(peer={peer}, tag={tag})", o.kind.name())
            });
            s.push_str(&format!(
                "  [{}] {}{}: {} ({} ms)\n",
                a.kind.name(),
                a.label,
                op,
                a.detail,
                a.age_nanos / 1_000_000
            ));
        }
        for r in &self.ranks {
            let doing = if r.done {
                "done".to_string()
            } else if r.inflight.is_empty() {
                "computing (no op in flight)".to_string()
            } else {
                r.inflight
                    .iter()
                    .map(|op| {
                        let (peer, tag) = op.peer_tag();
                        if waits_on_peer(op.kind) {
                            format!("{}(peer={peer}, tag={tag})", op.kind.name())
                        } else {
                            op.kind.name().to_string()
                        }
                    })
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let (p, u, ps, ar) = r.queue_depths;
            let wait = r.snapshot.hist(Hist::WaitNanos);
            s.push_str(&format!(
                "  {}: {} | queues p/u/s/r={p}/{u}/{ps}/{ar} | waits={} p50={}ns p99={}ns | events dropped={}\n",
                r.label,
                doing,
                wait.count(),
                wait.percentile(0.50),
                wait.percentile(0.99),
                r.snapshot.get(Metric::TraceEventsDropped),
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span_arg_peer_tag;

    fn op(kind: SpanKind, peer: usize, tag: i32, since: u64, beat: u64) -> InflightOp {
        InflightOp {
            token: 2,
            kind,
            arg: span_arg_peer_tag(peer, tag),
            since_nanos: since,
            beat_nanos: beat,
            beats: 0,
        }
    }

    fn healthy(rank: usize, now: u64) -> RankHealth {
        RankHealth {
            rank,
            label: format!("rank {rank}"),
            done: false,
            now_nanos: now,
            last_progress_nanos: now,
            inflight: Vec::new(),
            queue_depths: (0, 0, 0, 0),
            hard_pins: 0,
            cond_pins: 0,
            oldest_pin_nanos: 0,
            safepoint_stall_nanos: 0,
            window_nanos: 1_000_000_000,
            links_dropped: 0,
        }
    }

    fn cfg_ms(deadline_ms: u64) -> DoctorConfig {
        DoctorConfig {
            stall_deadline: Duration::from_millis(deadline_ms),
            pin_leak_deadline: Duration::from_millis(deadline_ms),
            ..DoctorConfig::default()
        }
    }

    #[test]
    fn table_begin_beat_end_roundtrip() {
        let t = InflightTable::new(4);
        let idx = t.begin(SpanKind::MpRecv, span_arg_peer_tag(1, 9), 100);
        assert_ne!(idx, INFLIGHT_NONE);
        t.beat(idx, 250);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].kind, SpanKind::MpRecv);
        assert_eq!(snap[0].peer_tag(), (1, 9));
        assert_eq!(snap[0].since_nanos, 100);
        assert_eq!(snap[0].beat_nanos, 250);
        assert_eq!(snap[0].beats, 1);
        assert_eq!(t.last_beat_nanos(), 250);
        t.end(idx);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn table_overflow_is_counted_not_fatal() {
        let t = InflightTable::new(2);
        let a = t.begin(SpanKind::Barrier, 0, 1);
        let b = t.begin(SpanKind::Barrier, 0, 2);
        let c = t.begin(SpanKind::Barrier, 0, 3);
        assert_ne!(a, INFLIGHT_NONE);
        assert_ne!(b, INFLIGHT_NONE);
        assert_eq!(c, INFLIGHT_NONE);
        assert_eq!(t.overflows(), 1);
        t.beat(c, 9); // ignored, no panic
        t.end(c);
        t.end(a);
        assert_ne!(t.begin(SpanKind::Barrier, 0, 4), INFLIGHT_NONE);
    }

    #[test]
    fn table_concurrent_register_and_snapshot() {
        use std::sync::Arc;
        let t = Arc::new(InflightTable::new(8));
        let stop = Arc::new(AtomicU64::new(0));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        let idx = t.begin(SpanKind::MpSend, span_arg_peer_tag(w, 7), i);
                        t.beat(idx, i + 1);
                        t.end(idx);
                    }
                })
            })
            .collect();
        let reader = {
            let (t, stop) = (Arc::clone(&t), Arc::clone(&stop));
            std::thread::spawn(move || {
                while stop.load(Ordering::Relaxed) == 0 {
                    for opn in t.snapshot() {
                        // Entries are never torn: kind/arg always pair up.
                        assert_eq!(opn.kind, SpanKind::MpSend);
                        assert_eq!(opn.peer_tag().1, 7);
                    }
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        stop.store(1, Ordering::Relaxed);
        reader.join().unwrap();
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn healthy_cluster_has_no_anomalies() {
        let now = 10_000_000_000;
        let mut hs: Vec<RankHealth> = (0..4).map(|r| healthy(r, now)).collect();
        // A recv that is old but recently heartbeat-ed is not stalled.
        hs[1]
            .inflight
            .push(op(SpanKind::MpRecv, 0, 5, 1_000, now - 1_000_000));
        assert!(classify(&hs, &cfg_ms(500)).is_empty());
    }

    #[test]
    fn unmatched_recv_with_exited_peer_is_deadlock_suspect() {
        let now = 10_000_000_000;
        let mut hs: Vec<RankHealth> = (0..4).map(|r| healthy(r, now)).collect();
        hs[2]
            .inflight
            .push(op(SpanKind::MpRecv, 1, 99, 1_000, 1_000));
        hs[2].last_progress_nanos = 1_000;
        for r in [0, 1, 3] {
            hs[r].done = true;
        }
        let anomalies = classify(&hs, &cfg_ms(500));
        assert_eq!(anomalies.len(), 1);
        let a = &anomalies[0];
        assert_eq!(a.kind, AnomalyKind::DeadlockSuspect);
        assert_eq!(a.rank, 2);
        assert_eq!(a.peer, Some(1));
        assert_eq!(a.op.as_ref().unwrap().kind, SpanKind::MpRecv);
    }

    #[test]
    fn stalled_recv_with_matching_peer_send_stays_stall() {
        let now = 10_000_000_000;
        let mut hs: Vec<RankHealth> = (0..2).map(|r| healthy(r, now)).collect();
        hs[0].inflight.push(op(SpanKind::MpRecv, 1, 3, 0, 0));
        hs[0].last_progress_nanos = 0;
        // Peer is stuck too, but *is* addressing us — slow, not deadlocked
        // beyond doubt: stays a stall, not a suspect. (peer 1 sends to 0.)
        hs[1].inflight.push(op(SpanKind::MpSend, 0, 3, 0, 0));
        hs[1].last_progress_nanos = 0;
        let anomalies = classify(&hs, &cfg_ms(500));
        assert_eq!(anomalies.len(), 2);
        assert!(anomalies.iter().all(|a| a.kind == AnomalyKind::Stall));
    }

    #[test]
    fn wait_for_cycle_is_deadlock_suspect() {
        let now = 10_000_000_000;
        let mut hs: Vec<RankHealth> = (0..2).map(|r| healthy(r, now)).collect();
        // 0 recvs from 1 on tag 1, 1 recvs from 0 on tag 2: a cycle with
        // no pending data anywhere.
        hs[0].inflight.push(op(SpanKind::MpRecv, 1, 1, 0, 0));
        hs[0].last_progress_nanos = 0;
        hs[1].inflight.push(op(SpanKind::MpRecv, 0, 2, 0, 0));
        hs[1].last_progress_nanos = 0;
        let anomalies = classify(&hs, &cfg_ms(500));
        assert_eq!(anomalies.len(), 2);
        assert!(anomalies
            .iter()
            .all(|a| a.kind == AnomalyKind::DeadlockSuspect));
    }

    #[test]
    fn collective_mismatch_is_deadlock_suspect() {
        let now = 10_000_000_000;
        let mut hs: Vec<RankHealth> = (0..3).map(|r| healthy(r, now)).collect();
        hs[0].inflight.push(op(SpanKind::Barrier, 0, 0, 0, 0));
        hs[0].last_progress_nanos = 0;
        hs[1].done = true;
        hs[2].done = true;
        let anomalies = classify(&hs, &cfg_ms(500));
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].kind, AnomalyKind::DeadlockSuspect);
        assert_eq!(anomalies[0].rank, 0);
    }

    #[test]
    fn pin_leak_and_gc_pressure() {
        let now = 10_000_000_000;
        let mut hs = vec![healthy(0, now)];
        hs[0].hard_pins = 2;
        hs[0].oldest_pin_nanos = 3_000_000_000;
        hs[0].safepoint_stall_nanos = 900_000_000;
        hs[0].window_nanos = 1_000_000_000;
        let anomalies = classify(&hs, &cfg_ms(500));
        assert_eq!(anomalies.len(), 2);
        assert!(anomalies.iter().any(|a| a.kind == AnomalyKind::PinLeak));
        assert!(anomalies.iter().any(|a| a.kind == AnomalyKind::GcPressure));
        // A pin guarded by an in-flight op is not a leak.
        hs[0].inflight.push(op(SpanKind::MpIsend, 1, 0, 0, now));
        let anomalies = classify(&hs, &cfg_ms(500));
        assert!(anomalies.iter().all(|a| a.kind != AnomalyKind::PinLeak));
    }

    #[test]
    fn link_drop_is_reported() {
        let now = 10_000_000_000;
        let mut hs = vec![healthy(0, now), healthy(1, now)];
        hs[1].links_dropped = 1;
        let anomalies = classify(&hs, &cfg_ms(500));
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].kind, AnomalyKind::LinkDrop);
        assert_eq!(anomalies[0].rank, 1);
        assert_eq!(anomalies[0].kind.name(), "link_drop");
        assert!(anomalies[0].detail.contains("PeerClosed"));
    }

    #[test]
    fn outstanding_irecv_alone_never_stalls() {
        let now = 10_000_000_000;
        let mut hs = vec![healthy(0, now), healthy(1, now)];
        // Rank computes forever with a posted irecv; not a stall — the
        // rank is not blocked (but it also reports no heartbeats).
        hs[0].inflight.push(op(SpanKind::MpIrecv, 1, 4, 0, 0));
        hs[0].last_progress_nanos = 0;
        assert!(classify(&hs, &cfg_ms(500)).is_empty());
    }

    #[test]
    fn flight_record_json_and_diagnosis() {
        let now = 5_000_000_000;
        let anomalies = vec![Anomaly {
            kind: AnomalyKind::DeadlockSuspect,
            rank: 2,
            label: "rank 2".into(),
            op: Some(op(SpanKind::MpRecv, 1, 99, 0, 0)),
            peer: Some(1),
            age_nanos: 700_000_000,
            detail: "mp_recv waits on rank 1 which exited with no matching activity".into(),
        }];
        let rec = FlightRecord {
            t_nanos: now,
            anomalies,
            ranks: vec![RankFlight {
                rank: 2,
                label: "rank 2".into(),
                done: false,
                inflight: vec![op(SpanKind::MpRecv, 1, 99, 0, 0)],
                queue_depths: (1, 0, 0, 0),
                snapshot: MetricsSnapshot::empty(),
            }],
        };
        let json = rec.to_json();
        crate::export::json::parse(&json).expect("flight record is valid JSON");
        assert!(json.contains("\"kind\":\"deadlock_suspect\""));
        assert!(json.contains("\"rank\":2"));
        assert!(json.contains("\"op\":\"mp_recv\""));
        let diag = rec.diagnosis();
        assert!(diag.contains("deadlock_suspect"));
        assert!(diag.contains("rank 2"));
        assert!(diag.contains("mp_recv(peer=1, tag=99)"));
    }

    #[test]
    fn doctor_config_parse() {
        let cfg = DoctorConfig::parse("deadline_ms=250,interval_ms=10,record=/tmp/x.json,abort=86");
        assert_eq!(cfg.stall_deadline, Duration::from_millis(250));
        assert_eq!(cfg.scan_interval, Duration::from_millis(10));
        assert_eq!(cfg.record_path.as_deref(), Some("/tmp/x.json"));
        assert_eq!(cfg.exit_code, Some(86));
        let on = DoctorConfig::parse("1");
        assert_eq!(on.stall_deadline, DoctorConfig::default().stall_deadline);
    }
}
