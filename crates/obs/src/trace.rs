//! Post-mortem cluster timeline: merge per-rank event rings, match
//! cross-rank message pairs into edges, and analyze waits and the
//! critical path.
//!
//! Input is one [`MetricsSnapshot`] per rank (device- and VM-side
//! registries already merged, as `MotorProc::metrics()` returns them);
//! the rank is the slice index. Every timestamp is shifted by that
//! snapshot's calibrated clock offset so times from different ranks are
//! comparable (see [`MetricsRegistry::set_clock_offset`] and
//! [`estimate_clock_offset`]).
//!
//! Three artifacts come out:
//!
//! * [`TraceSpan`]s — explicit [`SpanBegin`]/[`SpanEnd`] pairs plus
//!   intervals synthesized from paired runtime events (device waits from
//!   `OpBegin`/`OpEnd`, GC pauses, safepoint stalls, serializer passes,
//!   pin lifetimes, sender-side rendezvous handshakes).
//! * [`MessageEdge`]s — the k-th [`MsgSend`] from `src` to `dst` with tag
//!   `t` matched FIFO against the k-th [`MsgRecv`] on `dst` from `src`
//!   with tag `t` (sound because the device layer is non-overtaking per
//!   peer/tag, like MPI), plus RTS/CTS/Done control-packet edges matched
//!   exactly by `(src, dst, send-request id)`.
//! * Analyses — [`ClusterTrace::wait_breakdown`] and
//!   [`ClusterTrace::critical_path`].
//!
//! [`MetricsRegistry::set_clock_offset`]: crate::MetricsRegistry::set_clock_offset
//! [`SpanBegin`]: EventKind::SpanBegin
//! [`SpanEnd`]: EventKind::SpanEnd
//! [`MsgSend`]: EventKind::MsgSend
//! [`MsgRecv`]: EventKind::MsgRecv

use std::collections::{HashMap, HashSet, VecDeque};

use crate::{Event, EventKind, MetricsSnapshot, SpanKind};

/// High bit of the `c` word of [`EventKind::MsgSend`]/[`MsgRecv`]
/// events: set when the payload took the rendezvous path.
///
/// [`MsgRecv`]: EventKind::MsgRecv
pub const MSG_RNDV_FLAG: u64 = 1 << 63;

/// Pack the `c` word of a rendezvous control event ([`RndvRts`]/
/// [`RndvCts`]/[`RndvDone`]): the peer's global rank plus a low bit that
/// is 1 on the rank that *sent* the packet (or flushed the payload, for
/// Done) and 0 on the rank that observed it.
///
/// [`RndvRts`]: EventKind::RndvRts
/// [`RndvCts`]: EventKind::RndvCts
/// [`RndvDone`]: EventKind::RndvDone
pub fn rndv_ctl(peer: usize, sent: bool) -> u64 {
    ((peer as u64) << 1) | sent as u64
}

fn rndv_ctl_unpack(c: u64) -> (usize, bool) {
    ((c >> 1) as usize, c & 1 == 1)
}

/// NTP-style clock-offset estimate from one ping-pong handshake: `t0` is
/// the local send time, `t1` the local reply-arrival time (same clock),
/// `t_peer` the peer's timestamp stamped at the bounce. Returns the
/// nanoseconds to *add* to the peer's timestamps to express them on the
/// local clock; the estimate is exact when the two legs of the round
/// trip are symmetric and off by at most half the round-trip otherwise.
pub fn estimate_clock_offset(t0_local: u64, t1_local: u64, t_peer: u64) -> i64 {
    let mid = (t0_local / 2 + t1_local / 2) as i64 + (t0_local % 2 + t1_local % 2) as i64 / 2;
    mid - t_peer as i64
}

/// One interval on the cluster timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpan {
    /// Process-unique id (from [`crate::alloc_span_id`] for explicit
    /// spans and serializer passes; freshly assigned for intervals
    /// synthesized from other event pairs).
    pub id: u64,
    /// Which rank the interval belongs to.
    pub rank: usize,
    /// What the interval covers.
    pub kind: SpanKind,
    /// Calibrated begin time (nanoseconds on the cluster clock).
    pub t_begin: i64,
    /// Calibrated end time.
    pub t_end: i64,
    /// Kind-specific argument (usually [`crate::span_arg_peer_tag`]).
    pub arg: u64,
}

impl TraceSpan {
    /// Interval length in nanoseconds (0 if the clock ran backwards).
    pub fn dur_nanos(&self) -> u64 {
        (self.t_end - self.t_begin).max(0) as u64
    }
}

/// What a [`MessageEdge`] connects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Payload delivery: `MsgSend` initiation to `MsgRecv` completion.
    Payload,
    /// Rendezvous ready-to-send control packet.
    Rts,
    /// Rendezvous clear-to-send control packet.
    Cts,
    /// Rendezvous completion: sender's payload flush to the receiver's
    /// transfer-complete.
    Done,
}

impl EdgeKind {
    /// Stable export name.
    pub fn name(self) -> &'static str {
        match self {
            EdgeKind::Payload => "payload",
            EdgeKind::Rts => "rts",
            EdgeKind::Cts => "cts",
            EdgeKind::Done => "done",
        }
    }

    /// Inverse of [`EdgeKind::name`].
    pub fn from_name(name: &str) -> Option<EdgeKind> {
        Some(match name {
            "payload" => EdgeKind::Payload,
            "rts" => EdgeKind::Rts,
            "cts" => EdgeKind::Cts,
            "done" => EdgeKind::Done,
            _ => return None,
        })
    }
}

/// A matched cross-rank message pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageEdge {
    /// What this edge represents.
    pub kind: EdgeKind,
    /// Originating rank.
    pub src_rank: usize,
    /// Receiving rank.
    pub dst_rank: usize,
    /// Message tag (payload edges; 0 for control edges).
    pub tag: i64,
    /// Payload bytes.
    pub bytes: u64,
    /// Whether the payload took the rendezvous path.
    pub rndv: bool,
    /// Calibrated initiation time on the source rank.
    pub t_send: i64,
    /// Calibrated completion time on the destination rank.
    pub t_recv: i64,
    /// Id of the op span containing the send, when one does.
    pub src_span: Option<u64>,
    /// Id of the op span containing the receive, when one does.
    pub dst_span: Option<u64>,
}

impl MessageEdge {
    /// Calibrated one-way latency (may be negative only if calibration
    /// residual error exceeds the true latency).
    pub fn latency_nanos(&self) -> i64 {
        self.t_recv - self.t_send
    }
}

/// Per-rank wait accounting (see [`ClusterTrace::wait_breakdown`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitBreakdown {
    /// The rank.
    pub rank: usize,
    /// Wall-clock window spanned by this rank's spans (first begin to
    /// last end).
    pub window_nanos: u64,
    /// Total nanoseconds in wait-kind spans. Nested waits (a device wait
    /// inside an `mp_recv`) are counted once per kind, so the per-kind
    /// rows can sum to more than the window.
    pub total_wait_nanos: u64,
    /// Nanoseconds per wait kind, non-zero entries only.
    pub by_kind: Vec<(SpanKind, u64)>,
}

/// The longest weighted dependency chain through the span graph.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CriticalPath {
    /// Span ids along the path, earliest first.
    pub span_ids: Vec<u64>,
    /// Sum of span durations along the path.
    pub total_nanos: u64,
}

/// The merged timeline of one cluster run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterTrace {
    /// Number of ranks merged.
    pub ranks: usize,
    /// All intervals, no particular order.
    pub spans: Vec<TraceSpan>,
    /// All matched message pairs.
    pub edges: Vec<MessageEdge>,
    /// Per-rank count of ring events overwritten before the snapshot was
    /// taken ([`crate::Metric::TraceEventsDropped`]). Nonzero entries mean
    /// the timeline is a *suffix* of the run, not the whole of it.
    pub dropped_events: Vec<u64>,
    /// Per-rank count of end-type events (span/serializer/op ends) whose
    /// begin was already overwritten by ring wraparound. Each one is an
    /// interval silently missing from [`ClusterTrace::spans`], so any
    /// nonzero entry means the wait breakdown *under-reports* that rank.
    pub orphaned_ends: Vec<u64>,
}

impl SpanKind {
    /// Operation-level spans: nodes of the critical-path graph. Runtime
    /// phases (GC, stalls, serializer passes, device waits, pins) carry
    /// the *why* of a wait and feed the breakdown instead.
    pub fn is_op(self) -> bool {
        !matches!(
            self,
            SpanKind::Serialize
                | SpanKind::Deserialize
                | SpanKind::DeviceWait
                | SpanKind::RndvHandshake
                | SpanKind::Gc
                | SpanKind::SafepointStall
                | SpanKind::PinHeld
        )
    }
}

/// Build the cluster timeline from one snapshot per rank (rank =
/// slice index). See the module docs for what gets paired and matched.
pub fn build_cluster_trace(snaps: &[MetricsSnapshot]) -> ClusterTrace {
    let mut trace = ClusterTrace {
        ranks: snaps.len(),
        spans: Vec::new(),
        edges: Vec::new(),
        dropped_events: snaps
            .iter()
            .map(|s| s.get(crate::Metric::TraceEventsDropped))
            .collect(),
        orphaned_ends: vec![0; snaps.len()],
    };

    // Synthetic span ids must not collide with real ones.
    let mut next_syn = 1 + snaps
        .iter()
        .flat_map(|s| s.events())
        .filter_map(|e| match e.kind {
            EventKind::SpanBegin
            | EventKind::SpanEnd
            | EventKind::SerBegin
            | EventKind::SerEnd
            | EventKind::DeserBegin
            | EventKind::DeserEnd => Some(e.a),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let mut syn_id = || {
        let id = next_syn;
        next_syn += 1;
        id
    };

    // FIFO queues for payload matching: (src, dst, tag) -> events.
    type PayloadQ = HashMap<(usize, usize, i64), VecDeque<(i64, u64)>>;
    let mut sends: PayloadQ = HashMap::new();
    let mut recvs: PayloadQ = HashMap::new();
    // Exact-key maps for control-packet matching:
    // (kind, src, dst, sreq) -> (t, bytes), per direction.
    type CtlMap = HashMap<(EventKind, usize, usize, u64), (i64, u64)>;
    let mut ctl_sent: CtlMap = HashMap::new();
    let mut ctl_rcvd: CtlMap = HashMap::new();

    for (rank, snap) in snaps.iter().enumerate() {
        let off = snap.clock_offset_nanos();
        let cal = |t: u64| t as i64 + off;
        let mut evs: Vec<Event> = snap.events().to_vec();
        evs.sort_by_key(|e| e.t_nanos);

        // Open-interval state, keyed as each pairing rule requires.
        let mut open_spans: HashMap<u64, (SpanKind, i64, u64)> = HashMap::new();
        let mut open_ser: HashMap<u64, i64> = HashMap::new();
        let mut open_deser: HashMap<u64, i64> = HashMap::new();
        let mut open_ops: HashMap<u64, (i64, u64)> = HashMap::new();
        let mut open_gc: Option<i64> = None;
        let mut open_pins: HashMap<u64, Vec<i64>> = HashMap::new();
        let mut open_rndv: HashMap<u64, (i64, u64)> = HashMap::new();

        for e in &evs {
            let t = cal(e.t_nanos);
            match e.kind {
                EventKind::SpanBegin => {
                    if let Some(kind) = SpanKind::from_u64(e.b) {
                        open_spans.insert(e.a, (kind, t, e.c));
                    }
                }
                EventKind::SpanEnd => {
                    if let Some((kind, t0, _)) = open_spans.remove(&e.a) {
                        trace.spans.push(TraceSpan {
                            id: e.a,
                            rank,
                            kind,
                            t_begin: t0,
                            t_end: t,
                            arg: e.c,
                        });
                    } else {
                        trace.orphaned_ends[rank] += 1;
                    }
                }
                EventKind::SerBegin => {
                    open_ser.insert(e.a, t);
                }
                EventKind::SerEnd => {
                    if let Some(t0) = open_ser.remove(&e.a) {
                        trace.spans.push(TraceSpan {
                            id: e.a,
                            rank,
                            kind: SpanKind::Serialize,
                            t_begin: t0,
                            t_end: t,
                            arg: e.b,
                        });
                    } else {
                        trace.orphaned_ends[rank] += 1;
                    }
                }
                EventKind::DeserBegin => {
                    open_deser.insert(e.a, t);
                }
                EventKind::DeserEnd => {
                    if let Some(t0) = open_deser.remove(&e.a) {
                        trace.spans.push(TraceSpan {
                            id: e.a,
                            rank,
                            kind: SpanKind::Deserialize,
                            t_begin: t0,
                            t_end: t,
                            arg: e.b,
                        });
                    } else {
                        trace.orphaned_ends[rank] += 1;
                    }
                }
                EventKind::OpBegin => {
                    open_ops.insert(e.a, (t, e.b));
                }
                EventKind::OpEnd => {
                    if let Some((t0, peer_tag)) = open_ops.remove(&e.a) {
                        trace.spans.push(TraceSpan {
                            id: syn_id(),
                            rank,
                            kind: SpanKind::DeviceWait,
                            t_begin: t0,
                            t_end: t,
                            arg: peer_tag,
                        });
                    } else {
                        trace.orphaned_ends[rank] += 1;
                    }
                }
                EventKind::GcBegin => {
                    open_gc = Some(t);
                }
                EventKind::GcEnd => {
                    if let Some(t0) = open_gc.take() {
                        trace.spans.push(TraceSpan {
                            id: syn_id(),
                            rank,
                            kind: SpanKind::Gc,
                            t_begin: t0,
                            t_end: t,
                            arg: e.a, // 0 minor / 1 full
                        });
                    }
                }
                EventKind::SafepointStall => {
                    // Stamped once, at the end of the stall; `a` = nanos.
                    trace.spans.push(TraceSpan {
                        id: syn_id(),
                        rank,
                        kind: SpanKind::SafepointStall,
                        t_begin: t - e.a as i64,
                        t_end: t,
                        arg: 0,
                    });
                }
                EventKind::PinAcquire => {
                    open_pins.entry(e.a).or_default().push(t);
                }
                EventKind::PinRelease => {
                    if let Some(t0) = open_pins.get_mut(&e.a).and_then(|v| v.pop()) {
                        trace.spans.push(TraceSpan {
                            id: syn_id(),
                            rank,
                            kind: SpanKind::PinHeld,
                            t_begin: t0,
                            t_end: t,
                            arg: e.a,
                        });
                    }
                }
                EventKind::MsgSend => {
                    let dst = e.a as usize;
                    sends
                        .entry((rank, dst, e.b as i64))
                        .or_default()
                        .push_back((t, e.c));
                }
                EventKind::MsgRecv => {
                    let src = e.a as usize;
                    recvs
                        .entry((src, rank, e.b as i64))
                        .or_default()
                        .push_back((t, e.c));
                }
                EventKind::RndvRts | EventKind::RndvCts | EventKind::RndvDone => {
                    let (peer, sent) = rndv_ctl_unpack(e.c);
                    // Normalize the key to (packet source, packet dest).
                    let (key, map) = if sent {
                        ((e.kind, rank, peer, e.a), &mut ctl_sent)
                    } else {
                        ((e.kind, peer, rank, e.a), &mut ctl_rcvd)
                    };
                    map.insert(key, (t, e.b));
                    // Sender-side RTS opens (and flush-Done closes) the
                    // handshake span covering the whole rendezvous.
                    if sent && e.kind == EventKind::RndvRts {
                        open_rndv.insert(e.a, (t, e.b));
                    }
                    if sent && e.kind == EventKind::RndvDone {
                        if let Some((t0, bytes)) = open_rndv.remove(&e.a) {
                            trace.spans.push(TraceSpan {
                                id: syn_id(),
                                rank,
                                kind: SpanKind::RndvHandshake,
                                t_begin: t0,
                                t_end: t,
                                arg: bytes,
                            });
                        }
                    }
                }
                // Instantaneous profiler samples; not intervals.
                EventKind::ProfSample => {}
            }
        }
    }

    // Payload edges: FIFO zip per (src, dst, tag).
    for (&(src, dst, tag), sq) in &mut sends {
        let Some(rq) = recvs.get_mut(&(src, dst, tag)) else {
            continue;
        };
        while let (Some(&(ts, cs)), Some(&(tr, cr))) = (sq.front(), rq.front()) {
            sq.pop_front();
            rq.pop_front();
            trace.edges.push(MessageEdge {
                kind: EdgeKind::Payload,
                src_rank: src,
                dst_rank: dst,
                tag,
                bytes: cr & !MSG_RNDV_FLAG,
                rndv: (cs | cr) & MSG_RNDV_FLAG != 0,
                t_send: ts,
                t_recv: tr,
                src_span: None,
                dst_span: None,
            });
        }
    }

    // Control edges: exact match on (kind, src, dst, sreq).
    for (&(kind, src, dst, _sreq), &(ts, bytes)) in &ctl_sent {
        let Some(&(tr, _)) = ctl_rcvd.get(&(kind, src, dst, _sreq)) else {
            continue;
        };
        let ek = match kind {
            EventKind::RndvRts => EdgeKind::Rts,
            EventKind::RndvCts => EdgeKind::Cts,
            _ => EdgeKind::Done,
        };
        trace.edges.push(MessageEdge {
            kind: ek,
            src_rank: src,
            dst_rank: dst,
            tag: 0,
            bytes,
            rndv: true,
            t_send: ts,
            t_recv: tr,
            src_span: None,
            dst_span: None,
        });
    }

    // Attach the smallest containing op span to each payload endpoint.
    let mut by_rank: HashMap<usize, Vec<&TraceSpan>> = HashMap::new();
    for s in trace.spans.iter().filter(|s| s.kind.is_op()) {
        by_rank.entry(s.rank).or_default().push(s);
    }
    let containing = |rank: usize, t: i64| -> Option<u64> {
        by_rank
            .get(&rank)?
            .iter()
            .filter(|s| s.t_begin <= t && t <= s.t_end)
            .min_by_key(|s| s.dur_nanos())
            .map(|s| s.id)
    };
    let located: Vec<(Option<u64>, Option<u64>)> = trace
        .edges
        .iter()
        .map(|e| {
            (
                containing(e.src_rank, e.t_send),
                containing(e.dst_rank, e.t_recv),
            )
        })
        .collect();
    for (e, (s, d)) in trace.edges.iter_mut().zip(located) {
        e.src_span = s;
        e.dst_span = d;
    }

    // Deterministic output order.
    trace.spans.sort_by_key(|s| (s.rank, s.t_begin, s.id));
    trace
        .edges
        .sort_by_key(|e| (e.t_send, e.src_rank, e.dst_rank, e.tag));
    trace
}

impl ClusterTrace {
    /// Every span id present in the trace.
    pub fn span_ids(&self) -> HashSet<u64> {
        self.spans.iter().map(|s| s.id).collect()
    }

    /// Ranks whose span coverage has gaps — ring wraparound dropped
    /// events ([`Self::dropped_events`]) or ate the begin of a recorded
    /// end ([`Self::orphaned_ends`]) — as `(rank, dropped, orphaned)`
    /// rows. Consumers (e.g. `motor-trace summary`) should warn on any
    /// row: wait breakdowns computed from this trace are lower bounds.
    pub fn coverage_gaps(&self) -> Vec<(usize, u64, u64)> {
        (0..self.ranks)
            .filter_map(|r| {
                let dropped = self.dropped_events.get(r).copied().unwrap_or(0);
                let orphaned = self.orphaned_ends.get(r).copied().unwrap_or(0);
                (dropped > 0 || orphaned > 0).then_some((r, dropped, orphaned))
            })
            .collect()
    }

    /// Per-rank wait accounting: how much of each rank's window went to
    /// waiting on the cluster (device waits, explicit waits/probes, GC
    /// pauses, safepoint stalls), by kind.
    pub fn wait_breakdown(&self) -> Vec<WaitBreakdown> {
        (0..self.ranks)
            .map(|rank| {
                let spans: Vec<&TraceSpan> = self.spans.iter().filter(|s| s.rank == rank).collect();
                let window = match (
                    spans.iter().map(|s| s.t_begin).min(),
                    spans.iter().map(|s| s.t_end).max(),
                ) {
                    (Some(lo), Some(hi)) => (hi - lo).max(0) as u64,
                    _ => 0,
                };
                let mut by_kind: Vec<(SpanKind, u64)> = Vec::new();
                for k in SpanKind::ALL {
                    if !k.is_wait() {
                        continue;
                    }
                    let total: u64 = spans
                        .iter()
                        .filter(|s| s.kind == k)
                        .map(|s| s.dur_nanos())
                        .sum();
                    if total > 0 {
                        by_kind.push((k, total));
                    }
                }
                WaitBreakdown {
                    rank,
                    window_nanos: window,
                    total_wait_nanos: by_kind.iter().map(|&(_, n)| n).sum(),
                    by_kind,
                }
            })
            .collect()
    }

    /// The longest weighted dependency chain through the op-span graph.
    ///
    /// Dependencies: program order within a rank (a span depends on every
    /// same-rank op span that ended before it began) and message edges
    /// (the receiving span depends on the sending span). The weight of a
    /// path is the sum of its spans' durations; computed by a forward DP
    /// over spans in end-time order (an edge whose source ends after the
    /// sink is dropped, which also rules out cycles from symmetric
    /// exchanges).
    pub fn critical_path(&self) -> CriticalPath {
        let ops: Vec<&TraceSpan> = self.spans.iter().filter(|s| s.kind.is_op()).collect();
        if ops.is_empty() {
            return CriticalPath::default();
        }
        let idx_of: HashMap<u64, usize> = ops.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
        // Message preds per sink index.
        let mut msg_preds: HashMap<usize, Vec<usize>> = HashMap::new();
        for e in &self.edges {
            if let (Some(s), Some(d)) = (e.src_span, e.dst_span) {
                if let (Some(&si), Some(&di)) = (idx_of.get(&s), idx_of.get(&d)) {
                    if si != di {
                        msg_preds.entry(di).or_default().push(si);
                    }
                }
            }
        }
        let mut order: Vec<usize> = (0..ops.len()).collect();
        order.sort_by_key(|&i| (ops[i].t_end, ops[i].id));
        let mut dist: Vec<u64> = vec![0; ops.len()];
        let mut pred: Vec<Option<usize>> = vec![None; ops.len()];
        for &i in &order {
            let b = ops[i];
            let mut best: Option<(u64, usize)> = None;
            let mut consider = |j: usize| {
                if j != i && ops[j].t_end <= b.t_end && best.is_none_or(|(d, _)| dist[j] > d) {
                    best = Some((dist[j], j));
                }
            };
            for (j, p) in ops.iter().enumerate() {
                if p.rank == b.rank && p.t_end <= b.t_begin {
                    consider(j);
                }
            }
            for &j in msg_preds.get(&i).into_iter().flatten() {
                consider(j);
            }
            dist[i] = b.dur_nanos() + best.map_or(0, |(d, _)| d);
            pred[i] = best.map(|(_, j)| j);
        }
        let mut at = (0..ops.len()).max_by_key(|&i| dist[i]).unwrap();
        let total = dist[at];
        let mut ids = vec![ops[at].id];
        while let Some(p) = pred[at] {
            ids.push(ops[p].id);
            at = p;
        }
        ids.reverse();
        CriticalPath {
            span_ids: ids,
            total_nanos: total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetricsRegistry, SpanKind};
    use std::time::Instant;

    #[test]
    fn offset_estimate_symmetric_is_exact() {
        // Local clock: send at 1000, reply at 3000. Peer stamped 7000 at
        // the bounce; the bounce happened at local 2000, so peer clock is
        // 5000 ahead — subtract 5000 from peer times.
        assert_eq!(estimate_clock_offset(1000, 3000, 7000), -5000);
        // Peer behind by 400.
        assert_eq!(estimate_clock_offset(1000, 3000, 1600), 400);
    }

    #[test]
    fn rndv_ctl_roundtrip() {
        for peer in [0usize, 3, 1 << 20] {
            for sent in [false, true] {
                assert_eq!(rndv_ctl_unpack(rndv_ctl(peer, sent)), (peer, sent));
            }
        }
    }

    fn two_rank_snaps() -> Vec<crate::MetricsSnapshot> {
        let epoch = Instant::now();
        let r0 = MetricsRegistry::with_epoch(epoch, 64);
        let r1 = MetricsRegistry::with_epoch(epoch, 64);
        // Rank 0 sends 16 bytes, tag 7, inside an mp_send span.
        {
            let _g = r0.span(SpanKind::MpSend, crate::span_arg_peer_tag(1, 7));
            r0.event3(EventKind::MsgSend, 1, 7, 16);
        }
        // Rank 1 receives it inside an mp_recv span.
        {
            let _g = r1.span(SpanKind::MpRecv, crate::span_arg_peer_tag(0, 7));
            r1.event3(EventKind::MsgRecv, 0, 7, 16);
        }
        vec![r0.snapshot(), r1.snapshot()]
    }

    #[test]
    fn payload_edge_matched_with_containing_spans() {
        let t = build_cluster_trace(&two_rank_snaps());
        assert_eq!(t.ranks, 2);
        assert_eq!(t.edges.len(), 1);
        let e = &t.edges[0];
        assert_eq!(e.kind, EdgeKind::Payload);
        assert_eq!((e.src_rank, e.dst_rank, e.tag, e.bytes), (0, 1, 7, 16));
        assert!(!e.rndv);
        assert!(e.src_span.is_some() && e.dst_span.is_some());
        let ids = t.span_ids();
        assert!(ids.contains(&e.src_span.unwrap()));
        assert!(ids.contains(&e.dst_span.unwrap()));
    }

    #[test]
    fn clock_offset_shifts_one_rank() {
        let snaps = {
            let epoch = Instant::now();
            let r0 = MetricsRegistry::with_epoch(epoch, 64);
            let r1 = MetricsRegistry::with_epoch(epoch, 64);
            r0.event3(EventKind::MsgSend, 1, 0, 8);
            r1.event3(EventKind::MsgRecv, 0, 0, 8);
            r1.set_clock_offset(1_000_000_000);
            vec![r0.snapshot(), r1.snapshot()]
        };
        let t = build_cluster_trace(&snaps);
        assert_eq!(t.edges.len(), 1);
        // Rank 1's clock was shifted forward a full second, so the edge
        // latency must reflect it.
        assert!(t.edges[0].latency_nanos() >= 1_000_000_000);
    }

    #[test]
    fn fifo_matching_pairs_in_order() {
        let epoch = Instant::now();
        let r0 = MetricsRegistry::with_epoch(epoch, 64);
        let r1 = MetricsRegistry::with_epoch(epoch, 64);
        r0.event3(EventKind::MsgSend, 1, 5, 100);
        r0.event3(EventKind::MsgSend, 1, 5, 200);
        r1.event3(EventKind::MsgRecv, 0, 5, 100);
        r1.event3(EventKind::MsgRecv, 0, 5, 200);
        let t = build_cluster_trace(&[r0.snapshot(), r1.snapshot()]);
        assert_eq!(t.edges.len(), 2);
        assert_eq!(t.edges[0].bytes, 100);
        assert_eq!(t.edges[1].bytes, 200);
        assert!(t.edges.iter().all(|e| e.latency_nanos() >= 0));
    }

    #[test]
    fn rndv_control_edges_and_handshake_span() {
        let epoch = Instant::now();
        let r0 = MetricsRegistry::with_epoch(epoch, 64);
        let r1 = MetricsRegistry::with_epoch(epoch, 64);
        let sreq = 42;
        // Sender (rank 0) RTS out, receiver sees it, CTS back, payload
        // flush, receiver completion.
        r0.event3(EventKind::RndvRts, sreq, 1 << 20, rndv_ctl(1, true));
        r1.event3(EventKind::RndvRts, sreq, 1 << 20, rndv_ctl(0, false));
        r1.event3(EventKind::RndvCts, sreq, 1 << 20, rndv_ctl(0, true));
        r0.event3(EventKind::RndvCts, sreq, 1 << 20, rndv_ctl(1, false));
        r0.event3(EventKind::MsgSend, 1, 9, (1 << 20) | MSG_RNDV_FLAG);
        r0.event3(EventKind::RndvDone, sreq, 1 << 20, rndv_ctl(1, true));
        r1.event3(EventKind::MsgRecv, 0, 9, (1 << 20) | MSG_RNDV_FLAG);
        r1.event3(EventKind::RndvDone, sreq, 1 << 20, rndv_ctl(0, false));
        let t = build_cluster_trace(&[r0.snapshot(), r1.snapshot()]);
        let kinds: Vec<EdgeKind> = t.edges.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EdgeKind::Rts));
        assert!(kinds.contains(&EdgeKind::Cts));
        assert!(kinds.contains(&EdgeKind::Done));
        let payload = t
            .edges
            .iter()
            .find(|e| e.kind == EdgeKind::Payload)
            .unwrap();
        assert!(payload.rndv);
        assert_eq!(payload.bytes, 1 << 20);
        // CTS flows receiver -> sender.
        let cts = t.edges.iter().find(|e| e.kind == EdgeKind::Cts).unwrap();
        assert_eq!((cts.src_rank, cts.dst_rank), (1, 0));
        assert!(t
            .spans
            .iter()
            .any(|s| s.kind == SpanKind::RndvHandshake && s.rank == 0));
    }

    #[test]
    fn wait_breakdown_and_critical_path() {
        let t = build_cluster_trace(&two_rank_snaps());
        let wb = t.wait_breakdown();
        assert_eq!(wb.len(), 2);
        assert!(wb
            .iter()
            .all(|w| w.window_nanos > 0 || w.by_kind.is_empty()));
        let cp = t.critical_path();
        assert!(!cp.span_ids.is_empty());
        let ids = t.span_ids();
        assert!(cp.span_ids.iter().all(|id| ids.contains(id)));
        // The send happens-before the recv, so the path should cross the
        // message edge and end in the receive span.
        let e = &t.edges[0];
        assert_eq!(cp.span_ids.last(), Some(&e.dst_span.unwrap()));
        assert!(cp.span_ids.contains(&e.src_span.unwrap()));
    }

    #[test]
    fn coverage_gaps_flag_orphaned_ends_and_drops() {
        // A tiny ring plus a long-lived span: the inner spans wrap the
        // ring and overwrite the outer begin, so the outer end arrives
        // with its begin already gone.
        let r = MetricsRegistry::with_epoch(Instant::now(), 8);
        let outer = r.span(SpanKind::Barrier, 0);
        for _ in 0..16 {
            let _g = r.span(SpanKind::Bcast, 0);
        }
        drop(outer);
        let t = build_cluster_trace(&[r.snapshot()]);
        let gaps = t.coverage_gaps();
        assert_eq!(gaps.len(), 1, "wraparound must be reported as a gap");
        let (rank, dropped, orphaned) = gaps[0];
        assert_eq!(rank, 0);
        assert!(dropped > 0);
        assert!(orphaned > 0, "ends without begins must be counted");

        // A clean trace reports no gaps.
        assert!(build_cluster_trace(&two_rank_snaps())
            .coverage_gaps()
            .is_empty());
    }

    #[test]
    fn synthesized_spans_from_runtime_events() {
        let r = MetricsRegistry::new();
        r.event3(EventKind::OpBegin, 5, 0, 0);
        r.event3(EventKind::OpEnd, 5, 0, 0);
        r.event3(EventKind::GcBegin, 1, 0, 0);
        r.event3(EventKind::GcEnd, 1, 12345, 0);
        r.event3(EventKind::SafepointStall, 1000, 0, 0);
        r.event3(EventKind::PinAcquire, 0xdead, 0, 0);
        r.event3(EventKind::PinRelease, 0xdead, 0, 0);
        r.event3(EventKind::SerBegin, 99, 0, 0);
        r.event3(EventKind::SerEnd, 99, 64, 3);
        let t = build_cluster_trace(&[r.snapshot()]);
        let kinds: HashSet<SpanKind> = t.spans.iter().map(|s| s.kind).collect();
        for k in [
            SpanKind::DeviceWait,
            SpanKind::Gc,
            SpanKind::SafepointStall,
            SpanKind::PinHeld,
            SpanKind::Serialize,
        ] {
            assert!(kinds.contains(&k), "missing synthesized {k:?}");
        }
        // Ids are unique across real and synthetic spans.
        assert_eq!(t.span_ids().len(), t.spans.len());
    }
}
