//! The polling-wait primitive.
//!
//! Motor replaced MPICH2's blocking system calls with "a polling-wait,
//! which periodically releases and polls the garbage collector ... to
//! ensure that the thread performing the FCall does not block the entire
//! runtime when a garbage collection is required" (§7.1). [`polling_wait`]
//! is that loop, generic over the yield callback so the runtime layer can
//! plug in its safepoint poll and the native baseline can plug in nothing.

/// Exponential spin/yield backoff, reset on progress.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Spin threshold before falling back to `thread::yield_now`.
    const SPIN_LIMIT: u32 = 6;

    /// Create a fresh backoff.
    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Reset after the waited-for condition made progress.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Wait a little: spin with exponentially more `spin_loop` hints, then
    /// start yielding the OS thread.
    pub fn snooze(&mut self) {
        if self.step <= Self::SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if self.step <= Self::SPIN_LIMIT {
            self.step += 1;
        }
    }

    /// True once the backoff has escalated to OS-level yielding.
    pub fn is_yielding(&self) -> bool {
        self.step > Self::SPIN_LIMIT
    }
}

/// Spin until `done` returns `true`, invoking `yield_poll` on every lap.
///
/// `yield_poll` is the hook at which the Motor runtime parks the thread for
/// a pending garbage collection; the loop guarantees it runs at least once
/// even if `done` is immediately true, matching the paper's FCall
/// discipline (poll on entry, poll while waiting, poll on exit).
pub fn polling_wait(mut done: impl FnMut() -> bool, mut yield_poll: impl FnMut()) {
    let mut backoff = Backoff::new();
    loop {
        yield_poll();
        if done() {
            return;
        }
        backoff.snooze();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn polls_at_least_once_when_immediately_done() {
        let mut polls = 0;
        polling_wait(|| true, || polls += 1);
        assert_eq!(polls, 1);
    }

    #[test]
    fn waits_for_cross_thread_flag() {
        let flag = Arc::new(AtomicBool::new(false));
        let polls = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&flag);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            f2.store(true, Ordering::Release);
        });
        let p = Arc::clone(&polls);
        polling_wait(
            || flag.load(Ordering::Acquire),
            || {
                p.fetch_add(1, Ordering::Relaxed);
            },
        );
        t.join().unwrap();
        assert!(polls.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn backoff_escalates_and_resets() {
        let mut b = Backoff::new();
        assert!(!b.is_yielding());
        for _ in 0..10 {
            b.snooze();
        }
        assert!(b.is_yielding());
        b.reset();
        assert!(!b.is_yielding());
    }
}
