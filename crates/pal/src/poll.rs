//! The polling-wait primitive.
//!
//! Motor replaced MPICH2's blocking system calls with "a polling-wait,
//! which periodically releases and polls the garbage collector ... to
//! ensure that the thread performing the FCall does not block the entire
//! runtime when a garbage collection is required" (§7.1). [`polling_wait`]
//! is that loop, generic over the yield callback so the runtime layer can
//! plug in its safepoint poll and the native baseline can plug in nothing.
//!
//! The wait escalates through a configurable three-stage ladder
//! ([`BackoffConfig`]): spin (exponentially more `spin_loop` hints) →
//! yield the OS thread → sleep a fixed interval. Latency-sensitive runs
//! can disable the sleep stage entirely; simulation harnesses can pin the
//! ladder to pure spinning so virtual time is never coupled to the host
//! scheduler.

use std::time::Duration;

/// Tuning for the spin → yield → sleep wait ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffConfig {
    /// Laps spent spinning (lap `k` issues `2^k` `spin_loop` hints) before
    /// escalating to `thread::yield_now`.
    pub spin_limit: u32,
    /// Laps spent yielding before escalating to sleeping. Ignored when
    /// [`sleep`](Self::sleep) is `None`.
    pub yield_limit: u32,
    /// Sleep interval once the ladder is fully escalated; `None` keeps
    /// yielding forever (the pre-ladder behaviour).
    pub sleep: Option<Duration>,
}

impl BackoffConfig {
    /// The default ladder: 6 spin laps, 64 yield laps, then 100 µs sleeps.
    /// The sleep stage only engages after a wait has already burned ~70
    /// laps without progress, so fast-path latency is unaffected while
    /// long waits stop monopolising a core.
    pub const fn default_ladder() -> Self {
        BackoffConfig {
            spin_limit: 6,
            yield_limit: 64,
            sleep: Some(Duration::from_micros(100)),
        }
    }

    /// Spin/yield only — never sleep. For latency-critical waits and for
    /// deterministic simulation, where an OS sleep would couple virtual
    /// time to the host scheduler.
    pub const fn no_sleep() -> Self {
        BackoffConfig {
            spin_limit: 6,
            yield_limit: u32::MAX,
            sleep: None,
        }
    }
}

impl Default for BackoffConfig {
    fn default() -> Self {
        Self::default_ladder()
    }
}

/// Exponential spin/yield/sleep backoff, reset on progress.
#[derive(Debug, Default)]
pub struct Backoff {
    config: BackoffConfig,
    step: u32,
}

impl Backoff {
    /// A fresh backoff with the default ladder.
    pub fn new() -> Self {
        Backoff::default()
    }

    /// A fresh backoff with an explicit ladder.
    pub fn with_config(config: BackoffConfig) -> Self {
        Backoff { config, step: 0 }
    }

    /// Reset after the waited-for condition made progress.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Wait a little: spin with exponentially more `spin_loop` hints, then
    /// yield the OS thread, then (if configured) sleep.
    pub fn snooze(&mut self) {
        let c = &self.config;
        if self.step <= c.spin_limit {
            for _ in 0..(1u32 << self.step.min(16)) {
                std::hint::spin_loop();
            }
        } else if self.config.sleep.is_none()
            || self.step <= c.spin_limit.saturating_add(c.yield_limit)
        {
            std::thread::yield_now();
        } else if let Some(d) = c.sleep {
            std::thread::sleep(d);
        }
        if !self.is_sleeping() {
            self.step = self.step.saturating_add(1);
        }
    }

    /// True once the backoff has escalated past pure spinning (to OS-level
    /// yielding or sleeping).
    pub fn is_yielding(&self) -> bool {
        self.step > self.config.spin_limit
    }

    /// True once the backoff has escalated to OS sleeps.
    pub fn is_sleeping(&self) -> bool {
        self.config.sleep.is_some()
            && self.step
                > self
                    .config
                    .spin_limit
                    .saturating_add(self.config.yield_limit)
    }
}

/// Spin until `done` returns `true`, invoking `yield_poll` on every lap.
///
/// `yield_poll` is the hook at which the Motor runtime parks the thread for
/// a pending garbage collection; the loop guarantees it runs at least once
/// even if `done` is immediately true, matching the paper's FCall
/// discipline (poll on entry, poll while waiting, poll on exit).
pub fn polling_wait(done: impl FnMut() -> bool, yield_poll: impl FnMut()) {
    polling_wait_with(BackoffConfig::default(), done, yield_poll)
}

/// [`polling_wait`] with an explicit backoff ladder.
pub fn polling_wait_with(
    config: BackoffConfig,
    mut done: impl FnMut() -> bool,
    mut yield_poll: impl FnMut(),
) {
    let mut backoff = Backoff::with_config(config);
    loop {
        yield_poll();
        if done() {
            return;
        }
        backoff.snooze();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn polls_at_least_once_when_immediately_done() {
        let mut polls = 0;
        polling_wait(|| true, || polls += 1);
        assert_eq!(polls, 1);
    }

    #[test]
    fn waits_for_cross_thread_flag() {
        let flag = Arc::new(AtomicBool::new(false));
        let polls = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&flag);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            f2.store(true, Ordering::Release);
        });
        let p = Arc::clone(&polls);
        polling_wait(
            || flag.load(Ordering::Acquire),
            || {
                p.fetch_add(1, Ordering::Relaxed);
            },
        );
        t.join().unwrap();
        assert!(polls.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn backoff_escalates_and_resets() {
        let mut b = Backoff::new();
        assert!(!b.is_yielding());
        for _ in 0..10 {
            b.snooze();
        }
        assert!(b.is_yielding());
        b.reset();
        assert!(!b.is_yielding());
    }

    #[test]
    fn ladder_reaches_sleep_stage_and_stays() {
        let mut b = Backoff::with_config(BackoffConfig {
            spin_limit: 2,
            yield_limit: 3,
            sleep: Some(Duration::from_nanos(1)),
        });
        for _ in 0..6 {
            assert!(!b.is_sleeping());
            b.snooze();
        }
        b.snooze();
        assert!(b.is_sleeping());
        // Saturated: further snoozes keep sleeping.
        b.snooze();
        assert!(b.is_sleeping());
        b.reset();
        assert!(!b.is_yielding() && !b.is_sleeping());
    }

    #[test]
    fn no_sleep_ladder_never_sleeps() {
        let mut b = Backoff::with_config(BackoffConfig::no_sleep());
        for _ in 0..100_000 {
            b.snooze();
        }
        assert!(b.is_yielding());
        assert!(!b.is_sleeping());
    }

    #[test]
    fn polling_wait_with_honors_config() {
        let mut n = 0u32;
        polling_wait_with(
            BackoffConfig::no_sleep(),
            || {
                n += 1;
                n > 20
            },
            || {},
        );
        assert!(n > 20);
    }
}
