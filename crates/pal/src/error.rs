//! PAL error type.

use std::fmt;

/// Errors produced by platform-layer operations.
#[derive(Debug)]
pub enum PalError {
    /// The peer endpoint of a link has been closed or dropped.
    Disconnected,
    /// An underlying OS I/O operation failed.
    Io(std::io::Error),
    /// A capacity or configuration argument was invalid.
    InvalidArgument(String),
}

/// Result alias for PAL operations.
pub type PalResult<T> = Result<T, PalError>;

impl fmt::Display for PalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PalError::Disconnected => write!(f, "link disconnected"),
            PalError::Io(e) => write!(f, "I/O error: {e}"),
            PalError::InvalidArgument(s) => write!(f, "invalid argument: {s}"),
        }
    }
}

impl std::error::Error for PalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PalError {
    fn from(e: std::io::Error) -> Self {
        PalError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(PalError::Disconnected.to_string(), "link disconnected");
        let e = PalError::InvalidArgument("capacity must be a power of two".into());
        assert!(e.to_string().contains("power of two"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error;
        let io = std::io::Error::other("boom");
        let e: PalError = io.into();
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_some());
    }
}
