//! Monotonic timing.
//!
//! The paper's protocol times ping-pong iterations in microseconds. This
//! module wraps the host monotonic clock behind the PAL so the layers above
//! never touch `std::time` directly (the SSCLI PAL similarly virtualises
//! `QueryPerformanceCounter`).

use std::time::{Duration, Instant};

/// A monotonic stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start a new stopwatch at the current instant.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed wall time since the stopwatch was started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in whole microseconds.
    pub fn elapsed_micros(&self) -> u64 {
        self.elapsed().as_micros() as u64
    }

    /// Elapsed time in fractional microseconds (nanosecond resolution).
    pub fn elapsed_micros_f64(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e6
    }

    /// Restart the stopwatch, returning the elapsed duration up to now.
    pub fn lap(&mut self) -> Duration {
        let e = self.elapsed();
        self.start = Instant::now();
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
    }

    #[test]
    fn lap_resets() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        let first = sw.lap();
        assert!(first >= Duration::from_millis(1));
        // After the lap the elapsed time restarts near zero.
        assert!(sw.elapsed() < first + Duration::from_millis(1));
    }

    #[test]
    fn micros_f64_tracks_micros() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(1));
        let f = sw.elapsed_micros_f64();
        assert!(f >= 1000.0);
    }
}
