//! Monotonic timing.
//!
//! The paper's protocol times ping-pong iterations in microseconds. This
//! module wraps the host monotonic clock behind the PAL so the layers above
//! never touch `std::time` directly (the SSCLI PAL similarly virtualises
//! `QueryPerformanceCounter`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A source of monotonic ticks.
///
/// Production code reads the host monotonic clock; deterministic simulation
/// substitutes a [`VirtualClock`] whose time only advances when the
/// scheduler says so. A "tick" is deliberately unitless — the simulation
/// harness decides what one tick means (it uses them as scheduler steps and
/// reports them as nanoseconds when building flight records).
pub trait TickSource: Send + Sync {
    /// Current tick count. Must be monotonic per source.
    fn now_ticks(&self) -> u64;
}

/// A manually-advanced clock for deterministic simulation.
///
/// Time stands still until [`advance`](VirtualClock::advance) is called, so
/// two runs with the same seed observe the exact same timestamps.
#[derive(Debug, Default)]
pub struct VirtualClock {
    ticks: AtomicU64,
}

impl VirtualClock {
    /// A fresh clock at tick zero, shareable across ranks.
    pub fn new() -> Arc<Self> {
        Arc::new(VirtualClock::default())
    }

    /// Advance virtual time by `n` ticks, returning the new time.
    pub fn advance(&self, n: u64) -> u64 {
        self.ticks.fetch_add(n, Ordering::AcqRel) + n
    }
}

impl TickSource for VirtualClock {
    fn now_ticks(&self) -> u64 {
        self.ticks.load(Ordering::Acquire)
    }
}

/// The host monotonic clock as a [`TickSource`] (ticks are nanoseconds
/// since the source was created).
#[derive(Debug)]
pub struct HostTicks {
    origin: Instant,
}

impl HostTicks {
    /// A tick source anchored at the current instant.
    pub fn new() -> Self {
        HostTicks {
            origin: Instant::now(),
        }
    }
}

impl Default for HostTicks {
    fn default() -> Self {
        Self::new()
    }
}

impl TickSource for HostTicks {
    fn now_ticks(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A monotonic stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start a new stopwatch at the current instant.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed wall time since the stopwatch was started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in whole microseconds.
    pub fn elapsed_micros(&self) -> u64 {
        self.elapsed().as_micros() as u64
    }

    /// Elapsed time in fractional microseconds (nanosecond resolution).
    pub fn elapsed_micros_f64(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e6
    }

    /// Restart the stopwatch, returning the elapsed duration up to now.
    pub fn lap(&mut self) -> Duration {
        let e = self.elapsed();
        self.start = Instant::now();
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
    }

    #[test]
    fn lap_resets() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        let first = sw.lap();
        assert!(first >= Duration::from_millis(1));
        // After the lap the elapsed time restarts near zero.
        assert!(sw.elapsed() < first + Duration::from_millis(1));
    }

    #[test]
    fn micros_f64_tracks_micros() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(1));
        let f = sw.elapsed_micros_f64();
        assert!(f >= 1000.0);
    }

    #[test]
    fn virtual_clock_only_moves_on_advance() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ticks(), 0);
        assert_eq!(c.now_ticks(), 0);
        assert_eq!(c.advance(3), 3);
        assert_eq!(c.now_ticks(), 3);
        c.advance(7);
        assert_eq!(c.now_ticks(), 10);
    }

    #[test]
    fn host_ticks_are_monotonic() {
        let h = HostTicks::new();
        let a = h.now_ticks();
        let b = h.now_ticks();
        assert!(b >= a);
    }
}
