//! Single-producer / single-consumer byte ring buffers.
//!
//! This is the shared-memory transport primitive underneath the in-process
//! "shm" links — the analog of the shared-memory segments used by MPICH2's
//! `shm` channel. One side owns the [`RingProducer`], the other the
//! [`RingConsumer`]; both are `Send` but each may live on only one thread at
//! a time, which is exactly the SPSC contract the atomics rely on.
//!
//! The implementation follows the classic lock-free SPSC design (see *Rust
//! Atomics and Locks*, ch. 5): monotonically increasing head/tail counters,
//! `Acquire`/`Release` pairs on the counter the peer publishes, and relaxed
//! loads of the counter a side owns itself.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::utils::CachePadded;

use crate::error::{PalError, PalResult};

/// Shared state of one ring.
struct Ring {
    buf: Box<[UnsafeCell<u8>]>,
    mask: usize,
    /// Read position (owned by the consumer, published to the producer).
    head: CachePadded<AtomicUsize>,
    /// Write position (owned by the producer, published to the consumer).
    tail: CachePadded<AtomicUsize>,
    closed: AtomicBool,
}

// SAFETY: the producer only writes slots in `[tail, head + capacity)` and the
// consumer only reads slots in `[head, tail)`; the head/tail handoff uses
// Release/Acquire so the byte writes happen-before the matching reads.
unsafe impl Sync for Ring {}
// SAFETY: all fields are plain bytes, atomics, or owned heap storage; nothing
// in `Ring` is tied to the thread that allocated it.
unsafe impl Send for Ring {}

impl Ring {
    fn capacity(&self) -> usize {
        self.buf.len()
    }
}

/// Writing half of an SPSC byte ring.
pub struct RingProducer {
    ring: Arc<Ring>,
}

/// Reading half of an SPSC byte ring.
pub struct RingConsumer {
    ring: Arc<Ring>,
}

/// Create a ring with the given capacity (rounded up to a power of two,
/// minimum 64 bytes) and return its two halves.
pub fn ring(capacity: usize) -> (RingProducer, RingConsumer) {
    let cap = capacity.max(64).next_power_of_two();
    let buf: Box<[UnsafeCell<u8>]> = (0..cap).map(|_| UnsafeCell::new(0)).collect();
    let ring = Arc::new(Ring {
        buf,
        mask: cap - 1,
        head: CachePadded::new(AtomicUsize::new(0)),
        tail: CachePadded::new(AtomicUsize::new(0)),
        closed: AtomicBool::new(false),
    });
    (
        RingProducer {
            ring: Arc::clone(&ring),
        },
        RingConsumer { ring },
    )
}

impl RingProducer {
    /// Capacity of the ring in bytes.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Bytes that can currently be written without blocking.
    pub fn free(&self) -> usize {
        let head = self.ring.head.load(Ordering::Acquire);
        let tail = self.ring.tail.load(Ordering::Relaxed);
        self.ring.capacity() - tail.wrapping_sub(head)
    }

    /// Non-blocking write. Copies as many bytes of `src` as fit and returns
    /// the number written (possibly zero).
    pub fn try_write(&mut self, src: &[u8]) -> PalResult<usize> {
        if self.is_closed() {
            return Err(PalError::Disconnected);
        }
        let head = self.ring.head.load(Ordering::Acquire);
        let tail = self.ring.tail.load(Ordering::Relaxed);
        let cap = self.ring.capacity();
        let free = cap - tail.wrapping_sub(head);
        let n = free.min(src.len());
        if n == 0 {
            return Ok(0);
        }
        let start = tail & self.ring.mask;
        let first = n.min(cap - start);
        // SAFETY: the producer exclusively owns the free region; see Ring.
        unsafe {
            let base = self.ring.buf.as_ptr() as *mut u8;
            std::ptr::copy_nonoverlapping(src.as_ptr(), base.add(start), first);
            if n > first {
                std::ptr::copy_nonoverlapping(src.as_ptr().add(first), base, n - first);
            }
        }
        self.ring
            .tail
            .store(tail.wrapping_add(n), Ordering::Release);
        Ok(n)
    }

    /// Whether the consumer half has been dropped or the ring closed.
    pub fn is_closed(&self) -> bool {
        self.ring.closed.load(Ordering::Relaxed) || Arc::strong_count(&self.ring) == 1
    }

    /// Mark the ring closed; the consumer will observe it once drained.
    pub fn close(&self) {
        self.ring.closed.store(true, Ordering::Release);
    }
}

impl RingConsumer {
    /// Capacity of the ring in bytes.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Bytes currently available to read.
    pub fn available(&self) -> usize {
        let tail = self.ring.tail.load(Ordering::Acquire);
        let head = self.ring.head.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }

    /// Non-blocking read. Copies up to `dst.len()` bytes and returns the
    /// number read (possibly zero).
    pub fn try_read(&mut self, dst: &mut [u8]) -> PalResult<usize> {
        let tail = self.ring.tail.load(Ordering::Acquire);
        let head = self.ring.head.load(Ordering::Relaxed);
        let avail = tail.wrapping_sub(head);
        let mut n = avail.min(dst.len());
        if n == 0 {
            // Only report disconnection once all buffered bytes are drained,
            // so the peer's final message is never lost. The close flag may
            // be observed before a tail store that preceded it on the
            // producer side, so re-load the tail after seeing the flag.
            if !self.is_closed() {
                return Ok(0);
            }
            let tail = self.ring.tail.load(Ordering::Acquire);
            n = tail.wrapping_sub(head).min(dst.len());
            if n == 0 {
                return Err(PalError::Disconnected);
            }
        }
        let cap = self.ring.capacity();
        let start = head & self.ring.mask;
        let first = n.min(cap - start);
        // SAFETY: the consumer exclusively owns the readable region; see Ring.
        unsafe {
            let base = self.ring.buf.as_ptr() as *const u8;
            std::ptr::copy_nonoverlapping(base.add(start), dst.as_mut_ptr(), first);
            if n > first {
                std::ptr::copy_nonoverlapping(base, dst.as_mut_ptr().add(first), n - first);
            }
        }
        self.ring
            .head
            .store(head.wrapping_add(n), Ordering::Release);
        Ok(n)
    }

    /// Whether the producer half has been dropped or the ring closed.
    pub fn is_closed(&self) -> bool {
        self.ring.closed.load(Ordering::Relaxed) || Arc::strong_count(&self.ring) == 1
    }
}

impl Drop for RingProducer {
    fn drop(&mut self) {
        self.close();
    }
}

impl Drop for RingConsumer {
    fn drop(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small() {
        let (mut tx, mut rx) = ring(64);
        assert_eq!(tx.try_write(b"hello").unwrap(), 5);
        let mut buf = [0u8; 8];
        assert_eq!(rx.try_read(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (tx, _rx) = ring(100);
        assert_eq!(tx.capacity(), 128);
        let (tx, _rx) = ring(1);
        assert_eq!(tx.capacity(), 64);
    }

    #[test]
    fn write_respects_free_space() {
        let (mut tx, mut rx) = ring(64);
        let data = vec![0xAB; 200];
        let n = tx.try_write(&data).unwrap();
        assert_eq!(n, 64);
        assert_eq!(tx.free(), 0);
        assert_eq!(tx.try_write(&data).unwrap(), 0);
        let mut sink = vec![0u8; 32];
        assert_eq!(rx.try_read(&mut sink).unwrap(), 32);
        assert_eq!(tx.free(), 32);
        assert_eq!(tx.try_write(&data).unwrap(), 32);
    }

    #[test]
    fn wraparound_preserves_bytes() {
        let (mut tx, mut rx) = ring(64);
        let mut next: u8 = 0;
        let mut expect: u8 = 0;
        // Push/pull in mismatched chunk sizes so the indices wrap many times.
        for round in 0..100 {
            let wlen = (round % 13) + 1;
            let chunk: Vec<u8> = (0..wlen)
                .map(|_| {
                    let v = next;
                    next = next.wrapping_add(1);
                    v
                })
                .collect();
            let mut off = 0;
            while off < chunk.len() {
                off += tx.try_write(&chunk[off..]).unwrap();
                let mut buf = [0u8; 7];
                let n = rx.try_read(&mut buf).unwrap();
                for &b in &buf[..n] {
                    assert_eq!(b, expect);
                    expect = expect.wrapping_add(1);
                }
            }
        }
        // Drain what remains.
        let mut buf = [0u8; 64];
        loop {
            let n = rx.try_read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            for &b in &buf[..n] {
                assert_eq!(b, expect);
                expect = expect.wrapping_add(1);
            }
        }
        assert_eq!(expect, next);
    }

    #[test]
    fn dropped_consumer_disconnects_producer() {
        let (mut tx, rx) = ring(64);
        drop(rx);
        assert!(matches!(tx.try_write(b"x"), Err(PalError::Disconnected)));
    }

    #[test]
    fn consumer_drains_before_reporting_close() {
        let (mut tx, mut rx) = ring(64);
        tx.try_write(b"bye").unwrap();
        drop(tx);
        let mut buf = [0u8; 8];
        assert_eq!(rx.try_read(&mut buf).unwrap(), 3);
        assert!(matches!(rx.try_read(&mut buf), Err(PalError::Disconnected)));
    }

    #[test]
    fn cross_thread_stream_integrity() {
        let (mut tx, mut rx) = ring(256);
        const TOTAL: usize = 1 << 18;
        let producer = std::thread::spawn(move || {
            let mut sent = 0usize;
            let mut v: u8 = 0;
            let chunk: Vec<u8> = (0..311u32).map(|_| 0).collect();
            let mut chunk = chunk;
            while sent < TOTAL {
                let want = chunk.len().min(TOTAL - sent);
                for b in chunk[..want].iter_mut() {
                    *b = v;
                    v = v.wrapping_add(1);
                }
                let mut off = 0;
                while off < want {
                    let n = tx.try_write(&chunk[off..want]).unwrap();
                    off += n;
                    if n == 0 {
                        std::thread::yield_now();
                    }
                }
                sent += want;
            }
        });
        let mut got = 0usize;
        let mut expect: u8 = 0;
        let mut buf = [0u8; 173];
        while got < TOTAL {
            let n = rx.try_read(&mut buf).unwrap();
            for &b in &buf[..n] {
                assert_eq!(b, expect, "corruption at byte {got}");
                expect = expect.wrapping_add(1);
            }
            got += n;
        }
        producer.join().unwrap();
    }
}
