//! # motor-pal — Platform Adaptation Layer
//!
//! The Motor paper builds its runtime on the SSCLI *Platform Adaptation
//! Layer* (PAL), a virtual subset of the Windows API that hides the host
//! platform, and its message transport on the MPICH2 *sock channel*, which
//! talks to the operating system directly. This crate is the analog of that
//! lowest layer: everything above it (the managed runtime, the message
//! passing core, the Motor bindings) is platform-agnostic and talks only to
//! the abstractions defined here.
//!
//! The PAL provides:
//!
//! * [`clock`] — monotonic timing used by the benchmark protocol.
//! * [`ring`] — single-producer/single-consumer byte ring buffers, the
//!   shared-memory transport primitive.
//! * [`link`] — the [`link::ByteLink`] duplex byte-stream abstraction with
//!   two implementations: in-process shared memory ([`link::shm_pair`]) and
//!   real TCP over loopback ([`link::tcp_pair`]), mirroring MPICH2's `shm`
//!   and `sock` channels.
//! * [`poll`] — the *polling-wait* primitive. Motor replaced MPICH2's
//!   blocking system calls with a polling wait that periodically yields to
//!   the garbage collector; [`poll::polling_wait`] is that loop, generic
//!   over the "yield" callback.
//! * [`error`] — the PAL error type.

pub mod clock;
pub mod error;
pub mod link;
pub mod poll;
pub mod ring;

pub use clock::{HostTicks, TickSource, VirtualClock};
pub use error::{PalError, PalResult};
pub use link::{shm_pair, tcp_pair, BoxedLink, ByteLink};
pub use poll::{polling_wait, polling_wait_with, Backoff, BackoffConfig};
