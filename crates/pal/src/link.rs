//! Duplex byte links — the PAL's transport endpoints.
//!
//! A [`ByteLink`] is a non-blocking, reliable, ordered byte stream between
//! two endpoints. It is the contract the message-passing channel layer
//! (`motor-mpc`) builds packets over, exactly as MPICH2's sock channel sits
//! on stream sockets. Two implementations are provided:
//!
//! * [`shm_pair`] — an in-process pair built from two SPSC byte rings,
//!   modelling a shared-memory interconnect between ranks hosted as threads
//!   of one OS process.
//! * [`tcp_pair`] / [`TcpLink`] — a real kernel TCP connection over
//!   loopback, the direct analog of the MPICH2 Windows/Posix sock channel.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

use crate::error::{PalError, PalResult};
use crate::ring::{ring, RingConsumer, RingProducer};

/// A non-blocking, ordered, reliable duplex byte stream.
pub trait ByteLink: Send {
    /// Write as many bytes of `src` as currently possible; returns the
    /// number written (possibly zero). Never blocks.
    fn try_write(&mut self, src: &[u8]) -> PalResult<usize>;

    /// Read up to `dst.len()` bytes; returns the number read (possibly
    /// zero). Never blocks.
    fn try_read(&mut self, dst: &mut [u8]) -> PalResult<usize>;

    /// True once the peer endpoint is gone.
    fn is_closed(&self) -> bool;
}

/// Owned, type-erased link.
pub type BoxedLink = Box<dyn ByteLink>;

/// In-process shared-memory link: one ring per direction.
pub struct ShmLink {
    tx: RingProducer,
    rx: RingConsumer,
}

/// Create a connected pair of in-process links with `capacity` bytes of
/// buffering per direction.
pub fn shm_pair(capacity: usize) -> (ShmLink, ShmLink) {
    let (a_tx, b_rx) = ring(capacity);
    let (b_tx, a_rx) = ring(capacity);
    (
        ShmLink { tx: a_tx, rx: a_rx },
        ShmLink { tx: b_tx, rx: b_rx },
    )
}

impl ByteLink for ShmLink {
    fn try_write(&mut self, src: &[u8]) -> PalResult<usize> {
        self.tx.try_write(src)
    }

    fn try_read(&mut self, dst: &mut [u8]) -> PalResult<usize> {
        self.rx.try_read(dst)
    }

    fn is_closed(&self) -> bool {
        self.tx.is_closed() && self.rx.is_closed()
    }
}

/// A real TCP loopback connection in non-blocking mode.
pub struct TcpLink {
    stream: TcpStream,
    peer_gone: bool,
}

impl TcpLink {
    fn new(stream: TcpStream) -> PalResult<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(TcpLink {
            stream,
            peer_gone: false,
        })
    }
}

/// Create a connected pair of TCP links over the loopback interface.
pub fn tcp_pair() -> PalResult<(TcpLink, TcpLink)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let client = TcpStream::connect(addr)?;
    let (server, _) = listener.accept()?;
    Ok((TcpLink::new(client)?, TcpLink::new(server)?))
}

impl ByteLink for TcpLink {
    fn try_write(&mut self, src: &[u8]) -> PalResult<usize> {
        if src.is_empty() {
            return Ok(0);
        }
        match self.stream.write(src) {
            Ok(0) => {
                self.peer_gone = true;
                Err(PalError::Disconnected)
            }
            Ok(n) => Ok(n),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(0),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(0),
            Err(e)
                if e.kind() == std::io::ErrorKind::BrokenPipe
                    || e.kind() == std::io::ErrorKind::ConnectionReset =>
            {
                self.peer_gone = true;
                Err(PalError::Disconnected)
            }
            Err(e) => Err(e.into()),
        }
    }

    fn try_read(&mut self, dst: &mut [u8]) -> PalResult<usize> {
        if dst.is_empty() {
            return Ok(0);
        }
        match self.stream.read(dst) {
            Ok(0) => {
                self.peer_gone = true;
                Err(PalError::Disconnected)
            }
            Ok(n) => Ok(n),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(0),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(0),
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {
                self.peer_gone = true;
                Err(PalError::Disconnected)
            }
            Err(e) => Err(e.into()),
        }
    }

    fn is_closed(&self) -> bool {
        self.peer_gone
    }
}

/// Blocking-write helper used by tests and simple tools: spins a link's
/// `try_write` until the whole buffer is flushed.
pub fn write_all(link: &mut dyn ByteLink, mut src: &[u8]) -> PalResult<()> {
    while !src.is_empty() {
        let n = link.try_write(src)?;
        src = &src[n..];
        if n == 0 {
            std::hint::spin_loop();
        }
    }
    Ok(())
}

/// Blocking-read helper: spins `try_read` until `dst` is filled.
pub fn read_exact(link: &mut dyn ByteLink, dst: &mut [u8]) -> PalResult<()> {
    let mut off = 0;
    while off < dst.len() {
        let n = link.try_read(&mut dst[off..])?;
        off += n;
        if n == 0 {
            std::hint::spin_loop();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_duplex(mut a: impl ByteLink + 'static, mut b: impl ByteLink + 'static) {
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 11];
            read_exact(&mut b, &mut buf).unwrap();
            assert_eq!(&buf, b"ping-motor!");
            write_all(&mut b, b"pong").unwrap();
        });
        write_all(&mut a, b"ping-motor!").unwrap();
        let mut buf = [0u8; 4];
        read_exact(&mut a, &mut buf).unwrap();
        assert_eq!(&buf, b"pong");
        t.join().unwrap();
    }

    #[test]
    fn shm_duplex_roundtrip() {
        let (a, b) = shm_pair(4096);
        exercise_duplex(a, b);
    }

    #[test]
    fn tcp_duplex_roundtrip() {
        let (a, b) = tcp_pair().unwrap();
        exercise_duplex(a, b);
    }

    #[test]
    fn shm_bulk_transfer_larger_than_ring() {
        let (mut a, mut b) = shm_pair(256);
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let expect = data.clone();
        let t = std::thread::spawn(move || {
            write_all(&mut a, &data).unwrap();
        });
        let mut got = vec![0u8; expect.len()];
        read_exact(&mut b, &mut got).unwrap();
        assert_eq!(got, expect);
        t.join().unwrap();
    }

    #[test]
    fn tcp_survives_interleaved_chunks() {
        let (mut a, mut b) = tcp_pair().unwrap();
        for i in 0..50u8 {
            write_all(&mut a, &[i; 33]).unwrap();
            let mut buf = [0u8; 33];
            read_exact(&mut b, &mut buf).unwrap();
            assert_eq!(buf, [i; 33]);
        }
    }

    #[test]
    fn shm_close_detected() {
        let (a, mut b) = shm_pair(64);
        drop(a);
        let mut buf = [0u8; 4];
        assert!(matches!(b.try_read(&mut buf), Err(PalError::Disconnected)));
    }

    #[test]
    fn boxed_link_is_object_safe() {
        let (a, b) = shm_pair(128);
        let mut links: Vec<BoxedLink> = vec![Box::new(a), Box::new(b)];
        links[0].try_write(b"x").unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(links[1].try_read(&mut buf).unwrap(), 1);
        assert_eq!(&buf, b"x");
    }
}
