//! The pin table: hard pins and conditional pin requests.
//!
//! "Pinning is a request to the garbage collector to temporarily not move
//! or unallocate the requested object, until it is unpinned" (paper §2.3,
//! fn. 3). Motor adds *conditional* pinning for non-blocking operations:
//! "augment the garbage collector so that it understands pinning operations
//! which are dependent on the status of an operation. During the mark phase
//! of collection, the garbage collector iterates through a list of pinning
//! requests ... check the status of an operation and selectively mark the
//! object as pinned, depending on that status" (§4.3).
//!
//! Hard pins are reference counted (an object may be the buffer of several
//! concurrent operations). A pinned object is never moved; while any pin —
//! hard or a still-in-flight conditional request — exists on a young
//! object at collection time, the collector promotes the whole young block
//! instead of copying (see `gc`).
//!
//! An active pin (of either kind) also acts as a GC *root*: the underlying
//! transport is reading or writing the object's memory, so it must stay
//! live even if the mutator dropped every reference to it — the same
//! guarantee the real runtime gets from the request object referencing the
//! buffer.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Status oracle for a conditional pin request. Implemented by transport
/// requests: `true` while the underlying operation is still using the
/// buffer.
pub trait PinCondition: Send + Sync {
    /// Whether the underlying operation is still in flight.
    fn in_flight(&self) -> bool;
}

impl<F: Fn() -> bool + Send + Sync> PinCondition for F {
    fn in_flight(&self) -> bool {
        self()
    }
}

/// Token proving a hard pin; pass back to `unpin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinToken {
    pub(crate) addr: usize,
}

impl PinToken {
    /// Address of the pinned object (stable while the pin is held).
    pub fn addr(&self) -> usize {
        self.addr
    }
}

/// A registered conditional pin request.
pub struct ConditionalPin {
    /// Current address of the buffer object.
    pub addr: usize,
    /// The transport-status oracle.
    pub condition: Arc<dyn PinCondition>,
}

/// The pin table of one VM.
#[derive(Default)]
pub struct PinTable {
    /// Hard pin reference counts by object address.
    hard: HashMap<usize, u32>,
    /// When each address first became hard-pinned (cleared on last unpin).
    /// A pin that stays here long after its operation should have finished
    /// is a pin leak; the doctor watchdog reads the oldest age.
    hard_since: HashMap<usize, Instant>,
    /// Outstanding conditional pin requests.
    conditional: Vec<ConditionalPin>,
}

impl PinTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a hard pin on `addr`; returns the token.
    pub fn pin(&mut self, addr: usize) -> PinToken {
        let n = self.hard.entry(addr).or_insert(0);
        if *n == 0 {
            self.hard_since.insert(addr, Instant::now());
        }
        *n += 1;
        PinToken { addr }
    }

    /// Release a hard pin. Returns `true` if that was the last pin on the
    /// object.
    pub fn unpin(&mut self, token: PinToken) -> bool {
        match self.hard.get_mut(&token.addr) {
            Some(n) if *n > 1 => {
                *n -= 1;
                false
            }
            Some(_) => {
                self.hard.remove(&token.addr);
                self.hard_since.remove(&token.addr);
                true
            }
            None => {
                debug_assert!(false, "unpin without matching pin");
                true
            }
        }
    }

    /// Whether `addr` carries any hard pin.
    pub fn is_hard_pinned(&self, addr: usize) -> bool {
        self.hard.contains_key(&addr)
    }

    /// Register a conditional pin request for a non-blocking operation.
    pub fn pin_conditional(&mut self, addr: usize, condition: Arc<dyn PinCondition>) {
        self.conditional.push(ConditionalPin { addr, condition });
    }

    /// Resolve conditional requests the way the Motor collector does during
    /// the mark phase: requests whose operation finished are discarded;
    /// requests still in flight are kept and their addresses returned so
    /// the collector treats them as pinned roots. Returns
    /// `(held_addrs, released_count)`.
    pub fn resolve_conditionals(&mut self) -> (Vec<usize>, u64) {
        let before = self.conditional.len();
        self.conditional.retain(|p| p.condition.in_flight());
        let held: Vec<usize> = self.conditional.iter().map(|p| p.addr).collect();
        (held, (before - self.conditional.len()) as u64)
    }

    /// Addresses of all hard-pinned objects.
    pub fn hard_pinned_addrs(&self) -> Vec<usize> {
        self.hard.keys().copied().collect()
    }

    /// Number of outstanding conditional requests (diagnostics).
    pub fn conditional_len(&self) -> usize {
        self.conditional.len()
    }

    /// Number of distinct hard-pinned addresses (diagnostics).
    pub fn hard_len(&self) -> usize {
        self.hard.len()
    }

    /// Age of the longest-held hard pin, if any (diagnostics; the doctor
    /// watchdog compares this against its pin-leak deadline).
    pub fn oldest_hard_pin_age(&self) -> Option<Duration> {
        self.hard_since.values().map(Instant::elapsed).max()
    }

    /// Whether any pin (hard, or conditional whose state is unknown until
    /// mark) exists. Used by the collector to decide the cheap path.
    pub fn is_empty(&self) -> bool {
        self.hard.is_empty() && self.conditional.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn hard_pin_refcounts() {
        let mut t = PinTable::new();
        let a = t.pin(0x1000);
        let b = t.pin(0x1000);
        assert!(t.is_hard_pinned(0x1000));
        assert!(!t.unpin(a), "still one pin left");
        assert!(t.is_hard_pinned(0x1000));
        assert!(t.unpin(b), "last pin released");
        assert!(!t.is_hard_pinned(0x1000));
    }

    #[test]
    fn conditional_resolution_mirrors_request_status() {
        let mut t = PinTable::new();
        let flying = Arc::new(AtomicBool::new(true));
        let f2 = Arc::clone(&flying);
        t.pin_conditional(0x2000, Arc::new(move || f2.load(Ordering::Relaxed)));
        t.pin_conditional(0x3000, Arc::new(|| false));
        let (held, released) = t.resolve_conditionals();
        assert_eq!(held, vec![0x2000]);
        assert_eq!(released, 1);
        assert_eq!(t.conditional_len(), 1);
        // Operation completes; the next collection discards the request.
        flying.store(false, Ordering::Relaxed);
        let (held, released) = t.resolve_conditionals();
        assert!(held.is_empty());
        assert_eq!(released, 1);
        assert!(t.is_empty());
    }

    #[test]
    fn pin_age_tracks_first_pin_and_clears_on_last_unpin() {
        let mut t = PinTable::new();
        assert_eq!(t.hard_len(), 0);
        assert!(t.oldest_hard_pin_age().is_none());
        let a = t.pin(0x40);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = t.pin(0x40); // refcount bump must not reset the clock
        let age = t.oldest_hard_pin_age().expect("pinned");
        assert!(age >= std::time::Duration::from_millis(2));
        assert_eq!(t.hard_len(), 1);
        t.unpin(a);
        assert!(t.oldest_hard_pin_age().is_some(), "still one pin left");
        t.unpin(b);
        assert!(t.oldest_hard_pin_age().is_none());
        assert_eq!(t.hard_len(), 0);
    }

    #[test]
    fn emptiness_considers_both_kinds() {
        let mut t = PinTable::new();
        assert!(t.is_empty());
        let tok = t.pin(0x10);
        assert!(!t.is_empty());
        t.unpin(tok);
        assert!(t.is_empty());
        t.pin_conditional(0x20, Arc::new(|| true));
        assert!(!t.is_empty());
    }
}
