//! GC-protected handles — the analog of the SSCLI `GCPROTECT` discipline.
//!
//! "Unlike in managed code, the runtime cannot and does not keep track of
//! object pointers in an FCall. Therefore, it is the programmer's
//! responsibility to protect object pointers by declaring them using a set
//! of provided macros. Programmer-declared object pointers within FCalls
//! are updated during garbage collection." (paper §5.1)
//!
//! In this reproduction the handle table *is* the root set: code above the
//! runtime never holds raw addresses across a safepoint; it holds
//! [`Handle`]s, whose slots the collector rewrites when it moves objects.

/// An index into a VM's handle table. The null object is representable: a
/// handle whose slot holds address 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle(pub(crate) u32);

impl Handle {
    /// Raw slot index (diagnostics).
    pub fn slot(&self) -> u32 {
        self.0
    }
}

/// The handle table of one VM: slots hold current object addresses (0 =
/// null) and are updated by the collector.
#[derive(Debug, Default)]
pub struct HandleTable {
    slots: Vec<usize>,
    free: Vec<u32>,
}

impl HandleTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a handle rooted at `addr` (0 for null).
    pub fn create(&mut self, addr: usize) -> Handle {
        if let Some(slot) = self.free.pop() {
            self.slots[slot as usize] = addr;
            Handle(slot)
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(addr);
            Handle(slot)
        }
    }

    /// Release a handle; its slot is recycled.
    pub fn release(&mut self, h: Handle) {
        debug_assert!((h.0 as usize) < self.slots.len());
        self.slots[h.0 as usize] = 0;
        self.free.push(h.0);
    }

    /// Current address held by a handle (0 = null).
    #[inline]
    pub fn get(&self, h: Handle) -> usize {
        self.slots[h.0 as usize]
    }

    /// Point a handle at a new address.
    #[inline]
    pub fn set(&mut self, h: Handle, addr: usize) {
        self.slots[h.0 as usize] = addr;
    }

    /// Number of live (non-recycled) slots — diagnostics only.
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Iterate over all root addresses (non-null slots).
    pub fn roots(&self) -> impl Iterator<Item = usize> + '_ {
        self.slots.iter().copied().filter(|&a| a != 0)
    }

    /// Visit every slot mutably so the collector can rewrite moved
    /// addresses.
    pub fn for_each_slot_mut(&mut self, mut f: impl FnMut(&mut usize)) {
        for slot in self.slots.iter_mut() {
            if *slot != 0 {
                f(slot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_get_set_release() {
        let mut t = HandleTable::new();
        let h = t.create(0xABC0);
        assert_eq!(t.get(h), 0xABC0);
        t.set(h, 0xDEF0);
        assert_eq!(t.get(h), 0xDEF0);
        t.release(h);
        assert_eq!(t.live(), 0);
    }

    #[test]
    fn slots_are_recycled() {
        let mut t = HandleTable::new();
        let a = t.create(0x10);
        t.release(a);
        let b = t.create(0x20);
        assert_eq!(a.0, b.0, "released slot is reused");
        assert_eq!(t.get(b), 0x20);
    }

    #[test]
    fn roots_skip_null_and_freed() {
        let mut t = HandleTable::new();
        let _a = t.create(0x10);
        let b = t.create(0);
        let c = t.create(0x30);
        t.release(c);
        let roots: Vec<usize> = t.roots().collect();
        assert_eq!(roots, vec![0x10]);
        assert_eq!(t.get(b), 0);
    }

    #[test]
    fn rewrite_visits_only_live_roots() {
        let mut t = HandleTable::new();
        let a = t.create(0x10);
        let _n = t.create(0);
        t.for_each_slot_mut(|s| *s += 8);
        assert_eq!(t.get(a), 0x18);
    }
}
