//! Heap integrity verification (debug/test infrastructure).
//!
//! Walks every segment and checks the invariants the collector and the
//! zero-copy transport rely on — the "object model integrity" the paper's
//! bindings are designed to protect (§2.4). Used by tests after stressful
//! GC schedules; a production build never calls it.

use std::collections::HashSet;

use crate::layout::{obj_flags, ALIGN, HEADER_SIZE};
use crate::object::{for_each_ref_slot, ObjectRef};
use crate::types::ClassId;
use crate::vm::Vm;

/// Summary of a successful heap verification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Live objects seen (young + elder).
    pub objects: usize,
    /// Free blocks seen in the elder generation.
    pub free_blocks: usize,
    /// Reference slots checked.
    pub refs_checked: usize,
    /// Handle-table roots checked.
    pub handles_checked: usize,
}

/// Verify every reachable heap invariant; returns a report or a
/// description of the first violation found.
///
/// Checked invariants:
/// 1. every segment parses as a sequence of aligned, in-bounds allocations;
/// 2. every live header names a registered type;
/// 3. no live object carries a stale `MARK` or `FORWARDED` flag between
///    collections;
/// 4. every reference slot is null or points at the start of a live
///    object;
/// 5. every handle-table root points at the start of a live object.
pub fn verify_heap(vm: &Vm) -> Result<VerifyReport, String> {
    let st = vm.state();
    let reg = vm.registry();
    let type_count = reg.len() as u32;
    let mut report = VerifyReport::default();

    // Pass 1: collect valid object starts.
    let mut starts: HashSet<usize> = HashSet::new();
    let mut live: Vec<usize> = Vec::new();
    {
        let mut walk_segment = |seg: &crate::heap::Segment| -> Result<(), String> {
            let mut addr = seg.base();
            let end = seg.base() + seg.used();
            while addr < end {
                if !addr.is_multiple_of(ALIGN) {
                    return Err(format!("misaligned object at {addr:#x}"));
                }
                // SAFETY: walking an owned segment under the VM lock.
                let h = unsafe { ObjectRef(addr).header() };
                let size = h.size as usize;
                if size < HEADER_SIZE || !size.is_multiple_of(ALIGN) || addr + size > end {
                    return Err(format!(
                        "bad size {size} at {addr:#x} (segment end {end:#x})"
                    ));
                }
                if h.flags & obj_flags::FREE != 0 {
                    report.free_blocks += 1;
                } else {
                    if h.mt >= type_count {
                        return Err(format!("unknown type id {} at {addr:#x}", h.mt));
                    }
                    if h.flags & obj_flags::MARK != 0 {
                        return Err(format!("stale MARK flag at {addr:#x}"));
                    }
                    if h.flags & obj_flags::FORWARDED != 0 {
                        return Err(format!("live FORWARDED husk at {addr:#x}"));
                    }
                    starts.insert(addr);
                    live.push(addr);
                    report.objects += 1;
                }
                addr += size;
            }
            Ok(())
        };
        walk_segment(st.heap.young())?;
        for seg in st.heap.old_segments() {
            walk_segment(seg)?;
        }
    }

    // Pass 2: every reference slot points at a live object start.
    for &addr in &live {
        let obj = ObjectRef(addr);
        // SAFETY: validated in pass 1.
        let mt = unsafe { reg.table(ClassId(obj.header().mt)) };
        let mut bad: Option<usize> = None;
        // SAFETY: slot ranges come from the validated method table.
        unsafe {
            for_each_ref_slot(obj, mt, |slot| {
                let v = *slot;
                report.refs_checked += 1;
                if v != 0 && !starts.contains(&v) && bad.is_none() {
                    bad = Some(v);
                }
            });
        }
        if let Some(v) = bad {
            return Err(format!(
                "dangling reference {v:#x} in object {addr:#x} of type {}",
                mt.name
            ));
        }
    }

    // Pass 3: handle roots.
    for root in st.handles.roots() {
        report.handles_checked += 1;
        if !starts.contains(&root) {
            return Err(format!("handle points at non-object {root:#x}"));
        }
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapConfig;
    use crate::thread::MotorThread;
    use crate::types::ElemKind;
    use crate::vm::VmConfig;
    use std::sync::Arc;

    fn vm_small() -> Arc<Vm> {
        Vm::new(VmConfig {
            heap: HeapConfig {
                young_bytes: 8 * 1024,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    #[test]
    fn fresh_heap_verifies() {
        let vm = vm_small();
        let r = verify_heap(&vm).unwrap();
        assert_eq!(r.objects, 0);
    }

    #[test]
    fn verifies_across_collections_with_graphs() {
        let vm = vm_small();
        let node = {
            let mut reg = vm.registry_mut();
            let arr = reg.prim_array(ElemKind::I32);
            let next_id = crate::types::ClassId(reg.len() as u32);
            reg.define_class("VNode")
                .prim("tag", ElemKind::I32)
                .transportable("array", arr)
                .transportable("next", next_id)
                .build()
        };
        let t = MotorThread::attach(Arc::clone(&vm));
        let (farr, fnext) = (t.field_index(node, "array"), t.field_index(node, "next"));
        // Build a chain with empty arrays (the zero-payload regression):
        let mut head = t.null_handle();
        for i in 0..200 {
            let n = t.alloc_instance(node);
            let a = t.alloc_prim_array(ElemKind::I32, i % 3); // incl. len 0
            t.set_ref(n, farr, a);
            t.set_ref(n, fnext, head);
            t.release(a);
            t.release(head);
            head = n;
        }
        verify_heap(&vm).unwrap();
        t.collect_minor();
        let r = verify_heap(&vm).unwrap();
        assert!(r.objects >= 400, "chain and arrays survive");
        assert!(r.refs_checked >= 400);
        t.collect_full();
        verify_heap(&vm).unwrap();
        // Drop everything and collect: the heap must still verify.
        t.release(head);
        t.collect_full();
        let r = verify_heap(&vm).unwrap();
        assert!(r.free_blocks >= 1, "sweep produced free blocks");
    }

    #[test]
    fn detects_seeded_corruption() {
        let vm = vm_small();
        let node = {
            let mut reg = vm.registry_mut();
            let arr = reg.prim_array(ElemKind::I32);
            reg.define_class("VBad").transportable("array", arr).build()
        };
        let t = MotorThread::attach(Arc::clone(&vm));
        let h = t.alloc_instance(node);
        verify_heap(&vm).unwrap();
        // Corrupt the ref slot with a non-object value, bypassing the API.
        let addr = vm.handle_addr(h);
        // SAFETY: test-only deliberate corruption.
        unsafe {
            crate::object::ObjectRef(addr).write_ref_at(0, crate::object::ObjectRef(0xDEAD_BEE8));
        }
        let err = verify_heap(&vm).unwrap_err();
        assert!(err.contains("dangling reference"), "{err}");
        // SAFETY: writes back a null reference to the slot corrupted
        // above; repairs the heap so drop paths stay sane.
        unsafe {
            crate::object::ObjectRef(addr).write_ref_at(0, crate::object::ObjectRef(0));
        }
    }
}
