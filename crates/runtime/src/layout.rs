//! Object layout: header format and size computation.
//!
//! Mirrors the SSCLI layout sketched in paper §5.3: an object is a header
//! holding a reference to its `MethodTable` followed immediately by the
//! instance data. Our header additionally carries GC flags, the total
//! allocated size and (for arrays) the element count, so the collector can
//! walk a heap segment linearly without consulting the registry.
//!
//! ```text
//! +-------------------- 16-byte header --------------------+-------------+
//! | mt: u32 | flags: u32 | size: u32 (total) | extra: u32  | instance    |
//! +---------------------------------------------------------| data ...   |
//! ```
//!
//! * Classes: instance data = fields at their `FieldDesc` offsets.
//! * Primitive arrays: `extra` = length, data = contiguous elements.
//! * Object arrays: `extra` = length, data = contiguous `usize` references.
//! * Multidimensional arrays: `extra` = total element count; data begins
//!   with `rank` × `u32` dimension sizes (padded to 8 bytes), then the
//!   contiguous elements in row-major order.

use crate::types::{ElemKind, MethodTable, TypeKind};

/// Byte size of the object header.
pub const HEADER_SIZE: usize = 16;

/// Heap alignment for all objects.
pub const ALIGN: usize = 8;

/// GC and runtime flags stored in the header.
pub mod obj_flags {
    /// Object survived / is marked live during the current collection.
    pub const MARK: u32 = 1 << 0;
    /// Object currently has one or more hard pins.
    pub const PINNED: u32 = 1 << 1;
    /// Object resides in the elder generation.
    pub const IN_OLD: u32 = 1 << 2;
    /// Header has been replaced by a forwarding pointer (young copy phase).
    pub const FORWARDED: u32 = 1 << 3;
    /// Slot is free-list space, not a live object (elder generation sweep).
    pub const FREE: u32 = 1 << 4;
}

/// Raw object header. Always at the start of an allocation.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct ObjHeader {
    /// `ClassId` of the object's method table.
    pub mt: u32,
    /// Flag bits; see [`obj_flags`].
    pub flags: u32,
    /// Total size of the allocation including the header, 8-byte aligned.
    pub size: u32,
    /// Array length / element count; unused (0) for plain classes.
    pub extra: u32,
}

/// Minimum allocation size: every object must have at least one payload
/// word so the copying collector can install a forwarding pointer in it —
/// the same reason production CLRs enforce a minimum object size. Without
/// this, forwarding a zero-payload object (e.g. an empty array) would
/// overwrite the next object's header.
pub const MIN_ALLOC: usize = HEADER_SIZE + ALIGN;

/// Round `n` up to the heap alignment.
#[inline]
pub const fn align_up(n: usize) -> usize {
    (n + ALIGN - 1) & !(ALIGN - 1)
}

/// Round an allocation size up to alignment and the forwarding-pointer
/// minimum.
#[inline]
pub const fn alloc_align(n: usize) -> usize {
    let a = align_up(n);
    if a < MIN_ALLOC {
        MIN_ALLOC
    } else {
        a
    }
}

/// Total allocation size for a class instance.
pub fn class_alloc_size(mt: &MethodTable) -> usize {
    alloc_align(HEADER_SIZE + mt.instance_size as usize)
}

/// Total allocation size for a primitive array of `len` elements.
pub fn prim_array_alloc_size(kind: ElemKind, len: usize) -> usize {
    alloc_align(HEADER_SIZE + kind.size() * len)
}

/// Total allocation size for an object array of `len` references.
pub fn obj_array_alloc_size(len: usize) -> usize {
    alloc_align(HEADER_SIZE + std::mem::size_of::<usize>() * len)
}

/// Byte offset from the header to a multidimensional array's element data.
pub fn md_array_data_offset(rank: u8) -> usize {
    align_up(HEADER_SIZE + 4 * rank as usize)
}

/// Total allocation size for a multidimensional array.
pub fn md_array_alloc_size(elem: ElemKind, dims: &[u32]) -> usize {
    let count: usize = dims.iter().map(|&d| d as usize).product();
    alloc_align(md_array_data_offset(dims.len() as u8) + elem.size() * count)
}

/// Allocation size for any object described by `mt`, given the element
/// count/dims where relevant.
pub fn alloc_size_for(mt: &MethodTable, len: usize, dims: Option<&[u32]>) -> usize {
    match &mt.kind {
        TypeKind::Class => class_alloc_size(mt),
        TypeKind::PrimArray(k) => prim_array_alloc_size(*k, len),
        TypeKind::ObjArray(_) => obj_array_alloc_size(len),
        TypeKind::MdArray { elem, rank } => {
            let dims = dims.expect("md array allocation requires dims");
            assert_eq!(dims.len(), *rank as usize, "dims must match rank");
            md_array_alloc_size(*elem, dims)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeRegistry;

    #[test]
    fn header_is_sixteen_bytes() {
        assert_eq!(std::mem::size_of::<ObjHeader>(), HEADER_SIZE);
        assert_eq!(std::mem::align_of::<ObjHeader>(), 4);
    }

    #[test]
    fn align_up_works() {
        assert_eq!(align_up(0), 0);
        assert_eq!(align_up(1), 8);
        assert_eq!(align_up(8), 8);
        assert_eq!(align_up(9), 16);
        assert_eq!(align_up(23), 24);
    }

    #[test]
    fn class_size_includes_header() {
        let mut reg = TypeRegistry::new();
        let id = reg
            .define_class("P")
            .prim("x", ElemKind::F64)
            .prim("y", ElemKind::F64)
            .build();
        let mt = reg.table(id);
        assert_eq!(class_alloc_size(mt), HEADER_SIZE + 16);
    }

    #[test]
    fn prim_array_sizes() {
        // Zero-length arrays still get the forwarding-pointer word.
        assert_eq!(prim_array_alloc_size(ElemKind::U8, 0), MIN_ALLOC);
        assert_eq!(prim_array_alloc_size(ElemKind::U8, 1), HEADER_SIZE + 8);
        assert_eq!(prim_array_alloc_size(ElemKind::U8, 8), HEADER_SIZE + 8);
        assert_eq!(prim_array_alloc_size(ElemKind::F64, 3), HEADER_SIZE + 24);
    }

    #[test]
    fn obj_array_sizes() {
        assert_eq!(obj_array_alloc_size(0), MIN_ALLOC);
        assert_eq!(obj_array_alloc_size(2), HEADER_SIZE + 16);
    }

    #[test]
    fn every_alloc_size_admits_a_forwarding_pointer() {
        let mut reg = TypeRegistry::new();
        let empty = reg.define_class("Empty").build();
        assert!(class_alloc_size(reg.table(empty)) >= MIN_ALLOC);
        for k in ElemKind::ALL {
            assert!(prim_array_alloc_size(k, 0) >= MIN_ALLOC);
        }
        assert!(obj_array_alloc_size(0) >= MIN_ALLOC);
        assert!(md_array_alloc_size(ElemKind::U8, &[0, 0]) >= MIN_ALLOC);
    }

    #[test]
    fn md_array_layout() {
        // rank 2: 8 bytes of dims, already aligned.
        assert_eq!(md_array_data_offset(2), HEADER_SIZE + 8);
        // rank 3: 12 bytes of dims, padded to 16.
        assert_eq!(md_array_data_offset(3), HEADER_SIZE + 16);
        assert_eq!(
            md_array_alloc_size(ElemKind::F64, &[4, 5]),
            HEADER_SIZE + 8 + 4 * 5 * 8
        );
    }

    #[test]
    fn alloc_size_dispatches_by_kind() {
        let mut reg = TypeRegistry::new();
        let cls = reg.define_class("C").prim("a", ElemKind::I32).build();
        let pa = reg.prim_array(ElemKind::I32);
        let oa = reg.obj_array(cls);
        let md = reg.md_array(ElemKind::I32, 2);
        assert_eq!(alloc_size_for(reg.table(cls), 0, None), HEADER_SIZE + 8);
        assert_eq!(alloc_size_for(reg.table(pa), 4, None), HEADER_SIZE + 16);
        assert_eq!(alloc_size_for(reg.table(oa), 2, None), HEADER_SIZE + 16);
        assert_eq!(
            alloc_size_for(reg.table(md), 0, Some(&[2, 3])),
            HEADER_SIZE + 8 + 24
        );
    }

    #[test]
    #[should_panic(expected = "dims must match rank")]
    fn md_alloc_size_checks_rank() {
        let mut reg = TypeRegistry::new();
        let md = reg.md_array(ElemKind::I32, 3);
        alloc_size_for(reg.table(md), 0, Some(&[2, 3]));
    }
}
