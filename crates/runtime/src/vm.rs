//! The VM façade: one managed runtime instance per MPI rank.
//!
//! A [`Vm`] owns the heap, the handle table, the pin table, the remembered
//! set, the safepoint coordinator and the type registry. Mutator threads
//! interact with it through [`crate::thread::MotorThread`], never directly —
//! mirroring how SSCLI code reaches the runtime through FCalls.

use std::collections::HashSet;
use std::sync::Arc;

use motor_obs::{EventKind, MetricsRegistry};
use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::gc;
use crate::handles::{Handle, HandleTable};
use crate::heap::{AllocPressure, Heap, HeapConfig};
use crate::pin::PinTable;
use crate::safepoint::Safepoint;
use crate::stats::{GcStats, GcStatsSnapshot};
use crate::types::TypeRegistry;

/// VM construction parameters.
#[derive(Debug, Clone, Default)]
pub struct VmConfig {
    /// Heap generation sizing.
    pub heap: HeapConfig,
    /// Capacity of the VM-side metrics event ring (0 ⇒ the default; the
    /// ring overwrites its oldest entry once full).
    pub event_capacity: usize,
    /// Shared time epoch for event timestamps, so the VM-side trace lines
    /// up with the transport-side one and with peer ranks in the same
    /// address space. `None` gives the registry a private epoch.
    pub epoch: Option<std::time::Instant>,
}

/// Mutable runtime state guarded by the VM lock.
pub struct VmState {
    /// The two-generation heap.
    pub heap: Heap,
    /// GC-protected handle slots.
    pub handles: HandleTable,
    /// Hard and conditional pins.
    pub pins: PinTable,
    /// Elder-to-young reference slots recorded by the write barrier.
    pub remset: HashSet<usize>,
}

/// A managed runtime instance.
pub struct Vm {
    state: Mutex<VmState>,
    registry: RwLock<TypeRegistry>,
    safepoint: Safepoint,
    stats: GcStats,
    metrics: Arc<MetricsRegistry>,
}

impl Vm {
    /// Create a VM with the given configuration.
    pub fn new(config: VmConfig) -> Arc<Vm> {
        let capacity = if config.event_capacity == 0 {
            motor_obs::DEFAULT_EVENT_CAPACITY
        } else {
            config.event_capacity
        };
        let metrics = Arc::new(MetricsRegistry::with_epoch(
            config.epoch.unwrap_or_else(std::time::Instant::now),
            capacity,
        ));
        let safepoint = Safepoint::new();
        safepoint.attach_metrics(Arc::clone(&metrics));
        Arc::new(Vm {
            state: Mutex::new(VmState {
                heap: Heap::new(config.heap),
                handles: HandleTable::new(),
                pins: PinTable::new(),
                remset: HashSet::new(),
            }),
            registry: RwLock::new(TypeRegistry::new()),
            safepoint,
            stats: GcStats::new(),
            metrics,
        })
    }

    /// Create a VM with default configuration.
    pub fn with_defaults() -> Arc<Vm> {
        Self::new(VmConfig::default())
    }

    /// Read access to the type registry.
    pub fn registry(&self) -> RwLockReadGuard<'_, TypeRegistry> {
        self.registry.read()
    }

    /// Write access to the type registry (type definition at startup).
    pub fn registry_mut(&self) -> RwLockWriteGuard<'_, TypeRegistry> {
        self.registry.write()
    }

    /// GC / pinning counters.
    pub fn stats(&self) -> &GcStats {
        &self.stats
    }

    /// Runtime-side metrics registry (safepoint stalls, serializer and
    /// buffer-pool traffic, GC trace events).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Snapshot of the counters.
    pub fn stats_snapshot(&self) -> GcStatsSnapshot {
        self.stats.snapshot()
    }

    /// The safepoint coordinator.
    pub fn safepoint(&self) -> &Safepoint {
        &self.safepoint
    }

    /// Pin-table diagnostics for the doctor watchdog:
    /// `(hard_pins, conditional_pins, oldest_hard_pin_age)`. Takes the
    /// state lock briefly; safe to call from a monitor thread.
    pub fn pin_diagnostics(&self) -> (usize, usize, Option<std::time::Duration>) {
        let st = self.state.lock();
        (
            st.pins.hard_len(),
            st.pins.conditional_len(),
            st.pins.oldest_hard_pin_age(),
        )
    }

    /// Lock the mutable state. Internal to the runtime crate and the
    /// trusted integration layer (the FCall analog); user code goes through
    /// `MotorThread`.
    pub fn state(&self) -> MutexGuard<'_, VmState> {
        self.state.lock()
    }

    /// Run a collection of the given kind. The caller must already hold
    /// the collector role from [`Safepoint::try_begin_gc`].
    pub(crate) fn collect_exclusive(&self, kind: AllocPressure) {
        let mut st = self.state.lock();
        let reg = self.registry.read();
        let VmState {
            heap,
            handles,
            pins,
            remset,
        } = &mut *st;
        let mut ctx = gc::CollectCtx {
            heap,
            handles,
            pins,
            remset,
            registry: &reg,
            stats: &self.stats,
        };
        let full = matches!(kind, AllocPressure::NeedsFull);
        let t0 = std::time::Instant::now();
        self.metrics
            .event(EventKind::GcBegin, full as u64, self.safepoint.epoch());
        match kind {
            AllocPressure::NeedsMinor => gc::minor(&mut ctx),
            AllocPressure::NeedsFull => gc::full(&mut ctx),
        }
        self.metrics.event(
            EventKind::GcEnd,
            full as u64,
            t0.elapsed().as_nanos() as u64,
        );
    }

    /// Current address behind a handle (0 = null). The address is only
    /// stable under the usual conditions (GC excluded, pinned, or elder).
    pub fn handle_addr(&self, h: Handle) -> usize {
        self.state.lock().handles.get(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_constructs_with_defaults() {
        let vm = Vm::with_defaults();
        assert_eq!(vm.stats_snapshot().minor_collections, 0);
        assert!(vm.registry().is_empty());
    }

    #[test]
    fn registry_definitions_visible_through_vm() {
        let vm = Vm::with_defaults();
        let id = vm
            .registry_mut()
            .define_class("P")
            .prim("x", crate::types::ElemKind::I32)
            .build();
        assert_eq!(vm.registry().by_name("P"), Some(id));
    }
}
