//! The VM façade: one managed runtime instance per MPI rank.
//!
//! A [`Vm`] owns the heap, the handle table, the pin table, the remembered
//! set, the safepoint coordinator and the type registry. Mutator threads
//! interact with it through [`crate::thread::MotorThread`], never directly —
//! mirroring how SSCLI code reaches the runtime through FCalls.

use std::collections::HashSet;
use std::sync::Arc;

use motor_obs::{EventKind, MetricsRegistry};
use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::gc;
use crate::handles::{Handle, HandleTable};
use crate::heap::{AllocPressure, Heap, HeapConfig};
use crate::pin::PinTable;
use crate::safepoint::Safepoint;
use crate::stats::{GcStats, GcStatsSnapshot};
use crate::types::{ClassId, TypeRegistry};

/// VM construction parameters.
#[derive(Debug, Clone, Default)]
pub struct VmConfig {
    /// Heap generation sizing.
    pub heap: HeapConfig,
    /// Capacity of the VM-side metrics event ring (0 ⇒ the default; the
    /// ring overwrites its oldest entry once full).
    pub event_capacity: usize,
    /// Shared time epoch for event timestamps, so the VM-side trace lines
    /// up with the transport-side one and with peer ranks in the same
    /// address space. `None` gives the registry a private epoch.
    pub epoch: Option<std::time::Instant>,
}

/// Mutable runtime state guarded by the VM lock.
pub struct VmState {
    /// The two-generation heap.
    pub heap: Heap,
    /// GC-protected handle slots.
    pub handles: HandleTable,
    /// Hard and conditional pins.
    pub pins: PinTable,
    /// Elder-to-young reference slots recorded by the write barrier.
    pub remset: HashSet<usize>,
}

/// A managed runtime instance.
pub struct Vm {
    state: Mutex<VmState>,
    registry: RwLock<TypeRegistry>,
    safepoint: Safepoint,
    stats: GcStats,
    metrics: Arc<MetricsRegistry>,
    /// Per-class never-transported proof bits (indexed by `ClassId`),
    /// installed by the static-analysis escape pass. `None` until a
    /// proof is installed; see [`Vm::install_never_transported`].
    never_transported: RwLock<Option<Vec<bool>>>,
}

impl Vm {
    /// Create a VM with the given configuration.
    pub fn new(config: VmConfig) -> Arc<Vm> {
        let capacity = if config.event_capacity == 0 {
            motor_obs::DEFAULT_EVENT_CAPACITY
        } else {
            config.event_capacity
        };
        let metrics = Arc::new(MetricsRegistry::with_epoch(
            config.epoch.unwrap_or_else(std::time::Instant::now),
            capacity,
        ));
        let safepoint = Safepoint::new();
        safepoint.attach_metrics(Arc::clone(&metrics));
        Arc::new(Vm {
            state: Mutex::new(VmState {
                heap: Heap::new(config.heap),
                handles: HandleTable::new(),
                pins: PinTable::new(),
                remset: HashSet::new(),
            }),
            registry: RwLock::new(TypeRegistry::new()),
            safepoint,
            stats: GcStats::new(),
            metrics,
            never_transported: RwLock::new(None),
        })
    }

    /// Create a VM with default configuration.
    pub fn with_defaults() -> Arc<Vm> {
        Self::new(VmConfig::default())
    }

    /// Read access to the type registry.
    pub fn registry(&self) -> RwLockReadGuard<'_, TypeRegistry> {
        self.registry.read()
    }

    /// Write access to the type registry (type definition at startup).
    pub fn registry_mut(&self) -> RwLockWriteGuard<'_, TypeRegistry> {
        self.registry.write()
    }

    /// GC / pinning counters.
    pub fn stats(&self) -> &GcStats {
        &self.stats
    }

    /// Runtime-side metrics registry (safepoint stalls, serializer and
    /// buffer-pool traffic, GC trace events).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Snapshot of the counters.
    pub fn stats_snapshot(&self) -> GcStatsSnapshot {
        self.stats.snapshot()
    }

    /// The safepoint coordinator.
    pub fn safepoint(&self) -> &Safepoint {
        &self.safepoint
    }

    /// Install a never-transported class proof (the static-analysis
    /// escape pass's per-class bits). The proof asserts that no instance
    /// of these classes is ever handed to the transport layer — hence
    /// never pinned — letting the minor collector skip its per-object
    /// pinned-set membership check for them.
    ///
    /// Installing is *intersecting*: when several verified modules run on
    /// one VM, a class stays proven only if **every** installed proof
    /// covers it, so a second module that does transport a class revokes
    /// the first module's bit. The proof also covers host-side behaviour:
    /// an embedder that pins objects directly (`MotorThread::pin`) must
    /// not install proofs for those classes.
    pub fn install_never_transported(&self, classes: &[ClassId]) {
        let reg_len = self.registry.read().len();
        let mut guard = self.never_transported.write();
        let mut incoming = vec![false; reg_len];
        for c in classes {
            if let Some(slot) = incoming.get_mut(c.0 as usize) {
                *slot = true;
            }
        }
        match &mut *guard {
            Some(bits) => {
                // Intersect with the existing proof; classes defined after
                // the first install default to unproven on both sides.
                bits.resize(reg_len.max(bits.len()), false);
                for (i, slot) in bits.iter_mut().enumerate() {
                    *slot = *slot && incoming.get(i).copied().unwrap_or(false);
                }
            }
            None => *guard = Some(incoming),
        }
    }

    /// Drop any installed never-transported proof, restoring the
    /// conservative default (every young object checked against the
    /// pinned set).
    pub fn clear_never_transported(&self) {
        *self.never_transported.write() = None;
    }

    /// Copy of the installed never-transported bits (`None` = no proof).
    pub fn never_transported_bits(&self) -> Option<Vec<bool>> {
        self.never_transported.read().clone()
    }

    /// Pin-table diagnostics for the doctor watchdog:
    /// `(hard_pins, conditional_pins, oldest_hard_pin_age)`. Takes the
    /// state lock briefly; safe to call from a monitor thread.
    pub fn pin_diagnostics(&self) -> (usize, usize, Option<std::time::Duration>) {
        let st = self.state.lock();
        (
            st.pins.hard_len(),
            st.pins.conditional_len(),
            st.pins.oldest_hard_pin_age(),
        )
    }

    /// Live heap occupancy `(used_bytes, capacity_bytes)` for the
    /// telemetry gauges. Non-blocking: when the state lock is contended
    /// (a GC is running) this returns `None` rather than stalling the
    /// monitor thread behind the collection.
    pub fn heap_usage(&self) -> Option<(u64, u64)> {
        self.state.try_lock().map(|st| st.heap.usage())
    }

    /// Lock the mutable state. Internal to the runtime crate and the
    /// trusted integration layer (the FCall analog); user code goes through
    /// `MotorThread`.
    pub fn state(&self) -> MutexGuard<'_, VmState> {
        self.state.lock()
    }

    /// Run a collection of the given kind. The caller must already hold
    /// the collector role from [`Safepoint::try_begin_gc`].
    pub(crate) fn collect_exclusive(&self, kind: AllocPressure) {
        let mut st = self.state.lock();
        let reg = self.registry.read();
        let nt = self.never_transported.read();
        let VmState {
            heap,
            handles,
            pins,
            remset,
        } = &mut *st;
        let mut ctx = gc::CollectCtx {
            heap,
            handles,
            pins,
            remset,
            registry: &reg,
            stats: &self.stats,
            never_transported: nt.as_deref(),
        };
        let full = matches!(kind, AllocPressure::NeedsFull);
        let t0 = std::time::Instant::now();
        self.metrics
            .event(EventKind::GcBegin, full as u64, self.safepoint.epoch());
        match kind {
            AllocPressure::NeedsMinor => gc::minor(&mut ctx),
            AllocPressure::NeedsFull => gc::full(&mut ctx),
        }
        self.metrics.event(
            EventKind::GcEnd,
            full as u64,
            t0.elapsed().as_nanos() as u64,
        );
    }

    /// Current address behind a handle (0 = null). The address is only
    /// stable under the usual conditions (GC excluded, pinned, or elder).
    pub fn handle_addr(&self, h: Handle) -> usize {
        self.state.lock().handles.get(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_constructs_with_defaults() {
        let vm = Vm::with_defaults();
        assert_eq!(vm.stats_snapshot().minor_collections, 0);
        assert!(vm.registry().is_empty());
    }

    #[test]
    fn never_transported_proofs_intersect_across_installs() {
        let vm = Vm::with_defaults();
        let a = vm
            .registry_mut()
            .define_class("A")
            .prim("x", crate::types::ElemKind::I64)
            .build();
        let b = vm
            .registry_mut()
            .define_class("B")
            .prim("x", crate::types::ElemKind::I64)
            .build();
        assert_eq!(vm.never_transported_bits(), None);

        vm.install_never_transported(&[a, b]);
        let bits = vm.never_transported_bits().unwrap();
        assert!(bits[a.0 as usize] && bits[b.0 as usize]);

        // A second module proving only `a` revokes `b`'s bit.
        vm.install_never_transported(&[a]);
        let bits = vm.never_transported_bits().unwrap();
        assert!(bits[a.0 as usize]);
        assert!(!bits[b.0 as usize]);

        vm.clear_never_transported();
        assert_eq!(vm.never_transported_bits(), None);
    }

    #[test]
    fn registry_definitions_visible_through_vm() {
        let vm = Vm::with_defaults();
        let id = vm
            .registry_mut()
            .define_class("P")
            .prim("x", crate::types::ElemKind::I32)
            .build();
        assert_eq!(vm.registry().by_name("P"), Some(id));
    }
}
