//! # motor-runtime — the Motor managed runtime
//!
//! This crate is the analog of the SSCLI ("Rotor") virtual runtime that the
//! Motor paper integrates MPI into: a managed, garbage-collected object
//! heap with the exact architectural features the paper's message-passing
//! integration depends on.
//!
//! ## What is reproduced from the SSCLI (paper §5)
//!
//! * **Runtime object/class model** (§5.3): every object carries a header
//!   referencing its [`types::MethodTable`]; each field of every class is
//!   described by a [`types::FieldDesc`], a compact structure with a bit
//!   field — including the **Transportable bit** Motor adds so the
//!   serializer never has to consult slow reflection metadata (§7.5).
//!   True multidimensional arrays (a reason the paper picked the CLI over
//!   Java, §3) are first-class.
//! * **Two-generation garbage collector** (§5.2): objects allocate in the
//!   young generation by bump allocation; survivors of a minor collection
//!   are copied (compacted) into the elder generation; elder objects are
//!   mark-swept but never moved. When pinned objects are present, *the
//!   entire young block is assigned to the elder generation* and a fresh
//!   young block is allocated — exactly the SSCLI behaviour the paper
//!   describes.
//! * **Pinning** (§4.3, §7.4): hard pins, plus Motor's *conditional pin
//!   requests*: a pin whose necessity is evaluated by the collector itself
//!   during the mark phase by asking the underlying transport request
//!   whether it is still in flight.
//! * **Safepoints / GC polling** (§5.1, §7.4): cooperative threads must
//!   periodically poll; a collection freezes every attached thread at a
//!   safepoint (or in a *native region*, the analog of pre-emptive mode
//!   where a thread promises not to touch the heap).
//! * **Handle protection** (§5.1): the runtime does not scan native stacks,
//!   so FCall-style code must protect object references in [`handles`]
//!   scopes — the analog of the SSCLI `GCPROTECT` macros. Protected
//!   handles are updated when the collector moves objects.
//!
//! ## Crate layout
//!
//! | module | contents |
//! |--------|----------|
//! | [`types`] | `MethodTable`, `FieldDesc`, element kinds, the type registry |
//! | [`layout`] | object header layout and size computation |
//! | [`heap`] | segments, the two generations, allocation, containment tests |
//! | [`gc`] | minor (copying) and full (mark-sweep) collection |
//! | [`pin`] | the pin table: hard pins and conditional pin requests |
//! | [`handles`] | GC-protected handle table and RAII scopes |
//! | [`safepoint`] | the stop-the-world coordination protocol |
//! | [`thread`] | attached mutator threads, native regions |
//! | [`object`] | safe typed accessors over managed objects |
//! | [`vm`] | the [`vm::Vm`] façade tying it all together |
//! | [`stats`] | collection/pinning counters used by tests and ablations |

pub mod gc;
pub mod handles;
pub mod heap;
pub mod layout;
pub mod object;
pub mod pin;
pub mod safepoint;
pub mod stats;
pub mod thread;
pub mod types;
pub mod verify;
pub mod vm;

pub use handles::Handle;
pub use object::ObjectRef;
pub use pin::{PinCondition, PinToken};
pub use thread::{MotorThread, Prim};
pub use types::{ClassId, ElemKind, FieldDesc, FieldType, MethodTable, TypeKind, TypeRegistry};
pub use verify::{verify_heap, VerifyReport};
pub use vm::{Vm, VmConfig};
