//! Collection and pinning counters.
//!
//! The paper's argument for the pinning policy is quantitative ("it does
//! minimise the performance overhead imposed by pinning unnecessarily for
//! each operation", §7.4). These counters let the tests assert the policy's
//! behaviour directly — e.g. that a ping-pong over elder-resident buffers
//! performs zero pin operations — and feed the ablation benchmarks.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing one VM's GC and pinning activity.
#[derive(Debug, Default)]
pub struct GcStats {
    /// Minor (young-generation) collections performed.
    pub minor_collections: AtomicU64,
    /// Full (mark-sweep) collections performed.
    pub full_collections: AtomicU64,
    /// Objects copied (promoted) out of the young generation.
    pub objects_promoted: AtomicU64,
    /// Bytes copied during promotion.
    pub bytes_promoted: AtomicU64,
    /// Times the whole young block was transferred to the elder generation
    /// because pinned objects were present.
    pub pinned_block_promotions: AtomicU64,
    /// Hard pin operations performed.
    pub pins: AtomicU64,
    /// Hard unpin operations performed.
    pub unpins: AtomicU64,
    /// Conditional pin requests registered (non-blocking operations).
    pub conditional_pins_registered: AtomicU64,
    /// Conditional pin requests found still in flight at mark time (object
    /// kept pinned through the collection).
    pub conditional_pins_held: AtomicU64,
    /// Conditional pin requests found complete at mark time (request
    /// discarded, object released).
    pub conditional_pins_released: AtomicU64,
    /// Pins skipped by the policy because the object was already
    /// elder-resident.
    pub pins_avoided_elder: AtomicU64,
    /// Pins skipped because a blocking operation completed without entering
    /// the polling wait.
    pub pins_avoided_fast_blocking: AtomicU64,
    /// Objects reclaimed by full collections.
    pub objects_swept: AtomicU64,
    /// Bytes reclaimed by full collections.
    pub bytes_swept: AtomicU64,
    /// Young-object pinned-set membership checks skipped by the minor
    /// collector because the object's class carries a never-transported
    /// proof (motor-analyze escape pass): such objects can never be
    /// transport buffers, hence never pinned.
    pub pin_checks_elided: AtomicU64,
}

impl GcStats {
    /// Create zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bump a counter by one.
    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Add to a counter.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Read a counter.
    #[inline]
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Snapshot all counters into a plain struct for reporting.
    pub fn snapshot(&self) -> GcStatsSnapshot {
        GcStatsSnapshot {
            minor_collections: Self::get(&self.minor_collections),
            full_collections: Self::get(&self.full_collections),
            objects_promoted: Self::get(&self.objects_promoted),
            bytes_promoted: Self::get(&self.bytes_promoted),
            pinned_block_promotions: Self::get(&self.pinned_block_promotions),
            pins: Self::get(&self.pins),
            unpins: Self::get(&self.unpins),
            conditional_pins_registered: Self::get(&self.conditional_pins_registered),
            conditional_pins_held: Self::get(&self.conditional_pins_held),
            conditional_pins_released: Self::get(&self.conditional_pins_released),
            pins_avoided_elder: Self::get(&self.pins_avoided_elder),
            pins_avoided_fast_blocking: Self::get(&self.pins_avoided_fast_blocking),
            objects_swept: Self::get(&self.objects_swept),
            bytes_swept: Self::get(&self.bytes_swept),
            pin_checks_elided: Self::get(&self.pin_checks_elided),
        }
    }
}

/// A point-in-time copy of [`GcStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStatsSnapshot {
    pub minor_collections: u64,
    pub full_collections: u64,
    pub objects_promoted: u64,
    pub bytes_promoted: u64,
    pub pinned_block_promotions: u64,
    pub pins: u64,
    pub unpins: u64,
    pub conditional_pins_registered: u64,
    pub conditional_pins_held: u64,
    pub conditional_pins_released: u64,
    pub pins_avoided_elder: u64,
    pub pins_avoided_fast_blocking: u64,
    pub objects_swept: u64,
    pub bytes_swept: u64,
    pub pin_checks_elided: u64,
}

impl GcStatsSnapshot {
    /// Total pin bookkeeping operations (pins + unpins) — the quantity the
    /// pinning-policy ablation compares.
    pub fn pin_traffic(&self) -> u64 {
        self.pins + self.unpins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = GcStats::new();
        GcStats::bump(&s.pins);
        GcStats::bump(&s.pins);
        GcStats::add(&s.bytes_promoted, 100);
        let snap = s.snapshot();
        assert_eq!(snap.pins, 2);
        assert_eq!(snap.bytes_promoted, 100);
        assert_eq!(snap.pin_traffic(), 2);
    }

    #[test]
    fn snapshot_is_stable_copy() {
        let s = GcStats::new();
        let a = s.snapshot();
        GcStats::bump(&s.minor_collections);
        let b = s.snapshot();
        assert_eq!(a.minor_collections, 0);
        assert_eq!(b.minor_collections, 1);
    }
}
