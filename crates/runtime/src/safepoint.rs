//! Stop-the-world safepoint coordination.
//!
//! Paper §5.2: "To perform a garbage collection, all threads must be frozen
//! in a safe point. To facilitate this, the jitted code periodically polls
//! to yield itself to garbage collection, in case it is necessary." And
//! §5.1 on FCalls: "they must behave like managed code. This means they
//! must periodically yield to the garbage collector ... If yielding is not
//! performed and a garbage collection is required, the FCall would make all
//! other threads wait until it polls for collection."
//!
//! The protocol: every attached thread is either *cooperative* (may touch
//! the heap; must poll) or *native* (promises not to touch the heap; the
//! collector does not wait for it — the analog of the CLR's pre-emptive
//! mode, which Motor's polling-wait uses while the transport progresses).
//! A collector candidate raises the request flag and waits until every
//! other cooperative thread has parked at a poll; it then has exclusive
//! heap access.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use motor_obs::{EventKind, Hist, Metric, MetricsRegistry, SpanKind, INFLIGHT_NONE};
use parking_lot::{Condvar, Mutex};

#[derive(Debug, Default)]
struct SpInner {
    /// Attached threads.
    registered: usize,
    /// Threads currently inside native regions.
    native: usize,
    /// Threads parked at a safepoint.
    parked: usize,
    /// A collection is pending or in progress.
    collecting: bool,
    /// Completed collections (lets waiters detect completion).
    epoch: u64,
}

/// The safepoint coordinator of one VM.
#[derive(Debug, Default)]
pub struct Safepoint {
    gc_requested: AtomicBool,
    inner: Mutex<SpInner>,
    cvar: Condvar,
    /// Stall accounting sink; unattached safepoints go unmetered.
    metrics: OnceLock<Arc<MetricsRegistry>>,
}

impl Safepoint {
    /// Create a coordinator with no attached threads.
    pub fn new() -> Self {
        Self::default()
    }

    /// Report safepoint stalls into `registry` from now on (first attach
    /// wins).
    pub fn attach_metrics(&self, registry: Arc<MetricsRegistry>) {
        let _ = self.metrics.set(registry);
    }

    fn record_stall(&self, since: Instant) {
        if let Some(r) = self.metrics.get() {
            let ns = since.elapsed().as_nanos() as u64;
            r.bump(Metric::SafepointStalls);
            r.record(Hist::SafepointStallNanos, ns);
            r.event(EventKind::SafepointStall, ns, 0);
        }
    }

    /// Attach the calling thread (cooperative).
    pub fn register(&self) {
        self.inner.lock().registered += 1;
    }

    /// Detach the calling thread. Must not be called from inside a native
    /// region or while parked.
    pub fn deregister(&self) {
        let mut g = self.inner.lock();
        debug_assert!(g.registered > 0);
        g.registered -= 1;
        // A waiting collector may now have all remaining threads parked.
        self.cvar.notify_all();
    }

    /// Fast-path safepoint poll: parks the thread for the duration of any
    /// pending collection. This is the call sites the paper requires on
    /// FCall entry/exit and inside every polling-wait lap.
    #[inline]
    pub fn poll(&self) {
        if self.gc_requested.load(Ordering::Acquire) {
            self.poll_slow();
        }
    }

    #[cold]
    fn poll_slow(&self) {
        let t0 = Instant::now();
        let mut stalled = false;
        let mut inflight = INFLIGHT_NONE;
        {
            let mut g = self.inner.lock();
            while g.collecting {
                if !stalled {
                    stalled = true;
                    if let Some(r) = self.metrics.get() {
                        inflight = r.op_begin(SpanKind::SafepointStall, 0);
                    }
                }
                g.parked += 1;
                self.cvar.notify_all();
                self.cvar.wait(&mut g);
                g.parked -= 1;
            }
        }
        if stalled {
            if let Some(r) = self.metrics.get() {
                r.op_end(inflight);
            }
            self.record_stall(t0);
        }
    }

    /// Attempt to become the collector. Returns `true` if the calling
    /// thread now holds exclusive heap access (it must call [`end_gc`]
    /// afterwards); `false` if another thread's collection completed in the
    /// meantime (retry the failed allocation first).
    ///
    /// [`end_gc`]: Safepoint::end_gc
    pub fn try_begin_gc(&self) -> bool {
        let mut g = self.inner.lock();
        if g.collecting {
            // Someone else is collecting: park like a poll and report that
            // a collection happened.
            let t0 = Instant::now();
            while g.collecting {
                g.parked += 1;
                self.cvar.notify_all();
                self.cvar.wait(&mut g);
                g.parked -= 1;
            }
            drop(g);
            self.record_stall(t0);
            return false;
        }
        g.collecting = true;
        self.gc_requested.store(true, Ordering::Release);
        // Wait until every other cooperative thread is parked or native.
        while g.parked + g.native + 1 < g.registered {
            self.cvar.wait(&mut g);
        }
        true
    }

    /// Finish a collection started with [`Safepoint::try_begin_gc`].
    pub fn end_gc(&self) {
        let mut g = self.inner.lock();
        debug_assert!(g.collecting);
        g.collecting = false;
        g.epoch += 1;
        self.gc_requested.store(false, Ordering::Release);
        self.cvar.notify_all();
    }

    /// Enter a native region: the collector will no longer wait for this
    /// thread. The caller promises not to touch the heap until
    /// [`Safepoint::exit_native`].
    pub fn enter_native(&self) {
        let mut g = self.inner.lock();
        g.native += 1;
        // A waiting collector can now proceed.
        self.cvar.notify_all();
    }

    /// Leave a native region; blocks while a collection is pending or in
    /// progress.
    pub fn exit_native(&self) {
        let mut g = self.inner.lock();
        while g.collecting {
            self.cvar.wait(&mut g);
        }
        debug_assert!(g.native > 0);
        g.native -= 1;
    }

    /// Number of completed collections.
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Whether a collection is currently requested (fast, approximate).
    pub fn gc_pending(&self) -> bool {
        self.gc_requested.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn solo_thread_collects_immediately() {
        let sp = Safepoint::new();
        sp.register();
        assert!(sp.try_begin_gc());
        sp.end_gc();
        assert_eq!(sp.epoch(), 1);
        sp.deregister();
    }

    #[test]
    fn collector_waits_for_peer_to_poll() {
        let sp = Arc::new(Safepoint::new());
        sp.register(); // main
        let sp2 = Arc::clone(&sp);
        let order = Arc::new(AtomicUsize::new(0));
        let order2 = Arc::clone(&order);
        let peer = std::thread::spawn(move || {
            sp2.register();
            // Simulate work, then poll.
            std::thread::sleep(Duration::from_millis(10));
            order2.store(1, Ordering::SeqCst);
            sp2.poll(); // parks until collection done
            sp2.deregister();
        });
        // Give the peer time to register.
        std::thread::sleep(Duration::from_millis(2));
        assert!(sp.try_begin_gc());
        // By the time begin_gc returns, the peer must have polled.
        assert_eq!(order.load(Ordering::SeqCst), 1);
        sp.end_gc();
        peer.join().unwrap();
        sp.deregister();
    }

    #[test]
    fn native_region_does_not_block_collector() {
        let sp = Arc::new(Safepoint::new());
        sp.register();
        let sp2 = Arc::clone(&sp);
        let peer = std::thread::spawn(move || {
            sp2.register();
            sp2.enter_native();
            // Stay in native mode for a long time; the collector must not
            // wait for us.
            std::thread::sleep(Duration::from_millis(100));
            sp2.exit_native();
            sp2.deregister();
        });
        std::thread::sleep(Duration::from_millis(10));
        let t0 = std::time::Instant::now();
        assert!(sp.try_begin_gc());
        assert!(
            t0.elapsed() < Duration::from_millis(80),
            "collector should not wait for native thread"
        );
        sp.end_gc();
        peer.join().unwrap();
        sp.deregister();
    }

    #[test]
    fn exit_native_blocks_during_collection() {
        let sp = Arc::new(Safepoint::new());
        sp.register();
        let sp2 = Arc::clone(&sp);
        sp.enter_native();
        let main_in_native = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            sp2.exit_native();
            sp2.epoch()
        });
        // Another thread collects while main is native.
        let sp3 = Arc::clone(&sp);
        let collector = std::thread::spawn(move || {
            sp3.register();
            assert!(sp3.try_begin_gc());
            std::thread::sleep(Duration::from_millis(50));
            sp3.end_gc();
            sp3.deregister();
        });
        let epoch_after_exit = main_in_native.join().unwrap();
        collector.join().unwrap();
        assert_eq!(
            epoch_after_exit, 1,
            "exit_native returned only after the collection"
        );
        sp.deregister();
    }

    #[test]
    fn losing_racer_retries_instead_of_collecting() {
        let sp = Arc::new(Safepoint::new());
        sp.register();
        let sp2 = Arc::clone(&sp);
        let winner_done = Arc::new(AtomicBool::new(false));
        let wd = Arc::clone(&winner_done);
        let racer = std::thread::spawn(move || {
            sp2.register();
            let got = sp2.try_begin_gc();
            if got {
                std::thread::sleep(Duration::from_millis(10));
                wd.store(true, Ordering::SeqCst);
                sp2.end_gc();
            }
            sp2.deregister();
            got
        });
        std::thread::sleep(Duration::from_millis(2));
        let mine = sp.try_begin_gc();
        if mine {
            sp.end_gc();
        }
        let theirs = racer.join().unwrap();
        // Exactly one of the two racers performed the collection... or both
        // sequentially (if timing separated them). Never neither.
        assert!(mine || theirs);
        assert!(sp.epoch() >= 1);
        sp.deregister();
    }
}
