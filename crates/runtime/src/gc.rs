//! Garbage collection: minor (copying) and full (mark-sweep) collections.
//!
//! Implements the SSCLI collector behaviour described in paper §5.2,
//! including the two Motor-specific interactions from §4.3/§7.4:
//!
//! * **Conditional pin requests** are resolved at the start of the mark
//!   phase: "the garbage collector checks the status of the underlying
//!   non-blocking transport operations. If the operation is ongoing, the
//!   object is marked as pinned and therefore remains untouched during the
//!   impending sweep phase. Otherwise, the pinning request is no longer
//!   necessary and is disregarded."
//! * **Pinned-block promotion**: "The garbage collector maintains a list of
//!   objects which require pinning and these objects are not moved. Rather,
//!   the entire block of younger generational memory is assigned to the
//!   elder generation thereby promoting pinned objects. A new younger
//!   generation is allocated. Non-pinned objects are copied and compacted
//!   as before."
//!
//! Roots are handle-table slots (the `GCPROTECT` analog), remembered-set
//! slots (elder objects holding young references), and active pins —
//! a pinned buffer is being read or written by the transport, so it must
//! stay live regardless of mutator references.

use std::collections::HashSet;

use crate::handles::HandleTable;
use crate::heap::{FreeBlock, Heap};
use crate::layout::{obj_flags, HEADER_SIZE};
use crate::object::{for_each_ref_slot, ObjectRef};
use crate::pin::PinTable;
use crate::stats::GcStats;
use crate::types::{ClassId, TypeRegistry};

/// Borrowed view of everything a collection touches.
pub struct CollectCtx<'a> {
    /// The heap being collected.
    pub heap: &'a mut Heap,
    /// Handle table (root set, rewritten in place).
    pub handles: &'a mut HandleTable,
    /// Pin table (hard pins and conditional requests).
    pub pins: &'a mut PinTable,
    /// Remembered set: addresses of elder-generation reference slots that
    /// may hold young references.
    pub remset: &'a mut HashSet<usize>,
    /// Type registry (for ref-slot scanning).
    pub registry: &'a TypeRegistry,
    /// Counters.
    pub stats: &'a GcStats,
    /// Per-class never-transported proof bits (indexed by `ClassId`),
    /// when the static-analysis escape pass installed one. A proven
    /// class's instances can never be transport buffers, so the minor
    /// collector skips the pinned-set membership check for them.
    pub never_transported: Option<&'a [bool]>,
}

/// Copy-evacuation machinery for a minor collection.
struct Evacuator<'a> {
    heap: &'a mut Heap,
    pinned_young: &'a HashSet<usize>,
    /// Objects whose reference slots still need scanning (new elder copies
    /// and in-place pinned young objects).
    scan: Vec<usize>,
    stats: &'a GcStats,
    /// Never-transported proof bits (see [`CollectCtx::never_transported`]).
    never_transported: Option<&'a [bool]>,
}

impl Evacuator<'_> {
    /// Forward one reference: returns the post-collection address.
    fn forward(&mut self, addr: usize) -> usize {
        if addr == 0 || !self.heap.is_young(addr) {
            return addr;
        }
        let obj = ObjectRef(addr);
        // SAFETY: collector has exclusive heap access.
        unsafe {
            if let Some(f) = obj.forwarded() {
                return f.0;
            }
            // Escape-proof fast path: a never-transported class's
            // instances can never be pinned, so the membership probe is
            // skipped outright (counted, so the ablation can measure the
            // proof's coverage).
            let proven_unpinned = self
                .never_transported
                .and_then(|bits| bits.get(obj.header().mt as usize).copied())
                .unwrap_or(false);
            if proven_unpinned {
                GcStats::bump(&self.stats.pin_checks_elided);
                debug_assert!(
                    !self.pinned_young.contains(&addr),
                    "object of a never-transported class found in the pinned set"
                );
            } else if self.pinned_young.contains(&addr) {
                // Pinned: stays in place; the block promotion keeps the
                // address valid. Mark to dedupe the scan.
                let h = obj.header_mut();
                if h.flags & obj_flags::MARK == 0 {
                    h.flags |= obj_flags::MARK;
                    self.scan.push(addr);
                }
                return addr;
            }
            // Copy to the elder generation ("promoted ... with compaction").
            let h = obj.header();
            let size = h.size as usize;
            let new_addr = self
                .heap
                .alloc_old_unchecked(size, h)
                .expect("elder generation growth during collection");
            std::ptr::copy_nonoverlapping(
                (addr + HEADER_SIZE) as *const u8,
                (new_addr + HEADER_SIZE) as *mut u8,
                size - HEADER_SIZE,
            );
            // The copy keeps the original header but becomes elder-resident.
            let nh = ObjectRef(new_addr).header_mut();
            nh.flags = (h.flags | obj_flags::IN_OLD) & !(obj_flags::MARK | obj_flags::FORWARDED);
            obj.forward_to(ObjectRef(new_addr));
            GcStats::bump(&self.stats.objects_promoted);
            GcStats::add(&self.stats.bytes_promoted, size as u64);
            self.scan.push(new_addr);
            new_addr
        }
    }
}

/// Perform a minor (young-generation) collection.
pub fn minor(ctx: &mut CollectCtx<'_>) {
    GcStats::bump(&ctx.stats.minor_collections);

    // Mark-phase resolution of conditional pin requests (paper §7.4).
    let (held, released) = ctx.pins.resolve_conditionals();
    GcStats::add(&ctx.stats.conditional_pins_held, held.len() as u64);
    GcStats::add(&ctx.stats.conditional_pins_released, released);

    // The set of young objects that must not move.
    let mut pinned_young: HashSet<usize> = HashSet::new();
    for addr in ctx.pins.hard_pinned_addrs() {
        if ctx.heap.is_young(addr) {
            pinned_young.insert(addr);
        }
    }
    for addr in held {
        if ctx.heap.is_young(addr) {
            pinned_young.insert(addr);
        }
    }

    let mut ev = Evacuator {
        heap: &mut *ctx.heap,
        pinned_young: &pinned_young,
        scan: Vec::new(),
        stats: ctx.stats,
        never_transported: ctx.never_transported,
    };

    // Roots 1: pins themselves (the transport is using these buffers).
    let pin_roots: Vec<usize> = pinned_young.iter().copied().collect();
    for addr in pin_roots {
        ev.forward(addr);
    }
    // Roots 2: handle slots.
    ctx.handles.for_each_slot_mut(|slot| {
        *slot = ev.forward(*slot);
    });
    // Roots 3: remembered-set slots (elder objects that store young refs).
    for &slot_addr in ctx.remset.iter() {
        // SAFETY: barrier-recorded slots live inside elder objects, which
        // never move; entries are cleared every collection so none is stale.
        unsafe {
            let slot = slot_addr as *mut usize;
            *slot = ev.forward(*slot);
        }
    }

    // Transitive scan.
    while let Some(addr) = ev.scan.pop() {
        let obj = ObjectRef(addr);
        // SAFETY: addr is a live object (new elder copy or pinned young).
        let mt_id = unsafe { obj.header().mt };
        let mt = ctx.registry.table(ClassId(mt_id));
        // SAFETY: exclusive access; slots are valid for this type.
        unsafe {
            for_each_ref_slot(obj, mt, |slot| {
                let v = *slot;
                let n = ev.forward(v);
                *slot = n;
            });
        }
    }

    if pinned_young.is_empty() {
        // Whole young generation evacuated; recycle the block.
        ctx.heap.young_mut().reset();
    } else {
        // Pinned objects present: free the non-pinned remains in place,
        // then assign the entire young block to the elder generation.
        GcStats::bump(&ctx.stats.pinned_block_promotions);
        let mut free_blocks: Vec<FreeBlock> = Vec::new();
        let mut run_start: Option<usize> = None;
        let mut run_len = 0usize;
        let addrs: Vec<(usize, usize, bool)> = ctx
            .heap
            .young()
            .walk()
            .map(|a| {
                // SAFETY: walking our own segment.
                let h = unsafe { ObjectRef(a).header() };
                (a, h.size as usize, pinned_young.contains(&a))
            })
            .collect();
        for (addr, size, is_pinned) in addrs {
            if is_pinned {
                // Close any open free run.
                if let Some(start) = run_start.take() {
                    Heap::stamp_free(start, run_len);
                    free_blocks.push(FreeBlock {
                        addr: start,
                        size: run_len,
                    });
                    run_len = 0;
                }
                // Clear the scan-dedup mark.
                ctx.heap.update_flags(addr, 0, obj_flags::MARK);
            } else {
                if run_start.is_none() {
                    run_start = Some(addr);
                }
                run_len += size;
            }
        }
        if let Some(start) = run_start {
            Heap::stamp_free(start, run_len);
            free_blocks.push(FreeBlock {
                addr: start,
                size: run_len,
            });
        }
        let freed: usize = free_blocks.iter().map(|b| b.size).sum();
        ctx.heap.promote_young_block();
        ctx.heap.add_free_blocks(free_blocks, freed);
    }

    // The young generation is empty either way; every barrier entry is
    // consumed.
    ctx.remset.clear();
}

/// Perform a full collection: minor first (emptying the young generation),
/// then a mark-sweep of the elder generation. Elder objects never move
/// (paper §5.2), so no reference rewriting is needed.
pub fn full(ctx: &mut CollectCtx<'_>) {
    minor(ctx);
    GcStats::bump(&ctx.stats.full_collections);

    // Mark.
    let mut stack: Vec<usize> = Vec::new();
    for addr in ctx.handles.roots() {
        stack.push(addr);
    }
    for addr in ctx.pins.hard_pinned_addrs() {
        stack.push(addr);
    }
    // Conditional pins still in flight (resolved during the minor phase)
    // are roots too: the transport is reading/writing those buffers.
    let (held, released) = ctx.pins.resolve_conditionals();
    GcStats::add(&ctx.stats.conditional_pins_held, held.len() as u64);
    GcStats::add(&ctx.stats.conditional_pins_released, released);
    stack.extend(held);

    while let Some(addr) = stack.pop() {
        if addr == 0 {
            continue;
        }
        let obj = ObjectRef(addr);
        // SAFETY: exclusive access during collection.
        unsafe {
            let h = obj.header_mut();
            if h.flags & (obj_flags::MARK | obj_flags::FREE) != 0 {
                continue;
            }
            h.flags |= obj_flags::MARK;
            let mt = ctx.registry.table(ClassId(h.mt));
            for_each_ref_slot(obj, mt, |slot| {
                let v = *slot;
                if v != 0 {
                    stack.push(v);
                }
            });
        }
    }

    // Sweep every elder segment, coalescing dead and already-free space.
    let mut free_blocks: Vec<FreeBlock> = Vec::new();
    let mut newly_freed = 0usize;
    let mut swept_objects = 0u64;
    let seg_count = ctx.heap.old_segments().len();
    for si in 0..seg_count {
        let entries: Vec<(usize, usize, u32)> = ctx.heap.old_segments()[si]
            .walk()
            .map(|a| {
                // SAFETY: walking a segment we own exclusively.
                let h = unsafe { ObjectRef(a).header() };
                (a, h.size as usize, h.flags)
            })
            .collect();
        let mut run_start: Option<usize> = None;
        let mut run_len = 0usize;
        for (addr, size, flags) in entries {
            let live = flags & obj_flags::MARK != 0;
            if live {
                ctx.heap.update_flags(addr, 0, obj_flags::MARK);
                if let Some(start) = run_start.take() {
                    Heap::stamp_free(start, run_len);
                    free_blocks.push(FreeBlock {
                        addr: start,
                        size: run_len,
                    });
                    run_len = 0;
                }
            } else {
                if flags & obj_flags::FREE == 0 {
                    // Newly dead (includes forwarding husks left by pinned
                    // block promotion).
                    newly_freed += size;
                    swept_objects += 1;
                }
                if run_start.is_none() {
                    run_start = Some(addr);
                }
                run_len += size;
            }
        }
        if let Some(start) = run_start {
            Heap::stamp_free(start, run_len);
            free_blocks.push(FreeBlock {
                addr: start,
                size: run_len,
            });
        }
    }
    GcStats::add(&ctx.stats.objects_swept, swept_objects);
    GcStats::add(&ctx.stats.bytes_swept, newly_freed as u64);
    ctx.heap.set_free_list(free_blocks, newly_freed);
}
