//! Attached mutator threads — the safe, handle-based runtime API.
//!
//! A [`MotorThread`] is the runtime's view of one mutator: it registers
//! with the safepoint coordinator on attach, must poll regularly (the
//! analog of JIT-inserted GC polls), and may enter *native regions* (the
//! analog of pre-emptive mode) in which the collector will not wait for it.
//!
//! All object access goes through [`crate::handles::Handle`]s so that the
//! moving collector can rewrite every reference it relocates — the
//! discipline the paper's FCalls follow with the `GCPROTECT` macros (§5.1).
//!
//! Lock ordering: the VM state mutex may be held while taking the type
//! registry read lock, never the reverse. No method of this type holds the
//! registry lock while acquiring the state lock.

use std::cell::Cell;
use std::sync::Arc;

use crate::handles::Handle;
use crate::heap::AllocPressure;
use crate::layout::{self, ObjHeader};
use crate::object::ObjectRef;
use crate::pin::{PinCondition, PinToken};
use crate::types::{ClassId, ElemKind, FieldType, TypeKind};
use crate::vm::Vm;

/// Marker trait tying Rust primitive types to managed element kinds.
pub trait Prim: Copy + 'static {
    /// The managed element kind this Rust type maps to.
    const KIND: ElemKind;
}

macro_rules! impl_prim {
    ($($t:ty => $k:ident),* $(,)?) => {
        $(impl Prim for $t { const KIND: ElemKind = ElemKind::$k; })*
    };
}

impl_prim! {
    u8 => U8, i8 => I8, i16 => I16, u16 => U16,
    i32 => I32, u32 => U32, i64 => I64, u64 => U64,
    f32 => F32, f64 => F64,
}

/// A mutator thread attached to a VM.
pub struct MotorThread {
    vm: Arc<Vm>,
    native_depth: Cell<u32>,
}

impl MotorThread {
    /// Attach the calling thread to a VM.
    pub fn attach(vm: Arc<Vm>) -> MotorThread {
        vm.safepoint().register();
        MotorThread {
            vm,
            native_depth: Cell::new(0),
        }
    }

    /// The VM this thread is attached to.
    pub fn vm(&self) -> &Arc<Vm> {
        &self.vm
    }

    /// Safepoint poll: parks for the duration of any pending collection.
    #[inline]
    pub fn poll(&self) {
        self.vm.safepoint().poll();
    }

    /// Run `f` in a native region: the collector will not wait for this
    /// thread while inside, and `f` must not touch the heap.
    pub fn native<R>(&self, f: impl FnOnce() -> R) -> R {
        self.enter_native();
        let r = f();
        self.exit_native();
        r
    }

    /// Enter a native region (nestable).
    pub fn enter_native(&self) {
        if self.native_depth.get() == 0 {
            self.vm.safepoint().enter_native();
        }
        self.native_depth.set(self.native_depth.get() + 1);
    }

    /// Leave a native region; blocks while a collection is in progress.
    pub fn exit_native(&self) {
        let d = self.native_depth.get();
        debug_assert!(d > 0, "exit_native without enter_native");
        if d == 1 {
            self.vm.safepoint().exit_native();
        }
        self.native_depth.set(d - 1);
    }

    // ------------------------------------------------------------------
    // Collection control
    // ------------------------------------------------------------------

    fn run_collection(&self, kind: AllocPressure) {
        if self.vm.safepoint().try_begin_gc() {
            self.vm.collect_exclusive(kind);
            self.vm.safepoint().end_gc();
        }
        // Otherwise another thread's collection completed while we waited;
        // the caller retries its allocation.
    }

    /// Force a minor collection.
    pub fn collect_minor(&self) {
        self.run_collection(AllocPressure::NeedsMinor);
    }

    /// Force a full collection.
    pub fn collect_full(&self) {
        self.run_collection(AllocPressure::NeedsFull);
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    fn alloc_with_retry(&self, size: usize, header: ObjHeader) -> usize {
        loop {
            self.poll();
            let pressure = {
                let mut st = self.vm.state();
                match st.heap.alloc(size, header) {
                    Ok(addr) => return addr,
                    Err(p) => p,
                }
            };
            self.run_collection(pressure);
        }
    }

    /// Allocate a class instance (fields zeroed / null).
    pub fn alloc_instance(&self, class: ClassId) -> Handle {
        let size = {
            let reg = self.vm.registry();
            let mt = reg.table(class);
            assert!(
                matches!(mt.kind, TypeKind::Class),
                "alloc_instance requires a class type"
            );
            layout::class_alloc_size(mt)
        };
        let addr = self.alloc_with_retry(
            size,
            ObjHeader {
                mt: class.0,
                flags: 0,
                size: 0,
                extra: 0,
            },
        );
        self.vm.state().handles.create(addr)
    }

    /// Allocate a primitive array of `len` zeroed elements.
    pub fn alloc_prim_array(&self, kind: ElemKind, len: usize) -> Handle {
        let class = self.array_class(kind);
        let size = layout::prim_array_alloc_size(kind, len);
        let addr = self.alloc_with_retry(
            size,
            ObjHeader {
                mt: class.0,
                flags: 0,
                size: 0,
                extra: len as u32,
            },
        );
        self.vm.state().handles.create(addr)
    }

    /// Canonical primitive-array class id.
    pub fn array_class(&self, kind: ElemKind) -> ClassId {
        // Fast path under the read lock; create under the write lock.
        if let Some(id) = self.vm.registry().prim_array_id(kind) {
            return id;
        }
        self.vm.registry_mut().prim_array(kind)
    }

    /// Canonical object-array class id.
    pub fn obj_array_class(&self, elem: ClassId) -> ClassId {
        if let Some(id) = self.vm.registry().obj_array_id(elem) {
            return id;
        }
        self.vm.registry_mut().obj_array(elem)
    }

    /// Allocate an array of object references (all null).
    pub fn alloc_obj_array(&self, elem: ClassId, len: usize) -> Handle {
        let class = self.obj_array_class(elem);
        let size = layout::obj_array_alloc_size(len);
        let addr = self.alloc_with_retry(
            size,
            ObjHeader {
                mt: class.0,
                flags: 0,
                size: 0,
                extra: len as u32,
            },
        );
        self.vm.state().handles.create(addr)
    }

    /// Allocate a true multidimensional array (row-major, zeroed) — the
    /// CLI feature the paper contrasts with Java's arrays-of-arrays (§3).
    pub fn alloc_md_array(&self, kind: ElemKind, dims: &[u32]) -> Handle {
        assert!(dims.len() >= 2, "md arrays have rank >= 2");
        // NB: take the read guard in its own statement — an `if let`
        // scrutinee temporary would still hold the read lock inside an
        // `else` branch that needs the write lock.
        let existing = self.vm.registry().md_array_id(kind, dims.len() as u8);
        let class = match existing {
            Some(id) => id,
            None => self.vm.registry_mut().md_array(kind, dims.len() as u8),
        };
        let count: usize = dims.iter().map(|&d| d as usize).product();
        let size = layout::md_array_alloc_size(kind, dims);
        let addr = self.alloc_with_retry(
            size,
            ObjHeader {
                mt: class.0,
                flags: 0,
                size: 0,
                extra: count as u32,
            },
        );
        // Write the dimension header.
        let obj = ObjectRef(addr);
        // SAFETY: freshly allocated; we are cooperative and not polling.
        unsafe {
            let p = obj.payload_ptr() as *mut u32;
            for (i, &d) in dims.iter().enumerate() {
                std::ptr::write(p.add(i), d);
            }
        }
        self.vm.state().handles.create(addr)
    }

    // ------------------------------------------------------------------
    // Handles
    // ------------------------------------------------------------------

    /// A fresh handle holding null.
    pub fn null_handle(&self) -> Handle {
        self.vm.state().handles.create(0)
    }

    /// Duplicate a handle (both must be released).
    pub fn clone_handle(&self, h: Handle) -> Handle {
        let mut st = self.vm.state();
        let addr = st.handles.get(h);
        st.handles.create(addr)
    }

    /// Release a handle slot.
    pub fn release(&self, h: Handle) {
        self.vm.state().handles.release(h);
    }

    /// Whether the handle currently holds null.
    pub fn is_null(&self, h: Handle) -> bool {
        self.vm.handle_addr(h) == 0
    }

    /// Whether two handles reference the same object.
    pub fn same_object(&self, a: Handle, b: Handle) -> bool {
        let st = self.vm.state();
        st.handles.get(a) == st.handles.get(b)
    }

    /// Class of the referenced object.
    pub fn class_of(&self, h: Handle) -> ClassId {
        let addr = self.vm.handle_addr(h);
        assert!(addr != 0, "class_of on null handle");
        // SAFETY: live object; GC excluded while we are cooperative.
        ClassId(unsafe { ObjectRef(addr).header().mt })
    }

    /// Whether the object currently resides in the young generation — the
    /// address check at the core of the Motor pinning policy (paper §7.4).
    pub fn is_young(&self, h: Handle) -> bool {
        let st = self.vm.state();
        let addr = st.handles.get(h);
        addr != 0 && st.heap.is_young(addr)
    }

    // ------------------------------------------------------------------
    // Pinning
    // ------------------------------------------------------------------

    /// Hard-pin the object (it will not move until unpinned).
    pub fn pin(&self, h: Handle) -> PinToken {
        let mut st = self.vm.state();
        let addr = st.handles.get(h);
        assert!(addr != 0, "pin on null handle");
        crate::stats::GcStats::bump(&self.vm.stats().pins);
        self.vm
            .metrics()
            .event(motor_obs::EventKind::PinAcquire, addr as u64, 0);
        st.pins.pin(addr)
    }

    /// Release a hard pin.
    pub fn unpin(&self, token: PinToken) {
        let mut st = self.vm.state();
        crate::stats::GcStats::bump(&self.vm.stats().unpins);
        self.vm
            .metrics()
            .event(motor_obs::EventKind::PinRelease, token.addr() as u64, 0);
        st.pins.unpin(token);
    }

    /// Register a conditional pin: the collector keeps the object pinned
    /// only while `cond.in_flight()` (paper §4.3) and discards the request
    /// once the operation completes. There is no matching release event —
    /// the collector drops the pin when the transport reports completion.
    pub fn pin_conditional(&self, h: Handle, cond: Arc<dyn PinCondition>) {
        let mut st = self.vm.state();
        let addr = st.handles.get(h);
        assert!(addr != 0, "pin_conditional on null handle");
        crate::stats::GcStats::bump(&self.vm.stats().conditional_pins_registered);
        self.vm
            .metrics()
            .event(motor_obs::EventKind::PinAcquire, addr as u64, 1);
        st.pins.pin_conditional(addr, cond);
    }

    // ------------------------------------------------------------------
    // Field access
    // ------------------------------------------------------------------

    /// Index of a named field (slow metadata path; cache the result).
    pub fn field_index(&self, class: ClassId, name: &str) -> usize {
        let reg = self.vm.registry();
        reg.table(class)
            .field_by_name(name)
            .unwrap_or_else(|| panic!("no field `{name}` on {}", reg.table(class).name))
            .0
    }

    fn field_offset_checked(
        &self,
        h: Handle,
        field: usize,
        want: Option<ElemKind>,
    ) -> (usize, usize) {
        let addr = self.vm.handle_addr(h);
        assert!(addr != 0, "field access on null handle");
        let reg = self.vm.registry();
        // SAFETY: live object.
        let mt = reg.table(ClassId(unsafe { ObjectRef(addr).header().mt }));
        let fd = &mt.fields[field];
        match (want, fd.ty) {
            (Some(k), FieldType::Prim(fk)) => {
                assert!(k == fk, "field `{}` is {fk:?}, accessed as {k:?}", fd.name)
            }
            (None, FieldType::Ref(_)) => {}
            (Some(_), FieldType::Ref(_)) => panic!("field `{}` is a reference", fd.name),
            (None, FieldType::Prim(_)) => panic!("field `{}` is a primitive", fd.name),
        }
        (addr, fd.offset as usize)
    }

    /// Read a primitive field.
    pub fn get_prim<T: Prim>(&self, h: Handle, field: usize) -> T {
        let (addr, off) = self.field_offset_checked(h, field, Some(T::KIND));
        // SAFETY: offset validated against the method table.
        unsafe { ObjectRef(addr).read_prim::<T>(off) }
    }

    /// Write a primitive field.
    pub fn set_prim<T: Prim>(&self, h: Handle, field: usize, v: T) {
        let (addr, off) = self.field_offset_checked(h, field, Some(T::KIND));
        // SAFETY: as above.
        unsafe { ObjectRef(addr).write_prim::<T>(off, v) }
    }

    /// Read a reference field into a fresh handle (null allowed).
    pub fn get_ref(&self, h: Handle, field: usize) -> Handle {
        let (addr, off) = self.field_offset_checked(h, field, None);
        // SAFETY: validated reference slot.
        let v = unsafe { ObjectRef(addr).read_ref_at(off) };
        self.vm.state().handles.create(v.0)
    }

    /// Write a reference field, applying the generational write barrier.
    pub fn set_ref(&self, h: Handle, field: usize, v: Handle) {
        let (addr, off) = self.field_offset_checked(h, field, None);
        let mut st = self.vm.state();
        let vaddr = st.handles.get(v);
        let obj = ObjectRef(addr);
        // SAFETY: validated reference slot; state lock excludes races on
        // the remembered set.
        unsafe {
            obj.write_ref_at(off, ObjectRef(vaddr));
            if vaddr != 0 && !st.heap.is_young(addr) && st.heap.is_young(vaddr) {
                st.remset.insert(obj.ref_slot_addr(off));
            }
        }
    }

    // ------------------------------------------------------------------
    // Arrays
    // ------------------------------------------------------------------

    /// Length (element count) of any array object.
    pub fn array_len(&self, h: Handle) -> usize {
        let addr = self.vm.handle_addr(h);
        assert!(addr != 0, "array_len on null handle");
        // SAFETY: live object.
        unsafe { ObjectRef(addr).array_len() }
    }

    fn prim_array_checked(&self, h: Handle, kind: ElemKind) -> usize {
        let addr = self.vm.handle_addr(h);
        assert!(addr != 0, "array access on null handle");
        let reg = self.vm.registry();
        // SAFETY: live object.
        let mt = reg.table(ClassId(unsafe { ObjectRef(addr).header().mt }));
        match mt.kind {
            TypeKind::PrimArray(k) if k == kind => addr,
            TypeKind::MdArray { elem, .. } if elem == kind => addr,
            _ => panic!("object is not a {kind:?} array"),
        }
    }

    fn prim_data_window(&self, addr: usize, kind: ElemKind) -> (*mut u8, usize) {
        let obj = ObjectRef(addr);
        // SAFETY: caller validated type.
        unsafe {
            let reg = self.vm.registry();
            let mt = reg.table(ClassId(obj.header().mt));
            match mt.kind {
                TypeKind::PrimArray(_) => obj.prim_array_data(kind.size()),
                TypeKind::MdArray { rank, .. } => obj.md_data(rank, kind.size()),
                _ => unreachable!("validated above"),
            }
        }
    }

    /// Copy elements out of a primitive (or multidimensional) array,
    /// starting at element `start`.
    pub fn prim_read<T: Prim>(&self, h: Handle, start: usize, dst: &mut [T]) {
        let addr = self.prim_array_checked(h, T::KIND);
        let (p, bytes) = self.prim_data_window(addr, T::KIND);
        let len = bytes / T::KIND.size();
        assert!(start + dst.len() <= len, "array read out of bounds");
        // SAFETY: bounds checked; element type checked.
        unsafe {
            std::ptr::copy_nonoverlapping((p as *const T).add(start), dst.as_mut_ptr(), dst.len());
        }
    }

    /// Copy elements into a primitive (or multidimensional) array.
    pub fn prim_write<T: Prim>(&self, h: Handle, start: usize, src: &[T]) {
        let addr = self.prim_array_checked(h, T::KIND);
        let (p, bytes) = self.prim_data_window(addr, T::KIND);
        let len = bytes / T::KIND.size();
        assert!(start + src.len() <= len, "array write out of bounds");
        // SAFETY: bounds checked; element type checked.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), (p as *mut T).add(start), src.len());
        }
    }

    /// Element read from an object array (fresh handle; may be null).
    pub fn obj_array_get(&self, h: Handle, idx: usize) -> Handle {
        let addr = self.vm.handle_addr(h);
        assert!(addr != 0, "array access on null handle");
        let obj = ObjectRef(addr);
        // SAFETY: live object; bounds checked below.
        unsafe {
            assert!(idx < obj.array_len(), "object array index out of bounds");
            let v = *obj.obj_array_slot(idx);
            self.vm.state().handles.create(v)
        }
    }

    /// Element write into an object array, with the write barrier.
    pub fn obj_array_set(&self, h: Handle, idx: usize, v: Handle) {
        let mut st = self.vm.state();
        let addr = st.handles.get(h);
        assert!(addr != 0, "array access on null handle");
        let vaddr = st.handles.get(v);
        let obj = ObjectRef(addr);
        // SAFETY: live object; bounds checked.
        unsafe {
            assert!(idx < obj.array_len(), "object array index out of bounds");
            *obj.obj_array_slot(idx) = vaddr;
            if vaddr != 0 && !st.heap.is_young(addr) && st.heap.is_young(vaddr) {
                st.remset.insert(obj.obj_array_slot(idx) as usize);
            }
        }
    }

    /// Dimensions of a multidimensional array.
    pub fn md_dims(&self, h: Handle) -> Vec<u32> {
        let addr = self.vm.handle_addr(h);
        assert!(addr != 0, "md_dims on null handle");
        let reg = self.vm.registry();
        // SAFETY: live object.
        unsafe {
            let obj = ObjectRef(addr);
            match reg.table(ClassId(obj.header().mt)).kind {
                TypeKind::MdArray { rank, .. } => obj.md_dims(rank),
                _ => panic!("object is not a multidimensional array"),
            }
        }
    }

    /// Row-major flat index of md-array indices.
    pub fn md_flat_index(&self, h: Handle, indices: &[u32]) -> usize {
        let dims = self.md_dims(h);
        assert_eq!(indices.len(), dims.len(), "index rank mismatch");
        let mut flat = 0usize;
        for (i, (&ix, &d)) in indices.iter().zip(dims.iter()).enumerate() {
            assert!(
                ix < d,
                "md index {ix} out of bounds for dim {i} of size {d}"
            );
            flat = flat * d as usize + ix as usize;
        }
        flat
    }

    /// Read one element of a multidimensional array.
    pub fn md_get<T: Prim>(&self, h: Handle, indices: &[u32]) -> T {
        let flat = self.md_flat_index(h, indices);
        // SAFETY: `Prim` types are plain integer/float scalars, for which
        // the all-zero bit pattern is a valid value.
        let mut out = [unsafe { std::mem::zeroed::<T>() }];
        self.prim_read(h, flat, &mut out);
        out[0]
    }

    /// Write one element of a multidimensional array.
    pub fn md_set<T: Prim>(&self, h: Handle, indices: &[u32], v: T) {
        let flat = self.md_flat_index(h, indices);
        self.prim_write(h, flat, &[v]);
    }

    // ------------------------------------------------------------------
    // Raw windows (trusted integration layer)
    // ------------------------------------------------------------------

    /// The zero-copy data window of a primitive or multidimensional array:
    /// `(pointer, byte length)`. Obtaining the window is safe; *using* it
    /// is only sound while the object cannot move (pinned, elder-resident,
    /// or GC excluded) — the invariant the Motor pinning policy maintains.
    pub fn raw_data_window(&self, h: Handle) -> (*mut u8, usize) {
        let addr = self.vm.handle_addr(h);
        assert!(addr != 0, "raw window on null handle");
        let reg = self.vm.registry();
        let obj = ObjectRef(addr);
        // SAFETY: live object; type dispatch below.
        unsafe {
            let mt = reg.table(ClassId(obj.header().mt));
            match mt.kind {
                TypeKind::PrimArray(k) => obj.prim_array_data(k.size()),
                TypeKind::MdArray { elem, rank } => obj.md_data(rank, elem.size()),
                TypeKind::Class => {
                    assert!(
                        !mt.has_refs,
                        "raw window refused: type {} contains references (object-model integrity)",
                        mt.name
                    );
                    (obj.payload_ptr(), mt.instance_size as usize)
                }
                TypeKind::ObjArray(_) => {
                    panic!("raw window refused: object arrays contain references")
                }
            }
        }
    }
}

impl Drop for MotorThread {
    fn drop(&mut self) {
        debug_assert_eq!(self.native_depth.get(), 0, "dropped while in native region");
        self.vm.safepoint().deregister();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapConfig;
    use crate::vm::VmConfig;

    fn small_vm() -> Arc<Vm> {
        Vm::new(VmConfig {
            heap: HeapConfig {
                young_bytes: 4096,
                old_segment_bytes: 64 * 1024,
                old_soft_limit: 4 * 1024 * 1024,
            },
            ..Default::default()
        })
    }

    fn point_class(vm: &Arc<Vm>) -> ClassId {
        vm.registry_mut()
            .define_class("Point")
            .prim("x", ElemKind::F64)
            .prim("y", ElemKind::F64)
            .prim("id", ElemKind::I32)
            .build()
    }

    #[test]
    fn alloc_and_field_roundtrip() {
        let vm = small_vm();
        let cls = point_class(&vm);
        let t = MotorThread::attach(vm);
        let h = t.alloc_instance(cls);
        let (fx, fy, fid) = (
            t.field_index(cls, "x"),
            t.field_index(cls, "y"),
            t.field_index(cls, "id"),
        );
        t.set_prim::<f64>(h, fx, 1.5);
        t.set_prim::<f64>(h, fy, -2.5);
        t.set_prim::<i32>(h, fid, 42);
        assert_eq!(t.get_prim::<f64>(h, fx), 1.5);
        assert_eq!(t.get_prim::<f64>(h, fy), -2.5);
        assert_eq!(t.get_prim::<i32>(h, fid), 42);
    }

    #[test]
    #[should_panic(expected = "accessed as")]
    fn field_type_mismatch_is_refused() {
        let vm = small_vm();
        let cls = point_class(&vm);
        let t = MotorThread::attach(vm);
        let h = t.alloc_instance(cls);
        let fx = t.field_index(cls, "x");
        let _ = t.get_prim::<i32>(h, fx);
    }

    #[test]
    fn prim_array_roundtrip_and_bounds() {
        let vm = small_vm();
        let t = MotorThread::attach(vm);
        let h = t.alloc_prim_array(ElemKind::I32, 16);
        assert_eq!(t.array_len(h), 16);
        let src: Vec<i32> = (0..16).collect();
        t.prim_write(h, 0, &src);
        let mut dst = vec![0i32; 8];
        t.prim_read(h, 4, &mut dst);
        assert_eq!(dst, (4..12).collect::<Vec<i32>>());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn prim_array_bounds_enforced() {
        let vm = small_vm();
        let t = MotorThread::attach(vm);
        let h = t.alloc_prim_array(ElemKind::I32, 4);
        t.prim_write(h, 2, &[1i32, 2, 3]);
    }

    #[test]
    fn md_array_row_major_semantics() {
        let vm = small_vm();
        let t = MotorThread::attach(vm);
        let h = t.alloc_md_array(ElemKind::F64, &[3, 4]);
        assert_eq!(t.md_dims(h), vec![3, 4]);
        assert_eq!(t.array_len(h), 12);
        t.md_set::<f64>(h, &[2, 3], 9.75);
        assert_eq!(t.md_get::<f64>(h, &[2, 3]), 9.75);
        // Row-major: [2,3] is flat index 2*4+3 = 11.
        let mut all = vec![0f64; 12];
        t.prim_read(h, 0, &mut all);
        assert_eq!(all[11], 9.75);
        assert!(all[..11].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn minor_gc_moves_survivors_and_updates_handles() {
        let vm = small_vm();
        let cls = point_class(&vm);
        let t = MotorThread::attach(Arc::clone(&vm));
        let keep = t.alloc_instance(cls);
        let fid = t.field_index(cls, "id");
        t.set_prim::<i32>(keep, fid, 1234);
        let addr_before = vm.handle_addr(keep);
        assert!(t.is_young(keep));
        t.collect_minor();
        let addr_after = vm.handle_addr(keep);
        assert_ne!(
            addr_before, addr_after,
            "survivor was copied to the elder generation"
        );
        assert!(!t.is_young(keep), "survivor promoted");
        assert_eq!(
            t.get_prim::<i32>(keep, fid),
            1234,
            "contents preserved across the move"
        );
        assert_eq!(vm.stats_snapshot().minor_collections, 1);
        assert!(vm.stats_snapshot().objects_promoted >= 1);
    }

    #[test]
    fn unreferenced_objects_are_collected() {
        let vm = small_vm();
        let cls = point_class(&vm);
        let t = MotorThread::attach(Arc::clone(&vm));
        let dead = t.alloc_instance(cls);
        t.release(dead);
        let live = t.alloc_instance(cls);
        t.collect_minor();
        let snap = vm.stats_snapshot();
        assert_eq!(snap.objects_promoted, 1, "only the live object survives");
        assert!(!t.is_null(live));
    }

    #[test]
    fn allocation_pressure_triggers_automatic_minor_gc() {
        let vm = small_vm();
        let t = MotorThread::attach(Arc::clone(&vm));
        // Churn far more than the 4 KiB young generation without keeping
        // references; the runtime must collect automatically.
        for _ in 0..100 {
            let h = t.alloc_prim_array(ElemKind::U8, 256);
            t.release(h);
        }
        assert!(vm.stats_snapshot().minor_collections >= 1);
    }

    #[test]
    fn object_graph_survives_collection() {
        let vm = small_vm();
        let mut reg = vm.registry_mut();
        let arr = reg.prim_array(ElemKind::I32);
        let node = reg
            .define_class("Node")
            .prim("tag", ElemKind::I32)
            .transportable("data", arr)
            .build();
        let oa = reg.obj_array(node);
        drop(reg);
        let t = MotorThread::attach(Arc::clone(&vm));
        let list = t.alloc_obj_array(node, 3);
        for i in 0..3 {
            let n = t.alloc_instance(node);
            let ftag = t.field_index(node, "tag");
            let fdata = t.field_index(node, "data");
            t.set_prim::<i32>(n, ftag, i as i32);
            let d = t.alloc_prim_array(ElemKind::I32, 4);
            t.prim_write(d, 0, &[i as i32; 4]);
            t.set_ref(n, fdata, d);
            t.obj_array_set(list, i, n);
            t.release(n);
            t.release(d);
        }
        let _ = oa;
        t.collect_minor();
        t.collect_full();
        for i in 0..3 {
            let n = t.obj_array_get(list, i);
            let ftag = t.field_index(node, "tag");
            let fdata = t.field_index(node, "data");
            assert_eq!(t.get_prim::<i32>(n, ftag), i as i32);
            let d = t.get_ref(n, fdata);
            let mut buf = vec![0i32; 4];
            t.prim_read(d, 0, &mut buf);
            assert_eq!(buf, vec![i as i32; 4]);
            t.release(n);
            t.release(d);
        }
    }

    #[test]
    fn write_barrier_keeps_young_object_alive_via_elder_parent() {
        let vm = small_vm();
        let mut reg = vm.registry_mut();
        let arr = reg.prim_array(ElemKind::I32);
        let holder = reg
            .define_class("Holder")
            .transportable("data", arr)
            .build();
        drop(reg);
        let t = MotorThread::attach(Arc::clone(&vm));
        let hold = t.alloc_instance(holder);
        // Promote the holder to the elder generation.
        t.collect_minor();
        assert!(!t.is_young(hold));
        // Store a *young* array into the elder object, then drop our only
        // handle to the array. Without the remembered set the next minor GC
        // would collect (or fail to retarget) it.
        let young = t.alloc_prim_array(ElemKind::I32, 8);
        t.prim_write(young, 0, &[7i32; 8]);
        let fdata = t.field_index(holder, "data");
        t.set_ref(hold, fdata, young);
        t.release(young);
        t.collect_minor();
        let back = t.get_ref(hold, fdata);
        assert!(!t.is_null(back), "barrier kept the young object reachable");
        let mut buf = vec![0i32; 8];
        t.prim_read(back, 0, &mut buf);
        assert_eq!(buf, vec![7i32; 8]);
        t.release(back);
    }

    #[test]
    fn pinned_object_does_not_move_and_block_is_promoted() {
        let vm = small_vm();
        let t = MotorThread::attach(Arc::clone(&vm));
        let h = t.alloc_prim_array(ElemKind::U8, 64);
        t.prim_write(h, 0, &[0xEEu8; 64]);
        let addr_before = vm.handle_addr(h);
        assert!(t.is_young(h));
        let tok = t.pin(h);
        t.collect_minor();
        let addr_after = vm.handle_addr(h);
        assert_eq!(addr_before, addr_after, "pinned object must not move");
        assert!(
            !t.is_young(h),
            "whole young block was assigned to the elder generation"
        );
        let snap = vm.stats_snapshot();
        assert_eq!(snap.pinned_block_promotions, 1);
        t.unpin(tok);
        let mut buf = vec![0u8; 64];
        t.prim_read(h, 0, &mut buf);
        assert_eq!(buf, vec![0xEEu8; 64]);
    }

    #[test]
    fn conditional_pin_held_then_released_by_collector() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let vm = small_vm();
        let t = MotorThread::attach(Arc::clone(&vm));
        let h = t.alloc_prim_array(ElemKind::U8, 32);
        let in_flight = Arc::new(AtomicBool::new(true));
        let f = Arc::clone(&in_flight);
        t.pin_conditional(h, Arc::new(move || f.load(Ordering::Relaxed)));
        let addr_before = vm.handle_addr(h);
        t.collect_minor();
        // Operation still in flight: the collector held the pin.
        assert_eq!(vm.handle_addr(h), addr_before);
        let snap = vm.stats_snapshot();
        assert_eq!(snap.conditional_pins_held, 1);
        assert_eq!(snap.conditional_pins_released, 0);
        // Operation completes; the next collection discards the request.
        in_flight.store(false, Ordering::Relaxed);
        t.collect_minor();
        let snap = vm.stats_snapshot();
        assert!(snap.conditional_pins_released >= 1);
        assert_eq!(vm.state().pins.conditional_len(), 0);
    }

    #[test]
    fn conditional_pin_roots_buffer_even_without_handles() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let vm = small_vm();
        let t = MotorThread::attach(Arc::clone(&vm));
        let h = t.alloc_prim_array(ElemKind::U8, 32);
        t.prim_write(h, 0, &[0x55u8; 32]);
        let addr = vm.handle_addr(h);
        let in_flight = Arc::new(AtomicBool::new(true));
        let f = Arc::clone(&in_flight);
        t.pin_conditional(h, Arc::new(move || f.load(Ordering::Relaxed)));
        // Drop the only mutator reference: the transport still owns it.
        t.release(h);
        t.collect_minor();
        // The buffer must still be intact at the same address.
        // SAFETY: object kept alive and unmoved by the held pin.
        let data = unsafe {
            std::slice::from_raw_parts((addr + crate::layout::HEADER_SIZE) as *const u8, 32)
        };
        assert_eq!(data, &[0x55u8; 32]);
        in_flight.store(false, Ordering::Relaxed);
        t.collect_full();
    }

    #[test]
    fn full_gc_reclaims_elder_garbage() {
        let vm = small_vm();
        let t = MotorThread::attach(Arc::clone(&vm));
        // Promote a batch of objects, then drop them.
        let mut hs = Vec::new();
        for _ in 0..10 {
            hs.push(t.alloc_prim_array(ElemKind::U8, 128));
        }
        t.collect_minor(); // all promoted
        for h in hs {
            t.release(h);
        }
        t.collect_full();
        let snap = vm.stats_snapshot();
        assert!(
            snap.objects_swept >= 10,
            "swept {} objects",
            snap.objects_swept
        );
        assert!(snap.bytes_swept > 0);
    }

    #[test]
    fn elder_space_is_reused_after_sweep() {
        let vm = small_vm();
        let t = MotorThread::attach(Arc::clone(&vm));
        let h = t.alloc_prim_array(ElemKind::U8, 200);
        t.collect_minor();
        let dead_addr = vm.handle_addr(h);
        t.release(h);
        t.collect_full();
        // An allocation of the same size should be able to land in the hole
        // (first-fit may also bump; accept either, but the free list must
        // have been populated).
        assert!(
            vm.state()
                .heap
                .free_list()
                .iter()
                .any(|b| b.addr <= dead_addr && dead_addr < b.addr + b.size),
            "swept object's space is on the free list"
        );
    }

    #[test]
    fn large_objects_allocate_in_elder_and_need_no_pin() {
        let vm = small_vm(); // young = 4096, threshold = 2048
        let t = MotorThread::attach(Arc::clone(&vm));
        let h = t.alloc_prim_array(ElemKind::U8, 3000);
        assert!(
            !t.is_young(h),
            "large object allocated directly in elder generation"
        );
        let addr_before = vm.handle_addr(h);
        t.collect_minor();
        assert_eq!(vm.handle_addr(h), addr_before, "elder objects never move");
    }

    #[test]
    fn raw_window_refuses_ref_bearing_types() {
        let vm = small_vm();
        let mut reg = vm.registry_mut();
        let arr = reg.prim_array(ElemKind::I32);
        let cls = reg
            .define_class("HasRef")
            .transportable("data", arr)
            .build();
        drop(reg);
        let t = MotorThread::attach(vm);
        let h = t.alloc_instance(cls);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| t.raw_data_window(h)));
        assert!(
            r.is_err(),
            "object-model integrity: refs must not be exposed raw"
        );
    }

    #[test]
    fn native_region_allows_peer_collection() {
        let vm = small_vm();
        let t = MotorThread::attach(Arc::clone(&vm));
        let vm2 = Arc::clone(&vm);
        let peer = std::thread::spawn(move || {
            let t2 = MotorThread::attach(vm2);
            t2.collect_minor();
        });
        // Main thread sits in a native region (as Motor's polling-wait
        // does); the peer's collection must complete without us polling.
        t.native(|| {
            peer.join().unwrap();
        });
        assert_eq!(vm.stats_snapshot().minor_collections, 1);
    }

    #[test]
    fn clone_and_same_object() {
        let vm = small_vm();
        let cls = point_class(&vm);
        let t = MotorThread::attach(vm);
        let a = t.alloc_instance(cls);
        let b = t.clone_handle(a);
        let c = t.alloc_instance(cls);
        assert!(t.same_object(a, b));
        assert!(!t.same_object(a, c));
        assert_eq!(t.class_of(a), cls);
    }
}
