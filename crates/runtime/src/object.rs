//! Raw object references and unchecked accessors.
//!
//! An [`ObjectRef`] is the runtime-internal analog of the SSCLI `Object*`:
//! a raw address into the managed heap, valid only while the GC is
//! excluded, the object is pinned, or the object is elder-resident. All
//! functions here are `unsafe` building blocks; the safe, handle-based API
//! lives in [`crate::thread::MotorThread`].

use crate::layout::{md_array_data_offset, obj_flags, ObjHeader, HEADER_SIZE};
use crate::types::{MethodTable, TypeKind};

/// A raw reference to a managed object (its header address). `0` is null.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjectRef(pub usize);

impl ObjectRef {
    /// The null reference.
    pub const NULL: ObjectRef = ObjectRef(0);

    /// Whether this is the null reference.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Read the object header.
    ///
    /// # Safety
    /// `self` must reference a live allocation in a heap the caller has
    /// exclusive or GC-excluded access to.
    #[inline]
    pub unsafe fn header(self) -> ObjHeader {
        std::ptr::read(self.0 as *const ObjHeader)
    }

    /// Mutable access to the header.
    ///
    /// # Safety
    /// As [`ObjectRef::header`], plus no aliasing header access.
    #[inline]
    pub unsafe fn header_mut<'a>(self) -> &'a mut ObjHeader {
        &mut *(self.0 as *mut ObjHeader)
    }

    /// Pointer to the start of instance data.
    ///
    /// # Safety
    /// As [`ObjectRef::header`].
    #[inline]
    pub unsafe fn payload_ptr(self) -> *mut u8 {
        (self.0 + HEADER_SIZE) as *mut u8
    }

    /// Read a primitive at a payload offset.
    ///
    /// # Safety
    /// Offset must be within the object and correctly typed/aligned.
    #[inline]
    pub unsafe fn read_prim<T: Copy>(self, offset: usize) -> T {
        std::ptr::read_unaligned(self.payload_ptr().add(offset) as *const T)
    }

    /// Write a primitive at a payload offset.
    ///
    /// # Safety
    /// As [`ObjectRef::read_prim`].
    #[inline]
    pub unsafe fn write_prim<T: Copy>(self, offset: usize, v: T) {
        std::ptr::write_unaligned(self.payload_ptr().add(offset) as *mut T, v)
    }

    /// Read a reference field at a payload offset.
    ///
    /// # Safety
    /// As [`ObjectRef::read_prim`]; the slot must be a reference slot.
    #[inline]
    pub unsafe fn read_ref_at(self, offset: usize) -> ObjectRef {
        ObjectRef(std::ptr::read(
            self.payload_ptr().add(offset) as *const usize
        ))
    }

    /// Write a reference field at a payload offset (no write barrier — the
    /// safe API layers the barrier on top).
    ///
    /// # Safety
    /// As [`ObjectRef::read_ref_at`].
    #[inline]
    pub unsafe fn write_ref_at(self, offset: usize, v: ObjectRef) {
        std::ptr::write(self.payload_ptr().add(offset) as *mut usize, v.0)
    }

    /// Address of a reference slot (for the remembered set / GC rewrites).
    ///
    /// # Safety
    /// As [`ObjectRef::read_ref_at`].
    #[inline]
    pub unsafe fn ref_slot_addr(self, offset: usize) -> usize {
        self.0 + HEADER_SIZE + offset
    }

    /// Array length (header `extra` field).
    ///
    /// # Safety
    /// Must be an array object.
    #[inline]
    pub unsafe fn array_len(self) -> usize {
        self.header().extra as usize
    }

    /// Pointer and byte length of a primitive array's element data — the
    /// zero-copy window the transport reads and writes directly (paper
    /// §7.1: "The library resolves the Object to the offset location of its
    /// instance data, to pass to the underlying transport").
    ///
    /// # Safety
    /// Must be a primitive array; pointer valid only under the usual
    /// stability conditions.
    #[inline]
    pub unsafe fn prim_array_data(self, elem_size: usize) -> (*mut u8, usize) {
        (self.payload_ptr(), self.array_len() * elem_size)
    }

    /// Pointer to an object array's `idx`-th reference slot.
    ///
    /// # Safety
    /// Must be an object array; `idx < len`.
    #[inline]
    pub unsafe fn obj_array_slot(self, idx: usize) -> *mut usize {
        (self.payload_ptr() as *mut usize).add(idx)
    }

    /// Dimensions of a multidimensional array.
    ///
    /// # Safety
    /// Must be an `MdArray` of the given rank.
    pub unsafe fn md_dims(self, rank: u8) -> Vec<u32> {
        let p = self.payload_ptr() as *const u32;
        (0..rank as usize)
            .map(|i| std::ptr::read(p.add(i)))
            .collect()
    }

    /// Pointer and byte length of an md-array's contiguous element data.
    ///
    /// # Safety
    /// Must be an `MdArray` of the given rank.
    pub unsafe fn md_data(self, rank: u8, elem_size: usize) -> (*mut u8, usize) {
        let off = md_array_data_offset(rank) - HEADER_SIZE;
        (self.payload_ptr().add(off), self.array_len() * elem_size)
    }

    /// Install a forwarding pointer (young-generation copy phase): flags
    /// the header `FORWARDED` and stores the new address in the first
    /// payload word.
    ///
    /// # Safety
    /// Collector-only; object must not be pinned.
    pub unsafe fn forward_to(self, new: ObjectRef) {
        let h = self.header_mut();
        h.flags |= obj_flags::FORWARDED;
        std::ptr::write(self.payload_ptr() as *mut usize, new.0);
    }

    /// If this object was forwarded, its new address.
    ///
    /// # Safety
    /// Collector-only.
    pub unsafe fn forwarded(self) -> Option<ObjectRef> {
        let h = self.header();
        if h.flags & obj_flags::FORWARDED != 0 {
            Some(ObjectRef(
                std::ptr::read(self.payload_ptr() as *const usize),
            ))
        } else {
            None
        }
    }
}

/// Visit the address of every reference slot in an object, given its
/// method table. This is the collector's scan loop and the serializer's
/// graph walk primitive.
///
/// # Safety
/// `obj` must be a live object of type `mt`, stable for the duration.
pub unsafe fn for_each_ref_slot(obj: ObjectRef, mt: &MethodTable, mut f: impl FnMut(*mut usize)) {
    match &mt.kind {
        TypeKind::Class => {
            for &off in &mt.ref_offsets {
                f(obj.payload_ptr().add(off as usize) as *mut usize);
            }
        }
        TypeKind::ObjArray(_) => {
            let len = obj.array_len();
            let base = obj.payload_ptr() as *mut usize;
            for i in 0..len {
                f(base.add(i));
            }
        }
        TypeKind::PrimArray(_) | TypeKind::MdArray { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::{Heap, HeapConfig};
    use crate::layout::prim_array_alloc_size;
    use crate::types::{ElemKind, TypeRegistry};

    fn mk_heap() -> Heap {
        Heap::new(HeapConfig::default())
    }

    #[test]
    fn prim_read_write_roundtrip() {
        let mut heap = mk_heap();
        let addr = heap
            .alloc(
                64,
                ObjHeader {
                    mt: 0,
                    flags: 0,
                    size: 0,
                    extra: 0,
                },
            )
            .unwrap();
        let obj = ObjectRef(addr);
        // SAFETY: `addr` is a live 64-byte allocation and the offsets
        // written stay inside it.
        unsafe {
            obj.write_prim::<f64>(0, 3.25);
            obj.write_prim::<i32>(8, -7);
            assert_eq!(obj.read_prim::<f64>(0), 3.25);
            assert_eq!(obj.read_prim::<i32>(8), -7);
        }
    }

    #[test]
    fn ref_slots_and_null() {
        let mut heap = mk_heap();
        let a = ObjectRef(
            heap.alloc(
                32,
                ObjHeader {
                    mt: 0,
                    flags: 0,
                    size: 0,
                    extra: 0,
                },
            )
            .unwrap(),
        );
        let b = ObjectRef(
            heap.alloc(
                32,
                ObjHeader {
                    mt: 0,
                    flags: 0,
                    size: 0,
                    extra: 0,
                },
            )
            .unwrap(),
        );
        // SAFETY: both objects are live allocations and slot 0 lies inside
        // their 32-byte payloads.
        unsafe {
            assert!(a.read_ref_at(0).is_null(), "fresh slots are null");
            a.write_ref_at(0, b);
            assert_eq!(a.read_ref_at(0), b);
            assert_eq!(a.ref_slot_addr(0), a.0 + HEADER_SIZE);
        }
    }

    #[test]
    fn array_data_window() {
        let mut heap = mk_heap();
        let size = prim_array_alloc_size(ElemKind::I32, 10);
        let addr = heap
            .alloc(
                size,
                ObjHeader {
                    mt: 0,
                    flags: 0,
                    size: 0,
                    extra: 10,
                },
            )
            .unwrap();
        let arr = ObjectRef(addr);
        // SAFETY: the allocation was sized for a 10-element i32 array and
        // the header length matches, so the data window covers the writes.
        unsafe {
            assert_eq!(arr.array_len(), 10);
            let (p, bytes) = arr.prim_array_data(4);
            assert_eq!(bytes, 40);
            for i in 0..10 {
                std::ptr::write((p as *mut i32).add(i), i as i32 * 3);
            }
            assert_eq!(arr.read_prim::<i32>(4 * 4), 12);
        }
    }

    #[test]
    fn forwarding_roundtrip() {
        let mut heap = mk_heap();
        let a = ObjectRef(
            heap.alloc(
                32,
                ObjHeader {
                    mt: 5,
                    flags: 0,
                    size: 0,
                    extra: 0,
                },
            )
            .unwrap(),
        );
        let b = ObjectRef(
            heap.alloc(
                32,
                ObjHeader {
                    mt: 5,
                    flags: 0,
                    size: 0,
                    extra: 0,
                },
            )
            .unwrap(),
        );
        // SAFETY: both headers are live; forwarding only rewrites `a`'s
        // header word.
        unsafe {
            assert!(a.forwarded().is_none());
            a.forward_to(b);
            assert_eq!(a.forwarded(), Some(b));
        }
    }

    #[test]
    fn ref_slot_visitor_covers_class_and_obj_array() {
        let mut reg = TypeRegistry::new();
        let arr_i32 = reg.prim_array(ElemKind::I32);
        let cls = reg
            .define_class("Node")
            .prim("x", ElemKind::I64)
            .transportable("data", arr_i32)
            .reference("peer", arr_i32)
            .build();
        let oa = reg.obj_array(cls);
        let mut heap = mk_heap();
        let c = ObjectRef(
            heap.alloc(
                crate::layout::class_alloc_size(reg.table(cls)),
                ObjHeader {
                    mt: cls.0,
                    flags: 0,
                    size: 0,
                    extra: 0,
                },
            )
            .unwrap(),
        );
        let a = ObjectRef(
            heap.alloc(
                crate::layout::obj_array_alloc_size(3),
                ObjHeader {
                    mt: oa.0,
                    flags: 0,
                    size: 0,
                    extra: 3,
                },
            )
            .unwrap(),
        );
        // SAFETY: `c` and `a` were allocated with the exact layout their
        // method tables describe, so the visitor stays inside them.
        unsafe {
            let mut class_slots = 0;
            for_each_ref_slot(c, reg.table(cls), |_| class_slots += 1);
            assert_eq!(class_slots, 2, "two ref fields in the class");
            let mut arr_slots = 0;
            for_each_ref_slot(a, reg.table(oa), |_| arr_slots += 1);
            assert_eq!(arr_slots, 3, "one slot per array element");
        }
    }

    #[test]
    fn md_dims_and_data() {
        let mut heap = mk_heap();
        let size = crate::layout::md_array_alloc_size(ElemKind::F32, &[3, 4]);
        let addr = heap
            .alloc(
                size,
                ObjHeader {
                    mt: 0,
                    flags: 0,
                    size: 0,
                    extra: 12,
                },
            )
            .unwrap();
        let md = ObjectRef(addr);
        // SAFETY: the allocation was sized for a 3x4 f32 md-array; the dim
        // words and the data window written here are inside it.
        unsafe {
            // Write the dims the way the allocator does.
            let p = md.payload_ptr() as *mut u32;
            std::ptr::write(p, 3);
            std::ptr::write(p.add(1), 4);
            assert_eq!(md.md_dims(2), vec![3, 4]);
            let (data, bytes) = md.md_data(2, 4);
            assert_eq!(bytes, 48);
            std::ptr::write(data as *mut f32, 1.5);
            assert_eq!(std::ptr::read(data as *const f32), 1.5);
        }
    }
}
