//! The runtime type system: `MethodTable`, `FieldDesc` and the registry.
//!
//! Mirrors the SSCLI model described in paper §5.3: every object's header
//! references a `MethodTable`, "the gateway to commonly accessed type
//! information", which in turn references an array of `FieldDesc` entries —
//! "a highly optimized structure, using a bit field to describe field
//! information". Motor adds a **Transportable bit** to the `FieldDesc`
//! (§7.5) so its serializer can walk object graphs without touching the
//! (deliberately slow, reflection-style) metadata path; we model both the
//! fast bit and the slow metadata query so the ablation benchmark can
//! compare them.

use std::collections::HashMap;

/// Identifier of a registered type (index into the [`TypeRegistry`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

/// Primitive element kinds supported by the type system (the CLI's
/// `ELEMENT_TYPE_*` subset relevant to scientific codes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemKind {
    Bool,
    U8,
    I8,
    I16,
    U16,
    Char,
    I32,
    U32,
    I64,
    U64,
    F32,
    F64,
}

impl ElemKind {
    /// Size of one element in bytes.
    pub const fn size(self) -> usize {
        match self {
            ElemKind::Bool | ElemKind::U8 | ElemKind::I8 => 1,
            ElemKind::I16 | ElemKind::U16 | ElemKind::Char => 2,
            ElemKind::I32 | ElemKind::U32 | ElemKind::F32 => 4,
            ElemKind::I64 | ElemKind::U64 | ElemKind::F64 => 8,
        }
    }

    /// Alignment requirement in bytes (same as size for primitives).
    pub const fn align(self) -> usize {
        self.size()
    }

    /// Stable numeric tag used in serialized representations.
    pub const fn tag(self) -> u8 {
        match self {
            ElemKind::Bool => 0,
            ElemKind::U8 => 1,
            ElemKind::I8 => 2,
            ElemKind::I16 => 3,
            ElemKind::U16 => 4,
            ElemKind::Char => 5,
            ElemKind::I32 => 6,
            ElemKind::U32 => 7,
            ElemKind::I64 => 8,
            ElemKind::U64 => 9,
            ElemKind::F32 => 10,
            ElemKind::F64 => 11,
        }
    }

    /// Inverse of [`ElemKind::tag`].
    pub fn from_tag(tag: u8) -> Option<ElemKind> {
        Some(match tag {
            0 => ElemKind::Bool,
            1 => ElemKind::U8,
            2 => ElemKind::I8,
            3 => ElemKind::I16,
            4 => ElemKind::U16,
            5 => ElemKind::Char,
            6 => ElemKind::I32,
            7 => ElemKind::U32,
            8 => ElemKind::I64,
            9 => ElemKind::U64,
            10 => ElemKind::F32,
            11 => ElemKind::F64,
            _ => return None,
        })
    }

    /// All primitive kinds, for exhaustive tests.
    pub const ALL: [ElemKind; 12] = [
        ElemKind::Bool,
        ElemKind::U8,
        ElemKind::I8,
        ElemKind::I16,
        ElemKind::U16,
        ElemKind::Char,
        ElemKind::I32,
        ElemKind::U32,
        ElemKind::I64,
        ElemKind::U64,
        ElemKind::F32,
        ElemKind::F64,
    ];
}

/// The declared type of a field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldType {
    /// An inline primitive value.
    Prim(ElemKind),
    /// A reference to an object of the given class (or any subtype; the
    /// reproduction has no inheritance, so this is exact).
    Ref(ClassId),
}

/// Bit flags on a [`FieldDesc`] — "a highly optimized structure, using a
/// bit field to describe field information" (paper §5.3).
pub mod field_flags {
    /// The field holds an object reference (set automatically).
    pub const IS_REF: u32 = 1 << 0;
    /// Motor's Transportable bit (paper §7.5): the reference should be
    /// propagated by the object-oriented transport operations.
    pub const TRANSPORTABLE: u32 = 1 << 1;
}

/// Per-field metadata. Offsets are relative to the start of the object's
/// instance data (immediately after the header).
#[derive(Debug, Clone)]
pub struct FieldDesc {
    /// Field name (metadata; the fast path never reads it).
    pub name: String,
    /// Declared type.
    pub ty: FieldType,
    /// Byte offset of the field within the instance data.
    pub offset: u32,
    /// Bit flags; see [`field_flags`].
    pub flags: u32,
}

impl FieldDesc {
    /// Whether this field holds an object reference.
    #[inline]
    pub fn is_ref(&self) -> bool {
        self.flags & field_flags::IS_REF != 0
    }

    /// Whether the Transportable bit is set (fast path used by the Motor
    /// serializer).
    #[inline]
    pub fn is_transportable(&self) -> bool {
        self.flags & field_flags::TRANSPORTABLE != 0
    }

    /// Size in bytes of the field's inline storage.
    pub fn size(&self) -> usize {
        match self.ty {
            FieldType::Prim(k) => k.size(),
            FieldType::Ref(_) => std::mem::size_of::<usize>(),
        }
    }
}

/// What shape of object a type describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeKind {
    /// A class with named fields.
    Class,
    /// A one-dimensional array of primitives (data stored inline,
    /// contiguously — eligible for zero-copy transport).
    PrimArray(ElemKind),
    /// A one-dimensional array of object references.
    ObjArray(ClassId),
    /// A true multidimensional array of primitives (contiguous data, the
    /// CLI feature the paper highlights over Java's arrays-of-arrays).
    MdArray {
        /// Element kind of the array.
        elem: ElemKind,
        /// Number of dimensions (>= 2).
        rank: u8,
    },
}

/// The runtime type descriptor: the gateway to commonly accessed type
/// information (paper §5.3).
#[derive(Debug, Clone)]
pub struct MethodTable {
    /// Fully qualified type name.
    pub name: String,
    /// Shape of instances.
    pub kind: TypeKind,
    /// For classes: size of the instance data in bytes (excludes header).
    /// For arrays this is zero; instance size depends on length.
    pub instance_size: u32,
    /// For classes: field descriptors, offset-ordered.
    pub fields: Vec<FieldDesc>,
    /// Offsets (within instance data) of every reference field; the GC scan
    /// path reads this instead of iterating `fields`.
    pub ref_offsets: Vec<u32>,
    /// Whether instances may contain object references. The Motor MPI
    /// bindings refuse to transport such objects to protect object-model
    /// integrity (paper §4.2.1).
    pub has_refs: bool,
}

impl MethodTable {
    /// Look up a field by name (slow, metadata-style path — the analog of
    /// reflection; the Motor fast paths use indices and bits instead).
    pub fn field_by_name(&self, name: &str) -> Option<(usize, &FieldDesc)> {
        self.fields.iter().enumerate().find(|(_, f)| f.name == name)
    }

    /// Whether this type is an array of any shape.
    pub fn is_array(&self) -> bool {
        !matches!(self.kind, TypeKind::Class)
    }
}

/// Builder for class types.
pub struct ClassBuilder<'r> {
    registry: &'r mut TypeRegistry,
    name: String,
    fields: Vec<FieldDesc>,
    next_offset: u32,
}

impl<'r> ClassBuilder<'r> {
    /// Add a primitive field.
    pub fn prim(mut self, name: &str, kind: ElemKind) -> Self {
        let align = kind.align() as u32;
        let offset = (self.next_offset + align - 1) & !(align - 1);
        self.fields.push(FieldDesc {
            name: name.to_string(),
            ty: FieldType::Prim(kind),
            offset,
            flags: 0,
        });
        self.next_offset = offset + kind.size() as u32;
        self
    }

    /// Add a reference field (not transportable).
    pub fn reference(self, name: &str, class: ClassId) -> Self {
        self.reference_with(name, class, false)
    }

    /// Add a reference field carrying the `[Transportable]` attribute.
    pub fn transportable(self, name: &str, class: ClassId) -> Self {
        self.reference_with(name, class, true)
    }

    fn reference_with(mut self, name: &str, class: ClassId, transportable: bool) -> Self {
        let align = std::mem::size_of::<usize>() as u32;
        let offset = (self.next_offset + align - 1) & !(align - 1);
        let mut flags = field_flags::IS_REF;
        if transportable {
            flags |= field_flags::TRANSPORTABLE;
        }
        self.fields.push(FieldDesc {
            name: name.to_string(),
            ty: FieldType::Ref(class),
            offset,
            flags,
        });
        self.next_offset = offset + std::mem::size_of::<usize>() as u32;
        self
    }

    /// Register the class and return its id.
    pub fn build(self) -> ClassId {
        let size = (self.next_offset + 7) & !7;
        let ref_offsets: Vec<u32> = self
            .fields
            .iter()
            .filter(|f| f.is_ref())
            .map(|f| f.offset)
            .collect();
        let has_refs = !ref_offsets.is_empty();
        self.registry.insert(MethodTable {
            name: self.name,
            kind: TypeKind::Class,
            instance_size: size,
            fields: self.fields,
            ref_offsets,
            has_refs,
        })
    }
}

/// Registry of every type known to one VM instance.
///
/// Type identity is per-VM, as in the CLI; the serializer ships a *type
/// table* with each message precisely because ids do not agree across
/// address spaces (paper §7.5).
#[derive(Debug, Default)]
pub struct TypeRegistry {
    tables: Vec<MethodTable>,
    by_name: HashMap<String, ClassId>,
    prim_arrays: HashMap<ElemKind, ClassId>,
    obj_arrays: HashMap<ClassId, ClassId>,
    md_arrays: HashMap<(ElemKind, u8), ClassId>,
}

impl TypeRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn insert(&mut self, mt: MethodTable) -> ClassId {
        if let Some(&existing) = self.by_name.get(&mt.name) {
            return existing;
        }
        let id = ClassId(self.tables.len() as u32);
        self.by_name.insert(mt.name.clone(), id);
        self.tables.push(mt);
        id
    }

    /// Begin defining a class type.
    pub fn define_class(&mut self, name: &str) -> ClassBuilder<'_> {
        ClassBuilder {
            registry: self,
            name: name.to_string(),
            fields: Vec::new(),
            next_offset: 0,
        }
    }

    /// Canonical primitive-array type for an element kind.
    pub fn prim_array(&mut self, kind: ElemKind) -> ClassId {
        if let Some(&id) = self.prim_arrays.get(&kind) {
            return id;
        }
        let id = self.insert(MethodTable {
            name: format!("{kind:?}[]"),
            kind: TypeKind::PrimArray(kind),
            instance_size: 0,
            fields: Vec::new(),
            ref_offsets: Vec::new(),
            has_refs: false,
        });
        self.prim_arrays.insert(kind, id);
        id
    }

    /// Canonical object-array type for an element class.
    pub fn obj_array(&mut self, elem: ClassId) -> ClassId {
        if let Some(&id) = self.obj_arrays.get(&elem) {
            return id;
        }
        let elem_name = self.tables[elem.0 as usize].name.clone();
        let id = self.insert(MethodTable {
            name: format!("{elem_name}[]"),
            kind: TypeKind::ObjArray(elem),
            instance_size: 0,
            fields: Vec::new(),
            ref_offsets: Vec::new(),
            has_refs: true,
        });
        self.obj_arrays.insert(elem, id);
        id
    }

    /// Canonical true-multidimensional-array type.
    pub fn md_array(&mut self, elem: ElemKind, rank: u8) -> ClassId {
        assert!(rank >= 2, "multidimensional arrays have rank >= 2");
        if let Some(&id) = self.md_arrays.get(&(elem, rank)) {
            return id;
        }
        let id = self.insert(MethodTable {
            name: format!("{elem:?}[{}]", ",".repeat(rank as usize - 1)),
            kind: TypeKind::MdArray { elem, rank },
            instance_size: 0,
            fields: Vec::new(),
            ref_offsets: Vec::new(),
            has_refs: false,
        });
        self.md_arrays.insert((elem, rank), id);
        id
    }

    /// Existing primitive-array type id, if already registered.
    pub fn prim_array_id(&self, kind: ElemKind) -> Option<ClassId> {
        self.prim_arrays.get(&kind).copied()
    }

    /// Existing object-array type id, if already registered.
    pub fn obj_array_id(&self, elem: ClassId) -> Option<ClassId> {
        self.obj_arrays.get(&elem).copied()
    }

    /// Existing md-array type id, if already registered.
    pub fn md_array_id(&self, elem: ElemKind, rank: u8) -> Option<ClassId> {
        self.md_arrays.get(&(elem, rank)).copied()
    }

    /// Fetch a type's method table.
    #[inline]
    pub fn table(&self, id: ClassId) -> &MethodTable {
        &self.tables[id.0 as usize]
    }

    /// Look a type up by name.
    pub fn by_name(&self, name: &str) -> Option<ClassId> {
        self.by_name.get(name).copied()
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_kind_sizes_and_tags_roundtrip() {
        for k in ElemKind::ALL {
            assert!(k.size() == 1 || k.size() == 2 || k.size() == 4 || k.size() == 8);
            assert_eq!(ElemKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(ElemKind::from_tag(200), None);
    }

    #[test]
    fn class_layout_respects_alignment() {
        let mut reg = TypeRegistry::new();
        let arr = reg.prim_array(ElemKind::I32);
        let id = reg
            .define_class("Mixed")
            .prim("a", ElemKind::U8)
            .prim("b", ElemKind::I64)
            .transportable("c", arr)
            .prim("d", ElemKind::I16)
            .build();
        let mt = reg.table(id);
        let a = &mt.fields[0];
        let b = &mt.fields[1];
        let c = &mt.fields[2];
        let d = &mt.fields[3];
        assert_eq!(a.offset, 0);
        assert_eq!(b.offset, 8, "i64 aligns to 8");
        assert_eq!(c.offset, 16);
        assert_eq!(d.offset, 24);
        assert_eq!(mt.instance_size % 8, 0);
        assert!(mt.has_refs);
        assert_eq!(mt.ref_offsets, vec![16]);
    }

    #[test]
    fn transportable_bit_is_queryable_both_ways() {
        let mut reg = TypeRegistry::new();
        let arr = reg.prim_array(ElemKind::I32);
        let id = reg
            .define_class("LinkedArray")
            .transportable("array", arr)
            .prim("len", ElemKind::I32)
            .build();
        // `next` must reference the class itself; define via two-phase
        // registration is not supported, so model the paper's LinkedArray
        // with a second class referencing the first.
        let id2 = reg
            .define_class("LinkedArray2")
            .transportable("array", arr)
            .transportable("next", id)
            .reference("next2", id)
            .build();
        let mt = reg.table(id2);
        // Fast path: the Transportable bit.
        let (_, f_next) = mt.field_by_name("next").unwrap();
        let (_, f_next2) = mt.field_by_name("next2").unwrap();
        assert!(f_next.is_transportable());
        assert!(!f_next2.is_transportable());
        // Both are references.
        assert!(f_next.is_ref() && f_next2.is_ref());
    }

    #[test]
    fn array_types_are_canonical() {
        let mut reg = TypeRegistry::new();
        let a = reg.prim_array(ElemKind::F64);
        let b = reg.prim_array(ElemKind::F64);
        assert_eq!(a, b);
        let c = reg.md_array(ElemKind::F64, 2);
        let d = reg.md_array(ElemKind::F64, 2);
        assert_eq!(c, d);
        assert_ne!(a, c);
        let cls = reg.define_class("Node").prim("x", ElemKind::I32).build();
        let oa = reg.obj_array(cls);
        assert_eq!(reg.obj_array(cls), oa);
        assert!(reg.table(oa).has_refs);
        assert!(!reg.table(a).has_refs);
    }

    #[test]
    fn duplicate_class_names_resolve_to_first_definition() {
        let mut reg = TypeRegistry::new();
        let a = reg.define_class("P").prim("x", ElemKind::I32).build();
        let b = reg.define_class("P").prim("y", ElemKind::I64).build();
        assert_eq!(a, b);
        assert_eq!(reg.table(b).fields[0].name, "x");
    }

    #[test]
    fn by_name_lookup() {
        let mut reg = TypeRegistry::new();
        let id = reg.define_class("Point").prim("x", ElemKind::F64).build();
        assert_eq!(reg.by_name("Point"), Some(id));
        assert_eq!(reg.by_name("Missing"), None);
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
    }

    #[test]
    #[should_panic(expected = "rank >= 2")]
    fn md_array_requires_rank_two() {
        let mut reg = TypeRegistry::new();
        reg.md_array(ElemKind::I32, 1);
    }
}
