//! The two-generation heap: segments, allocation, containment tests.
//!
//! Paper §5.2: "Objects are originally allocated in the younger generation
//! and if they pass a garbage collection, they are promoted to the elder
//! generation. ... the younger generation is collected often, while the
//! elder generation is collected less frequently. When a set of objects are
//! promoted to the elder generation, they are copied to the elder
//! generation, with compaction to reduce fragmentation. Once in the elder
//! generation, objects are collected if abandoned, but are no longer
//! compacted."
//!
//! Layout of the heap:
//!
//! * **Young generation** — a single bump-allocated segment. Exhaustion
//!   triggers a minor collection.
//! * **Elder generation** — a list of segments. Allocation first bumps the
//!   most recent segment, then searches the free list rebuilt by each
//!   mark-sweep, then grows a new segment. Elder objects never move, which
//!   is what makes the Motor pinning policy's "already promoted ⇒ no pin
//!   needed" check sound (paper §7.4).
//! * **Large objects** (bigger than half the young capacity) allocate
//!   directly in the elder generation, as in production CLRs; the young
//!   segment could never hold them. This also means very large message
//!   buffers are never moved — the pinning policy then skips them, which is
//!   the behaviour the paper relies on for its large ping-pong buffers.
//!
//! Addresses handed out by the heap are raw `usize` pointers into segment
//! memory. They are only stable while the GC is excluded (cooperative
//! non-polling code) or while the object is pinned / in the elder
//! generation — exactly the discipline the paper's FCalls follow.

use crate::layout::{obj_flags, ObjHeader, ALIGN, HEADER_SIZE};

/// A contiguous memory region backing one generation (or part of one).
pub struct Segment {
    /// Backing store; `u64` guarantees 8-byte alignment of the base.
    mem: Box<[u64]>,
    /// Bump offset in bytes from the base.
    bump: usize,
}

impl Segment {
    /// Allocate a zeroed segment of at least `bytes` capacity.
    pub fn new(bytes: usize) -> Self {
        let words = bytes.div_ceil(8);
        Segment {
            mem: vec![0u64; words.max(8)].into_boxed_slice(),
            bump: 0,
        }
    }

    /// Base address of the segment memory.
    #[inline]
    pub fn base(&self) -> usize {
        self.mem.as_ptr() as usize
    }

    /// One-past-the-end address of the segment capacity.
    #[inline]
    pub fn end(&self) -> usize {
        self.base() + self.capacity()
    }

    /// Capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.mem.len() * 8
    }

    /// Bytes currently bump-allocated.
    #[inline]
    pub fn used(&self) -> usize {
        self.bump
    }

    /// Whether `addr` lies within the *allocated* part of this segment.
    #[inline]
    pub fn contains(&self, addr: usize) -> bool {
        addr >= self.base() && addr < self.base() + self.bump
    }

    /// Try to bump-allocate `size` bytes (already aligned); returns the
    /// address or `None` if the segment is full.
    pub fn try_bump(&mut self, size: usize) -> Option<usize> {
        debug_assert!(size.is_multiple_of(ALIGN));
        if self.bump + size > self.capacity() {
            return None;
        }
        let addr = self.base() + self.bump;
        self.bump += size;
        Some(addr)
    }

    /// Reset the bump pointer, logically freeing every object (used after a
    /// minor collection has evacuated the young generation).
    pub fn reset(&mut self) {
        self.bump = 0;
    }

    /// Iterate over the headers of all allocations in this segment,
    /// including `FREE` filler blocks.
    pub fn walk(&self) -> SegmentWalker<'_> {
        SegmentWalker {
            seg: self,
            offset: 0,
        }
    }
}

/// Iterator over object addresses within a segment.
pub struct SegmentWalker<'s> {
    seg: &'s Segment,
    offset: usize,
}

impl Iterator for SegmentWalker<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.offset >= self.seg.bump {
            return None;
        }
        let addr = self.seg.base() + self.offset;
        // SAFETY: every allocation writes a header before the bump pointer
        // moves past it, so the allocated prefix is always parseable.
        let size = unsafe { (*(addr as *const ObjHeader)).size } as usize;
        debug_assert!(size >= HEADER_SIZE && size.is_multiple_of(ALIGN));
        self.offset += size;
        Some(addr)
    }
}

/// A free block in the elder generation (rebuilt by each sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreeBlock {
    /// Address of the block (a `FREE`-flagged header lives here).
    pub addr: usize,
    /// Size of the block in bytes.
    pub size: usize,
}

/// Heap configuration.
#[derive(Debug, Clone)]
pub struct HeapConfig {
    /// Capacity of the young generation in bytes.
    pub young_bytes: usize,
    /// Size of each elder-generation segment in bytes.
    pub old_segment_bytes: usize,
    /// Soft cap on total elder bytes before a full collection is forced.
    pub old_soft_limit: usize,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig {
            young_bytes: 256 * 1024,
            old_segment_bytes: 1024 * 1024,
            old_soft_limit: 64 * 1024 * 1024,
        }
    }
}

/// The two-generation heap.
pub struct Heap {
    config: HeapConfig,
    young: Segment,
    old: Vec<Segment>,
    free_list: Vec<FreeBlock>,
    old_bytes_used: usize,
}

/// Why an allocation could not be satisfied right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocPressure {
    /// The young generation is full: run a minor collection.
    NeedsMinor,
    /// The elder generation crossed its soft limit: run a full collection.
    NeedsFull,
}

impl Heap {
    /// Create a heap with the given configuration.
    pub fn new(config: HeapConfig) -> Self {
        let young = Segment::new(config.young_bytes);
        Heap {
            config,
            young,
            old: Vec::new(),
            free_list: Vec::new(),
            old_bytes_used: 0,
        }
    }

    /// Heap configuration.
    pub fn config(&self) -> &HeapConfig {
        &self.config
    }

    /// Whether `addr` lies in the young generation — the containment test
    /// the Motor pinning policy performs: "Motor checks the object's
    /// internal memory address against the boundaries of the younger
    /// generation" (paper §7.4).
    #[inline]
    pub fn is_young(&self, addr: usize) -> bool {
        self.young.contains(addr)
    }

    /// Whether `addr` is anywhere in this heap.
    pub fn contains(&self, addr: usize) -> bool {
        self.young.contains(addr) || self.old.iter().any(|s| s.contains(addr))
    }

    /// Threshold above which allocations go straight to the elder
    /// generation.
    pub fn large_object_threshold(&self) -> usize {
        self.config.young_bytes / 2
    }

    /// Allocate `size` bytes (aligned) and stamp the given header. The
    /// payload beyond the header is zeroed. Returns the address, or the
    /// collection the caller must run before retrying.
    pub fn alloc(&mut self, size: usize, header: ObjHeader) -> Result<usize, AllocPressure> {
        debug_assert!(size >= HEADER_SIZE && size.is_multiple_of(ALIGN));
        if size > self.large_object_threshold() {
            let mut header = header;
            header.flags |= obj_flags::IN_OLD;
            return self.alloc_old(size, header);
        }
        match self.young.try_bump(size) {
            Some(addr) => {
                Self::stamp(addr, size, header);
                Ok(addr)
            }
            None => Err(AllocPressure::NeedsMinor),
        }
    }

    /// Allocate directly in the elder generation (promotions and large
    /// objects).
    pub fn alloc_old(
        &mut self,
        size: usize,
        mut header: ObjHeader,
    ) -> Result<usize, AllocPressure> {
        header.flags |= obj_flags::IN_OLD;
        if self.old_bytes_used + size > self.config.old_soft_limit {
            return Err(AllocPressure::NeedsFull);
        }
        // 1. Bump the most recent segment.
        if let Some(seg) = self.old.last_mut() {
            if let Some(addr) = seg.try_bump(size) {
                Self::stamp(addr, size, header);
                self.old_bytes_used += size;
                return Ok(addr);
            }
        }
        // 2. First-fit from the free list (elder gen is never compacted, so
        //    freed holes are the only reusable space — paper §5.2).
        if let Some(pos) = self.free_list.iter().position(|b| b.size >= size) {
            let block = self.free_list[pos];
            let remainder = block.size - size;
            if remainder >= HEADER_SIZE {
                // Split: keep the tail as a smaller free block.
                let tail = FreeBlock {
                    addr: block.addr + size,
                    size: remainder,
                };
                Self::stamp_free(tail.addr, tail.size);
                self.free_list[pos] = tail;
            } else {
                // Too small to split; hand out the whole block.
                self.free_list.swap_remove(pos);
            }
            let got = if remainder >= HEADER_SIZE {
                size
            } else {
                block.size
            };
            Self::stamp(
                block.addr,
                got,
                ObjHeader {
                    size: got as u32,
                    ..header
                },
            );
            self.old_bytes_used += got;
            return Ok(block.addr);
        }
        // 3. Grow a new segment.
        let seg_bytes = self.config.old_segment_bytes.max(size);
        let mut seg = Segment::new(seg_bytes);
        let addr = seg.try_bump(size).expect("fresh segment fits request");
        self.old.push(seg);
        Self::stamp(addr, size, header);
        self.old_bytes_used += size;
        Ok(addr)
    }

    /// Allocate in the elder generation ignoring the soft limit — used by
    /// the collector itself during promotion, which must not fail (the
    /// limit is re-checked by the next mutator allocation).
    pub fn alloc_old_unchecked(&mut self, size: usize, header: ObjHeader) -> Option<usize> {
        let saved = self.config.old_soft_limit;
        self.config.old_soft_limit = usize::MAX;
        let r = self.alloc_old(size, header);
        self.config.old_soft_limit = saved;
        r.ok()
    }

    /// Append free blocks discovered outside a sweep (pinned-block
    /// promotion) and subtract their bytes from elder usage accounting.
    pub fn add_free_blocks(&mut self, blocks: Vec<FreeBlock>, freed: usize) {
        self.free_list.extend(blocks);
        self.old_bytes_used = self.old_bytes_used.saturating_sub(freed);
    }

    fn stamp(addr: usize, size: usize, mut header: ObjHeader) {
        header.size = size as u32;
        // SAFETY: addr..addr+size was just carved out of a segment we own.
        unsafe {
            std::ptr::write_bytes((addr + HEADER_SIZE) as *mut u8, 0, size - HEADER_SIZE);
            std::ptr::write(addr as *mut ObjHeader, header);
        }
    }

    /// Write a `FREE` filler header over a dead block so segment walks stay
    /// parseable.
    pub fn stamp_free(addr: usize, size: usize) {
        debug_assert!(size >= HEADER_SIZE);
        // SAFETY: caller owns the block.
        unsafe {
            std::ptr::write(
                addr as *mut ObjHeader,
                ObjHeader {
                    mt: u32::MAX,
                    flags: obj_flags::FREE,
                    size: size as u32,
                    extra: 0,
                },
            );
        }
    }

    /// Read an object header.
    #[inline]
    pub fn header(&self, addr: usize) -> ObjHeader {
        debug_assert!(self.contains(addr), "header read outside heap");
        // SAFETY: addr points at a live allocation within this heap.
        unsafe { std::ptr::read(addr as *const ObjHeader) }
    }

    /// Overwrite an object header.
    #[inline]
    pub fn set_header(&mut self, addr: usize, header: ObjHeader) {
        debug_assert!(self.contains(addr));
        // SAFETY: as above.
        unsafe { std::ptr::write(addr as *mut ObjHeader, header) }
    }

    /// Update just the flag bits of a header.
    #[inline]
    pub fn update_flags(&mut self, addr: usize, set: u32, clear: u32) {
        let mut h = self.header(addr);
        h.flags = (h.flags & !clear) | set;
        self.set_header(addr, h);
    }

    /// The young segment (for collection).
    pub fn young(&self) -> &Segment {
        &self.young
    }

    /// Mutable young segment.
    pub fn young_mut(&mut self) -> &mut Segment {
        &mut self.young
    }

    /// Elder segments (for sweeps).
    pub fn old_segments(&self) -> &[Segment] {
        &self.old
    }

    /// Live occupancy `(used_bytes, capacity_bytes)` across the young
    /// segment and every elder segment (the telemetry heap gauges).
    pub fn usage(&self) -> (u64, u64) {
        let mut used = self.young.used() as u64;
        let mut capacity = self.young.capacity() as u64;
        for s in &self.old {
            used += s.used() as u64;
            capacity += s.capacity() as u64;
        }
        (used, capacity)
    }

    /// Replace the young segment with a fresh one and move the current one
    /// into the elder generation — the SSCLI pinned-promotion behaviour:
    /// "the entire block of younger generational memory is assigned to the
    /// elder generation thereby promoting pinned objects" (paper §5.2).
    pub fn promote_young_block(&mut self) {
        let fresh = Segment::new(self.config.young_bytes);
        let block = std::mem::replace(&mut self.young, fresh);
        self.old_bytes_used += block.used();
        // Mark every object in the transferred block as elder-resident.
        let addrs: Vec<usize> = block.walk().collect();
        for addr in addrs {
            // SAFETY: walking our own block.
            unsafe {
                let h = &mut *(addr as *mut ObjHeader);
                h.flags |= obj_flags::IN_OLD;
            }
        }
        self.old.push(block);
    }

    /// Total bytes used by the elder generation (live + unreclaimed).
    pub fn old_bytes_used(&self) -> usize {
        self.old_bytes_used
    }

    /// Rebuild the elder free list after a sweep. `freed` is subtracted
    /// from the elder usage accounting.
    pub fn set_free_list(&mut self, list: Vec<FreeBlock>, freed: usize) {
        self.free_list = list;
        self.old_bytes_used = self.old_bytes_used.saturating_sub(freed);
    }

    /// Current elder free list (test/diagnostic access).
    pub fn free_list(&self) -> &[FreeBlock] {
        &self.free_list
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr(mt: u32) -> ObjHeader {
        ObjHeader {
            mt,
            flags: 0,
            size: 0,
            extra: 0,
        }
    }

    #[test]
    fn segment_bump_and_walk() {
        let mut seg = Segment::new(256);
        let a = seg.try_bump(32).unwrap();
        let b = seg.try_bump(64).unwrap();
        assert_eq!(b, a + 32);
        // Stamp minimal headers so the walk is parseable.
        Heap::stamp_free(a, 32);
        Heap::stamp_free(b, 64);
        let addrs: Vec<usize> = seg.walk().collect();
        assert_eq!(addrs, vec![a, b]);
        assert!(seg.contains(a) && seg.contains(b));
        assert!(!seg.contains(seg.base() + seg.capacity()));
    }

    #[test]
    fn segment_exhaustion() {
        let mut seg = Segment::new(64);
        assert!(seg.try_bump(64).is_some());
        assert!(seg.try_bump(8).is_none());
        seg.reset();
        assert!(seg.try_bump(8).is_some());
    }

    #[test]
    fn young_alloc_and_pressure() {
        let mut heap = Heap::new(HeapConfig {
            young_bytes: 1024,
            old_segment_bytes: 4096,
            old_soft_limit: 1 << 20,
        });
        let a = heap.alloc(64, hdr(1)).unwrap();
        assert!(heap.is_young(a));
        assert_eq!(heap.header(a).mt, 1);
        assert_eq!(heap.header(a).size, 64);
        // Fill the young generation.
        let mut last = a;
        loop {
            match heap.alloc(64, hdr(2)) {
                Ok(x) => last = x,
                Err(p) => {
                    assert_eq!(p, AllocPressure::NeedsMinor);
                    break;
                }
            }
        }
        assert!(heap.is_young(last));
    }

    #[test]
    fn large_objects_go_to_elder() {
        let mut heap = Heap::new(HeapConfig {
            young_bytes: 1024,
            old_segment_bytes: 8192,
            old_soft_limit: 1 << 20,
        });
        let big = heap.alloc(600, hdr(3)).unwrap();
        assert!(!heap.is_young(big));
        assert!(heap.contains(big));
        assert_ne!(heap.header(big).flags & obj_flags::IN_OLD, 0);
    }

    #[test]
    fn payload_is_zeroed() {
        let mut heap = Heap::new(HeapConfig::default());
        let a = heap.alloc(64, hdr(1)).unwrap();
        // SAFETY: freshly allocated object of 64 bytes.
        let payload =
            unsafe { std::slice::from_raw_parts((a + HEADER_SIZE) as *const u8, 64 - HEADER_SIZE) };
        assert!(payload.iter().all(|&b| b == 0));
    }

    #[test]
    fn free_list_first_fit_and_split() {
        let mut heap = Heap::new(HeapConfig {
            young_bytes: 128,
            old_segment_bytes: 1024,
            old_soft_limit: 1 << 20,
        });
        // Two elder allocations fill a bump region.
        let a = heap.alloc_old(128, hdr(1)).unwrap();
        let _b = heap.alloc_old(896, hdr(2)).unwrap();
        // Simulate a sweep freeing `a`.
        Heap::stamp_free(a, 128);
        heap.set_free_list(vec![FreeBlock { addr: a, size: 128 }], 128);
        // A smaller allocation reuses the hole and splits it.
        let c = heap.alloc_old(64, hdr(3)).unwrap();
        assert_eq!(c, a);
        assert_eq!(heap.free_list().len(), 1);
        assert_eq!(
            heap.free_list()[0],
            FreeBlock {
                addr: a + 64,
                size: 64
            }
        );
        // The remainder is handed out whole when it can't be split.
        let d = heap.alloc_old(56, hdr(4)).unwrap();
        assert_eq!(d, a + 64);
        assert_eq!(
            heap.header(d).size,
            64,
            "unsplittable remainder handed out whole"
        );
        assert!(heap.free_list().is_empty());
    }

    #[test]
    fn old_soft_limit_reports_full_pressure() {
        let mut heap = Heap::new(HeapConfig {
            young_bytes: 128,
            old_segment_bytes: 1024,
            old_soft_limit: 2048,
        });
        assert!(heap.alloc_old(1024, hdr(1)).is_ok());
        assert!(heap.alloc_old(1024, hdr(1)).is_ok());
        assert_eq!(heap.alloc_old(64, hdr(1)), Err(AllocPressure::NeedsFull));
    }

    #[test]
    fn promote_young_block_transfers_objects() {
        let mut heap = Heap::new(HeapConfig {
            young_bytes: 1024,
            old_segment_bytes: 4096,
            old_soft_limit: 1 << 20,
        });
        let a = heap.alloc(64, hdr(7)).unwrap();
        assert!(heap.is_young(a));
        heap.promote_young_block();
        // Address unchanged, but now elder-resident.
        assert!(!heap.is_young(a));
        assert!(heap.contains(a));
        assert_ne!(heap.header(a).flags & obj_flags::IN_OLD, 0);
        assert_eq!(heap.header(a).mt, 7);
        // New young segment is empty and usable.
        let b = heap.alloc(64, hdr(8)).unwrap();
        assert!(heap.is_young(b));
    }
}
