//! The Motor cluster harness: one VM instance per MPI rank.
//!
//! The paper's deployment model is N operating-system processes, each
//! hosting a Motor virtual machine whose runtime embeds the Message
//! Passing Core. Here each rank is an OS *thread* owning a private
//! [`Vm`] (its own heap, collector, safepoints, type registry) wired to
//! its peers through the universe's links — the same isolation the paper
//! gets from process boundaries, minus the address-space separation.

use std::sync::Arc;
use std::time::Duration;

use motor_mpc::universe::{ChannelKind, Proc, Universe, UniverseConfig};
use motor_mpc::{Comm, Source};
use motor_obs::{estimate_clock_offset, Anomaly, ClusterTrace, DoctorConfig, MetricsSnapshot};
use motor_runtime::{MotorThread, TypeRegistry, Vm, VmConfig};
use parking_lot::Mutex;

use crate::bufpool::BufPool;
use crate::doctor::DoctorServer;
use crate::error::CoreResult;
use crate::mp::Mp;
use crate::oomp::Oomp;
use crate::pinning::PinPolicy;
use crate::telemetry::{start_monitor, Collector, RankTicket, TelemetryConfig, TelemetryServer};

/// Configuration of a Motor cluster. Build one with
/// [`ClusterConfig::builder`] or fill the fields directly.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of ranks (VM instances) to run.
    pub ranks: usize,
    /// Per-rank VM configuration.
    pub vm: VmConfig,
    /// Universe (transport/device) configuration.
    pub universe: UniverseConfig,
    /// Pinning policy applied by the `System.MP` bindings.
    pub policy: PinPolicy,
    /// Health watchdog (`motor-doctor`): `None` disables it unless the
    /// `MOTOR_DOCTOR` environment variable asks for one at run time.
    pub doctor: Option<DoctorConfig>,
    /// Live telemetry endpoint (`/metrics`, `/healthz`, `/flight`,
    /// `/frames`): `None` disables it unless the `MOTOR_TELEMETRY`
    /// environment variable asks for one at run time.
    pub telemetry: Option<TelemetryConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            ranks: 1,
            vm: VmConfig::default(),
            universe: UniverseConfig::default(),
            policy: PinPolicy::default(),
            doctor: None,
            telemetry: None,
        }
    }
}

impl ClusterConfig {
    /// Start building a cluster configuration.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder {
            config: ClusterConfig::default(),
        }
    }
}

/// Fluent builder for [`ClusterConfig`].
#[derive(Clone, Default)]
pub struct ClusterConfigBuilder {
    config: ClusterConfig,
}

impl ClusterConfigBuilder {
    /// Number of ranks to run.
    pub fn ranks(mut self, n: usize) -> Self {
        self.config.ranks = n;
        self
    }

    /// Transport between ranks (shared-memory rings or loopback TCP).
    pub fn transport(mut self, kind: ChannelKind) -> Self {
        self.config.universe.channel = kind;
        self
    }

    /// Pinning policy for the `System.MP` bindings.
    pub fn policy(mut self, policy: PinPolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Per-rank VM configuration.
    pub fn vm(mut self, vm: VmConfig) -> Self {
        self.config.vm = vm;
        self
    }

    /// Full universe configuration (overrides [`Self::transport`] and
    /// [`Self::eager_threshold`] if set afterwards).
    pub fn universe(mut self, universe: UniverseConfig) -> Self {
        self.config.universe = universe;
        self
    }

    /// Eager/rendezvous protocol switch-over size, in bytes.
    pub fn eager_threshold(mut self, bytes: usize) -> Self {
        self.config.universe.device.eager_threshold = bytes;
        self
    }

    /// Asynchronous progress model (dedicated per-device progress thread
    /// or stealable progress); see
    /// [`ProgressConfig`](motor_mpc::ProgressConfig). A config left at
    /// the default `off` defers to the `MOTOR_PROGRESS` environment
    /// variable at run time.
    pub fn progress(mut self, cfg: motor_mpc::ProgressConfig) -> Self {
        self.config.universe.progress = cfg;
        self
    }

    /// Custom link factory: every inter-rank link pair comes from this
    /// closure instead of the built-in shm/tcp channels. This is how
    /// motor-sim injects fault-carrying `SimLink`s under a full cluster.
    pub fn link_factory(mut self, factory: motor_mpc::LinkFactory) -> Self {
        self.config.universe.link_factory = Some(factory);
        self
    }

    /// Capacity of each rank's event-trace rings (transport-side and
    /// VM-side). The rings overwrite their oldest entry once full, so a
    /// long run keeps the *most recent* `n` events per ring; size this to
    /// cover the window you intend to trace.
    pub fn event_capacity(mut self, n: usize) -> Self {
        self.config.universe.device.event_capacity = n;
        self.config.vm.event_capacity = n;
        self
    }

    /// Enable the `motor-doctor` watchdog: a monitor thread that scans
    /// every rank's live in-flight op table, diagnoses stalls, deadlock
    /// suspects, pin leaks and GC pressure, and emits a flight record on
    /// anomaly. Runs with the given tuning; see
    /// [`DoctorConfig`](motor_obs::DoctorConfig). The `MOTOR_DOCTOR`
    /// environment variable enables it too (config wins when both are
    /// set).
    pub fn doctor(mut self, cfg: DoctorConfig) -> Self {
        self.config.doctor = Some(cfg);
        self
    }

    /// Enable the live telemetry endpoint: a monitor thread collects one
    /// delta frame per tick into a bounded ring, and an in-process HTTP
    /// listener serves `GET /metrics` (Prometheus text with per-rank
    /// labels), `/healthz`, `/flight` and `/frames` while the workload
    /// runs. See [`TelemetryConfig`]; the `MOTOR_TELEMETRY` environment
    /// variable enables it too (config wins when both are set). Watch it
    /// with `motor-top`.
    pub fn telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.config.telemetry = Some(cfg);
        self
    }

    /// Finish building.
    pub fn build(self) -> ClusterConfig {
        self.config
    }
}

/// Per-rank metrics snapshots collected when a cluster run exits.
#[derive(Debug, Clone)]
pub struct ClusterMetrics {
    /// One merged (transport + runtime + GC-bridge) snapshot per rank, in
    /// rank order.
    pub per_rank: Vec<MetricsSnapshot>,
    /// Per-rank clock-offset estimates (nanoseconds this rank's clock is
    /// ahead of rank 0's) measured by the startup calibration handshake,
    /// in rank order. `run_cluster` ranks share one time epoch, so the
    /// true offset is zero and these record only the handshake's
    /// measurement noise — a built-in sanity check on edge latencies. A
    /// genuinely distributed deployment would instead apply them through
    /// [`motor_obs::MetricsRegistry::set_clock_offset`].
    pub clock_offset_estimates: Vec<i64>,
    /// Anomalies the `motor-doctor` watchdog diagnosed during the run
    /// (always empty when the doctor was not enabled).
    pub anomalies: Vec<Anomaly>,
}

impl ClusterMetrics {
    /// Merge every rank's snapshot into one cluster-wide view (counters
    /// add; queue peaks take the max across ranks).
    pub fn aggregate(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::empty();
        for s in &self.per_rank {
            out.merge(s);
        }
        out
    }

    /// Merge the per-rank event rings into one cluster timeline: spans,
    /// matched message edges, calibrated cross-rank time.
    pub fn trace(&self) -> ClusterTrace {
        motor_obs::build_cluster_trace(&self.per_rank)
    }

    /// The cluster timeline in Chrome-trace-event JSON, loadable in
    /// Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
    pub fn chrome_trace_json(&self) -> String {
        motor_obs::to_chrome_json(&self.trace())
    }
}

/// One rank's Motor environment, handed to the rank body.
pub struct MotorProc {
    vm: Arc<Vm>,
    thread: MotorThread,
    comm: Comm,
    pool: Arc<BufPool>,
    policy: PinPolicy,
    proc_: Proc,
    /// This rank's registration with the shared telemetry collector, when
    /// monitoring (doctor and/or endpoint) is enabled.
    monitor: Option<(Arc<Collector>, RankTicket)>,
    doctor: Option<Arc<DoctorServer>>,
    telemetry: Option<Arc<TelemetryServer>>,
}

impl MotorProc {
    /// This rank.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// The rank's VM.
    pub fn vm(&self) -> &Arc<Vm> {
        &self.vm
    }

    /// The rank's attached mutator thread.
    pub fn thread(&self) -> &MotorThread {
        &self.thread
    }

    /// The world communicator.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// The regular MPI bindings (`System.MP`).
    pub fn mp(&self) -> Mp<'_> {
        Mp::with_policy(&self.thread, self.comm.clone(), self.policy)
    }

    /// The extended object-oriented operations.
    pub fn oomp(&self) -> Oomp<'_> {
        Oomp::new(&self.thread, self.comm.clone(), Arc::clone(&self.pool))
    }

    /// The message-passing intrinsic host for interpreted IL: bind it to
    /// an interpreter with `Interp::with_host` so `Op::FCall` routes into
    /// this rank's [`Mp`]/[`Oomp`] bindings.
    pub fn intrinsics(&self) -> crate::fcall::MpIntrinsics<'_> {
        crate::fcall::MpIntrinsics::new(self.mp(), self.oomp())
    }

    /// The OO buffer pool (diagnostics).
    pub fn pool(&self) -> &Arc<BufPool> {
        &self.pool
    }

    /// The underlying universe process (dynamic spawning etc.).
    pub fn native(&self) -> &Proc {
        &self.proc_
    }

    /// The `motor-doctor` watchdog monitoring this rank, if one is
    /// enabled (on-demand flight records, manual scans).
    pub fn doctor(&self) -> Option<&Arc<DoctorServer>> {
        self.doctor.as_ref()
    }

    /// The shared telemetry collector observing this rank, if monitoring
    /// (doctor and/or endpoint) is enabled.
    pub fn collector(&self) -> Option<&Arc<Collector>> {
        self.monitor.as_ref().map(|(c, _)| c)
    }

    /// The live telemetry endpoint, if one is serving this run (read its
    /// bound address with [`TelemetryServer::local_addr`] — useful with
    /// port 0 in tests).
    pub fn telemetry(&self) -> Option<&Arc<TelemetryServer>> {
        self.telemetry.as_ref()
    }

    /// Merged metrics for this rank: the transport-side registry (channel,
    /// device, collectives), the runtime-side registry (safepoints,
    /// serializer, buffer pool) and the GC counters bridged in.
    pub fn metrics(&self) -> MetricsSnapshot {
        crate::doctor::merged_metrics(self.comm.device(), &self.vm)
    }
}

/// Tag reserved for the startup clock-calibration handshake.
const CLOCK_SYNC_TAG: i32 = 0x43_4c_4b;

/// NTP-style clock-offset handshake against rank 0, run once per rank at
/// cluster startup before the user body. Each rank r > 0 timestamps a
/// request (`t0`), rank 0 answers with its own clock reading (`t_peer`),
/// and r timestamps the reply (`t1`); the estimated offset is
/// `midpoint(t0, t1) - t_peer` (see [`estimate_clock_offset`]). Returns
/// how far this rank's clock reads ahead of rank 0's: zero on rank 0, and
/// pure handshake noise here because `run_cluster` ranks share an epoch.
fn calibrate_clock(comm: &Comm) -> CoreResult<i64> {
    if comm.size() <= 1 {
        return Ok(0);
    }
    let reg = comm.device().metrics();
    if comm.rank() == 0 {
        for peer in 1..comm.size() {
            let mut req = [0u8; 1];
            comm.recv_bytes(&mut req, peer, CLOCK_SYNC_TAG)?;
            let t_peer = reg.now_nanos();
            comm.send_bytes(&t_peer.to_le_bytes(), peer, CLOCK_SYNC_TAG)?;
        }
        Ok(0)
    } else {
        let t0 = reg.now_nanos();
        comm.send_bytes(&[0u8], 0, CLOCK_SYNC_TAG)?;
        let mut reply = [0u8; 8];
        comm.recv_bytes(&mut reply, 0, CLOCK_SYNC_TAG)?;
        let t1 = reg.now_nanos();
        Ok(estimate_clock_offset(t0, t1, u64::from_le_bytes(reply)))
    }
}

/// Run a Motor program on `config.ranks` ranks. `define_types` is applied
/// to every rank's fresh type registry before the body starts (all ranks
/// must know the application classes, as all SPMD programs do); `body` is
/// the rank program. On exit, every rank's metrics snapshot is collected
/// and returned in rank order.
pub fn run_cluster<D, B>(
    config: ClusterConfig,
    define_types: D,
    body: B,
) -> CoreResult<ClusterMetrics>
where
    D: Fn(&mut TypeRegistry) + Send + Sync,
    B: Fn(&MotorProc) + Send + Sync,
{
    let n = config.ranks;
    // One epoch for every rank's registries (transport-side and VM-side),
    // so event timestamps from different ranks live on a single timebase
    // and matched send/recv edges have meaningful (non-negative)
    // latencies. Respect an epoch the caller pinned explicitly.
    let epoch = std::time::Instant::now();
    let mut vm_config = config.vm.clone();
    if vm_config.epoch.is_none() {
        vm_config.epoch = Some(epoch);
    }
    let mut universe = config.universe.clone();
    if universe.device.epoch.is_none() {
        universe.device.epoch = Some(epoch);
    }
    let policy = config.policy;
    // A doctor/telemetry config requested explicitly wins; otherwise the
    // MOTOR_DOCTOR / MOTOR_TELEMETRY environment variables may enable
    // them at run time. The collector (and its monitor thread) exists
    // only when at least one consumer does — when neither is enabled the
    // run takes the exact pre-telemetry path.
    let doctor_cfg = config.doctor.clone().or_else(DoctorConfig::from_env);
    let telemetry_cfg = config.telemetry.clone().or_else(TelemetryConfig::from_env);
    let collector = if doctor_cfg.is_some() || telemetry_cfg.is_some() {
        Some(Collector::new(
            telemetry_cfg
                .as_ref()
                .map_or(motor_obs::DEFAULT_FRAME_CAPACITY, |t| t.frame_capacity),
        ))
    } else {
        None
    };
    let doctor = doctor_cfg
        .map(|cfg| DoctorServer::new(cfg, Arc::clone(collector.as_ref().expect("collector"))));
    let telemetry = telemetry_cfg.as_ref().and_then(|cfg| {
        match TelemetryServer::start(
            cfg,
            Arc::clone(collector.as_ref().expect("collector")),
            doctor.clone(),
        ) {
            Ok(srv) => Some(srv),
            Err(e) => {
                eprintln!(
                    "motor-telemetry: cannot bind {}: {e}; running without the endpoint",
                    cfg.addr
                );
                None
            }
        }
    });
    // One monitor loop regardless of how many consumers: tick at the
    // shortest enabled interval.
    let monitor = collector.as_ref().map(|c| {
        let mut interval = Duration::from_secs(3600);
        if let Some(d) = &doctor {
            interval = interval.min(d.config().scan_interval);
        }
        if let Some(t) = &telemetry_cfg {
            interval = interval.min(t.interval);
        }
        start_monitor(Arc::clone(c), doctor.clone(), interval)
    });
    let snaps: Mutex<Vec<(usize, MetricsSnapshot)>> = Mutex::new(Vec::with_capacity(n));
    let offsets: Mutex<Vec<(usize, i64)>> = Mutex::new(Vec::with_capacity(n));
    let result = Universe::run_with(n, universe, |proc| {
        let vm = Vm::new(vm_config.clone());
        {
            let mut reg = vm.registry_mut();
            define_types(&mut reg);
        }
        let thread = MotorThread::attach(Arc::clone(&vm));
        let comm = proc.world().clone();
        let pool = Arc::new(BufPool::new());
        pool.attach_metrics(Arc::clone(vm.metrics()));
        // Register with the collector before the calibration handshake so
        // even a startup deadlock is visible.
        let ticket = collector.as_ref().map(|c| {
            let t = c.register(
                comm.rank(),
                format!("rank {}", comm.rank()),
                Arc::clone(comm.device()),
                Arc::clone(&vm),
            );
            (Arc::clone(c), t)
        });
        let est = calibrate_clock(&comm).unwrap_or(0);
        offsets.lock().push((comm.rank(), est));
        let mp = MotorProc {
            vm,
            thread,
            comm,
            pool,
            policy,
            proc_: proc,
            monitor: ticket,
            doctor: doctor.clone(),
            telemetry: telemetry.clone(),
        };
        // Arm time-bucket accounting on the rank's own (VM-side) registry:
        // from here to the exit snapshot every classified span and phase
        // scope attributes this rank's wall clock, so the prof_* counters
        // in the collected snapshots partition the body's run time.
        mp.vm.metrics().profile_start();
        body(&mp);
        snaps.lock().push((mp.rank(), mp.metrics()));
        if let Some((c, t)) = &mp.monitor {
            c.mark_done(*t);
        }
    });
    if let Some(m) = monitor {
        m.stop();
    }
    if let Some(t) = &telemetry {
        t.stop();
    }
    let anomalies = match &doctor {
        Some(d) => {
            if d.config().record_on_exit {
                d.write_record(&d.flight_record());
            }
            d.anomalies()
        }
        None => Vec::new(),
    };
    result?;
    let mut per_rank = snaps.into_inner();
    per_rank.sort_by_key(|&(r, _)| r);
    let mut offs = offsets.into_inner();
    offs.sort_by_key(|&(r, _)| r);
    Ok(ClusterMetrics {
        per_rank: per_rank.into_iter().map(|(_, s)| s).collect(),
        clock_offset_estimates: offs.into_iter().map(|(_, o)| o).collect(),
        anomalies,
    })
}

/// [`run_cluster`] on `n` ranks with otherwise default configuration.
pub fn run_cluster_default<D, B>(n: usize, define_types: D, body: B) -> CoreResult<ClusterMetrics>
where
    D: Fn(&mut TypeRegistry) + Send + Sync,
    B: Fn(&MotorProc) + Send + Sync,
{
    run_cluster(
        ClusterConfig::builder().ranks(n).build(),
        define_types,
        body,
    )
}

/// MPI-2 dynamic process management at the Motor level (paper §7: "we
/// have implemented selected MPI-2 functionality such as dynamic process
/// management and dynamic intercommunication routines").
///
/// Collective over `proc`'s world communicator: spawns `count` new Motor
/// processes, each with its own fresh VM (types defined by
/// `define_types`), running `entry`. Every parent receives the
/// parent↔children [`InterComm`]; each child's [`MotorProc::parent_comm`]
/// is the children↔parents intercommunicator.
pub fn spawn_motor_children<D, B>(
    proc: &MotorProc,
    count: usize,
    config: ClusterConfig,
    define_types: D,
    entry: B,
) -> CoreResult<motor_mpc::universe::InterComm>
where
    D: Fn(&mut TypeRegistry) + Send + Sync + 'static,
    B: Fn(&MotorProc) + Send + Sync + 'static,
{
    let vm_config = config.vm.clone();
    let policy = config.policy;
    // Children join the parent's monitoring in a fresh spawn group: their
    // world ranks restart at 0, so peer cross-matching must not mix them
    // with the parents' world.
    let collector = proc.collector().map(Arc::clone);
    let doctor = proc.doctor().map(Arc::clone);
    let telemetry = proc.telemetry().map(Arc::clone);
    let group = collector.as_ref().map_or(0, |c| c.alloc_group());
    let inter = proc
        .proc_
        .universe()
        .spawn_children(proc.comm(), count, move |child: Proc| {
            let mut vm_config = vm_config.clone();
            if vm_config.epoch.is_none() {
                // Share the child device's timebase so VM-side and
                // device-side timestamps (events *and* in-flight ops)
                // stay comparable within the child.
                vm_config.epoch = Some(child.world().device().metrics().epoch());
            }
            let vm = Vm::new(vm_config);
            {
                let mut reg = vm.registry_mut();
                define_types(&mut reg);
            }
            let thread = MotorThread::attach(Arc::clone(&vm));
            let comm = child.world().clone();
            let pool = Arc::new(BufPool::new());
            pool.attach_metrics(Arc::clone(vm.metrics()));
            let ticket = collector.as_ref().map(|c| {
                let t = c.register_in_group(
                    group,
                    comm.rank(),
                    format!("child {}.{}", group, comm.rank()),
                    Arc::clone(comm.device()),
                    Arc::clone(&vm),
                );
                (Arc::clone(c), t)
            });
            let mp = MotorProc {
                vm,
                thread,
                comm,
                pool,
                policy,
                proc_: child,
                monitor: ticket,
                doctor: doctor.clone(),
                telemetry: telemetry.clone(),
            };
            entry(&mp);
            if let Some((c, t)) = &mp.monitor {
                c.mark_done(*t);
            }
        })?;
    Ok(inter)
}

impl MotorProc {
    /// The parent intercommunicator, if this Motor process was spawned
    /// dynamically (the `MPI_Comm_get_parent` analog).
    pub fn parent_comm(&self) -> Option<&motor_mpc::universe::InterComm> {
        self.proc_.parent()
    }

    /// Object transport to a remote-group rank of an intercommunicator:
    /// serialize with the Motor mechanism, ship size then data.
    pub fn osend_inter(
        &self,
        inter: &motor_mpc::universe::InterComm,
        obj: motor_runtime::Handle,
        remote_rank: usize,
        tag: i32,
    ) -> CoreResult<()> {
        let ser = crate::serial::Serializer::new(&self.thread);
        let (bytes, _) = ser.serialize(obj)?;
        let size = (bytes.len() as u64).to_le_bytes();
        inter.send_bytes(&size, remote_rank, tag)?;
        inter.send_bytes(&bytes, remote_rank, tag)?;
        Ok(())
    }

    /// Receive an object tree from a remote-group rank of an
    /// intercommunicator (`remote_rank` may be [`Source::Any`]).
    pub fn orecv_inter(
        &self,
        inter: &motor_mpc::universe::InterComm,
        remote_rank: impl Into<Source>,
        tag: i32,
    ) -> CoreResult<(motor_runtime::Handle, usize)> {
        let mut size = [0u8; 8];
        let st = inter.recv_bytes(&mut size, remote_rank, tag)?;
        let len = u64::from_le_bytes(size) as usize;
        let mut data = vec![0u8; len];
        inter.recv_bytes(&mut data, st.source as usize, st.tag)?;
        let ser = crate::serial::Serializer::new(&self.thread);
        let root = ser.deserialize(&data)?;
        Ok((root, st.source as usize))
    }
}
